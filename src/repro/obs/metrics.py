"""Labeled metrics: counters, gauges and log-bucketed histograms.

A :class:`MetricsRegistry` hands out *child* instruments — one per
``(name, labels)`` pair — so hot paths pay only an attribute lookup and an
integer add per event.  Instrument names are dotted, layer-prefixed
namespaces (``brunet.route.hops``, ``linking.attempts``,
``nat.mappings_live``, ``ipop.encap_bytes``, ``fault.injected``); labels
carry the per-node / per-reason dimension so one export line exists per
series.

Cheap-by-construction rules:

* child instruments are resolved **once** (usually in a constructor) and
  cached on the instrumented object — no per-event dict hashing;
* a disabled registry returns a shared no-op instrument, so call sites
  never need their own ``if``;
* anything that is already counted elsewhere (``node.stats``,
  ``Internet.drops``, live NAT mappings) is pulled in lazily at export
  time through *collector callbacks* and callback gauges — zero hot-path
  cost.

Exports (:meth:`MetricsRegistry.export_jsonl` /
:meth:`~MetricsRegistry.export_csv`) are sorted by ``(name, labels)`` and
contain only simulation-derived values, so a fixed-seed run produces
byte-identical files.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Iterable, Optional

LabelItems = tuple[tuple[str, str], ...]


class NullInstrument:
    """Shared no-op stand-in returned by a disabled registry."""

    __slots__ = ()

    def inc(self, n: float = 1) -> None:
        pass

    def dec(self, n: float = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass


NULL = NullInstrument()


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (default 1)."""
        self.value += n

    def row(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Point-in-time value that can move both ways."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def row(self) -> dict:
        return {"value": self.value}


class CallbackGauge:
    """Gauge whose value is one or more functions sampled at export time.

    Holds a *list* of callbacks and reports their sum: when the registry
    aggregates node series (``node_series=False``), many per-node
    ``gauge_fn`` registrations collapse onto one child and the rolled-up
    value is the total across nodes."""

    kind = "gauge"
    __slots__ = ("name", "labels", "fns")

    def __init__(self, name: str, labels: LabelItems,
                 fn: Callable[[], float]):
        self.name = name
        self.labels = labels
        self.fns = [fn]

    @property
    def value(self) -> float:
        return sum(fn() for fn in self.fns)

    def row(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Log₂-bucketed histogram: O(1) observe, ~60 buckets over any range.

    An observation ``v > 0`` lands in the bucket whose upper bound is the
    smallest power of two ≥ ``v`` (``frexp`` exponent); non-positive
    values land in the dedicated ``le=0`` bucket.  Bucket math never
    allocates, so histograms are safe on per-packet paths.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "count", "total")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.buckets: dict[int, int] = {}  # exponent -> count; -inf as None
        self.count = 0
        self.total: float = 0.0

    def observe(self, v: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += v
        exp = math.frexp(v)[1] if v > 0 else -1024  # le=0 sentinel
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @staticmethod
    def bound(exp: int) -> float:
        """Upper bound of the bucket with exponent ``exp``."""
        return 0.0 if exp == -1024 else float(2.0 ** exp)

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (upper bucket bound), NaN when empty."""
        if not self.count:
            return float("nan")
        need = q * self.count
        seen = 0
        for exp in sorted(self.buckets):
            seen += self.buckets[exp]
            if seen >= need:
                return self.bound(exp)
        return self.bound(max(self.buckets))

    def row(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {f"le={self.bound(e):g}": n
                        for e, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Factory and store for labeled instruments.

    ``enabled=False`` turns every factory into a no-op-instrument source,
    letting a whole simulation opt out without touching call sites.

    ``node_series`` (default True) keeps one child per ``node=`` label.
    Flip it to False *before nodes are constructed* and every per-node
    series collapses onto a single aggregate child — export and dashboard
    cost drops from O(n) series to O(metric names), the 100k-node mode.
    Per-node ``gauge_fn`` registrations sum (see :class:`CallbackGauge`).
    """

    def __init__(self, enabled: bool = True, node_series: bool = True):
        self.enabled = enabled
        self.node_series = node_series
        self._instruments: dict[tuple[str, str, LabelItems], Any] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # -- instrument factories -----------------------------------------
    def _get(self, cls, name: str, labels: dict) -> Any:
        if not self.node_series and "node" in labels:
            labels = {k: v for k, v in labels.items() if k != "node"}
        items: LabelItems = tuple(sorted(labels.items()))
        key = (cls.kind, name, items)
        inst = self._instruments.get(key)
        if inst is None or type(inst) is not cls:
            inst = cls(name, items)
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter child for ``(name, labels)`` (created on demand)."""
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge child for ``(name, labels)``."""
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The histogram child for ``(name, labels)``."""
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        return self._get(Histogram, name, labels)

    def gauge_fn(self, name: str, fn: Callable[[], float],
                 **labels: str) -> None:
        """Register a gauge computed by ``fn()`` at export time.
        Registering the same ``(name, labels)`` again *adds* the callback
        (values sum) — which is how per-node gauges roll up when
        ``node_series`` is off."""
        if not self.enabled:
            return
        if not self.node_series and "node" in labels:
            labels = {k: v for k, v in labels.items() if k != "node"}
        items: LabelItems = tuple(sorted(labels.items()))
        key = ("gauge", name, items)
        inst = self._instruments.get(key)
        if isinstance(inst, CallbackGauge):
            inst.fns.append(fn)
        else:
            self._instruments[key] = CallbackGauge(name, items, fn)

    def add_collector(self,
                      fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback that fills in metrics right before export
        (for state already counted elsewhere — zero hot-path cost)."""
        if self.enabled:
            self._collectors.append(fn)

    # -- export --------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """All series as sorted, JSON-ready rows."""
        for fn in self._collectors:
            fn(self)
        rows = []
        for (kind, name, items), inst in self._instruments.items():
            rows.append({"name": name, "type": kind,
                         "labels": dict(items), **inst.row()})
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return rows

    def find(self, name: str, **labels: str) -> Optional[Any]:
        """Look up an existing instrument without creating it."""
        items: LabelItems = tuple(sorted(labels.items()))
        for kind in ("counter", "gauge", "histogram"):
            inst = self._instruments.get((kind, name, items))
            if inst is not None:
                return inst
        return None

    def export_jsonl(self, path: str) -> str:
        """Write one JSON object per series; returns ``path``."""
        with open(path, "w") as fh:
            for row in self.snapshot():
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        return path

    def export_prom(self, path: str) -> str:
        """Write Prometheus text exposition (one ``# TYPE`` per family;
        histograms as cumulative ``_bucket``/``_sum``/``_count``).  The
        groundwork for running an IPOP-style daemon behind a scrape
        endpoint; returns ``path``."""
        rows = self.snapshot()
        typed: dict[str, str] = {}
        lines: list[str] = []
        for row in rows:
            name = _prom_name(row["name"])
            if name not in typed:
                typed[name] = row["type"]
                lines.append(f"# TYPE {name} {row['type']}")
            labels = _prom_labels(row["labels"])
            if row["type"] == "histogram":
                seen = 0
                for le, n in row["buckets"].items():
                    bound = le.split("=", 1)[1]
                    seen += n
                    lines.append(f"{name}_bucket"
                                 f"{_prom_labels(row['labels'], le=bound)}"
                                 f" {seen}")
                lines.append(f"{name}_bucket"
                             f"{_prom_labels(row['labels'], le='+Inf')}"
                             f" {row['count']}")
                lines.append(f"{name}_sum{labels} {_prom_num(row['sum'])}")
                lines.append(f"{name}_count{labels} {row['count']}")
            else:
                lines.append(f"{name}{labels} {_prom_num(row['value'])}")
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        return path

    def export_csv(self, path: str) -> str:
        """Write ``name,labels,type,value,count,sum`` rows."""
        with open(path, "w") as fh:
            fh.write("name,labels,type,value,count,sum\n")
            for row in self.snapshot():
                labels = ";".join(f"{k}={v}" for k, v in
                                  sorted(row["labels"].items()))
                value = row.get("value", "")
                fh.write(f"{row['name']},{labels},{row['type']},"
                         f"{value},{row.get('count', '')},"
                         f"{row.get('sum', '')}\n")
        return path


def merge_rows(rows: Iterable[dict], name: str) -> float:
    """Sum the ``value`` of every row called ``name`` (export analysis)."""
    return sum(r.get("value", 0) for r in rows if r["name"] == name)


# ---------------------------------------------------------------------------
# Prometheus exposition helpers
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Mangle a dotted series name into a Prometheus metric name."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(labels: dict, **extra: str) -> str:
    """Render a ``{k="v",...}`` label block ('' when empty)."""
    items = sorted({**labels, **extra}.items())
    if not items:
        return ""
    body = ",".join(f'{_prom_name(k)}="{v}"' for k, v in items)
    return "{" + body + "}"


def _prom_num(v: float) -> str:
    """Integers without a trailing ``.0``; everything else via repr."""
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v)


# ---------------------------------------------------------------------------
# streaming aggregation
# ---------------------------------------------------------------------------

class DeltaReader:
    """Incremental snapshot cursor over a :class:`MetricsRegistry`.

    Each :meth:`changed` call returns only the series whose value moved
    since this reader's previous call — a dashboard polling at 1 Hz
    serializes the handful of active series, not every series ever
    created.  Multiple readers keep independent cursors.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._last: dict[tuple, Any] = {}

    @staticmethod
    def _signature(inst: Any) -> Any:
        if inst.kind == "histogram":
            return (inst.count, inst.total)
        return inst.value

    def changed(self, run_collectors: bool = True) -> list[dict]:
        """Rows (snapshot format) for every series that changed."""
        if run_collectors:
            for fn in self.registry._collectors:
                fn(self.registry)
        rows = []
        for key, inst in list(self.registry._instruments.items()):
            sig = self._signature(inst)
            if self._last.get(key) == sig:
                continue
            self._last[key] = sig
            rows.append({"name": inst.name, "type": inst.kind,
                         "labels": dict(inst.labels), **inst.row()})
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return rows


class SectorRollup:
    """Address-ring sector aggregates: O(sectors) series regardless of n.

    The 160-bit ring is cut into ``sectors`` equal arcs; every node lands
    in arc ``addr * sectors >> 160``.  :meth:`refresh` walks the node
    population once (cheap direct reads of ``node.table`` /
    ``node.stats`` — read-only) and publishes per-sector gauges
    (``ring.sector.nodes``, ``.conns``, ``.route_sent``, ``.route_fwd``,
    ``.route_dlvd``, ``.route_drops``), so a 100k-node export or
    dashboard tick renders a fixed handful of rows.  Registered as an
    export-time collector by
    :meth:`repro.obs.hub.Observability.enable_rollup`.
    """

    def __init__(self, registry: MetricsRegistry, nodes_fn: Callable,
                 sectors: int = 16, space_bits: int = 160):
        if sectors <= 0:
            raise ValueError("sectors must be positive")
        self.registry = registry
        self.nodes_fn = nodes_fn
        self.sectors = sectors
        self.space_bits = space_bits
        self._width = max(2, len(str(sectors - 1)))
        self.rows: list[dict] = []

    def sector_of(self, addr: int) -> int:
        """Arc index of ring address ``addr``."""
        return (int(addr) * self.sectors) >> self.space_bits

    def label(self, sector: int) -> str:
        return f"{sector:0{self._width}d}"

    def refresh(self) -> list[dict]:
        """Recompute the per-sector aggregate rows (also cached on
        :attr:`rows` for dashboards)."""
        agg = [{"sector": self.label(i), "nodes": 0, "conns": 0,
                "route_sent": 0, "route_fwd": 0, "route_dlvd": 0,
                "route_drops": 0}
               for i in range(self.sectors)]
        for node in self.nodes_fn():
            row = agg[self.sector_of(node.addr)]
            row["nodes"] += 1
            row["conns"] += len(node.table)
            stats = node.stats
            row["route_sent"] += stats.get("sent", 0)
            row["route_fwd"] += stats.get("forwarded", 0)
            row["route_dlvd"] += stats.get("delivered", 0)
            row["route_drops"] += (stats.get("ttl_drop", 0)
                                   + stats.get("undeliverable", 0))
        self.rows = agg
        return agg

    def collect(self, m: MetricsRegistry) -> None:
        """Export-time collector: publish the rollup as gauges."""
        for row in self.refresh():
            sector = row["sector"]
            for field in ("nodes", "conns", "route_sent", "route_fwd",
                          "route_dlvd", "route_drops"):
                m.gauge(f"ring.sector.{field}", sector=sector).set(
                    row[field])
