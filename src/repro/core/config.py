"""Calibration constants for the WOW reproduction.

Everything the simulation cannot derive from first principles — WAN
latencies, PlanetLab load, user-level forwarding capacities, application
cost models — lives here, with the paper measurement each constant is
calibrated against.  EXPERIMENTS.md records the resulting paper-vs-measured
numbers; tests in ``tests/core`` pin the constants' *effects* (who wins, by
roughly what factor), not the raw values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.units import KB, MB, ms


@dataclass(frozen=True)
class HostSpec:
    """One physical host of Table I."""

    name: str
    site: str
    cpu_speed: float  # relative to the 2.4 GHz Xeon reference
    vm_monitor: str = "VMware GSX"
    host_os: str = "Linux"


@dataclass(frozen=True)
class SiteSpec:
    """One administrative domain of Figure 1."""

    name: str
    subnet: Optional[str]  # None = public site
    nat_hairpin: bool = True
    nat_open_port_only: bool = False  # the ncgrid single-open-UDP-port case
    lan_capacity: float = MB(1.66)
    lan_latency: float = ms(0.3)


@dataclass
class CalibrationConfig:
    """All tunables, grouped by the experiment they calibrate."""

    # ---- WAN latency (one-way seconds) --------------------------------
    #: UFL↔NWU one-way ≈ 17 ms → direct-shortcut ICMP RTT ≈ 38 ms (Fig. 4)
    wan_latency: dict[frozenset, float] = field(default_factory=lambda: {
        frozenset({"ufl", "nwu"}): ms(16.5),
        frozenset({"ufl", "lsu"}): ms(14.0),
        frozenset({"ufl", "ncgrid"}): ms(11.0),
        frozenset({"ufl", "vims"}): ms(13.0),
        frozenset({"ufl", "gru"}): ms(9.0),
        frozenset({"nwu", "lsu"}): ms(18.0),
    })
    default_wan_latency: float = ms(14.0)
    #: PlanetLab hosts are scattered; pairs default to the WAN default.
    #: Per-packet user-level processing on loaded PlanetLab routers — the
    #: source of the ~146 ms multi-hop RTT of Fig. 4's second regime.
    planetlab_proc_delay: float = ms(6.5)
    #: guest (VM) per-packet processing, incl. virtualization overhead
    guest_proc_delay: float = ms(1.1)
    #: baseline WAN loss probability per packet
    wan_loss: float = 0.0008
    #: extra per-packet loss at loaded PlanetLab hosts (applies per
    #: traversal end, so a 3-hop path sees ~4-6x this)
    planetlab_extra_loss: float = 0.004

    # ---- bandwidth (bytes/s) — calibrates Table II ----------------------
    #: user-level IPOP forwarding capacity of compute hosts
    compute_forward_capacity: float = MB(1.85)
    #: UFL campus LAN path capacity → ttcp UFL-UFL ≈ 1614 KB/s
    ufl_lan_capacity: float = MB(1.66)
    #: NWU campus LAN → post-migration SCP ≈ 1.83 MB/s (Fig. 6)
    nwu_lan_capacity: float = MB(1.76)
    #: UFL↔NWU WAN path → ttcp ≈ 1250 KB/s, SCP ≈ 1.36 MB/s
    ufl_nwu_wan_capacity: float = MB(1.285)
    default_wan_capacity: float = MB(1.30)
    #: PlanetLab router forwarding capacity: lognormal(median, sigma).
    #: min over ~2 intermediate routers → no-shortcut ttcp ≈ 84-85 KB/s.
    planetlab_capacity_median: float = KB(103.0)
    planetlab_capacity_sigma: float = 0.18
    #: protocol efficiency factors (goodput = path rate × efficiency),
    #: applied as on-wire byte inflation
    ttcp_efficiency: float = 0.95
    scp_efficiency: float = 0.99
    nfs_efficiency: float = 0.90

    # ---- NFS ----------------------------------------------------------------
    #: synchronous read/write window: rate cap = window / RTT
    nfs_window: float = KB(192.0)

    # ---- PBS / MEME — calibrates Fig. 8 ---------------------------------
    #: sequential RPC round trips the single-threaded head node spends per
    #: job across its lifecycle (dispatch, stage-in, polls, exit) — the
    #: "queuing delays in the PBS head node" the paper names as the
    #: no-shortcut throughput killer
    pbs_dispatch_rpc_rounds: int = 9
    #: head-node CPU per job (server bookkeeping, logging, NFS metadata)
    pbs_head_cpu_per_job: float = 0.80
    #: MEME cost model: ref-seconds of compute per job + lognormal noise
    meme_base_work: float = 19.5
    meme_work_sigma: float = 0.09
    meme_input_size: float = KB(240.0)
    meme_output_size: float = KB(120.0)
    #: machine virtualization overhead observed for MEME (§V-D1: 13%)
    virt_overhead: float = 0.13

    # ---- fastDNAml / PVM — calibrates Table III ---------------------------
    #: taxa in the paper's dataset [48]
    fastdnaml_taxa: int = 50
    #: per-tree-evaluation work at full taxa count (ref-seconds); work for
    #: round r scales as r/taxa; including the 13% virtualization overhead
    #: the sequential sum lands on node002's measured 22272 s
    fastdnaml_tree_work: float = 12.4
    fastdnaml_work_sigma: float = 0.05
    #: PVM task message sizes (tree description out, result back)
    pvm_task_size: float = KB(30.0)
    pvm_result_size: float = KB(20.0)
    #: master CPU per task dispatch/collect
    pvm_master_cpu: float = 0.004
    #: worker-side per-task overhead (pvm receive/unpack, result pack,
    #: scheduling on shared hosts), reference-CPU seconds
    pvm_task_overhead: float = 2.2
    #: per-round master CPU: best-tree selection
    pvm_round_overhead: float = 1.0
    #: best-tree broadcast message per worker, sent sequentially at each
    #: round barrier (fastDNAml synchronises "many times", §V-D2)
    pvm_broadcast_size: float = KB(15.0)

    # ---- VM migration — calibrates Figs. 6 & 7 ----------------------------
    #: memory image + copy-on-write disk logs shipped across the WAN
    vm_image_transfer_size: float = MB(600.0)
    #: suspend/resume fixed overhead (seconds)
    vm_suspend_overhead: float = 8.0
    vm_resume_overhead: float = 12.0

    # ---- RPC substrate -------------------------------------------------------
    rpc_timeout: float = 1.5
    rpc_retries: int = 10
    rpc_backoff: float = 1.3


#: hosts of Table I (site, relative CPU speed); node002's host doubles as
#: the PBS head in the application experiments
TABLE1_HOSTS: list[HostSpec] = (
    [HostSpec("ufl-h1", "ufl", 1.0, "VMware Workstation 5.5")]
    + [HostSpec(f"ufl-h{i}", "ufl", 1.0, "VMware GSX 2.5.1")
       for i in range(2, 16)]
    + [HostSpec(f"nwu-h{i}", "nwu", 0.83, "VMware GSX 2.5.1")
       for i in range(1, 14)]
    + [HostSpec(f"lsu-h{i}", "lsu", 1.33, "VMware GSX 3.0.0")
       for i in range(1, 3)]
    + [HostSpec("ncgrid-h1", "ncgrid", 0.54, "VMPlayer 1.0.0")]
    + [HostSpec("vims-h1", "vims", 1.33, "VMware GSX 3.2.0")]
    + [HostSpec("gru-h1", "gru", 0.493, "VMPlayer 1.0.0", host_os="Windows")]
)

#: the six firewalled domains of Figure 1 (+ the PlanetLab public site).
#: UFL's campus NAT drops hairpin traffic; NWU's translates it (§V-B).
SITE_SPECS: dict[str, SiteSpec] = {
    "ufl": SiteSpec("ufl", "10.1.", nat_hairpin=False,
                    lan_capacity=MB(1.66)),
    "nwu": SiteSpec("nwu", "10.2.", nat_hairpin=True,
                    lan_capacity=MB(1.80)),
    "lsu": SiteSpec("lsu", "10.3.", nat_hairpin=True),
    "ncgrid": SiteSpec("ncgrid", "10.4.", nat_hairpin=True,
                       nat_open_port_only=True),
    "vims": SiteSpec("vims", "10.5.", nat_hairpin=True),
    "gru": SiteSpec("gru", "10.6.", nat_hairpin=True),
}

#: Figure 1: "118 P2P router nodes which run on 20 PlanetLab hosts"
PLANETLAB_HOSTS = 20
PLANETLAB_ROUTERS = 118
COMPUTE_NODES = 33
