"""SSH/SCP file transfer (the Fig. 6 workload).

An SCP download is a session-setup RPC followed by a streaming transfer.
TCP (and SCP above it) tolerates the connectivity outage of a server
migration: the transfer stalls while the route is broken and resumes when
the server's IPOP node rejoins — "the SCP file transfer resumed from the
point it had stalled" (§V-C1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ipop.mapping import addr_for_ip
from repro.ipop.transfer import OverlayTransfer
from repro.middleware.rpc import RpcClient, RpcFailure, RpcServer
from repro.sim.process import WaitSignal

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import WowVm

SSH_PORT = 22


class ScpServer:
    """Serves files over SSH from one VM."""

    def __init__(self, vm: "WowVm"):
        self.vm = vm
        self.files: dict[str, float] = {}
        self.rpc = RpcServer(vm, SSH_PORT, self._handle,
                             cpu_per_request=0.02)  # key exchange etc.

    def put_file(self, name: str, size: float) -> None:
        """Make a file of ``size`` bytes downloadable as ``name``."""
        self.files[name] = size

    def _handle(self, method: str, body, src_ip: str):
        if method == "open":
            size = self.files.get(body)
            return {"exists": size is not None, "size": size}
        return {"error": "bad method"}

    def close(self) -> None:
        """Stop the SSH daemon."""
        self.rpc.close()


class ScpClient:
    """Downloads files; exposes the live transfer for instrumentation."""

    def __init__(self, vm: "WowVm", server_ip: str):
        self.vm = vm
        self.server_ip = server_ip
        self.server_addr = addr_for_ip(server_ip)
        self.rpc = RpcClient(vm)
        self.calib = vm.deployment.calib
        self.transfer: Optional[OverlayTransfer] = None

    def download(self, name: str):
        """Generator: fetch ``name``; returns the finished transfer (or
        None when the session could not be established)."""
        done = self.rpc.call(self.server_ip, SSH_PORT, "open", name,
                             retries=30)
        resp = yield WaitSignal(done)
        if isinstance(resp, RpcFailure) or not resp.get("exists"):
            return None
        self.transfer = OverlayTransfer(
            self.vm.deployment.broker, self.server_addr, self.vm.addr,
            resp["size"] / self.calib.scp_efficiency,
            name=f"scp.{self.vm.name}.{name}")
        yield WaitSignal(self.transfer.done)
        return self.transfer

    def local_size_log(self) -> list[tuple[float, float]]:
        """(time, bytes on client disk) samples — the y-axis of Fig. 6."""
        if self.transfer is None:
            return []
        eff = self.calib.scp_efficiency
        return [(t, b * eff) for t, b in self.transfer.progress_log()]

    def close(self) -> None:
        """Close the client session."""
        self.rpc.close()
