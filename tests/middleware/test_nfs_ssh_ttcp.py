"""NFS, SCP and ttcp over the virtual network."""

import pytest

from repro.middleware.nfs import NfsClient, NfsServer
from repro.middleware.ssh import ScpClient, ScpServer
from repro.middleware.ttcp import ttcp_measure
from repro.sim.process import Process
from repro.sim.units import KB, MB
from tests.conftest import make_mini_testbed


@pytest.fixture(scope="module")
def bed():
    return make_mini_testbed(seed=31)


class TestNfs:
    def test_read_existing_file(self, bed):
        sim, tb = bed
        head, worker = tb.vm(2), tb.vm(3)
        server = NfsServer(head)
        server.export("input.dat", KB(200))
        client = NfsClient(worker, head.virtual_ip)
        out = {}

        def proc():
            n = yield from client.read("input.dat")
            out["n"] = n

        Process(sim, proc())
        sim.run(until=sim.now + 120)
        assert out["n"] == KB(200)
        assert server.reads == 1
        server.close()
        client.close()

    def test_read_missing_file_returns_zero(self, bed):
        sim, tb = bed
        head, worker = tb.vm(2), tb.vm(4)
        server = NfsServer(head)
        client = NfsClient(worker, head.virtual_ip)
        out = {}

        def proc():
            n = yield from client.read("nope.dat")
            out["n"] = n

        Process(sim, proc())
        sim.run(until=sim.now + 60)
        assert out["n"] == 0.0
        server.close()
        client.close()

    def test_write_creates_file_on_server(self, bed):
        sim, tb = bed
        head, worker = tb.vm(2), tb.vm(5)
        server = NfsServer(head)
        client = NfsClient(worker, head.virtual_ip)
        out = {}

        def proc():
            n = yield from client.write("out.dat", KB(100))
            out["n"] = n

        Process(sim, proc())
        sim.run(until=sim.now + 120)
        assert out["n"] == KB(100)
        assert server.files["out.dat"] == KB(100)
        assert server.writes == 1
        server.close()
        client.close()


class TestScp:
    def test_download_completes(self, bed):
        sim, tb = bed
        server_vm, client_vm = tb.vm(6), tb.vm(18)
        scp_server = ScpServer(server_vm)
        scp_server.put_file("data.bin", MB(3.0))
        client = ScpClient(client_vm, server_vm.virtual_ip)
        proc = Process(sim, client.download("data.bin"))
        sim.run(until=sim.now + 400)
        assert proc.done.fired
        xfer = proc.done.value
        assert xfer is not None and xfer.completed
        log = client.local_size_log()
        assert log[-1][1] == pytest.approx(MB(3.0), rel=0.01)
        # monotone non-decreasing local file size
        sizes = [b for _, b in log]
        assert all(b2 >= b1 for b1, b2 in zip(sizes, sizes[1:]))
        scp_server.close()
        client.close()

    def test_download_missing_file(self, bed):
        sim, tb = bed
        server_vm, client_vm = tb.vm(7), tb.vm(19)
        scp_server = ScpServer(server_vm)
        client = ScpClient(client_vm, server_vm.virtual_ip)
        proc = Process(sim, client.download("ghost.bin"))
        sim.run(until=sim.now + 60)
        assert proc.done.fired and proc.done.value is None
        scp_server.close()
        client.close()


class TestTtcp:
    def test_goodput_reflects_efficiency(self, bed):
        sim, tb = bed
        a, b = tb.vm(8), tb.vm(9)  # both UFL: LAN path once shortcut is up
        out = {}

        def proc():
            rate = yield from ttcp_measure(a, b, MB(6.0))
            out["rate"] = rate

        Process(sim, proc())
        sim.run(until=sim.now + 600)
        assert out["rate"] > 0
        # goodput can never exceed the LAN capacity × efficiency
        cap = tb.deployment.calib.ufl_lan_capacity / 1024.0
        assert out["rate"] <= cap + 1.0
