"""Shape tests for Table II, Table III, Fig. 6, Fig. 7 and the join CDF."""

import numpy as np
import pytest

from repro.experiments import (
    fig6_scp_migration,
    fig7_pbs_migration,
    join_latency_cdf,
    table2_bandwidth,
    table3_fastdnaml,
)
from repro.sim.units import MB


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2_bandwidth.run(seed=3, scale=0.2, repetitions=1,
                                    sizes=(MB(8.0),))

    def test_shortcuts_win_by_an_order_of_magnitude(self, rows):
        by = {(r.pair, r.shortcuts): r for r in rows}
        for pair in ("UFL-UFL", "UFL-NWU"):
            on = by[(pair, True)].mean_KBps
            off = by[(pair, False)].mean_KBps
            assert on / off > 5.0, f"{pair}: {on:.0f} vs {off:.0f}"

    def test_absolute_magnitudes_near_paper(self, rows):
        by = {(r.pair, r.shortcuts): r for r in rows}
        assert 1300 <= by[("UFL-UFL", True)].mean_KBps <= 1900
        assert 1000 <= by[("UFL-NWU", True)].mean_KBps <= 1500
        assert 50 <= by[("UFL-UFL", False)].mean_KBps <= 160
        assert 50 <= by[("UFL-NWU", False)].mean_KBps <= 160

    def test_lan_beats_wan_with_shortcuts(self, rows):
        by = {(r.pair, r.shortcuts): r for r in rows}
        assert by[("UFL-UFL", True)].mean_KBps > \
            by[("UFL-NWU", True)].mean_KBps


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3_fastdnaml.run(seed=4, scale=0.2, taxa=20)

    def test_five_configurations(self, rows):
        assert len(rows) == 5

    def test_slow_home_node_roughly_half_speed(self, rows):
        by = {r.config: r for r in rows}
        ratio = by["sequential node034"].execution_time / \
            by["sequential node002"].execution_time
        assert ratio == pytest.approx(1.0 / 0.493, rel=0.05)

    def test_speedup_ordering_matches_paper(self, rows):
        """Paper ordering: 9.1x (15 nodes) < 11.0x (30, no SC) ≤ 13.6x
        (30, SC).  At this reduced overlay scale most overlay neighbours
        are fast compute nodes rather than loaded PlanetLab routers, so
        the no-shortcut penalty can vanish — the full-scale benchmark
        (benchmarks/test_bench_table3.py) checks the 30-node gap."""
        by = {r.config: r for r in rows}
        s15 = by["15 nodes, shortcuts"].speedup
        s30_off = by["30 nodes, no shortcuts"].speedup
        s30_on = by["30 nodes, shortcuts"].speedup
        assert s15 < s30_off
        assert s30_on >= 0.98 * s30_off

    def test_shortcut_benefit_not_negative(self, rows):
        by = {r.config: r for r in rows}
        gain = by["30 nodes, no shortcuts"].execution_time / \
            by["30 nodes, shortcuts"].execution_time
        assert 0.98 <= gain <= 1.7

    def test_speedups_are_sublinear(self, rows):
        by = {r.config: r for r in rows}
        assert by["15 nodes, shortcuts"].speedup < 15
        assert by["30 nodes, shortcuts"].speedup < 30


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_scp_migration.run(seed=5, scale=0.2,
                                      file_size=MB(150.0),
                                      transfer_size=MB(120.0),
                                      migrate_at=50.0)

    def test_transfer_survives_migration(self, result):
        assert result.completed

    def test_rate_improves_after_moving_to_lan(self, result):
        assert result.post_rate_MBps > result.pre_rate_MBps
        assert result.pre_rate_MBps == pytest.approx(1.36, rel=0.25)
        assert result.post_rate_MBps == pytest.approx(1.83, rel=0.25)

    def test_outage_covers_image_transfer(self, result):
        # 120 MB over a ~1.3 MB/s WAN plus suspend/resume overheads
        assert 80.0 <= result.outage <= 300.0

    def test_file_size_log_monotone(self, result):
        sizes = [b for _, b in result.size_log]
        assert all(b2 >= b1 for b1, b2 in zip(sizes, sizes[1:]))


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_pbs_migration.run(seed=6, scale=0.2, jobs_before=8,
                                      jobs_after=6, transfer_size=MB(60.0))

    def test_all_jobs_complete(self, result):
        assert result.completed_all

    def test_in_flight_job_stretched_but_successful(self, result):
        # the in-flight job absorbs most of the migration outage
        assert result.during_wall > result.pre_mean + 0.5 * result.outage

    def test_post_migration_jobs_faster_on_unloaded_host(self, result):
        # loaded UFL host (load 1.2, speed 1.0) vs unloaded NWU host (0.83)
        assert result.post_mean < result.pre_mean


class TestJoinCdf:
    def test_routability_and_direct_connection_claims(self):
        result = join_latency_cdf.run(seed=7, scale=0.2, trials=8,
                                      window=240.0)
        assert result.route_frac_within(10.0) >= 0.7
        assert result.direct_frac_within(200.0) >= 0.7
