"""CLI driver: regenerate every table and figure.

Usage::

    wow-experiments --list
    wow-experiments fig4 table2 --scale 0.5 --seed 1
    wow-experiments all --full        # paper-scale (slow)

``--full`` runs paper-scale parameters; the default is a reduced but
shape-preserving configuration suitable for a laptop.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    churn_recovery,
    fig4_join_profile,
    fig5_regimes,
    fig6_scp_migration,
    fig7_pbs_migration,
    fig8_meme_histogram,
    join_latency_cdf,
    scaling_10k,
    table2_bandwidth,
    table3_fastdnaml,
)
from repro.sim.units import MB

EXPERIMENTS = {
    "fig4": "ICMP RTT/loss profiles during node join (3 site pairs)",
    "fig5": "dropped-packet regimes during join",
    "table2": "ttcp bandwidth, shortcuts on/off",
    "fig6": "SCP transfer across server VM migration",
    "fig7": "PBS/MEME jobs across worker VM migration",
    "fig8": "PBS/MEME histograms + throughput, shortcuts on/off",
    "table3": "fastDNAml-PVM times and speedups",
    "joincdf": "join latency CDF (300-trial claim)",
    "churn": "self-repair time after killing 25% of the overlay (§V-E)",
    "scaling10k": "hop count vs c·log²n up to 10k nodes on the sharded "
                  "kernel (+churn slice)",
}


def _audit_verdict(name: str, violations: list) -> list:
    if violations:
        print(f"[audit] {name}: {len(violations)} invariant "
              f"violation(s)")
        for v in violations:
            print(f"[audit]   t={v.t:10.3f}  {v.kind:28s} "
                  f"{v.node:16s} {v.detail}")
    else:
        print(f"[audit] {name}: clean")
    return violations


def _run_one(name: str, full: bool, seed: int, scale: float,
             csv_dir: str | None = None,
             metrics_out: str | None = None,
             audit: bool = False,
             profile_kernel: bool = False) -> list:
    """Run one experiment; returns invariant violations (``--audit``)."""
    t0 = time.time()
    violations: list = []
    if name == "fig4":
        from repro.experiments.common import make_testbed
        setup = (make_testbed(seed=seed, scale=scale, audit=True)
                 if audit else None)
        profiles = fig4_join_profile.run(
            seed=seed, scale=scale, trials_per_case=10 if full else 3,
            count=400 if full else 300, setup=setup)
        fig4_join_profile.report(profiles, csv_dir=csv_dir)
        fig5_regimes.report(fig5_regimes.summarize(profiles))
        if setup is not None:
            violations = _audit_verdict(name, setup.finish_audit())
    elif name == "fig5":
        fig5_regimes.main(seed=seed, scale=scale,
                          trials=10 if full else 3)
    elif name == "table2":
        if full:
            rows = table2_bandwidth.run(seed=seed, scale=scale)
        else:
            rows = table2_bandwidth.run(seed=seed, scale=scale,
                                        repetitions=2,
                                        sizes=(MB(50.0), MB(8.0)))
        table2_bandwidth.report(rows)
    elif name == "fig6":
        if full:
            result = fig6_scp_migration.run(seed=seed, scale=scale)
        else:
            result = fig6_scp_migration.run(seed=seed, scale=scale,
                                            file_size=MB(180.0),
                                            transfer_size=MB(150.0),
                                            migrate_at=60.0)
        fig6_scp_migration.report(result, csv_dir=csv_dir)
    elif name == "fig7":
        result = fig7_pbs_migration.run(
            seed=seed, scale=scale,
            jobs_before=30 if full else 10,
            jobs_after=25 if full else 8,
            transfer_size=None if full else MB(80.0))
        fig7_pbs_migration.report(result)
    elif name == "fig8":
        results = fig8_meme_histogram.run(seed=seed, scale=scale,
                                          n_jobs=4000 if full else 600)
        fig8_meme_histogram.report(results, csv_dir=csv_dir)
    elif name == "table3":
        rows = table3_fastdnaml.run(seed=seed, scale=scale,
                                    taxa=None if full else 24)
        table3_fastdnaml.report(rows)
    elif name == "joincdf":
        result = join_latency_cdf.run(seed=seed, scale=scale,
                                      trials=300 if full else 30)
        join_latency_cdf.report(result)
    elif name == "churn":
        result = churn_recovery.run(seed=seed,
                                    n_nodes=40 if full else 20,
                                    kill_fraction=0.25,
                                    obs_dir=metrics_out,
                                    audit=audit,
                                    profile_kernel=profile_kernel)
        churn_recovery.report(result, csv_dir=csv_dir)
        if metrics_out:
            print(f"[obs] export bundle in {metrics_out}/")
        if result.profile:
            cats = sorted(result.profile["categories"].items(),
                          key=lambda kv: -kv[1]["time_s"])
            print("[profile] " + "  ".join(
                f"{cat}={agg['share'] * 100:.0f}%"
                for cat, agg in cats[:6]))
            if metrics_out:
                print(f"[profile] profile.json + profile.folded in "
                      f"{metrics_out}/ (flamegraph-ready)")
        if audit:
            violations = _audit_verdict(name, result.violations or [])
    elif name == "scaling10k":
        points = scaling_10k.run(
            sizes=(1000, 2000, 5000, 10000) if full else (1000, 2000),
            seed=seed, settle=45.0 if full else 30.0,
            sample_pairs=600 if full else 300,
            churn_fraction=0.01 if full else 0.0)
        scaling_10k.report(points)
        flat = [v for p in points for v in p.violations]
        violations = _audit_verdict(name, flat)
    else:
        raise SystemExit(f"unknown experiment {name!r}")
    print(f"[{name} finished in {time.time() - t0:.0f}s wall]")
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="wow-experiments",
        description="Regenerate the WOW paper's tables and figures.")
    parser.add_argument("names", nargs="*", default=["all"],
                        help="experiment ids (or 'all')")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale parameters (slow)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=None,
                        help="overlay scale (default 0.5, 1.0 with --full)")
    parser.add_argument("--csv-dir", default=None,
                        help="export raw series as CSV into this directory")
    parser.add_argument("--metrics-out", default=None, metavar="DIR",
                        help="export the observability bundle (metrics, "
                             "spans, flight-recorder events) into DIR; "
                             "currently wired into the churn experiment")
    parser.add_argument("--audit", action="store_true",
                        help="run the invariant auditor inline (fig4 and "
                             "churn); exit 1 if any violation is found")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top-20 "
                             "functions by cumulative time")
    parser.add_argument("--profile-kernel", action="store_true",
                        help="attach the in-kernel self-profiler "
                             "(read-only; currently wired into churn). "
                             "With --metrics-out, profile.json and "
                             "profile.folded land beside the bundle")
    args = parser.parse_args(argv)

    if args.list:
        for name, desc in EXPERIMENTS.items():
            print(f"{name:8s} {desc}")
        return 0
    names = list(EXPERIMENTS) if args.names in ([], ["all"]) else args.names
    scale = args.scale if args.scale is not None else \
        (1.0 if args.full else 0.5)

    all_violations: list = []

    def run_selected() -> None:
        for name in names:
            all_violations.extend(
                _run_one(name, args.full, args.seed, scale,
                         csv_dir=args.csv_dir,
                         metrics_out=args.metrics_out, audit=args.audit,
                         profile_kernel=args.profile_kernel))

    if args.profile:
        import cProfile
        import pstats
        profiler = cProfile.Profile()
        profiler.runcall(run_selected)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(20)
    else:
        run_selected()
    if all_violations:
        print(f"[audit] FAILED: {len(all_violations)} invariant "
              f"violation(s) across the selected experiments")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
