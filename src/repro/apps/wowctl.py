"""``python -m repro.apps.wowctl`` — control CLI for running WOW daemons.

The operator-side half of :mod:`repro.apps.daemon`, modeled on IPOP's
``gvpn_controller``: it attaches to one or more daemon control sockets
(newline-delimited JSON over a unix socket) and exposes

* ``status`` / ``peers`` / ``links`` / ``cache`` — inspection;
* ``census`` — sweep every daemon under a socket directory and render a
  one-line-per-node ring overview plus a successor-consistency audit;
* ``trim`` — drop idle shortcut links past a TTL (the IPOP
  ``BaseTopologyManager`` link-expiry policy, applied on demand);
* ``connect`` — request an on-demand shortcut to a virtual IP;
* ``ping`` — tunnel an ICMP echo through the overlay;
* ``shutdown`` — ask for a graceful drain.

Examples::

    wowctl --sock /tmp/wow/n0.sock status
    wowctl --dir /tmp/wow census
    wowctl --dir /tmp/wow trim --ttl 30
    wowctl --sock /tmp/wow/n3.sock ping 10.128.0.7
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import socket
import sys
from typing import Any, Optional

#: client-side receive cap per reply line
MAX_REPLY = 1 << 22


class ControlError(RuntimeError):
    """A daemon answered ``ok: false`` or the socket was unusable."""


def control_call(path: str, cmd: str, timeout: float = 10.0,
                 **params: Any) -> dict:
    """One synchronous request/reply against a daemon control socket."""
    request = json.dumps({"cmd": cmd, **params}).encode() + b"\n"
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        try:
            sock.connect(path)
            sock.sendall(request)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n") or sum(map(len, chunks)) > MAX_REPLY:
                    break
        except OSError as exc:
            raise ControlError(f"{path}: {exc}") from exc
    raw = b"".join(chunks)
    if not raw:
        raise ControlError(f"{path}: connection closed without a reply")
    reply = json.loads(raw)
    if not reply.get("ok"):
        raise ControlError(f"{path}: {reply.get('error', 'unknown error')}")
    return reply


def discover_sockets(directory: str) -> list[str]:
    """All daemon control sockets under ``directory`` (``*.sock``)."""
    return sorted(glob.glob(os.path.join(directory, "*.sock")))


# ---------------------------------------------------------------------------
# census: the swarm-wide ring view
# ---------------------------------------------------------------------------

def collect_census(sockets: list[str],
                   timeout: float = 10.0) -> tuple[list[dict], list[str]]:
    """Query ``status`` on every socket; returns (alive statuses, errors)."""
    statuses, errors = [], []
    for path in sockets:
        try:
            st = control_call(path, "status", timeout=timeout)
            st["_sock"] = path
            statuses.append(st)
        except (ControlError, ValueError) as exc:
            errors.append(str(exc))
    statuses.sort(key=lambda s: s["addr"])
    return statuses, errors


def audit_ring(statuses: list[dict]) -> list[str]:
    """Successor-consistency check over the live nodes.

    With the live address set sorted on the ring, every in-ring node's
    ``right`` neighbor must be the next live address (§III: structured
    near connections hold the ring together).  Returns human-readable
    violations; an empty list means the ring is consistent.
    """
    ring = [s for s in statuses if s.get("in_ring")]
    problems = [f"{s['vip']}: not in ring" for s in statuses
                if not s.get("in_ring")]
    if len(ring) < 2:
        return problems
    addrs = [s["addr"] for s in ring]
    for i, st in enumerate(ring):
        expect = addrs[(i + 1) % len(addrs)]
        if st.get("right") != expect:
            problems.append(
                f"{st['vip']}: right neighbor {str(st.get('right'))[:12]} "
                f"!= successor {expect[:12]}")
    return problems


def render_census(statuses: list[dict], errors: list[str],
                  problems: list[str]) -> str:
    lines = [f"{'vip':<14} {'addr':<14} {'ring':<5} {'conns':>5} "
             f"{'sent':>7} {'delivered':>9}  endpoint"]
    for st in statuses:
        stats = st.get("stats", {})
        lines.append(
            f"{st['vip']:<14} {st['addr'][:12] + '…':<14} "
            f"{'yes' if st.get('in_ring') else 'NO':<5} "
            f"{st.get('connections', 0):>5} "
            f"{stats.get('sent', 0):>7} {stats.get('delivered', 0):>9}  "
            f"{st.get('endpoint', '?')}")
    lines.append(f"{len(statuses)} alive, {len(errors)} unreachable")
    for err in errors:
        lines.append(f"  unreachable: {err}")
    if problems:
        lines.append("RING AUDIT: INCONSISTENT")
        lines.extend(f"  {p}" for p in problems)
    else:
        lines.append("RING AUDIT: consistent")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.wowctl",
        description=__doc__.split("\n")[0])
    parser.add_argument("--sock", metavar="PATH",
                        help="one daemon control socket")
    parser.add_argument("--dir", metavar="DIR",
                        help="directory of *.sock control sockets "
                             "(fan out to every daemon)")
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--json", action="store_true",
                        help="raw JSON output instead of rendered text")
    sub = parser.add_subparsers(dest="command", required=True)
    for simple in ("status", "peers", "links", "cache", "stats",
                   "save-cache", "shutdown"):
        sub.add_parser(simple)
    sub.add_parser("census")
    p_trim = sub.add_parser("trim")
    p_trim.add_argument("--ttl", type=float, default=30.0,
                        help="drop shortcut links idle >= TTL seconds")
    p_conn = sub.add_parser("connect")
    p_conn.add_argument("vip")
    p_ping = sub.add_parser("ping")
    p_ping.add_argument("vip")
    p_ping.add_argument("--ping-timeout", type=float, default=5.0)
    return parser


def _targets(args: argparse.Namespace) -> list[str]:
    if args.sock:
        return [args.sock]
    if args.dir:
        sockets = discover_sockets(args.dir)
        if not sockets:
            raise ControlError(f"no *.sock under {args.dir}")
        return sockets
    raise ControlError("need --sock PATH or --dir DIR")


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "census":
            statuses, errors = collect_census(_targets(args),
                                              timeout=args.timeout)
            problems = audit_ring(statuses)
            if args.json:
                print(json.dumps({"nodes": statuses, "errors": errors,
                                  "problems": problems}, indent=1))
            else:
                print(render_census(statuses, errors, problems))
            return 1 if (problems or errors) else 0

        params: dict[str, Any] = {}
        if args.command == "trim":
            params["ttl"] = args.ttl
        elif args.command in ("connect", "ping"):
            params["vip"] = args.vip
        if args.command == "ping":
            params["timeout"] = args.ping_timeout

        failures = 0
        for path in _targets(args):
            try:
                reply = control_call(path, args.command,
                                     timeout=args.timeout, **params)
            except ControlError as exc:
                print(f"{path}: ERROR {exc}", file=sys.stderr)
                failures += 1
                continue
            reply.pop("ok", None)
            if args.json:
                print(json.dumps({"sock": path, **reply}, indent=1))
            else:
                print(f"{path}: {json.dumps(reply)}")
            if args.command == "ping" and not reply.get("replied"):
                failures += 1
        return 1 if failures else 0
    except ControlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
