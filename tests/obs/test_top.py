"""obs.top dashboard: snapshot building, rendering, stats socket, CLI."""

import asyncio
import concurrent.futures
import io

from repro.obs import top
from repro.sim.engine import Simulator


def _churn_sim(n_nodes=8, warm=120.0, profile=False, rollup=True):
    from repro.brunet.config import BrunetConfig
    from repro.experiments.churn_recovery import _build_overlay

    sim = Simulator(seed=2, trace=False)
    if profile:
        sim.obs.enable_profiler()
    _internet, nodes, _routers = _build_overlay(sim, n_nodes,
                                                BrunetConfig())
    if rollup:
        sim.obs.enable_rollup(lambda: [n for n in nodes if n.active],
                              sectors=4)
    sim.run(until=sim.now + warm)
    return sim, nodes


# ---------------------------------------------------------------------------
# build_stats
# ---------------------------------------------------------------------------

def test_build_stats_shape_and_read_only():
    sim, nodes = _churn_sim(profile=True)
    events_before = sim.events_processed
    pending_before = sim.pending()
    stats = top.build_stats(sim)
    # read-only: no events fired, nothing scheduled or cancelled
    assert sim.events_processed == events_before
    assert sim.pending() == pending_before
    assert stats["t"] == sim.now
    assert stats["events"] == events_before
    assert stats["sums"]["brunet.route.delivered"] > 0
    assert stats["backlog"] == pending_before
    assert len(stats["sectors"]) == 4
    assert stats["profile"]["events"] > 0
    assert stats["nodes"]  # hot-node table populated
    assert len(stats["nodes"]) <= 8
    top_row = stats["nodes"][0]
    assert "node" in top_row and "brunet.route.sent" in top_row


def test_build_stats_is_json_safe():
    import json

    sim, _nodes = _churn_sim(n_nodes=6, warm=60.0, profile=True)
    encoded = json.dumps(top.build_stats(sim), sort_keys=True)
    decoded = json.loads(encoded)
    assert decoded["events"] == sim.events_processed


def test_build_stats_caps_hot_nodes():
    sim, _nodes = _churn_sim(n_nodes=10, warm=60.0, rollup=False)
    stats = top.build_stats(sim, top_nodes=3)
    assert len(stats["nodes"]) == 3
    assert "sectors" not in stats


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def test_render_stats_panels():
    sim, _nodes = _churn_sim(profile=True)
    cur = top.build_stats(sim)
    text = top.render_stats(cur)
    assert "wow obs.top" in text
    assert "kernel" in text and "backlog=" in text
    assert "routes" in text and "wire" in text
    assert "profile" in text
    assert "ring     4 sectors" in text
    assert "hot nodes" in text
    # width cap holds on every line
    assert all(len(line) <= 78 for line in text.splitlines())


def test_render_stats_rates_between_frames():
    sim, _nodes = _churn_sim(n_nodes=6, warm=60.0)
    t = top.Top(sim)
    first = t.render()
    assert "ev/sim-s" not in first  # no previous frame yet
    sim.run(until=sim.now + 60.0)
    second = t.render()
    assert "ev/sim-s" in second


def test_top_render_is_read_only():
    sim, _nodes = _churn_sim(n_nodes=6, warm=60.0)
    t = top.Top(sim)
    t.render()
    before = sim.events_processed
    t.render()
    assert sim.events_processed == before


# ---------------------------------------------------------------------------
# stats socket (RealtimeKernel)
# ---------------------------------------------------------------------------

def test_stats_socket_round_trip():
    async def scenario():
        from repro.transport.runtime import RealtimeKernel

        kernel = RealtimeKernel(seed=5)
        kernel.obs.enable_profiler()
        ip, port = await kernel.serve_stats()
        assert port != 0
        kernel.schedule(0.0, lambda: None)
        await asyncio.sleep(0.05)
        loop = asyncio.get_running_loop()
        with concurrent.futures.ThreadPoolExecutor(1) as pool:
            stats = await loop.run_in_executor(
                pool, top.fetch_stats, (ip, port))
        kernel.close_stats()
        kernel.close_stats()  # idempotent
        return stats, kernel.events_processed

    stats, events = asyncio.run(scenario())
    assert stats["events"] == events
    assert "sums" in stats
    # a frame renders from socket data alone
    assert "wow obs.top" in top.render_stats(stats)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_sim_mode_renders_frames():
    out = io.StringIO()
    rc = top.main(["--sim", "churn", "--nodes", "6", "--frames", "2",
                   "--interval", "0", "--sim-dt", "20", "--plain",
                   "--profile"], out=out)
    assert rc == 0
    text = out.getvalue()
    assert text.count("wow obs.top") == 2
    assert "profile" in text


def test_cli_connect_unreachable_fails_cleanly():
    out = io.StringIO()
    rc = top.main(["--connect", "127.0.0.1:1", "--frames", "1",
                   "--timeout", "0.2", "--plain"], out=out)
    assert rc == 1
