"""Deployment wiring and the paper testbed's Table I / Figure 1 shape."""

import pytest

from repro.core.config import (
    CalibrationConfig,
    COMPUTE_NODES,
    PLANETLAB_ROUTERS,
    SITE_SPECS,
    TABLE1_HOSTS,
)
from tests.conftest import make_mini_testbed


@pytest.fixture(scope="module")
def bed():
    return make_mini_testbed(seed=77)


class TestTable1:
    def test_33_compute_hosts_defined(self):
        assert len(TABLE1_HOSTS) == COMPUTE_NODES == 33

    def test_site_distribution_matches_figure1(self):
        by_site = {}
        for h in TABLE1_HOSTS:
            by_site[h.site] = by_site.get(h.site, 0) + 1
        assert by_site == {"ufl": 15, "nwu": 13, "lsu": 2, "ncgrid": 1,
                           "vims": 1, "gru": 1}

    def test_118_planetlab_routers_default(self):
        assert PLANETLAB_ROUTERS == 118

    def test_ufl_nat_has_no_hairpin_nwu_does(self):
        assert SITE_SPECS["ufl"].nat_hairpin is False
        assert SITE_SPECS["nwu"].nat_hairpin is True

    def test_speed_ratio_matches_table3_sequential_times(self):
        """node034's speed is set so 22272 / speed ≈ 45191 (Table III)."""
        gru = [h for h in TABLE1_HOSTS if h.site == "gru"][0]
        assert 22272 / gru.cpu_speed == pytest.approx(45191, rel=0.02)


class TestBuiltTestbed:
    def test_virtual_ips_are_paper_addresses(self, bed):
        sim, tb = bed
        assert tb.vm(2).virtual_ip == "172.16.1.2"
        assert tb.vm(34).virtual_ip == "172.16.1.34"
        assert len(tb.vms) == 33

    def test_all_vms_join_and_ring_consistent(self, bed):
        sim, tb = bed
        assert all(vm.node.in_ring for vm in tb.vms.values())
        assert tb.deployment.ring_consistent()

    def test_private_sites_are_nated(self, bed):
        sim, tb = bed
        dep = tb.deployment
        for name in ("ufl", "nwu", "lsu", "ncgrid", "vims", "gru"):
            assert dep.sites[name].is_private
        assert not dep.sites["planetlab"].is_private

    def test_gru_vm_behind_nat_chain(self, bed):
        sim, tb = bed
        vm = tb.vm(34)
        assert len(vm.host.nat_chain) == 2  # VMware NAT + home router

    def test_head_is_node002(self, bed):
        sim, tb = bed
        assert tb.head is tb.vm(2)
        assert len(tb.workers()) == 32

    def test_resolve_maps_every_vm(self, bed):
        sim, tb = bed
        for vm in tb.vms.values():
            assert tb.deployment.resolve(vm.addr) is vm.node

    def test_ncgrid_firewall_single_port(self, bed):
        sim, tb = bed
        fw = tb.deployment.sites["ncgrid"].firewall
        assert fw is not None
        assert fw.allows_inbound(14001)
        assert not fw.allows_inbound(14002)


class TestCalibrationConfig:
    def test_defaults_are_self_consistent(self):
        calib = CalibrationConfig()
        # UFL-NWU one-way latency → ~38 ms direct RTT incl. guest processing
        rtt = 2 * (calib.wan_latency[frozenset({"ufl", "nwu"})]
                   + 2 * calib.guest_proc_delay)
        assert 0.033 <= rtt <= 0.043
        assert calib.virt_overhead == pytest.approx(0.13)
        assert calib.planetlab_capacity_median < calib.ufl_lan_capacity


class TestProvisionPool:
    def test_pool_clones_image_and_joins(self):
        from repro.vm.image import VmImage
        from tests.conftest import make_mini_testbed
        sim, tb = make_mini_testbed(seed=111)
        dep = tb.deployment
        image = VmImage("condor-appliance").with_software("condor-6.8")
        vms = dep.provision_pool(image, dep.sites["lsu"], count=4)
        sim.run(until=sim.now + 120)
        assert len(vms) == 4
        assert all(vm.node.in_ring for vm in vms)
        assert all(vm.image.has_software("condor") for vm in vms)
        assert image.clone_count == 4
        # distinct virtual IPs on the pool subnet
        ips = {vm.virtual_ip for vm in vms}
        assert len(ips) == 4
