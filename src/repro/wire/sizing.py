"""Measured-size helpers: what the wire actually charges per message.

``BrunetConfig.wire_mode == "reference"`` reproduces the paper-constant
byte accounting (``size_ctm``/``size_link``/``size_ping`` plus the fixed
:data:`~repro.phys.packet.HEADER_BYTES`), keeping existing experiments
byte-identical.  The ``"measured"`` and ``"codec"`` modes charge
``len(encode(msg))`` plus :data:`~repro.wire.codec.UDP_IP_OVERHEAD` —
this module pre-computes the fixed overheads those modes imply so that
higher layers (bulk-flow accounting, tests) can reason about them
without encoding a packet per call.
"""

from __future__ import annotations

from functools import lru_cache

from repro.brunet.address import BrunetAddress
from repro.brunet.messages import IpEncap, RoutedPacket
from repro.ipop.ippacket import VirtualIpPacket
from repro.wire.codec import UDP_IP_OVERHEAD, encoded_size


@lru_cache(maxsize=1)
def encap_overhead() -> int:
    """Fixed per-packet overhead (bytes) of tunnelling one virtual-IP
    packet over the overlay: the encoded RoutedPacket + IpEncap +
    VirtualIpPacket framing around the virtual payload, plus the physical
    UDP/IP headers.  Excludes the via-list growth (one address per
    overlay hop), which is path-dependent.
    """
    addr = BrunetAddress(0)
    vip = VirtualIpPacket("10.128.0.2", "10.128.0.3", "icmp", 0, None, 0)
    pkt = RoutedPacket(src=addr, dest=addr, payload=IpEncap(vip, 0),
                       size=0, exact=True)
    return encoded_size(pkt) + UDP_IP_OVERHEAD


def reference_sizes(config) -> dict[str, int]:
    """The paper-constant per-message charges, for comparison tables."""
    return {
        "ctm": config.size_ctm,
        "link": config.size_link,
        "ping": config.size_ping,
        "routed_header": config.size_routed_header,
    }
