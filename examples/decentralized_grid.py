#!/usr/bin/env python
"""The paper's future-work direction (§VI): fully decentralized grids.

"The middleware that runs within the WOW for tasks such as scheduling …
is often based on client/server models and may not scale … In future work
we plan to investigate approaches for decentralized resource discovery,
scheduling and data management."

This example layers two extensions over the same overlay:

1. a **DHT on the ring** (keys live at the nearest node, replicated to
   both ring neighbours, soft state with TTL);
2. **decentralized resource discovery** — every worker advertises its CPU
   class into the DHT; any submitter finds and ranks workers with no
   central collector;

and contrasts it with a classic **Condor-style pool** (central
collector/negotiator) running on the same WOW.

Run:  python examples/decentralized_grid.py
"""

from repro.core import build_paper_testbed
from repro.middleware.condor import (
    CondorCollector,
    CondorJob,
    CondorSchedD,
    CondorStartD,
)
from repro.middleware.discovery import ResourceDiscovery, ResourcePublisher
from repro.sim import Simulator
from repro.sim.process import Process


def main() -> None:
    sim = Simulator(seed=21, trace=False)
    testbed = build_paper_testbed(sim, n_planetlab_routers=24,
                                  n_planetlab_hosts=6)
    testbed.run_warmup()
    dep = testbed.deployment

    # ---- decentralized: DHT discovery, no server anywhere -------------
    dep.enable_dht()
    worker_ids = (3, 4, 17, 18, 30, 31, 32, 33, 34)
    for i in worker_ids:
        ResourcePublisher(testbed.vm(i))
    finder = ResourceDiscovery(testbed.vm(2))
    sim.run(until=sim.now + 20)

    out = {}

    def discover():
        fast = yield from finder.find_and_rank("cpu:fast")
        any_ = yield from finder.find_and_rank("workers:any")
        out["fast"], out["any"] = fast, any_

    Process(sim, discover())
    sim.run(until=sim.now + 15)
    print("— decentralized discovery (DHT on the ring, no server) —")
    print(f"  {len(out['any'])} workers advertised; "
          f"fast-CPU class: {[t[0] for t in out['fast']]}")
    print("  (ads are soft state: a crashed worker vanishes from the "
          "index when its TTL lapses)\n")

    # ---- classic: Condor pool over the same overlay --------------------
    head = testbed.head
    collector = CondorCollector(head)
    schedd = CondorSchedD(head, collector)
    for i in worker_ids:
        CondorStartD(testbed.vm(i), head.virtual_ip)
    sim.run(until=sim.now + 10)

    n_jobs = 12
    done = schedd.expect(n_jobs)
    for k in range(n_jobs):
        schedd.submit(CondorJob(work_ref=6.0))
    sim.run(until=sim.now + 600)
    print("— Condor-style pool (central matchmaker) on the same WOW —")
    print(f"  {len(schedd.completed)}/{n_jobs} jobs matched and run")
    by_machine: dict[str, int] = {}
    for job in schedd.completed:
        by_machine[job.matched_machine] = \
            by_machine.get(job.matched_machine, 0) + 1
    ranked = sorted(by_machine.items(), key=lambda kv: -kv[1])
    print(f"  matchmaking ranked fast CPUs first: {ranked}")
    waits = [j.started_at - j.submitted_at for j in schedd.completed]
    print(f"  mean matchmaking latency: {sum(waits) / len(waits):.1f}s "
          f"(negotiation cycles over the virtual network)")


if __name__ == "__main__":
    main()
