"""Live-socket demo: two WOW nodes over real UDP on localhost.

Runs the *unmodified* :class:`~repro.brunet.node.BrunetNode` and
:class:`~repro.ipop.router.IpopRouter` over
:class:`~repro.transport.udp.UdpTransport` sockets, driven by the
asyncio-backed :class:`~repro.transport.runtime.RealtimeKernel` instead of
the discrete-event simulator.  The second node bootstraps off the first,
completes the CTM handshake and linking protocol (every message crossing
the OS as :mod:`repro.wire`-encoded datagrams), and then a tunnelled
virtual-IP ICMP echo makes the round trip.

Exit status 0 = bootstrap + linking + ping all succeeded within the
timeout; 1 = something did not converge.  CI runs this as the live-socket
smoke job::

    PYTHONPATH=src python -m repro.apps.udp_demo --timeout 60
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.brunet.config import BrunetConfig
from repro.brunet.node import BrunetNode
from repro.ipop.ippacket import IcmpEcho
from repro.ipop.mapping import addr_for_ip
from repro.ipop.router import IpopRouter
from repro.transport.runtime import RealtimeKernel
from repro.transport.udp import UdpTransport

VIRTUAL_IPS = ("10.128.0.2", "10.128.0.3")

#: protocol timers tightened for an interactive demo — the paper's
#: conservative constants would make a localhost join feel glacial
DEMO_CONFIG = BrunetConfig(
    link_resend_interval=0.5,
    overlord_interval=0.5,
    ping_interval=2.0,
    wire_mode="codec",
)


async def _wait_for(predicate, timeout: float, poll: float = 0.05) -> bool:
    """Poll ``predicate()`` until true or ``timeout`` seconds elapse."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(poll)
    return bool(predicate())


async def run(timeout: float = 60.0, verbose: bool = True,
              stats_port: int | None = None,
              hold: float = 0.0) -> int:
    """Bring up the two-node overlay and ping across it.  Returns the
    process exit code (0 = success).

    ``stats_port`` — when not None, expose the kernel's UDP stats socket
    on that port (0 = ephemeral) so ``python -m repro.obs.top --connect
    127.0.0.1:PORT`` can watch the run live; ``hold`` keeps the overlay
    up for that many extra seconds after the ping so there is something
    to watch.
    """

    def say(msg: str) -> None:
        if verbose:
            print(msg, flush=True)

    kernel = RealtimeKernel(seed=1)
    if stats_port is not None:
        ip, port = await kernel.serve_stats(port=stats_port)
        say(f"stats socket on {ip}:{port} — watch with "
            f"python -m repro.obs.top --connect {ip}:{port}")
    nodes: list[BrunetNode] = []
    routers: list[IpopRouter] = []
    transports: list[UdpTransport] = []
    for i, vip in enumerate(VIRTUAL_IPS):
        transport = await UdpTransport.create(kernel, "127.0.0.1", 0,
                                              name=f"n{i}")
        node = BrunetNode(kernel, None, addr_for_ip(vip),
                          DEMO_CONFIG, transport=transport, name=f"n{i}")
        transports.append(transport)
        nodes.append(node)
        routers.append(IpopRouter(node, vip))

    try:
        # node 0 seeds the overlay; node 1 bootstraps off its URI
        nodes[0].start([])
        nodes[1].start([transports[0].local_uri])
        say(f"n0 on {transports[0].local_endpoint}  "
            f"n1 on {transports[1].local_endpoint}")

        if not await _wait_for(lambda: all(n.in_ring for n in nodes),
                               timeout * 0.8):
            say("FAIL: nodes did not complete CTM + linking "
                f"(in_ring={[n.in_ring for n in nodes]})")
            return 1
        say(f"ring formed at t={kernel.now:.2f}s: "
            + ", ".join(f"{n.name}:{len(n.table)}conns" for n in nodes))

        replies: list[IcmpEcho] = []
        routers[0].bind("icmp", 0, lambda pkt: replies.append(pkt.payload))
        echo = IcmpEcho(seq=1, is_reply=False, sent_at=kernel.now)
        routers[0].send_ip(VIRTUAL_IPS[1], "icmp", 0, echo, 64)

        if not await _wait_for(lambda: replies, timeout * 0.2):
            say("FAIL: no tunnelled ICMP echo reply")
            return 1
        rtt = (kernel.now - replies[0].sent_at) * 1000.0
        say(f"virtual-IP ping {VIRTUAL_IPS[0]} -> {VIRTUAL_IPS[1]}: "
            f"seq={replies[0].seq} rtt={rtt:.1f}ms")

        metrics = kernel.obs.metrics
        for t in transports:
            say(f"{t.name}: sent={t.sent} received={t.received} "
                f"tx_bytes={metrics.counter('wire.tx_bytes', node=t.name).value:.0f} "
                f"decode_errors="
                f"{metrics.counter('wire.decode_error', node=t.name).value:.0f}")
        say("OK: bootstrap + CTM + linking + tunnelled ping over live UDP")
        if hold > 0:
            say(f"holding the overlay up for {hold:.0f}s (ctrl-c to stop)")
            await asyncio.sleep(hold)
        return 0
    finally:
        for n in nodes:
            if n.active:
                n.stop()
        for t in transports:
            t.close()
        kernel.close_stats()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="overall convergence budget in seconds")
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--stats-port", type=int, default=None,
                        metavar="PORT",
                        help="expose a UDP stats socket for obs.top "
                             "(0 = ephemeral port)")
    parser.add_argument("--hold", type=float, default=0.0,
                        help="keep the overlay up for N extra seconds "
                             "after the ping (for watching with obs.top)")
    args = parser.parse_args(argv)
    return asyncio.run(run(timeout=args.timeout, verbose=not args.quiet,
                           stats_port=args.stats_port, hold=args.hold))


if __name__ == "__main__":
    sys.exit(main())
