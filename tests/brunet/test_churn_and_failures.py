"""Failure injection: churn, NAT re-mapping, packet loss, bootstrap death."""

import numpy as np
import pytest

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.connection import ConnectionType
from repro.brunet.routing import overlay_hop_count
from repro.brunet.uri import Uri
from repro.phys import Internet, NatSpec, Site
from repro.sim import Simulator
from tests.conftest import build_overlay


def registry(nodes):
    live = {n.addr: n for n in nodes if n.active}
    return live.get


def test_ring_survives_serial_churn(sim, internet):
    """Kill and replace nodes one at a time; the ring must stay routable."""
    nodes, bootstrap = build_overlay(sim, internet, 10)
    site = internet.hosts_by_ip[bootstrap[0].endpoint.ip].site
    rng = sim.rng.stream("churn")
    for round_no in range(3):
        victim = nodes[3 + round_no]
        victim.stop()
        host = site.add_host(f"replacement{round_no}")
        fresh = BrunetNode(sim, host, random_address(rng), BrunetConfig(),
                           name=f"fresh{round_no}")
        fresh.start(bootstrap)
        nodes.append(fresh)
        sim.run(until=sim.now + 150)
    live = [n for n in nodes if n.active]
    reachable = 0
    for b in live[1:]:
        if overlay_hop_count(live[0], b.addr, registry(nodes)) is not None:
            reachable += 1
    assert reachable >= len(live) - 2  # allow one still-converging pair


def test_dead_peer_detected_by_keepalive(sim, internet):
    nodes, _ = build_overlay(sim, internet, 8)
    victim = nodes[4]
    peers_with_conn = [n for n in nodes
                       if n is not victim and n.table.get(victim.addr)]
    assert peers_with_conn
    victim.stop()
    # ping timeout: interval 15 s, ~3 retries → well under 180 s
    sim.run(until=sim.now + 180)
    for peer in peers_with_conn:
        assert peer.table.get(victim.addr) is None


def test_nat_remapping_survived(sim, internet):
    """§V-E: IPOP 'has been resilient to changes in NAT IP/port
    translations' — mappings are re-learned via keep-alive traffic."""
    priv = Site(internet, "home", subnet="10.44.", nat_spec=NatSpec.cone())
    pub = Site(internet, "pub")
    nodes, bootstrap = build_overlay(sim, internet, 6, site=pub)
    host = priv.add_host("natted")
    node = BrunetNode(sim, host, random_address(sim.rng.stream("n")),
                      BrunetConfig(), name="natted")
    node.start(bootstrap)
    sim.run(until=sim.now + 60)
    assert node.in_ring
    # the ISP re-translates: every existing mapping dies
    priv.nat.expire_all()
    sim.run(until=sim.now + 240)
    assert node.in_ring
    live = {n.addr: n for n in nodes}
    live[node.addr] = node
    assert overlay_hop_count(nodes[0], node.addr, live.get) is not None


def test_overlay_functions_under_loss(sim, internet):
    """5% loss everywhere: joins take longer but the ring still forms."""
    internet.latency.default_loss = 0.05
    nodes, _ = build_overlay(sim, internet, 8, stagger=8.0)
    sim.run(until=sim.now + 240)
    assert sum(1 for n in nodes if n.in_ring) >= 7


def test_bootstrap_death_does_not_kill_existing_ring(sim, internet):
    nodes, bootstrap = build_overlay(sim, internet, 8)
    nodes[0].stop()  # the seed node everyone bootstrapped from
    sim.run(until=sim.now + 200)
    live = [n for n in nodes[1:]]
    ok = 0
    for b in live[1:]:
        if overlay_hop_count(live[0], b.addr, registry(nodes)) is not None:
            ok += 1
    assert ok >= len(live) - 2


def test_concurrent_joins_converge(sim, internet):
    """Many nodes joining simultaneously (no stagger) still form a ring."""
    site = Site(internet, "burst")
    cfg = BrunetConfig()
    rng = sim.rng.stream("burst")
    seed_host = site.add_host("seed")
    seed = BrunetNode(sim, seed_host, random_address(rng), cfg, name="seed")
    seed.start([])
    boot = [Uri.udp(seed_host.ip, seed.port)]
    burst = []
    for i in range(9):
        host = site.add_host(f"b{i}")
        node = BrunetNode(sim, host, random_address(rng), cfg, name=f"b{i}")
        node.start(boot)
        burst.append(node)
    sim.run(until=sim.now + 300)
    nodes = [seed] + burst
    assert all(n.in_ring for n in nodes)
    reg = {n.addr: n for n in nodes}
    hops = [overlay_hop_count(a, b.addr, reg.get)
            for a in nodes for b in nodes if a is not b]
    assert all(h is not None for h in hops)


def test_nat_mapping_expiry_mid_session_relearns_uri(sim, internet):
    """§V-E: a NAT whose mapping timeout drops below the keep-alive period
    expires every mapping between pings.  Each outbound keep-alive then
    opens a *new* public port; peers must track the moving endpoint
    (ping-request source), the natted node must re-learn its public URI
    from ping-reply ``observed_uri``, and traffic must keep flowing."""
    from repro.fault import FaultSchedule

    priv = Site(internet, "home", subnet="10.77.", nat_spec=NatSpec.cone())
    pub = Site(internet, "pub")
    nodes, bootstrap = build_overlay(sim, internet, 6, site=pub)
    host = priv.add_host("natted")
    node = BrunetNode(sim, host, random_address(sim.rng.stream("n")),
                      BrunetConfig(), name="natted")
    node.start(bootstrap)
    sim.run(until=sim.now + 60)
    assert node.in_ring
    uris_before = set(str(u) for u in node.uris.advertised())
    port_before = priv.nat._next_port

    # mapping lifetime (2 s) now far below the ping interval (15 s)
    faults = FaultSchedule(sim, internet)
    t_fault = sim.now + 1.0
    faults.nat_mapping_timeout(t_fault, priv.nat, 2.0)
    sim.run(until=sim.now + 300)

    # the NAT kept churning through fresh public ports ...
    assert priv.nat._next_port > port_before + 3
    # ... the node re-learned new public URIs from ping replies ...
    learned = [(t, d) for t, d in sim.tracer.get("uri.learned")
               if d.get("node") == node.name and t > t_fault]
    assert learned
    assert set(str(u) for u in node.uris.advertised()) != uris_before
    # ... and the overlay session survived: still in the ring, still
    # reachable from the public side
    assert node.in_ring
    live = {n.addr: n for n in nodes if n.active}
    live[node.addr] = node
    assert overlay_hop_count(nodes[0], node.addr, live.get) is not None
    assert overlay_hop_count(node, nodes[0].addr, live.get) is not None
