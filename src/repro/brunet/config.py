"""Protocol timing and sizing constants for the Brunet layer.

The defaults follow the paper where it is explicit (the linking footnote:
"conservative" retry constants → ~150 s before a bad URI is abandoned) and
are otherwise calibrated so the testbed reproduces the paper's measured
regimes (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BrunetConfig:
    """Tunable protocol parameters; one instance is shared per deployment."""

    # -- linking handshake (§IV-B) --------------------------------------
    #: first link-request resend interval, seconds
    link_resend_interval: float = 5.0
    #: multiplicative back-off between resends
    link_backoff_factor: float = 2.0
    #: resends per URI before giving up on it.  With 5 s base and factor 2
    #: a dead URI is abandoned after 5+10+20+40+80 = 155 s — the "delays of
    #: the order of 150 seconds" of the paper's footnote 2.
    link_max_retries: int = 5
    #: deterministic race resolution by address comparison (True) vs the
    #: paper's abort-and-exponential-back-off (False)
    race_tiebreak_by_address: bool = True
    #: base back-off when both ends abort a linking race (seconds)
    race_backoff_base: float = 2.0

    # -- keep-alive (§IV-B "ping messages") ------------------------------
    ping_interval: float = 15.0
    ping_retries: int = 3
    #: route periodic work (keep-alive sweeps, overlord ticks) through the
    #: kernel's shared :class:`~repro.sim.engine.SweepWheel` instead of one
    #: independent timer per node/overlord.  Off by default — batching
    #: quantizes timing to ``sweep_granularity`` and therefore changes
    #: same-seed trajectories; the 10k-node scaling runs turn it on, where
    #: n independent keep-alive timers would dominate the event kernel.
    batch_timers: bool = False
    #: sweep-wheel bucket width (seconds) when ``batch_timers`` is on
    sweep_granularity: float = 1.0
    #: a connection with this many consecutive unanswered pings is dropped
    ping_timeout: float = 4.0
    #: hard liveness backstop: drop a connection when *nothing* has been
    #: heard from the peer for this long, regardless of ping accounting
    #: (0 disables).  Healthy peers always answer pings well inside this.
    liveness_timeout: float = 90.0

    # -- overlords (§IV-A, §IV-C, §IV-E) ---------------------------------
    #: structured-near connections maintained on each side of the ring
    near_per_side: int = 1
    #: structured-far connection target count (k of §IV-A)
    far_count: int = 4
    #: overlord maintenance tick, seconds
    overlord_interval: float = 5.0
    #: shortcut score service rate c (packets/s) and threshold
    shortcut_service_rate: float = 0.4
    shortcut_threshold: float = 14.0
    #: shortcut score tick, seconds
    shortcut_tick: float = 1.0
    #: master switch for the ShortcutConnectionOverlord — the paper's
    #: experiments compare shortcuts enabled vs disabled
    shortcuts_enabled: bool = True
    #: practical cap on simultaneous shortcut connections per node (§IV-E:
    #: maintenance overhead "poses a practical limit")
    shortcut_max: int = 8
    #: drop a shortcut whose score has been zero this long (0 = never)
    shortcut_idle_drop: float = 0.0

    # -- message sizes on the wire (bytes) --------------------------------
    size_ctm: int = 320
    size_link: int = 240
    size_ping: int = 96
    size_routed_header: int = 48

    #: how messages cross the (simulated) wire — see
    #: :class:`repro.transport.sim.SimTransport`:
    #: ``"reference"`` charges the paper-constant sizes above (default,
    #: byte-identical to the pre-codec simulator); ``"measured"`` charges
    #: the encoded length from :mod:`repro.wire` plus real UDP/IP headers;
    #: ``"codec"`` additionally moves actual encoded bytes and decodes on
    #: delivery (full sim-vs-live equivalence)
    wire_mode: str = "reference"

    #: overlay-packet TTL (max greedy hops)
    ttl: int = 32

    #: default UDP port IPOP/Brunet binds on every node
    default_port: int = 14001

    def uri_give_up_time(self) -> float:
        """Seconds spent on one dead URI before moving to the next."""
        total = 0.0
        interval = self.link_resend_interval
        for _ in range(self.link_max_retries):
            total += interval
            interval *= self.link_backoff_factor
        return total


DEFAULT_CONFIG = BrunetConfig()
