"""Binary codec: tag + length-prefixed fields for every protocol message.

Frame layout (outermost message only)::

    byte 0      WIRE_VERSION
    byte 1      type tag
    bytes 2..   fields, fixed order per type

Nested values (a ``RoutedPacket``'s payload, a ``Forward``'s inner
message, an ``IpEncap``'s virtual packet) repeat the ``tag + fields``
shape without the version byte.  All integers are big-endian; strings are
UTF-8 with a u16 length prefix; lists carry a u16 count; optional fields
carry a presence byte.  Addresses are the raw 20 bytes of the 160-bit
ring position.  Trace context is encoded as the ``(trace_id, parent)``
id pair — the receiving side reconstructs a fresh
:class:`~repro.obs.spans.TraceRef`, so causal traces survive the byte
boundary without object references.

Payloads the protocol does not define (DHT records, middleware RPC
bodies, vTCP segments) fall back to an ``OPAQUE`` frame carrying a pickle
of the object.  That keeps the codec total over everything the overlay
can legitimately carry; like the paper's deployment, peers on a link are
assumed to be inside one trust domain (do not decode frames from
untrusted networks).

Every decode failure — truncation, bad version, unknown tag, malformed
UTF-8/pickle, trailing garbage — raises :class:`DecodeError` and nothing
else.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Callable, Optional

from repro.brunet.address import BrunetAddress
from repro.brunet.messages import (
    CloseMessage,
    CtmReply,
    CtmRequest,
    Forward,
    IpEncap,
    LinkError,
    LinkReply,
    LinkRequest,
    PingReply,
    PingRequest,
    RoutedPacket,
)
from repro.brunet.uri import Uri
from repro.ipop.ippacket import IcmpEcho, VirtualIpPacket
from repro.obs.spans import TraceRef
from repro.phys.endpoints import Endpoint

#: wire format version; bumped on any incompatible layout change
WIRE_VERSION = 1

#: physical framing charged per datagram in measured/codec accounting:
#: IPv4 header (20) + UDP header (8).  The overlay's own framing is part
#: of the encoded message, so it is never charged twice.
UDP_IP_OVERHEAD = 28

ADDRESS_BYTES = 20

# type tags (stable on the wire — append, never renumber)
T_LINK_REQUEST = 1
T_LINK_REPLY = 2
T_LINK_ERROR = 3
T_CLOSE = 4
T_PING_REQUEST = 5
T_PING_REPLY = 6
T_CTM_REQUEST = 7
T_CTM_REPLY = 8
T_IP_ENCAP = 9
T_FORWARD = 10
T_ROUTED = 11
T_VIRTUAL_IP = 12
T_ICMP_ECHO = 13
T_NONE = 14
T_STR = 15
T_BYTES = 16
T_OPAQUE = 17

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")


class DecodeError(ValueError):
    """A buffer could not be decoded into a protocol message."""


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------

class _Writer:
    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, v: int) -> None:
        self.buf += _U8.pack(v)

    def u16(self, v: int) -> None:
        self.buf += _U16.pack(v)

    def u32(self, v: int) -> None:
        self.buf += _U32.pack(v)

    def u64(self, v: int) -> None:
        self.buf += _U64.pack(v)

    def f64(self, v: float) -> None:
        self.buf += _F64.pack(v)

    def boolean(self, v: bool) -> None:
        self.buf += _U8.pack(1 if v else 0)

    def string(self, v: str) -> None:
        raw = v.encode("utf-8")
        self.u16(len(raw))
        self.buf += raw

    def blob(self, v: bytes) -> None:
        self.u32(len(v))
        self.buf += v

    def address(self, v: int) -> None:
        self.buf += int(v).to_bytes(ADDRESS_BYTES, "big")

    def uri(self, v: Uri) -> None:
        self.string(v.transport)
        self.string(v.endpoint.ip)
        self.u16(v.endpoint.port)

    def uris(self, v: list) -> None:
        self.u16(len(v))
        for u in v:
            self.uri(u)

    def addresses(self, v: list) -> None:
        self.u16(len(v))
        for a in v:
            self.address(a)

    def opt_address(self, v: Optional[int]) -> None:
        if v is None:
            self.u8(0)
        else:
            self.u8(1)
            self.address(v)

    def opt_string(self, v: Optional[str]) -> None:
        if v is None:
            self.u8(0)
        else:
            self.u8(1)
            self.string(v)

    def trace(self, ref: Optional[TraceRef]) -> None:
        if ref is None:
            self.u8(0)
        else:
            self.u8(1)
            self.u64(ref.trace_id)
            self.u64(ref.parent)


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------

class _Reader:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise DecodeError(
                f"truncated buffer: need {n} bytes at offset {self.pos}, "
                f"have {len(self.buf) - self.pos}")
        chunk = self.buf[self.pos:end]
        self.pos = end
        return chunk

    @property
    def remaining(self) -> int:
        return len(self.buf) - self.pos

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def boolean(self) -> bool:
        return self.u8() != 0

    def string(self) -> str:
        raw = self.take(self.u16())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"malformed UTF-8 string: {exc}") from None

    def blob(self) -> bytes:
        return bytes(self.take(self.u32()))

    def address(self) -> BrunetAddress:
        return BrunetAddress(int.from_bytes(self.take(ADDRESS_BYTES), "big"))

    def uri(self) -> Uri:
        transport = self.string()
        ip = self.string()
        port = self.u16()
        return Uri(transport, Endpoint(ip, port))

    def uris(self) -> list:
        return [self.uri() for _ in range(self.u16())]

    def addresses(self) -> list:
        return [self.address() for _ in range(self.u16())]

    def opt_address(self) -> Optional[BrunetAddress]:
        return self.address() if self.u8() else None

    def opt_string(self) -> Optional[str]:
        return self.string() if self.u8() else None

    def trace(self) -> Optional[TraceRef]:
        if not self.u8():
            return None
        trace_id = self.u64()
        parent = self.u64()
        return TraceRef(trace_id, parent)


# ---------------------------------------------------------------------------
# per-type encoders/decoders
# ---------------------------------------------------------------------------

def _enc_link_request(w: _Writer, m: LinkRequest) -> None:
    w.u64(m.token)
    w.address(m.sender_addr)
    w.uris(m.sender_uris)
    w.string(m.conn_type)
    w.trace(m.trace)


def _dec_link_request(r: _Reader) -> LinkRequest:
    return LinkRequest(r.u64(), r.address(), r.uris(), r.string(), r.trace())


def _enc_link_reply(w: _Writer, m: LinkReply) -> None:
    w.u64(m.token)
    w.address(m.sender_addr)
    w.uris(m.sender_uris)
    w.uri(m.observed_uri)
    w.string(m.conn_type)
    w.trace(m.trace)


def _dec_link_reply(r: _Reader) -> LinkReply:
    return LinkReply(r.u64(), r.address(), r.uris(), r.uri(), r.string(),
                     r.trace())


def _enc_link_error(w: _Writer, m: LinkError) -> None:
    w.u64(m.token)
    w.address(m.sender_addr)
    w.string(m.reason)


def _dec_link_error(r: _Reader) -> LinkError:
    return LinkError(r.u64(), r.address(), r.string())


def _enc_close(w: _Writer, m: CloseMessage) -> None:
    w.address(m.sender_addr)
    w.string(m.reason)


def _dec_close(r: _Reader) -> CloseMessage:
    return CloseMessage(r.address(), r.string())


def _enc_ping_request(w: _Writer, m: PingRequest) -> None:
    w.u64(m.token)
    w.address(m.sender_addr)


def _dec_ping_request(r: _Reader) -> PingRequest:
    return PingRequest(r.u64(), r.address())


def _enc_ping_reply(w: _Writer, m: PingReply) -> None:
    w.u64(m.token)
    w.address(m.sender_addr)
    w.uri(m.observed_uri)
    w.boolean(m.known)


def _dec_ping_reply(r: _Reader) -> PingReply:
    return PingReply(r.u64(), r.address(), r.uri(), r.boolean())


def _enc_ctm_request(w: _Writer, m: CtmRequest) -> None:
    w.u64(m.token)
    w.address(m.initiator_addr)
    w.uris(m.initiator_uris)
    w.string(m.conn_type)
    w.opt_address(m.reply_via)
    w.u16(m.fanout)


def _dec_ctm_request(r: _Reader) -> CtmRequest:
    return CtmRequest(r.u64(), r.address(), r.uris(), r.string(),
                      r.opt_address(), r.u16())


def _enc_ctm_reply(w: _Writer, m: CtmReply) -> None:
    w.u64(m.token)
    w.address(m.responder_addr)
    w.uris(m.responder_uris)
    w.string(m.conn_type)


def _dec_ctm_reply(r: _Reader) -> CtmReply:
    return CtmReply(r.u64(), r.address(), r.uris(), r.string())


def _enc_ip_encap(w: _Writer, m: IpEncap) -> None:
    _enc_any(w, m.payload)
    w.u32(m.size)


def _dec_ip_encap(r: _Reader) -> IpEncap:
    return IpEncap(_dec_any(r), r.u32())


def _enc_forward(w: _Writer, m: Forward) -> None:
    w.address(m.final_dest)
    _enc_any(w, m.inner)
    w.u32(m.size)


def _dec_forward(r: _Reader) -> Forward:
    return Forward(r.address(), _dec_any(r), r.u32())


def _enc_routed(w: _Writer, m: RoutedPacket) -> None:
    w.address(m.src)
    w.address(m.dest)
    _enc_any(w, m.payload)
    w.u32(m.size)
    w.boolean(m.exact)
    w.boolean(m.exclude_dest_link)
    w.opt_string(m.approach)
    w.u16(m.ttl)
    w.u16(m.hops)
    w.addresses(m.via)
    w.trace(m.trace)


def _dec_routed(r: _Reader) -> RoutedPacket:
    return RoutedPacket(
        src=r.address(), dest=r.address(), payload=_dec_any(r),
        size=r.u32(), exact=r.boolean(), exclude_dest_link=r.boolean(),
        approach=r.opt_string(), ttl=r.u16(), hops=r.u16(),
        via=r.addresses(), trace=r.trace())


def _enc_virtual_ip(w: _Writer, m: VirtualIpPacket) -> None:
    w.string(m.src_ip)
    w.string(m.dst_ip)
    w.string(m.proto)
    w.u32(m.port)
    _enc_any(w, m.payload)
    w.u32(m.size)


def _dec_virtual_ip(r: _Reader) -> VirtualIpPacket:
    return VirtualIpPacket(r.string(), r.string(), r.string(), r.u32(),
                           _dec_any(r), r.u32())


def _enc_icmp_echo(w: _Writer, m: IcmpEcho) -> None:
    w.u32(m.seq)
    w.boolean(m.is_reply)
    w.f64(m.sent_at)
    w.u32(m.data_size)


def _dec_icmp_echo(r: _Reader) -> IcmpEcho:
    return IcmpEcho(r.u32(), r.boolean(), r.f64(), r.u32())


_ENCODERS: dict[type, tuple[int, Callable[[_Writer, Any], None]]] = {
    LinkRequest: (T_LINK_REQUEST, _enc_link_request),
    LinkReply: (T_LINK_REPLY, _enc_link_reply),
    LinkError: (T_LINK_ERROR, _enc_link_error),
    CloseMessage: (T_CLOSE, _enc_close),
    PingRequest: (T_PING_REQUEST, _enc_ping_request),
    PingReply: (T_PING_REPLY, _enc_ping_reply),
    CtmRequest: (T_CTM_REQUEST, _enc_ctm_request),
    CtmReply: (T_CTM_REPLY, _enc_ctm_reply),
    IpEncap: (T_IP_ENCAP, _enc_ip_encap),
    Forward: (T_FORWARD, _enc_forward),
    RoutedPacket: (T_ROUTED, _enc_routed),
    VirtualIpPacket: (T_VIRTUAL_IP, _enc_virtual_ip),
    IcmpEcho: (T_ICMP_ECHO, _enc_icmp_echo),
}

_DECODERS: dict[int, Callable[[_Reader], Any]] = {
    T_LINK_REQUEST: _dec_link_request,
    T_LINK_REPLY: _dec_link_reply,
    T_LINK_ERROR: _dec_link_error,
    T_CLOSE: _dec_close,
    T_PING_REQUEST: _dec_ping_request,
    T_PING_REPLY: _dec_ping_reply,
    T_CTM_REQUEST: _dec_ctm_request,
    T_CTM_REPLY: _dec_ctm_reply,
    T_IP_ENCAP: _dec_ip_encap,
    T_FORWARD: _dec_forward,
    T_ROUTED: _dec_routed,
    T_VIRTUAL_IP: _dec_virtual_ip,
    T_ICMP_ECHO: _dec_icmp_echo,
    T_NONE: lambda r: None,
    T_STR: lambda r: r.string(),
    T_BYTES: lambda r: r.blob(),
}


def _dec_opaque(r: _Reader) -> Any:
    raw = r.blob()
    try:
        return pickle.loads(raw)
    except Exception as exc:  # any unpickling failure is a decode failure
        raise DecodeError(f"malformed opaque payload: {exc!r}") from None


_DECODERS[T_OPAQUE] = _dec_opaque


def _enc_any(w: _Writer, value: Any) -> None:
    entry = _ENCODERS.get(type(value))
    if entry is not None:
        tag, enc = entry
        w.u8(tag)
        enc(w, value)
    elif value is None:
        w.u8(T_NONE)
    elif type(value) is str:
        w.u8(T_STR)
        w.string(value)
    elif type(value) is bytes:
        w.u8(T_BYTES)
        w.blob(value)
    else:
        w.u8(T_OPAQUE)
        w.blob(pickle.dumps(value, protocol=4))


def _dec_any(r: _Reader) -> Any:
    tag = r.u8()
    dec = _DECODERS.get(tag)
    if dec is None:
        raise DecodeError(f"unknown type tag {tag}")
    return dec(r)


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def encode(msg: Any) -> bytes:
    """Serialize one protocol message into a versioned frame."""
    w = _Writer()
    w.u8(WIRE_VERSION)
    _enc_any(w, msg)
    return bytes(w.buf)


def decode(buf: bytes) -> Any:
    """Inverse of :func:`encode`; raises :class:`DecodeError` on any
    malformed input (truncation, bad version, unknown tag, trailing
    bytes)."""
    if not isinstance(buf, (bytes, bytearray, memoryview)):
        raise DecodeError(f"not a buffer: {type(buf).__name__}")
    r = _Reader(bytes(buf))
    version = r.u8()
    if version != WIRE_VERSION:
        raise DecodeError(f"unsupported wire version {version} "
                          f"(expected {WIRE_VERSION})")
    try:
        msg = _dec_any(r)
    except DecodeError:
        raise
    except (struct.error, OverflowError, ValueError) as exc:
        raise DecodeError(f"malformed frame: {exc}") from None
    if r.remaining:
        raise DecodeError(f"{r.remaining} trailing bytes after message")
    return msg


def encoded_size(msg: Any) -> int:
    """Measured on-wire size of ``msg`` in bytes (excluding UDP/IP)."""
    return len(encode(msg))
