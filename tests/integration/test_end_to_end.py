"""End-to-end scenarios across all layers."""

import numpy as np
import pytest

from repro.apps.meme import MemeWorkload
from repro.brunet.connection import ConnectionType
from repro.ipop import Pinger
from repro.middleware import NfsServer, PbsMom, PbsServer
from repro.middleware.ssh import ScpClient, ScpServer
from repro.sim.process import Process
from repro.sim.units import KB, MB
from tests.conftest import make_mini_testbed


@pytest.fixture(scope="module")
def bed():
    return make_mini_testbed(seed=99)


def test_every_vm_can_ping_every_site(bed):
    """Full-mesh virtual-IP connectivity across all six domains."""
    sim, tb = bed
    src = tb.vm(2)
    # one representative per site
    targets = [tb.vm(17), tb.vm(30), tb.vm(32), tb.vm(33), tb.vm(34)]
    for target in targets:
        pinger = Pinger(src.router)
        done = pinger.run(target.virtual_ip, count=5, interval=0.5)
        sim.run(until=sim.now + 8)
        stats = done.value
        pinger.close()
        assert stats.loss_fraction() < 0.9, target.name
        assert stats.mean_rtt() < 1.0


def test_batch_jobs_plus_file_transfer_coexist(bed):
    """PBS jobs and an SCP transfer share the overlay concurrently."""
    sim, tb = bed
    head = tb.head
    nfs = NfsServer(head)
    nfs.export("meme.in", KB(100))
    pbs = PbsServer(head)
    for w in tb.workers()[:6]:
        PbsMom(w, head.virtual_ip)
        pbs.register_worker(w.virtual_ip)
    wl = MemeWorkload(tb.deployment.calib, sim.rng.stream("e2e"))
    done = pbs.expect(10)
    for i in range(10):
        sim.schedule(i * 2.0, pbs.qsub, wl.job(i))

    scp_server = ScpServer(tb.vm(30))
    scp_server.put_file("big.tar", MB(5.0))
    client = ScpClient(tb.vm(33), tb.vm(30).virtual_ip)
    dl = Process(sim, client.download("big.tar"))

    sim.run(until=sim.now + 1200)
    assert pbs.completed == 10
    assert dl.done.fired and dl.done.value is not None
    assert dl.done.value.completed
    nfs.close()
    scp_server.close()
    client.close()


def test_migration_during_batch_load(bed):
    """Migrate a worker while the cluster is busy; everything completes."""
    sim, tb = bed
    head = tb.head
    nfs = NfsServer(head)
    nfs.export("meme.in", KB(100))
    try:
        pbs = PbsServer(head)
    except ValueError:
        pytest.skip("head ports busy from previous test fixture reuse")
    workers = tb.workers()[6:12]
    for w in workers:
        PbsMom(w, head.virtual_ip)
        pbs.register_worker(w.virtual_ip)
    wl = MemeWorkload(tb.deployment.calib, sim.rng.stream("e2e2"))
    total = 12
    pbs.expect(total)
    for i in range(total):
        sim.schedule(i * 3.0, pbs.qsub, wl.job(i))
    sim.schedule(20.0, lambda: workers[0].migrate(
        tb.deployment.sites["lsu"], transfer_size=MB(30.0)))
    sim.run(until=sim.now + 3000)
    assert pbs.completed >= total - 1  # at most the in-flight job retried
    assert workers[0].host.site.name == "lsu"


def test_deterministic_replay():
    """Same seed → byte-identical event streams and results."""
    outcomes = []
    for _ in range(2):
        sim, tb = make_mini_testbed(seed=1234)
        joined = sorted((vm.name, round(vm.node.joined_at, 9))
                        for vm in tb.vms.values() if vm.node.joined_at)
        outcomes.append((sim.events_processed, sim.now, tuple(joined)))
    assert outcomes[0] == outcomes[1]


def test_different_seeds_differ():
    sim1, tb1 = make_mini_testbed(seed=1)
    sim2, tb2 = make_mini_testbed(seed=2)
    assert sim1.events_processed != sim2.events_processed
