"""ICMP echo ("ping") over the virtual network.

:class:`Pinger` replays the paper's join experiment workload: N echo
requests at fixed intervals, recording per-sequence RTT or loss — the raw
data behind Figs. 4 and 5.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.ipop.ippacket import IcmpEcho, VirtualIpPacket
from repro.sim.process import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.ipop.router import IpopRouter


class PingStats:
    """Per-sequence outcome of one ping run."""

    def __init__(self, count: int):
        self.count = count
        self.rtt = np.full(count, np.nan)  # seconds; NaN = lost

    def record(self, seq: int, rtt: float) -> None:
        if 0 <= seq < self.count:
            self.rtt[seq] = rtt

    @property
    def replied(self) -> np.ndarray:
        return ~np.isnan(self.rtt)

    def loss_fraction(self, lo: int = 0, hi: Optional[int] = None) -> float:
        window = self.rtt[lo:hi if hi is not None else self.count]
        if window.size == 0:
            return 0.0
        return float(np.isnan(window).mean())

    def mean_rtt(self, lo: int = 0, hi: Optional[int] = None) -> float:
        window = self.rtt[lo:hi if hi is not None else self.count]
        good = window[~np.isnan(window)]
        return float(good.mean()) if good.size else math.nan

    def first_reply_seq(self) -> Optional[int]:
        idx = np.flatnonzero(self.replied)
        return int(idx[0]) if idx.size else None


class Pinger:
    """Sends ICMP echoes from one IPOP router and gathers replies."""

    def __init__(self, router: "IpopRouter"):
        self.router = router
        self.sim = router.node.sim
        router.bind("icmp", 0, self._on_reply)
        self._stats: Optional[PingStats] = None
        self._done = None
        self._target: Optional[str] = None
        self._timer = None

    def run(self, dst_ip: str, count: int = 400,
            interval: float = 1.0) -> Signal:
        """Start a ping run; returns a latched Signal fired with
        :class:`PingStats` one interval after the last request."""
        if self._stats is not None and self._done is not None \
                and not self._done.fired:
            raise RuntimeError("ping run already in progress")
        self._stats = PingStats(count)
        self._target = dst_ip
        self._done = Signal(self.sim, "ping.done", latch=True)
        self._send(0, count, interval)
        return self._done

    def _send(self, seq: int, count: int, interval: float) -> None:
        if seq >= count:
            # allow the final reply one more interval to arrive
            self._timer = self.sim.schedule(interval, self._finish)
            return
        echo = IcmpEcho(seq, False, self.sim.now)
        self.router.send_ip(self._target, "icmp", 0, echo, echo.data_size + 8)
        self._timer = self.sim.schedule(interval, self._send, seq + 1, count,
                                        interval)

    def _finish(self) -> None:
        self._done.fire(self._stats)

    def _on_reply(self, pkt: VirtualIpPacket) -> None:
        echo = pkt.payload
        if not isinstance(echo, IcmpEcho) or not echo.is_reply:
            return
        if self._stats is not None:
            self._stats.record(echo.seq, self.sim.now - echo.sent_at)

    def close(self) -> None:
        """Stop the run and release the ICMP binding."""
        if self._timer is not None:
            self._timer.cancel()
        self.router.unbind("icmp", 0)
