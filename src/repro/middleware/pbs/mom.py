"""PBS MOM: the per-worker execution daemon.

Runs one job at a time: stage input from the head's NFS export, execute on
the guest CPU (surviving suspension — Fig. 7's migrated worker), write
output back over NFS, then report completion to the server.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.middleware.nfs import NfsClient
from repro.middleware.pbs.job import JobSpec
from repro.middleware.pbs.server import PBS_MOM_PORT, PBS_SERVER_PORT
from repro.middleware.rpc import RpcClient, RpcServer
from repro.sim.process import Process, WaitSignal

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import WowVm


class PbsMom:
    """Worker-side daemon on one VM."""

    def __init__(self, vm: "WowVm", server_ip: str):
        self.vm = vm
        self.sim = vm.sim
        self.server_ip = server_ip
        self.rpc_server = RpcServer(vm, PBS_MOM_PORT, self._handle,
                                    cpu_per_request=0.002)
        self.rpc = RpcClient(vm)
        self.nfs = NfsClient(vm, server_ip)
        self.jobs_run = 0
        self.current_job_id = None

    def register(self) -> None:
        """Announce this worker to the head node."""
        self.rpc.call(self.server_ip, PBS_SERVER_PORT, "register",
                      self.vm.virtual_ip)

    def _handle(self, method: str, body, src_ip: str):
        if method == "handshake":
            return {"ok": True, "round": body}
        if method == "run":
            job_id = body["job_id"]
            if job_id != self.current_job_id:
                self.current_job_id = job_id
                Process(self.sim, self._run_job(body["spec"], job_id),
                        name=f"mom.{self.vm.name}.job{job_id}")
            return {"started": job_id}
        return {"error": "bad method"}

    def _run_job(self, spec: JobSpec, job_id: int):
        start = self.sim.now
        yield from self.nfs.read(spec.name + ".in", spec.input_size)
        yield from self.vm.compute(spec.work_ref)
        yield from self.nfs.write(f"{spec.name}.out.{job_id}",
                                  spec.output_size)
        self.jobs_run += 1
        done = self.rpc.call(self.server_ip, PBS_SERVER_PORT, "job_done",
                             {"job_id": job_id, "start_time": start},
                             retries=30)
        yield WaitSignal(done)
