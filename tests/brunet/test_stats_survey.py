"""OverlaySurvey unit tests: empty, singleton and small live overlays."""

import pytest

from repro.brunet.stats import OverlaySurvey, survey
from repro.core.wow import Deployment
from repro.sim.engine import Simulator


def _deployment_with_routers(n):
    sim = Simulator(seed=7, trace=False)
    dep = Deployment(sim)
    site = dep.add_public_site("pub")
    for i in range(n):
        host = site.add_host(f"h{i}")
        dep.add_router_node(host, seed=(i == 0), name=f"n{i}")
        sim.run(until=sim.now + 3.0)
    sim.run(until=sim.now + 120.0)
    return sim, dep


def test_survey_empty_overlay():
    sim = Simulator(seed=1, trace=False)
    dep = Deployment(sim)
    out = survey(dep)
    assert out.n_nodes == 0
    assert out.ring_consistent  # vacuously
    assert out.connections_by_type == {}
    assert out.degree_mean == 0.0
    assert out.degree_max == 0
    assert out.hop_counts == []
    assert out.unreachable_pairs == 0
    # percentile helpers must not choke on the empty route sample
    assert out.hop_mean == 0.0
    assert out.hop_p95 == 0.0
    lines = out.summary_lines()
    assert any("ring consistent: True" in line for line in lines)
    assert not any(line.startswith("routes:") for line in lines)


def test_survey_singleton_overlay():
    sim = Simulator(seed=2, trace=False)
    dep = Deployment(sim)
    site = dep.add_public_site("pub")
    dep.add_router_node(site.add_host("solo"), seed=True, name="solo")
    sim.run(until=sim.now + 30.0)
    out = survey(dep)
    assert out.n_nodes == 1
    assert out.ring_consistent
    # a lone node has nobody to link to and no routes to sample
    assert out.degree_max == 0
    assert out.hop_counts == []
    assert out.hop_mean == 0.0 and out.hop_p95 == 0.0


def test_survey_small_overlay_degrees_and_hops():
    sim, dep = _deployment_with_routers(6)
    out = survey(dep)
    assert out.n_nodes == 6
    assert out.ring_consistent
    assert out.unreachable_pairs == 0
    # every node holds at least its two ring neighbours
    assert out.degree_mean >= 2.0
    assert out.degree_max >= out.degree_mean
    assert out.connections_by_type["structured.near"] > 0
    # routes were sampled; percentiles are well-formed and ordered
    assert out.hop_counts
    assert all(h >= 1 for h in out.hop_counts)
    assert 1.0 <= out.hop_mean <= out.hop_p95 <= max(out.hop_counts)
    assert any(line.startswith("routes:") for line in out.summary_lines())


def test_survey_without_routes_skips_sampling():
    sim, dep = _deployment_with_routers(3)
    out = survey(dep, include_routes=False)
    assert out.hop_counts == [] and out.unreachable_pairs == 0
    assert out.degree_mean > 0


def test_hop_percentiles_direct():
    out = OverlaySurvey(n_nodes=4, ring_consistent=True,
                        hop_counts=[1, 1, 2, 3])
    assert out.hop_mean == pytest.approx(1.75)
    assert out.hop_p95 == pytest.approx(2.85)
