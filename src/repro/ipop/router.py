"""IpopRouter: the user-level tap + encapsulation engine on one WOW node.

Picks virtual-IP packets from the guest, feeds the shortcut overlord's
traffic inspection, wraps them in :class:`IpEncap` and routes them over the
overlay; inbound packets are dispatched to bound protocol/port handlers.
ICMP echo is answered in the router itself (the "kernel" of the guest).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.brunet.messages import IpEncap
from repro.ipop.ippacket import IcmpEcho, VirtualIpPacket
from repro.ipop.mapping import addr_for_ip
from repro.obs.spans import TraceRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.brunet.node import BrunetNode

Handler = Callable[[VirtualIpPacket], None]

IP_HEADER = 28  # IP + UDP header bytes on the virtual wire


class IpopRouter:
    """Virtual NIC + IP-over-P2P encapsulation for one node."""

    def __init__(self, node: "BrunetNode", virtual_ip: str):
        self.node = node
        self.virtual_ip = virtual_ip
        self.addr = addr_for_ip(virtual_ip)
        if node.addr != self.addr:
            raise ValueError(
                f"node address {node.addr!r} does not own {virtual_ip}")
        self._handlers: dict[tuple[str, int], Handler] = {}
        self.packets_out = 0
        self.packets_in = 0
        metrics = node.sim.obs.metrics
        self._m_encap_pkts = metrics.counter("ipop.encap_packets",
                                             node=node.name)
        self._m_encap_bytes = metrics.counter("ipop.encap_bytes",
                                              node=node.name)
        self._m_decap_pkts = metrics.counter("ipop.decap_packets",
                                             node=node.name)
        self._m_decap_bytes = metrics.counter("ipop.decap_bytes",
                                              node=node.name)
        node.ip_handler = self._on_encap

    # -- guest-facing API -------------------------------------------------
    def bind(self, proto: str, port: int, handler: Handler) -> None:
        """Register a guest handler for inbound (proto, port) packets."""
        key = (proto, port)
        if key in self._handlers:
            raise ValueError(f"{self.virtual_ip}: {proto}/{port} already bound")
        self._handlers[key] = handler

    def unbind(self, proto: str, port: int) -> None:
        """Remove a guest handler (idempotent)."""
        self._handlers.pop((proto, port), None)

    def virtual_header(self, proto: str) -> int:
        """Header bytes charged on the *virtual* wire for one packet.

        Reference mode charges IP+UDP (28 B) on everything — the
        historical behaviour, kept for golden determinism.  Measured
        modes fix a double count: VTCP segments already include their
        TCP/IP header bytes in ``Segment.size`` (40 B), so charging an
        IP+UDP header on top counted the IP header twice.
        """
        if self.node.config.wire_mode == "reference":
            return IP_HEADER
        return 0 if proto == "tcp" else IP_HEADER

    def send_ip(self, dst_ip: str, proto: str, port: int, payload: Any,
                size: int) -> None:
        """Send one virtual-IP packet (fire and forget, like real IP)."""
        pkt = VirtualIpPacket(self.virtual_ip, dst_ip, proto, port, payload,
                              size + self.virtual_header(proto))
        self._transmit(pkt)

    def _transmit(self, pkt: VirtualIpPacket) -> None:
        node = self.node
        dest_addr = addr_for_ip(pkt.dst_ip)
        self.packets_out += 1
        self._m_encap_pkts.inc()
        self._m_encap_bytes.inc(pkt.size)
        ref = None
        spans = node.sim.obs.spans
        if spans.enabled:
            tid = spans.maybe_trace("ip")
            if tid is not None:
                now = node.sim.now
                root = spans.start(
                    "ip.packet", node=node.name, t=now, trace_id=tid,
                    src=pkt.src_ip, dst=pkt.dst_ip, proto=pkt.proto,
                    port=pkt.port, size=pkt.size)
                ref = TraceRef(tid, root)
                spans.hop(ref, "ipop.encap", node.name, now,
                          dest=str(dest_addr))
        node.inspect_traffic(dest_addr)
        node.send_routed(dest_addr, IpEncap(pkt, pkt.size),
                         size=pkt.size, exact=True, trace=ref)

    # -- overlay-facing ----------------------------------------------------
    def _on_encap(self, encap: IpEncap) -> None:
        pkt = encap.payload
        if not isinstance(pkt, VirtualIpPacket) or pkt.dst_ip != self.virtual_ip:
            self.node.stats["ip_misdelivered"] += 1
            return
        self.packets_in += 1
        self._m_decap_pkts.inc()
        self._m_decap_bytes.inc(pkt.size)
        if pkt.proto == "icmp":
            self._on_icmp(pkt)
            return
        handler = self._handlers.get((pkt.proto, pkt.port))
        if handler is not None:
            handler(pkt)
        else:
            self.node.stats["ip_port_unreachable"] += 1

    def _on_icmp(self, pkt: VirtualIpPacket) -> None:
        echo = pkt.payload
        if isinstance(echo, IcmpEcho) and not echo.is_reply:
            reply = IcmpEcho(echo.seq, True, echo.sent_at, echo.data_size)
            self.send_ip(pkt.src_ip, "icmp", 0, reply, echo.data_size + 8)
        else:
            handler = self._handlers.get(("icmp", 0))
            if handler is not None:
                handler(pkt)

    def detach(self) -> None:
        """Disconnect from the node (used on IPOP restart/migration)."""
        if self.node.ip_handler is self._on_encap:
            self.node.ip_handler = None

    def attach(self, node: "BrunetNode") -> None:
        """Re-attach the tap to a fresh node instance (same address)."""
        if node.addr != self.addr:
            raise ValueError("re-attach requires the same ring address")
        self.node = node
        node.ip_handler = self._on_encap
