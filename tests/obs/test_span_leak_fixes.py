"""Trace spans must always reach a closed state.

Two leak regressions pinned here:

* codec-mode receive dropped malformed frames *after* the physical
  transit span had adopted the trace — the trace's root then stayed open
  forever with no record of where the packet went;
* ``Linker.cancel_all`` (node shutdown) deregistered in-flight attempts
  without closing their ``link.attempt`` spans.
"""

from __future__ import annotations

import pytest

from repro.brunet.address import BrunetAddress
from repro.brunet.config import BrunetConfig
from repro.brunet.connection import ConnectionType
from repro.brunet.node import BrunetNode
from repro.brunet.uri import Uri
from repro.obs.spans import TraceRef
from repro.phys.endpoints import Endpoint
from repro.phys.packet import Datagram
from repro.phys.topology import Site
from repro.transport.sim import SimTransport


def test_codec_decode_drop_closes_the_trace(sim, internet):
    host = Site(internet, "pub").add_host("rx")
    spans = sim.obs.enable_spans()
    transport = SimTransport(sim, host, 7000, wire_mode="codec")
    transport.open(lambda msg, src, size: None)

    tid = spans.maybe_trace("ip")
    root = spans.start("ip.packet", "tx", sim.now, tid)
    dgram = Datagram(Endpoint("9.9.9.9", 1), Endpoint(host.ip, 7000),
                     b"\xffnot-a-frame", size=11)
    dgram.trace = TraceRef(tid, root)
    transport._on_codec_dgram(dgram)

    root_span = next(s for s in spans.spans if s.id == root)
    assert root_span.t1 is not None, "decode drop must close the trace"
    assert root_span.attrs and root_span.attrs.get("decode_error") is True
    drop = next(s for s in spans.spans if s.name == "wire.decode_drop")
    assert drop.node == transport.name
    assert sim.obs.metrics.counter("wire.decode_error",
                                   node=transport.name).value == 1


def test_codec_decode_drop_without_trace_only_counts(sim, internet):
    host = Site(internet, "pub").add_host("rx2")
    sim.obs.enable_spans()
    transport = SimTransport(sim, host, 7000, wire_mode="codec")
    transport.open(lambda msg, src, size: None)
    dgram = Datagram(Endpoint("9.9.9.9", 1), Endpoint(host.ip, 7000),
                     b"\xffnope", size=5)
    transport._on_codec_dgram(dgram)  # must not raise
    assert sim.obs.metrics.counter("wire.decode_error",
                                   node=transport.name).value == 1


def test_cancel_all_closes_link_attempt_spans(sim, internet):
    host = Site(internet, "pub").add_host("ln")
    spans = sim.obs.enable_spans()
    node = BrunetNode(sim, host, BrunetAddress(12345), BrunetConfig(),
                      name="leaky")
    node.start([])

    tid = spans.maybe_trace("ctm")
    root = spans.start("ctm.handshake", node.name, sim.now, tid)
    attempt = node.linker.start(
        BrunetAddress(99999), [Uri.udp("203.0.113.7", 4000)],
        ConnectionType.STRUCTURED_NEAR, trace=TraceRef(tid, root))
    assert attempt is not None and attempt.span is not None
    sim.run(until=sim.now + 2.0)  # request in flight, far from giving up

    node.stop()
    open_attempts = [s for s in spans.spans
                     if s.name == "link.attempt" and s.t1 is None]
    assert open_attempts == [], \
        "shutdown must not leave link.attempt spans open"
    ended = next(s for s in spans.spans if s.name == "link.attempt")
    assert ended.attrs.get("status") == "cancelled"
