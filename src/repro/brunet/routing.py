"""Greedy ring routing helpers.

The forwarding decision itself lives in :meth:`BrunetNode.route`; this
module holds the pure decision function (unit-testable without nodes) and
:func:`trace_route`, which previews the overlay path a packet would take —
the fluid-flow layer maps these paths onto bandwidth resources.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Callable, Optional

from repro.brunet.address import BrunetAddress, directed_distance, ring_distance
from repro.brunet.connection import Connection
from repro.brunet.table import ConnectionTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.brunet.node import BrunetNode


def _metric(addr: BrunetAddress, dest: BrunetAddress,
            approach: Optional[str]) -> int:
    """Greedy distance.  With an ``approach`` side the packet must stay on
    (and converge from) that side of ``dest``: "right" = clockwise of dest,
    "left" = counter-clockwise."""
    if approach == "right":
        return directed_distance(dest, addr)
    if approach == "left":
        return directed_distance(addr, dest)
    return ring_distance(addr, dest)


#: cache-miss sentinel (None is a valid cached decision)
_MISS = object()

#: wholesale-clear threshold so a long-lived static table cannot pin
#: unbounded numbers of (dest, approach) entries
_CACHE_MAX = 4096


def next_hop(table: ConnectionTable, my_addr: BrunetAddress,
             dest: BrunetAddress,
             exclude_dest_link: bool = False,
             approach: Optional[str] = None) -> Optional[Connection]:
    """The connection a greedy router forwards toward ``dest`` over, or
    None when this node is a local minimum (deliver here / drop).

    Each hop strictly decreases the metric to the destination, so greedy
    forwarding can never loop.

    Decisions are memoized in ``table.next_hop_cache``; the table clears
    the cache whenever its ``version`` bumps (connection added/removed or
    relabelled), so a hit is always equal to a fresh scan.
    """
    cache = table.next_hop_cache
    key = (my_addr, dest, exclude_dest_link, approach)
    hit = cache.get(key, _MISS)
    if hit is not _MISS:
        return hit
    result = _next_hop_scan(table, my_addr, dest, exclude_dest_link, approach)
    if len(cache) >= _CACHE_MAX:
        cache.clear()
    cache[key] = result
    return result


def _next_hop_scan(table: ConnectionTable, my_addr: BrunetAddress,
                   dest: BrunetAddress,
                   exclude_dest_link: bool = False,
                   approach: Optional[str] = None) -> Optional[Connection]:
    """Uncached greedy decision (the memoization oracle).

    Runs against the table's sorted ring view: whichever peer minimizes
    the metric must be the destination's ring successor or predecessor
    within the view (stepping one further along when the adjacent entry
    is an excluded direct link to ``dest``), so only one or two bisect
    candidates are ever examined.  An exact tie — one candidate per side
    of ``dest``, possible only for the undirected metric — breaks to the
    lower address; a hop is taken only when it *strictly* decreases the
    metric, exactly as the pre-array object scan decided.
    """
    if not exclude_dest_link and approach is None:
        direct = table.get(dest)
        if direct is not None:
            return direct
    addrs, conns = table.ring_view()
    n = len(addrs)
    if n == 0:
        return None
    dest_i = int(dest)
    skip_dest = exclude_dest_link or approach is not None
    pos = bisect_left(addrs, dest_i)
    if approach == "left":
        # metric is ccw distance from dest: candidate is the predecessor
        # (bisect_left guarantees addrs[pos-1] != dest, wrap aside)
        cand = ((pos - 1) % n,)
    else:
        i = pos % n
        if skip_dest and addrs[i] == dest_i:
            i = (i + 1) % n
        if approach == "right":
            # metric is cw distance from dest: candidate is the successor
            cand = (i,)
        else:
            j = (pos - 1) % n
            cand = (i,) if i == j else (i, j)
    my_d = _metric(my_addr, dest, approach)
    best: Optional[Connection] = None
    best_d = my_d
    for k in cand:
        a = addrs[k]
        if skip_dest and a == dest_i:
            continue
        d = _metric(a, dest, approach)
        if d < best_d or (d == best_d and best is not None
                          and a < int(best.peer_addr)):
            best, best_d = conns[k], d
    return best


def trace_route(start: "BrunetNode", dest: BrunetAddress,
                resolve: Callable[[BrunetAddress], Optional["BrunetNode"]],
                max_hops: int = 32) -> Optional[list["BrunetNode"]]:
    """Preview the node sequence a packet from ``start`` to ``dest`` takes.

    ``resolve`` maps a peer address to its live node (a deployment
    registry).  Returns None when the route is currently broken (a hop's
    node is down or a local minimum short of the destination is reached) —
    callers pause flows in that case, mirroring the paper's migration
    outage.
    """
    path = [start]
    current = start
    for _ in range(max_hops):
        if current.addr == dest:
            return path
        conn = next_hop(current.table, current.addr, dest)
        if conn is None:
            return None
        nxt = resolve(conn.peer_addr)
        if nxt is None or not nxt.active:
            return None
        path.append(nxt)
        current = nxt
    return None


def overlay_hop_count(start: "BrunetNode", dest: BrunetAddress,
                      resolve: Callable[[BrunetAddress], Optional["BrunetNode"]]
                      ) -> Optional[int]:
    """Number of overlay hops from ``start`` to ``dest`` (None if broken)."""
    path = trace_route(start, dest, resolve)
    return None if path is None else len(path) - 1
