"""Binary codec: tag + length-prefixed fields for every protocol message.

Frame layout (outermost message only)::

    byte 0      WIRE_VERSION
    byte 1      type tag
    bytes 2..   fields, fixed order per type

Nested values (a ``RoutedPacket``'s payload, a ``Forward``'s inner
message, an ``IpEncap``'s virtual packet) repeat the ``tag + fields``
shape without the version byte.  All integers are big-endian; strings are
UTF-8 with a u16 length prefix; lists carry a u16 count; optional fields
carry a presence byte.  Addresses are the raw 20 bytes of the 160-bit
ring position.  Trace context is encoded as the ``(trace_id, parent)``
id pair — the receiving side reconstructs a fresh
:class:`~repro.obs.spans.TraceRef`, so causal traces survive the byte
boundary without object references.

Version 2 is built for per-packet speed:

* every fixed-shape run of fields is one precompiled composite
  :class:`struct.Struct` (``_RHDR``, ``_TOK_ADDR``, ...) packed and
  unpacked in a single call, instead of field-by-field u8/u16 packs;
* ``encode`` writes into one reusable ``bytearray`` and snapshots it
  once at the end;
* the :class:`RoutedPacket` frame is **header-first**: src/dest/size/
  flags/ttl/hops, then trace ids, then the via list, with the payload
  sub-frame *last*.  :func:`peek_header` parses just that routing header,
  and :func:`decode_lazy` defers the payload to a zero-copy
  :class:`RawBody` slice — a transit hop routes on the envelope and
  re-encodes by splicing the original payload bytes back, never paying a
  body decode/encode (:func:`materialize` decodes at local delivery);
* repeated values (addresses, URIs, short strings) round-trip through
  bounded caches, and immutable messages memoize their encoded frame
  (``via`` / ``hops`` / trace-bearing envelopes are exempt — see
  ``_CACHEABLE``);
* :func:`encoded_size` is pure arithmetic over the layout tables — it
  never encodes to measure.

Payloads the protocol does not define (middleware RPC bodies, opaque
application data) fall back to an ``OPAQUE`` frame carrying a pickle of
the object; the module-level :data:`opaque_frames` counter records every
such fallback so transports can surface a ``wire.opaque_frames`` metric.
That keeps the codec total over everything the overlay can legitimately
carry; like the paper's deployment, peers on a link are assumed to be
inside one trust domain (do not decode frames from untrusted networks).

Every decode failure — truncation, bad version, unknown tag, malformed
UTF-8/pickle, trailing garbage — raises :class:`DecodeError` and nothing
else.  The lazy path defers *body* validation to :func:`materialize`
(a transit router does not validate payloads it merely forwards); the
node layer counts a late body failure exactly like a transport decode
error.
"""

from __future__ import annotations

import pickle
import weakref
from struct import Struct
from struct import error as _StructError
from typing import Any, NamedTuple, Optional

from repro.brunet.address import BrunetAddress
from repro.brunet.dht import DhtGet, DhtPut, DhtReply
from repro.brunet.messages import (
    CloseMessage,
    CtmReply,
    CtmRequest,
    Forward,
    IpEncap,
    LinkError,
    LinkReply,
    LinkRequest,
    PingReply,
    PingRequest,
    RoutedPacket,
)
from repro.brunet.uri import Uri
from repro.ipop.ippacket import IcmpEcho, VirtualIpPacket
from repro.ipop.vtcp import Segment
from repro.obs.spans import TraceRef
from repro.phys.endpoints import Endpoint

#: wire format version; bumped on any incompatible layout change.
#: v2: header-first RoutedPacket (payload last), composite fixed runs,
#: approach as a 1-byte code, fixed-prefix reordering of IpEncap/Forward/
#: VirtualIpPacket/Segment, typed frames for vTCP segments and DHT ops.
WIRE_VERSION = 2

#: physical framing charged per datagram in measured/codec accounting:
#: IPv4 header (20) + UDP header (8).  The overlay's own framing is part
#: of the encoded message, so it is never charged twice.
UDP_IP_OVERHEAD = 28

ADDRESS_BYTES = 20

# type tags (stable on the wire — append, never renumber)
T_LINK_REQUEST = 1
T_LINK_REPLY = 2
T_LINK_ERROR = 3
T_CLOSE = 4
T_PING_REQUEST = 5
T_PING_REPLY = 6
T_CTM_REQUEST = 7
T_CTM_REPLY = 8
T_IP_ENCAP = 9
T_FORWARD = 10
T_ROUTED = 11
T_VIRTUAL_IP = 12
T_ICMP_ECHO = 13
T_NONE = 14
T_STR = 15
T_BYTES = 16
T_OPAQUE = 17
T_VTCP_SEGMENT = 18
T_DHT_PUT = 19
T_DHT_GET = 20
T_DHT_REPLY = 21

#: OPAQUE-pickle fallback frames encoded since process start; transports
#: snapshot this around ``encode`` to feed the ``wire.opaque_frames``
#: metric without the codec depending on the metrics registry.
opaque_frames = 0

_U16 = Struct(">H")
_U32 = Struct(">I")

# ---------------------------------------------------------------------------
# composite layouts (one Struct per fixed-shape field run, tag included
# where the whole prefix is fixed).  These Structs ARE the layout tables:
# encoders pack them, decoders unpack them, and the arithmetic sizing
# below derives every fixed size from their .size attributes.
# ---------------------------------------------------------------------------

_TOK_ADDR = Struct(">BQ20s")            # tag, token, address  (ping/link/ctm heads)
_ADDR20 = Struct(">B20s")               # tag, address         (close head)
_RHDR = Struct(">B20s20sIBBBHH")        # tag, src, dest, size, exact,
#                                         exclude_dest_link, approach, ttl, hops
_TRACE = Struct(">BQQ")                 # presence, trace_id, parent
_QQ = Struct(">QQ")
_ICMP = Struct(">BIBdI")                # tag, seq, is_reply, sent_at, data_size
_IPENC = Struct(">BI")                  # tag, size (payload follows)
_FWD = Struct(">B20sI")                 # tag, final_dest, size (inner follows)
_VIP_TAIL = Struct(">II")               # port, size (after the three strings)
_SEG = Struct(">BqqI")                  # tag, seq, ack, size (flags+payload follow)
_DHT_PUT = Struct(">BQd20sHB")          # tag, rid, ttl, reply_to, replicate, primary
_DHT_GET = Struct(">BQ20s")             # tag, rid, reply_to
_DHT_REP = Struct(">BQB")               # tag, rid, found

_APPROACH_NONE, _APPROACH_LEFT, _APPROACH_RIGHT, _APPROACH_OTHER = 0, 1, 2, 3
_APPROACH_CODE = {None: 0, "left": 1, "right": 2}
_APPROACH_STR = (None, "left", "right")

_NO_TRACE = b"\x00"
_VERSION_BYTE = bytes((WIRE_VERSION,))


class DecodeError(ValueError):
    """A buffer could not be decoded into a protocol message."""


class RawBody:
    """Zero-copy stand-in for an undecoded routed-packet payload.

    Holds the original frame buffer and the offset where the payload
    sub-frame starts; :func:`materialize` decodes it on local delivery,
    and the encoder splices ``raw`` straight into the outgoing frame on
    transit forwarding.
    """

    __slots__ = ("buf", "off")

    def __init__(self, buf: bytes, off: int):
        self.buf = buf
        self.off = off

    @property
    def raw(self) -> memoryview:
        """The encoded payload bytes (tag + fields), without copying."""
        return memoryview(self.buf)[self.off:]

    def __len__(self) -> int:
        return len(self.buf) - self.off

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RawBody):
            return self.raw == other.raw
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RawBody {len(self)}B undecoded>"


class FrameHeader(NamedTuple):
    """Result of :func:`peek_header`: the routing-relevant prefix of a
    frame, without touching the body.  Non-routed frames fill only
    ``version`` and ``tag``."""

    version: int
    tag: int
    src: Optional[BrunetAddress] = None
    dest: Optional[BrunetAddress] = None
    size: Optional[int] = None
    exact: Optional[bool] = None
    exclude_dest_link: Optional[bool] = None
    approach: Optional[str] = None
    ttl: Optional[int] = None
    hops: Optional[int] = None
    trace_id: Optional[int] = None
    trace_parent: Optional[int] = None


# ---------------------------------------------------------------------------
# bounded value caches.  Addresses, URIs and short protocol strings repeat
# heavily on a per-packet basis (your ring neighbours do not change every
# datagram); all cached values are immutable, so sharing them across
# decodes is safe.  Caches clear wholesale when full — no LRU bookkeeping
# on the hot path.
# ---------------------------------------------------------------------------

_CACHE_MAX = 8192
_ADDR_ENC: dict[int, bytes] = {}
_ADDR_DEC: dict[bytes, BrunetAddress] = {}
_URI_ENC: dict[Uri, bytes] = {}
_URI_DEC: dict[bytes, Uri] = {}
_STR_DEC: dict[bytes, str] = {}


def _ab(a: int) -> bytes:
    """Address → exactly 20 big-endian bytes (cached)."""
    b = _ADDR_ENC.get(a)
    if b is None:
        if len(_ADDR_ENC) >= _CACHE_MAX:
            _ADDR_ENC.clear()
        b = int(a).to_bytes(ADDRESS_BYTES, "big")
        _ADDR_ENC[a] = b
    return b


def _da(raw: bytes) -> BrunetAddress:
    a = _ADDR_DEC.get(raw)
    if a is None:
        if len(_ADDR_DEC) >= _CACHE_MAX:
            _ADDR_DEC.clear()
        a = BrunetAddress(int.from_bytes(raw, "big"))
        _ADDR_DEC[raw] = a
    return a


def _trunc(need: int, pos: int, have: int) -> DecodeError:
    return DecodeError(f"truncated buffer: need {need} bytes at offset "
                       f"{pos}, have {have - pos}")


def _ds(raw: bytes) -> str:
    """Short-string decode through the cache (UTF-8 errors are typed)."""
    s = _STR_DEC.get(raw)
    if s is None:
        try:
            s = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"malformed UTF-8 string: {exc}") from None
        if len(raw) <= 64:
            if len(_STR_DEC) >= _CACHE_MAX:
                _STR_DEC.clear()
            _STR_DEC[raw] = s
    return s


# ---------------------------------------------------------------------------
# variable-field helpers (encode side appends to the shared bytearray;
# decode side returns (value, new_pos) and bounds-checks every read)
# ---------------------------------------------------------------------------

def _ps(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8")
    out += _U16.pack(len(raw))
    out += raw


def _pu(out: bytearray, u: Uri) -> None:
    b = _URI_ENC.get(u)
    if b is None:
        if len(_URI_ENC) >= _CACHE_MAX:
            _URI_ENC.clear()
        t = u.transport.encode("utf-8")
        ip = u.endpoint.ip.encode("utf-8")
        b = b"".join((_U16.pack(len(t)), t, _U16.pack(len(ip)), ip,
                      _U16.pack(u.endpoint.port)))
        _URI_ENC[u] = b
    out += b


def _puris(out: bytearray, uris: list) -> None:
    out += _U16.pack(len(uris))
    for u in uris:
        _pu(out, u)


def _ptrace(out: bytearray, ref: Optional[TraceRef]) -> None:
    if ref is None:
        out += _NO_TRACE
    else:
        out += _TRACE.pack(1, ref.trace_id, ref.parent)


def _d_str(buf: bytes, pos: int, n: int) -> tuple[str, int]:
    end = pos + 2
    if end > n:
        raise _trunc(2, pos, n)
    k = (buf[pos] << 8) | buf[pos + 1]
    pos, end = end, end + k
    if end > n:
        raise _trunc(k, pos, n)
    return _ds(buf[pos:end]), end


def _d_uri(buf: bytes, pos: int, n: int) -> tuple[Uri, int]:
    if pos + 2 > n:
        raise _trunc(2, pos, n)
    tlen = (buf[pos] << 8) | buf[pos + 1]
    p2 = pos + 2 + tlen
    if p2 + 2 > n:
        raise _trunc(tlen + 2, pos + 2, n)
    ilen = (buf[p2] << 8) | buf[p2 + 1]
    end = p2 + 2 + ilen + 2
    if end > n:
        raise _trunc(ilen + 2, p2 + 2, n)
    span = buf[pos:end]
    u = _URI_DEC.get(span)
    if u is None:
        if len(_URI_DEC) >= _CACHE_MAX:
            _URI_DEC.clear()
        transport = _ds(buf[pos + 2:p2])
        ip = _ds(buf[p2 + 2:end - 2])
        port = (buf[end - 2] << 8) | buf[end - 1]
        u = Uri(transport, Endpoint(ip, port))
        _URI_DEC[span] = u
    return u, end


def _d_uris(buf: bytes, pos: int, n: int) -> tuple[list, int]:
    if pos + 2 > n:
        raise _trunc(2, pos, n)
    count = (buf[pos] << 8) | buf[pos + 1]
    pos += 2
    uris = []
    for _ in range(count):
        u, pos = _d_uri(buf, pos, n)
        uris.append(u)
    return uris, pos


def _d_trace(buf: bytes, pos: int, n: int) -> tuple[Optional[TraceRef], int]:
    if pos >= n:
        raise _trunc(1, pos, n)
    if not buf[pos]:
        return None, pos + 1
    pos += 1
    if pos + 16 > n:
        raise _trunc(16, pos, n)
    tid, parent = _QQ.unpack_from(buf, pos)
    return TraceRef(tid, parent), pos + 16


def _d_addr(buf: bytes, pos: int, n: int) -> tuple[BrunetAddress, int]:
    end = pos + ADDRESS_BYTES
    if end > n:
        raise _trunc(ADDRESS_BYTES, pos, n)
    return _da(buf[pos:end]), end


_new = object.__new__


# ---------------------------------------------------------------------------
# per-type encoders.  Each appends `tag + fields` to the shared buffer;
# fixed-shape prefixes are single composite packs.
# ---------------------------------------------------------------------------

def _e_link_request(out: bytearray, m: LinkRequest) -> None:
    out += _TOK_ADDR.pack(T_LINK_REQUEST, m.token, _ab(m.sender_addr))
    _puris(out, m.sender_uris)
    _ps(out, m.conn_type)
    _ptrace(out, m.trace)


def _e_link_reply(out: bytearray, m: LinkReply) -> None:
    out += _TOK_ADDR.pack(T_LINK_REPLY, m.token, _ab(m.sender_addr))
    _puris(out, m.sender_uris)
    _pu(out, m.observed_uri)
    _ps(out, m.conn_type)
    _ptrace(out, m.trace)


def _e_link_error(out: bytearray, m: LinkError) -> None:
    out += _TOK_ADDR.pack(T_LINK_ERROR, m.token, _ab(m.sender_addr))
    _ps(out, m.reason)


def _e_close(out: bytearray, m: CloseMessage) -> None:
    out += _ADDR20.pack(T_CLOSE, _ab(m.sender_addr))
    _ps(out, m.reason)


def _e_ping_request(out: bytearray, m: PingRequest) -> None:
    out += _TOK_ADDR.pack(T_PING_REQUEST, m.token, _ab(m.sender_addr))


def _e_ping_reply(out: bytearray, m: PingReply) -> None:
    out += _TOK_ADDR.pack(T_PING_REPLY, m.token, _ab(m.sender_addr))
    _pu(out, m.observed_uri)
    out += b"\x01" if m.known else b"\x00"


def _e_ctm_request(out: bytearray, m: CtmRequest) -> None:
    out += _TOK_ADDR.pack(T_CTM_REQUEST, m.token, _ab(m.initiator_addr))
    _puris(out, m.initiator_uris)
    _ps(out, m.conn_type)
    rv = m.reply_via
    if rv is None:
        out += b"\x00"
    else:
        out += b"\x01"
        out += _ab(rv)
    out += _U16.pack(m.fanout)


def _e_ctm_reply(out: bytearray, m: CtmReply) -> None:
    out += _TOK_ADDR.pack(T_CTM_REPLY, m.token, _ab(m.responder_addr))
    _puris(out, m.responder_uris)
    _ps(out, m.conn_type)


def _e_ip_encap(out: bytearray, m: IpEncap) -> None:
    out += _IPENC.pack(T_IP_ENCAP, m.size)
    _e_any(out, m.payload)


def _e_forward(out: bytearray, m: Forward) -> None:
    out += _FWD.pack(T_FORWARD, _ab(m.final_dest), m.size)
    _e_any(out, m.inner)


def _e_routed(out: bytearray, m: RoutedPacket) -> None:
    ap = m.approach
    apc = _APPROACH_CODE.get(ap, _APPROACH_OTHER)
    out += _RHDR.pack(T_ROUTED, _ab(m.src), _ab(m.dest), m.size,
                      1 if m.exact else 0, 1 if m.exclude_dest_link else 0,
                      apc, m.ttl, m.hops)
    if apc == _APPROACH_OTHER:
        _ps(out, ap)
    _ptrace(out, m.trace)
    via = m.via
    out += _U16.pack(len(via))
    for a in via:
        out += _ab(a)
    p = m.payload
    if type(p) is RawBody:
        out += p.raw          # transit splice: never re-encode the body
    else:
        _e_any(out, p)


def _e_virtual_ip(out: bytearray, m: VirtualIpPacket) -> None:
    out.append(T_VIRTUAL_IP)
    _ps(out, m.src_ip)
    _ps(out, m.dst_ip)
    _ps(out, m.proto)
    out += _VIP_TAIL.pack(m.port, m.size)
    _e_any(out, m.payload)


def _e_icmp_echo(out: bytearray, m: IcmpEcho) -> None:
    out += _ICMP.pack(T_ICMP_ECHO, m.seq, 1 if m.is_reply else 0,
                      m.sent_at, m.data_size)


def _e_segment(out: bytearray, m: Segment) -> None:
    out += _SEG.pack(T_VTCP_SEGMENT, m.seq, m.ack, m.size)
    _ps(out, m.flags)
    _e_any(out, m.payload)


def _e_dht_put(out: bytearray, m: DhtPut) -> None:
    out += _DHT_PUT.pack(T_DHT_PUT, m.rid, m.ttl, _ab(m.reply_to),
                         m.replicate, 1 if m.primary else 0)
    _ps(out, m.key)
    _e_any(out, m.value)


def _e_dht_get(out: bytearray, m: DhtGet) -> None:
    out += _DHT_GET.pack(T_DHT_GET, m.rid, _ab(m.reply_to))
    _ps(out, m.key)


def _e_dht_reply(out: bytearray, m: DhtReply) -> None:
    out += _DHT_REP.pack(T_DHT_REPLY, m.rid, 1 if m.found else 0)
    _ps(out, m.key)
    values = m.values
    out += _U16.pack(len(values))
    for v in values:
        _e_any(out, v)


def _e_rawbody(out: bytearray, m: RawBody) -> None:
    out += m.raw


_ENCODERS: dict[type, Any] = {
    LinkRequest: _e_link_request,
    LinkReply: _e_link_reply,
    LinkError: _e_link_error,
    CloseMessage: _e_close,
    PingRequest: _e_ping_request,
    PingReply: _e_ping_reply,
    CtmRequest: _e_ctm_request,
    CtmReply: _e_ctm_reply,
    IpEncap: _e_ip_encap,
    Forward: _e_forward,
    RoutedPacket: _e_routed,
    VirtualIpPacket: _e_virtual_ip,
    IcmpEcho: _e_icmp_echo,
    Segment: _e_segment,
    DhtPut: _e_dht_put,
    DhtGet: _e_dht_get,
    DhtReply: _e_dht_reply,
    RawBody: _e_rawbody,
}

# ---------------------------------------------------------------------------
# whole-frame memoization.
#
# Protocol messages are built immediately before their first send and
# never field-mutated afterwards, with three audited exceptions: the
# RoutedPacket envelope (hops/via grow per hop), in-flight TraceRefs
# (re-parented at every hop), and OPAQUE payloads (arbitrary app objects
# the codec must assume mutable).  So:
#
# * frozen message types memoize their encoded sub-frame, keyed by object
#   id with a weakref guard (a recycled id can never alias a dead
#   message); trace-bearing link messages validate the trace ids on every
#   hit;
# * RoutedPacket memoizes against a fingerprint of exactly the fields the
#   router mutates — (hops, len(via), payload identity, trace ids) — so a
#   resend of an unchanged envelope hits while every forwarded hop
#   misses; the entry pins the payload object so its id cannot be
#   recycled under the fingerprint;
# * any frame that fell back to OPAQUE pickling is never memoized (the
#   app may mutate the payload between sends, and the opaque_frames
#   metric must count every pickled frame that hits the wire).
# ---------------------------------------------------------------------------

_CACHEABLE = (PingRequest, PingReply, LinkError, CloseMessage, CtmRequest,
              CtmReply, IpEncap, VirtualIpPacket, IcmpEcho, Segment,
              DhtPut, DhtGet, DhtReply, LinkRequest, LinkReply)
_CACHEABLE_SET = frozenset(_CACHEABLE)
_TRACED = frozenset((LinkRequest, LinkReply))

# id -> (sub_frame, full_frame, trace_id|None, trace_parent|None) — the
# sub-frame (no version byte) splices into nested encodes, the full frame
# is what a top-level encode() hit returns outright
_FRAME_CACHE: dict[int, tuple] = {}
_FRAME_REFS: dict[int, Any] = {}

# RoutedPacket envelope memo:
# id -> (full_frame, hops, len(via), payload, trace_id|None, parent|None)
_RP_CACHE: dict[int, tuple] = {}
_RP_REFS: dict[int, Any] = {}


def _frame_evict(key: int) -> None:
    _FRAME_CACHE.pop(key, None)
    _FRAME_REFS.pop(key, None)


def _rp_evict(key: int) -> None:
    _RP_CACHE.pop(key, None)
    _RP_REFS.pop(key, None)


def _frame_remember(m: Any, frame: bytes) -> None:
    key = id(m)
    if len(_FRAME_CACHE) >= _CACHE_MAX:
        _FRAME_CACHE.clear()
        _FRAME_REFS.clear()
    try:
        ref = weakref.ref(m, lambda _r, _k=key: _frame_evict(_k))
    except TypeError:  # pragma: no cover - all message types are weakrefable
        return
    t = getattr(m, "trace", None)
    _FRAME_CACHE[key] = (frame, _VERSION_BYTE + frame,
                         t.trace_id if t else None,
                         t.parent if t else None)
    _FRAME_REFS[key] = ref


def _frame_lookup(m: Any) -> Optional[tuple]:
    key = id(m)
    entry = _FRAME_CACHE.get(key)
    if entry is None or _FRAME_REFS[key]() is not m:
        return None
    tid = entry[2]
    if tid is not None:
        t = m.trace
        if t is None or t.trace_id != tid or t.parent != entry[3]:
            return None
    elif type(m) in _TRACED and m.trace is not None:
        return None
    return entry


def _rp_remember(m: RoutedPacket, full: bytes) -> None:
    key = id(m)
    if len(_RP_CACHE) >= _CACHE_MAX:
        _RP_CACHE.clear()
        _RP_REFS.clear()
    try:
        ref = weakref.ref(m, lambda _r, _k=key: _rp_evict(_k))
    except TypeError:  # pragma: no cover
        return
    t = m.trace
    _RP_CACHE[key] = (full, m.hops, len(m.via), m.payload,
                      t.trace_id if t else None, t.parent if t else None)
    _RP_REFS[key] = ref


def _rp_lookup(m: RoutedPacket) -> Optional[bytes]:
    key = id(m)
    entry = _RP_CACHE.get(key)
    if entry is None or _RP_REFS[key]() is not m:
        return None
    full, hops, nvia, payload, tid, parent = entry
    if m.hops != hops or m.payload is not payload or len(m.via) != nvia:
        return None
    t = m.trace
    if tid is None:
        if t is not None:
            return None
    elif t is None or t.trace_id != tid or t.parent != parent:
        return None
    return full


def _e_any(out: bytearray, value: Any) -> None:
    global opaque_frames
    t = type(value)
    enc = _ENCODERS.get(t)
    if enc is not None:
        if t in _CACHEABLE_SET:
            entry = _frame_lookup(value)
            if entry is not None:
                out += entry[0]
                return
            start = len(out)
            before = opaque_frames
            enc(out, value)
            if opaque_frames == before:
                _frame_remember(value, bytes(out[start:]))
            return
        enc(out, value)
    elif value is None:
        out.append(T_NONE)
    elif t is str:
        out.append(T_STR)
        _ps(out, value)
    elif t is bytes:
        out.append(T_BYTES)
        out += _U32.pack(len(value))
        out += value
    else:
        opaque_frames += 1
        out.append(T_OPAQUE)
        raw = pickle.dumps(value, protocol=4)
        out += _U32.pack(len(raw))
        out += raw


# ---------------------------------------------------------------------------
# per-type decoders: flat (buf, pos, n) -> (msg, new_pos) functions over
# the same layouts.  Construction bypasses dataclass __init__ (plain
# attribute dicts) — measurably faster and behaviourally identical for
# eq/repr/field access.
# ---------------------------------------------------------------------------

def _d_link_request(buf: bytes, pos: int, n: int):
    token, raw = _TOK_ADDR.unpack_from(buf, pos - 1)[1:]
    uris, pos = _d_uris(buf, pos + 28, n)
    conn_type, pos = _d_str(buf, pos, n)
    trace, pos = _d_trace(buf, pos, n)
    m = _new(LinkRequest)
    m.__dict__ = {"token": token, "sender_addr": _da(raw),
                  "sender_uris": uris, "conn_type": conn_type,
                  "trace": trace}
    return m, pos


def _d_link_reply(buf: bytes, pos: int, n: int):
    token, raw = _TOK_ADDR.unpack_from(buf, pos - 1)[1:]
    uris, pos = _d_uris(buf, pos + 28, n)
    observed, pos = _d_uri(buf, pos, n)
    conn_type, pos = _d_str(buf, pos, n)
    trace, pos = _d_trace(buf, pos, n)
    m = _new(LinkReply)
    m.__dict__ = {"token": token, "sender_addr": _da(raw),
                  "sender_uris": uris, "observed_uri": observed,
                  "conn_type": conn_type, "trace": trace}
    return m, pos


def _d_link_error(buf: bytes, pos: int, n: int):
    token, raw = _TOK_ADDR.unpack_from(buf, pos - 1)[1:]
    reason, pos = _d_str(buf, pos + 28, n)
    m = _new(LinkError)
    m.__dict__ = {"token": token, "sender_addr": _da(raw), "reason": reason}
    return m, pos


def _d_close(buf: bytes, pos: int, n: int):
    raw = _ADDR20.unpack_from(buf, pos - 1)[1]
    reason, pos = _d_str(buf, pos + 20, n)
    m = _new(CloseMessage)
    m.__dict__ = {"sender_addr": _da(raw), "reason": reason}
    return m, pos


def _d_ping_request(buf: bytes, pos: int, n: int):
    token, raw = _TOK_ADDR.unpack_from(buf, pos - 1)[1:]
    m = _new(PingRequest)
    m.__dict__ = {"token": token, "sender_addr": _da(raw)}
    return m, pos + 28


def _d_ping_reply(buf: bytes, pos: int, n: int):
    token, raw = _TOK_ADDR.unpack_from(buf, pos - 1)[1:]
    observed, pos = _d_uri(buf, pos + 28, n)
    if pos >= n:
        raise _trunc(1, pos, n)
    m = _new(PingReply)
    m.__dict__ = {"token": token, "sender_addr": _da(raw),
                  "observed_uri": observed, "known": buf[pos] != 0}
    return m, pos + 1


def _d_ctm_request(buf: bytes, pos: int, n: int):
    token, raw = _TOK_ADDR.unpack_from(buf, pos - 1)[1:]
    uris, pos = _d_uris(buf, pos + 28, n)
    conn_type, pos = _d_str(buf, pos, n)
    if pos >= n:
        raise _trunc(1, pos, n)
    if buf[pos]:
        reply_via, pos = _d_addr(buf, pos + 1, n)
    else:
        reply_via, pos = None, pos + 1
    if pos + 2 > n:
        raise _trunc(2, pos, n)
    fanout = (buf[pos] << 8) | buf[pos + 1]
    m = _new(CtmRequest)
    m.__dict__ = {"token": token, "initiator_addr": _da(raw),
                  "initiator_uris": uris, "conn_type": conn_type,
                  "reply_via": reply_via, "fanout": fanout}
    return m, pos + 2


def _d_ctm_reply(buf: bytes, pos: int, n: int):
    token, raw = _TOK_ADDR.unpack_from(buf, pos - 1)[1:]
    uris, pos = _d_uris(buf, pos + 28, n)
    conn_type, pos = _d_str(buf, pos, n)
    m = _new(CtmReply)
    m.__dict__ = {"token": token, "responder_addr": _da(raw),
                  "responder_uris": uris, "conn_type": conn_type}
    return m, pos


def _d_ip_encap(buf: bytes, pos: int, n: int):
    size = _IPENC.unpack_from(buf, pos - 1)[1]
    payload, pos = _d_any(buf, pos + 4, n)
    m = _new(IpEncap)
    m.__dict__ = {"payload": payload, "size": size}
    return m, pos


def _d_forward(buf: bytes, pos: int, n: int):
    raw, size = _FWD.unpack_from(buf, pos - 1)[1:]
    inner, pos = _d_any(buf, pos + 24, n)
    m = _new(Forward)
    m.__dict__ = {"final_dest": _da(raw), "inner": inner, "size": size}
    return m, pos


def _d_routed_env(buf: bytes, pos: int, n: int):
    """Shared envelope parse: everything up to (not including) the
    payload sub-frame.  Returns (packet-with-None-payload, payload_pos)."""
    (src, dest, size, exact, excl, apc,
     ttl, hops) = _RHDR.unpack_from(buf, pos - 1)[1:]
    pos += _RHDR.size - 1
    if apc == _APPROACH_OTHER:
        approach, pos = _d_str(buf, pos, n)
    else:
        try:
            approach = _APPROACH_STR[apc]
        except IndexError:
            raise DecodeError(f"unknown approach code {apc}") from None
    trace, pos = _d_trace(buf, pos, n)
    if pos + 2 > n:
        raise _trunc(2, pos, n)
    count = (buf[pos] << 8) | buf[pos + 1]
    pos += 2
    via = []
    for _ in range(count):
        a, pos = _d_addr(buf, pos, n)
        via.append(a)
    m = _new(RoutedPacket)
    m.__dict__ = {"src": _da(src), "dest": _da(dest), "payload": None,
                  "size": size, "exact": exact != 0,
                  "exclude_dest_link": excl != 0, "approach": approach,
                  "ttl": ttl, "hops": hops, "via": via, "trace": trace}
    return m, pos


def _d_routed(buf: bytes, pos: int, n: int):
    m, pos = _d_routed_env(buf, pos, n)
    payload, pos = _d_any(buf, pos, n)
    m.__dict__["payload"] = payload
    return m, pos


def _d_virtual_ip(buf: bytes, pos: int, n: int):
    src_ip, pos = _d_str(buf, pos, n)
    dst_ip, pos = _d_str(buf, pos, n)
    proto, pos = _d_str(buf, pos, n)
    if pos + 8 > n:
        raise _trunc(8, pos, n)
    port, size = _VIP_TAIL.unpack_from(buf, pos)
    payload, pos = _d_any(buf, pos + 8, n)
    m = _new(VirtualIpPacket)
    m.__dict__ = {"src_ip": src_ip, "dst_ip": dst_ip, "proto": proto,
                  "port": port, "payload": payload, "size": size}
    return m, pos


def _d_icmp_echo(buf: bytes, pos: int, n: int):
    seq, is_reply, sent_at, data_size = _ICMP.unpack_from(buf, pos - 1)[1:]
    m = _new(IcmpEcho)
    m.__dict__ = {"seq": seq, "is_reply": is_reply != 0,
                  "sent_at": sent_at, "data_size": data_size}
    return m, pos + _ICMP.size - 1


def _d_segment(buf: bytes, pos: int, n: int):
    seq, ack, size = _SEG.unpack_from(buf, pos - 1)[1:]
    flags, pos = _d_str(buf, pos + _SEG.size - 1, n)
    payload, pos = _d_any(buf, pos, n)
    m = _new(Segment)
    m.__dict__ = {"seq": seq, "ack": ack, "flags": flags,
                  "payload": payload, "size": size}
    return m, pos


def _d_dht_put(buf: bytes, pos: int, n: int):
    (rid, ttl, raw, replicate,
     primary) = _DHT_PUT.unpack_from(buf, pos - 1)[1:]
    key, pos = _d_str(buf, pos + _DHT_PUT.size - 1, n)
    value, pos = _d_any(buf, pos, n)
    m = _new(DhtPut)
    m.__dict__ = {"rid": rid, "key": key, "value": value, "ttl": ttl,
                  "reply_to": _da(raw), "replicate": replicate,
                  "primary": primary != 0}
    return m, pos


def _d_dht_get(buf: bytes, pos: int, n: int):
    rid, raw = _DHT_GET.unpack_from(buf, pos - 1)[1:]
    key, pos = _d_str(buf, pos + _DHT_GET.size - 1, n)
    m = _new(DhtGet)
    m.__dict__ = {"rid": rid, "key": key, "reply_to": _da(raw)}
    return m, pos


def _d_dht_reply(buf: bytes, pos: int, n: int):
    rid, found = _DHT_REP.unpack_from(buf, pos - 1)[1:]
    key, pos = _d_str(buf, pos + _DHT_REP.size - 1, n)
    if pos + 2 > n:
        raise _trunc(2, pos, n)
    count = (buf[pos] << 8) | buf[pos + 1]
    pos += 2
    values = []
    for _ in range(count):
        v, pos = _d_any(buf, pos, n)
        values.append(v)
    m = _new(DhtReply)
    m.__dict__ = {"rid": rid, "key": key, "values": values,
                  "found": found != 0}
    return m, pos


def _d_none(buf: bytes, pos: int, n: int):
    return None, pos


def _d_top_str(buf: bytes, pos: int, n: int):
    return _d_str(buf, pos, n)


def _d_bytes(buf: bytes, pos: int, n: int):
    if pos + 4 > n:
        raise _trunc(4, pos, n)
    (k,) = _U32.unpack_from(buf, pos)
    pos, end = pos + 4, pos + 4 + k
    if end > n:
        raise _trunc(k, pos, n)
    return buf[pos:end], end


_dec_opaque = 0  # OPAQUE sub-frames decoded (templates must skip these)


def _d_opaque(buf: bytes, pos: int, n: int):
    global _dec_opaque
    _dec_opaque += 1
    raw, pos = _d_bytes(buf, pos, n)
    try:
        return pickle.loads(raw), pos
    except Exception as exc:  # any unpickling failure is a decode failure
        raise DecodeError(f"malformed opaque payload: {exc!r}") from None


_DECODERS: list = [None] * 256
for _tag, _fn in {
    T_LINK_REQUEST: _d_link_request,
    T_LINK_REPLY: _d_link_reply,
    T_LINK_ERROR: _d_link_error,
    T_CLOSE: _d_close,
    T_PING_REQUEST: _d_ping_request,
    T_PING_REPLY: _d_ping_reply,
    T_CTM_REQUEST: _d_ctm_request,
    T_CTM_REPLY: _d_ctm_reply,
    T_IP_ENCAP: _d_ip_encap,
    T_FORWARD: _d_forward,
    T_ROUTED: _d_routed,
    T_VIRTUAL_IP: _d_virtual_ip,
    T_ICMP_ECHO: _d_icmp_echo,
    T_NONE: _d_none,
    T_STR: _d_top_str,
    T_BYTES: _d_bytes,
    T_OPAQUE: _d_opaque,
    T_VTCP_SEGMENT: _d_segment,
    T_DHT_PUT: _d_dht_put,
    T_DHT_GET: _d_dht_get,
    T_DHT_REPLY: _d_dht_reply,
}.items():
    _DECODERS[_tag] = _fn


def _d_any(buf: bytes, pos: int, n: int):
    if pos >= n:
        raise _trunc(1, pos, n)
    fn = _DECODERS[buf[pos]]
    if fn is None:
        raise DecodeError(f"unknown type tag {buf[pos]}")
    return fn(buf, pos + 1, n)


# ---------------------------------------------------------------------------
# decode template caches.
#
# Decoding is memoized by frame *content*: the first decode of a byte
# pattern parses it and stores the result as a template; later decodes of
# equal bytes return a fresh top-level object copied from the template.
# The copy owns its __dict__ (attribute assignment never aliases), plus
# fresh copies of the only two innards the stack mutates in place — the
# RoutedPacket ``via`` list and TraceRefs (re-parented per hop).  All
# other nested values (addresses, URIs, strings, payload messages) are
# shared, exactly like the value caches above; the consumer audit in
# DESIGN.md §14 shows they are treated as immutable values.  Frames
# containing OPAQUE pickles are never cached — app payloads are mutable
# and every unpickle must happen for real.
# ---------------------------------------------------------------------------

_DEC_CACHE: dict[bytes, Any] = {}    # full frame bytes -> eager template
_LAZY_CACHE: dict[bytes, Any] = {}   # full frame bytes -> lazy template
_MAT_CACHE: dict[bytes, Any] = {}    # payload sub-frame bytes -> template


def _copy_out(t: Any) -> Any:
    cls = t.__class__
    m = _new(cls)
    d = dict(t.__dict__)
    m.__dict__ = d
    if cls is RoutedPacket:
        d["via"] = d["via"][:]
        tr = d["trace"]
        if tr is not None:
            d["trace"] = TraceRef(tr.trace_id, tr.parent)
    else:
        tr = d.get("trace")
        if tr is not None:
            d["trace"] = TraceRef(tr.trace_id, tr.parent)
    return m


def _dec_store(cache: dict, buf: bytes, msg: Any) -> Any:
    """Template-cache a freshly parsed frame and hand back a safe copy.

    Scalars (None/str/bytes results) need no template: they are immutable
    and returned as-is without caching overhead."""
    if isinstance(msg, _CACHEABLE) or type(msg) is RoutedPacket:
        if len(cache) >= _CACHE_MAX:
            cache.clear()
        cache[buf] = msg
        return _copy_out(msg)
    return msg


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

_ENC_BUF = bytearray()
_enc_buf_busy = False


def encode(msg: Any) -> bytes:
    """Serialize one protocol message into a versioned frame."""
    t = type(msg)
    # memo-hit fast paths, inlined: a validated hit is the per-packet
    # steady state (keep-alive resends, unchanged envelopes), so it must
    # not pay helper-call overhead
    if t is RoutedPacket:
        key = id(msg)
        e = _RP_CACHE.get(key)
        if e is not None and _RP_REFS[key]() is msg:
            d = msg.__dict__
            tr = d["trace"]
            if (d["hops"] == e[1] and d["payload"] is e[3]
                    and len(d["via"]) == e[2]
                    and (e[4] is None if tr is None
                         else tr.trace_id == e[4] and tr.parent == e[5])):
                return e[0]
    elif t in _CACHEABLE_SET:
        key = id(msg)
        e = _FRAME_CACHE.get(key)
        if e is not None and _FRAME_REFS[key]() is msg:
            tid = e[2]
            if tid is None:
                if t not in _TRACED or msg.trace is None:
                    return e[1]
            else:
                tr = msg.trace
                if tr is not None and tr.trace_id == tid and tr.parent == e[3]:
                    return e[1]
    global _enc_buf_busy
    if _enc_buf_busy:          # reentrant encode: fall back to a fresh buffer
        out = bytearray(_VERSION_BYTE)
        _e_any(out, msg)
        return bytes(out)
    _enc_buf_busy = True
    try:
        out = _ENC_BUF
        del out[:]
        out += _VERSION_BYTE
        before = opaque_frames
        _e_any(out, msg)
        full = bytes(out)
        if t is RoutedPacket and opaque_frames == before:
            _rp_remember(msg, full)
        return full
    finally:
        _enc_buf_busy = False


def _coerce(buf: Any) -> bytes:
    if type(buf) is bytes:
        return buf
    if isinstance(buf, (bytes, bytearray, memoryview)):
        return bytes(buf)
    raise DecodeError(f"not a buffer: {type(buf).__name__}")


def _check_version(buf: bytes) -> None:
    if len(buf) < 2:
        raise _trunc(2, 0, len(buf))
    if buf[0] != WIRE_VERSION:
        raise DecodeError(f"unsupported wire version {buf[0]} "
                          f"(expected {WIRE_VERSION})")


def decode(buf: Any) -> Any:
    """Inverse of :func:`encode`; raises :class:`DecodeError` on any
    malformed input (truncation, bad version, unknown tag, trailing
    bytes)."""
    if type(buf) is not bytes:
        buf = _coerce(buf)
    t = _DEC_CACHE.get(buf)
    if t is not None:
        return _copy_out(t)
    _check_version(buf)
    n = len(buf)
    before = _dec_opaque
    try:
        msg, pos = _d_any(buf, 1, n)
    except DecodeError:
        raise
    except (_StructError, IndexError, OverflowError, ValueError) as exc:
        raise DecodeError(f"malformed frame: {exc}") from None
    if pos != n:
        raise DecodeError(f"{n - pos} trailing bytes after message")
    if _dec_opaque != before:
        return msg
    return _dec_store(_DEC_CACHE, buf, msg)


def decode_lazy(buf: Any) -> Any:
    """Like :func:`decode`, but a top-level RoutedPacket frame keeps its
    payload as an undecoded :class:`RawBody` slice.

    Transit hops route on the envelope alone and re-encode by splicing
    the payload bytes back; call :func:`materialize` at local delivery.
    A malformed *body* therefore surfaces at delivery, not in transit —
    exactly like a real router that only validates headers it forwards.
    """
    if type(buf) is not bytes:
        buf = _coerce(buf)
    t = _LAZY_CACHE.get(buf)
    if t is not None:
        return _copy_out(t)
    _check_version(buf)
    if buf[1] != T_ROUTED:
        return decode(buf)
    n = len(buf)
    try:
        m, pos = _d_routed_env(buf, 2, n)
    except DecodeError:
        raise
    except (_StructError, IndexError, OverflowError, ValueError) as exc:
        raise DecodeError(f"malformed frame: {exc}") from None
    if pos >= n:
        raise _trunc(1, pos, n)
    m.__dict__["payload"] = RawBody(buf, pos)
    return _dec_store(_LAZY_CACHE, buf, m)


def materialize(payload: Any) -> Any:
    """Decode a deferred :class:`RawBody` payload (identity on anything
    else).  Raises :class:`DecodeError` on a malformed body."""
    if type(payload) is not RawBody:
        return payload
    buf, n = payload.buf, len(payload.buf)
    span = bytes(payload.raw)
    t = _MAT_CACHE.get(span)
    if t is not None:
        return _copy_out(t)
    before = _dec_opaque
    try:
        msg, pos = _d_any(buf, payload.off, n)
    except DecodeError:
        raise
    except (_StructError, IndexError, OverflowError, ValueError) as exc:
        raise DecodeError(f"malformed frame: {exc}") from None
    if pos != n:
        raise DecodeError(f"{n - pos} trailing bytes after message")
    if _dec_opaque != before:
        return msg
    return _dec_store(_MAT_CACHE, span, msg)


def peek_header(buf: Any) -> FrameHeader:
    """Parse only the routing header of a frame: version, type tag and —
    for RoutedPacket frames — src/dest, size, flags, ttl/hops and trace
    ids.  Never touches the via list or the payload, so the cost is
    independent of frame size.  Raises :class:`DecodeError` on anything
    malformed within the peeked region."""
    buf = _coerce(buf)
    _check_version(buf)
    tag = buf[1]
    if _DECODERS[tag] is None:
        raise DecodeError(f"unknown type tag {tag}")
    if tag != T_ROUTED:
        return FrameHeader(buf[0], tag)
    n = len(buf)
    try:
        (src, dest, size, exact, excl, apc,
         ttl, hops) = _RHDR.unpack_from(buf, 1)[1:]
    except _StructError as exc:
        raise DecodeError(f"malformed frame: {exc}") from None
    pos = 1 + _RHDR.size
    if apc == _APPROACH_OTHER:
        approach, pos = _d_str(buf, pos, n)
    else:
        try:
            approach = _APPROACH_STR[apc]
        except IndexError:
            raise DecodeError(f"unknown approach code {apc}") from None
    trace, pos = _d_trace(buf, pos, n)
    return FrameHeader(buf[0], tag, _da(src), _da(dest), size, exact != 0,
                       excl != 0, approach, ttl, hops,
                       trace.trace_id if trace else None,
                       trace.parent if trace else None)


# ---------------------------------------------------------------------------
# arithmetic sizing: byte counts derived from the layout tables above —
# encoded_size() never encodes (the OPAQUE pickle fallback is the one
# unavoidable exception: pickle's length is not predictable).
# Typed sizers return the full sub-frame size INCLUDING the tag byte
# (the composite Structs carry it).  tests/wire/ assert
# encoded_size(m) == len(encode(m)) over the full fuzz corpus.
# ---------------------------------------------------------------------------

def _sz_str(s: str) -> int:
    return 2 + (len(s) if s.isascii() else len(s.encode("utf-8")))


def _sz_uri(u: Uri) -> int:
    return _sz_str(u.transport) + _sz_str(u.endpoint.ip) + 2


def _sz_uris(uris: list) -> int:
    return 2 + sum(_sz_uri(u) for u in uris)


def _sz_trace(ref: Optional[TraceRef]) -> int:
    return _TRACE.size if ref is not None else 1


def _sz_link_request(m: LinkRequest) -> int:
    return (_TOK_ADDR.size + _sz_uris(m.sender_uris)
            + _sz_str(m.conn_type) + _sz_trace(m.trace))


def _sz_link_reply(m: LinkReply) -> int:
    return (_TOK_ADDR.size + _sz_uris(m.sender_uris) + _sz_uri(m.observed_uri)
            + _sz_str(m.conn_type) + _sz_trace(m.trace))


def _sz_link_error(m: LinkError) -> int:
    return _TOK_ADDR.size + _sz_str(m.reason)


def _sz_close(m: CloseMessage) -> int:
    return _ADDR20.size + _sz_str(m.reason)


def _sz_ping_request(m: PingRequest) -> int:
    return _TOK_ADDR.size


def _sz_ping_reply(m: PingReply) -> int:
    return _TOK_ADDR.size + _sz_uri(m.observed_uri) + 1


def _sz_ctm_request(m: CtmRequest) -> int:
    return (_TOK_ADDR.size + _sz_uris(m.initiator_uris)
            + _sz_str(m.conn_type)
            + (1 + ADDRESS_BYTES if m.reply_via is not None else 1) + 2)


def _sz_ctm_reply(m: CtmReply) -> int:
    return (_TOK_ADDR.size + _sz_uris(m.responder_uris)
            + _sz_str(m.conn_type))


def _sz_ip_encap(m: IpEncap) -> int:
    return _IPENC.size + _sz_any(m.payload)


def _sz_forward(m: Forward) -> int:
    return _FWD.size + _sz_any(m.inner)


def _sz_routed(m: RoutedPacket) -> int:
    s = _RHDR.size + _sz_trace(m.trace) + 2 + ADDRESS_BYTES * len(m.via)
    if m.approach not in _APPROACH_CODE:
        s += _sz_str(m.approach)
    return s + _sz_any(m.payload)


def _sz_virtual_ip(m: VirtualIpPacket) -> int:
    return (1 + _sz_str(m.src_ip) + _sz_str(m.dst_ip) + _sz_str(m.proto)
            + _VIP_TAIL.size + _sz_any(m.payload))  # 1 = explicit tag byte


def _sz_icmp_echo(m: IcmpEcho) -> int:
    return _ICMP.size


def _sz_segment(m: Segment) -> int:
    return _SEG.size + _sz_str(m.flags) + _sz_any(m.payload)


def _sz_dht_put(m: DhtPut) -> int:
    return _DHT_PUT.size + _sz_str(m.key) + _sz_any(m.value)


def _sz_dht_get(m: DhtGet) -> int:
    return _DHT_GET.size + _sz_str(m.key)


def _sz_dht_reply(m: DhtReply) -> int:
    return (_DHT_REP.size + _sz_str(m.key) + 2
            + sum(_sz_any(v) for v in m.values))


def _sz_rawbody(m: RawBody) -> int:
    return len(m)  # raw already includes its own tag byte


_SIZERS: dict[type, Any] = {
    LinkRequest: _sz_link_request,
    LinkReply: _sz_link_reply,
    LinkError: _sz_link_error,
    CloseMessage: _sz_close,
    PingRequest: _sz_ping_request,
    PingReply: _sz_ping_reply,
    CtmRequest: _sz_ctm_request,
    CtmReply: _sz_ctm_reply,
    IpEncap: _sz_ip_encap,
    Forward: _sz_forward,
    RoutedPacket: _sz_routed,
    VirtualIpPacket: _sz_virtual_ip,
    IcmpEcho: _sz_icmp_echo,
    Segment: _sz_segment,
    DhtPut: _sz_dht_put,
    DhtGet: _sz_dht_get,
    DhtReply: _sz_dht_reply,
    RawBody: _sz_rawbody,
}


def _sz_any(value: Any) -> int:
    """Full sub-frame size (tag + fields) of a nested value."""
    t = type(value)
    sz = _SIZERS.get(t)
    if sz is not None:
        return sz(value)
    if value is None:
        return 1
    if t is str:
        return 1 + _sz_str(value)
    if t is bytes:
        return 5 + len(value)
    return 5 + len(pickle.dumps(value, protocol=4))


def encoded_size(msg: Any) -> int:
    """On-wire size of ``msg`` in bytes (excluding UDP/IP), computed
    arithmetically from the layout tables — no encode, no allocation."""
    return 1 + _sz_any(msg)
