"""Virtual IP ↔ P2P address mapping.

IPOP statically derives a node's ring position from its virtual IP, so any
node can resolve any virtual destination without lookups.  (The paper's
join experiment exploits this: assigning 10 different virtual IPs to node B
"maps B to different locations on the P2P ring".)
"""

from __future__ import annotations

from repro.brunet.address import BrunetAddress, address_from_ip


def addr_for_ip(virtual_ip: str) -> BrunetAddress:
    """Ring address that owns ``virtual_ip``."""
    return address_from_ip(virtual_ip)
