"""Connection table: a node's view of its overlay links.

Provides the queries routing and the overlords need: nearest structured
neighbour to an address, left/right ring neighbours, connections by type.
Node counts are small (a node holds ~2 near + k far + a few shortcuts), so
linear scans are simpler and faster than maintaining a sorted structure.

The table carries a monotone ``version`` counter bumped on every mutation
that can change a routing decision (add/remove/label change).  Derived
read-mostly state — the structured-connection snapshot and the memoized
next-hop cache in :mod:`repro.brunet.routing` — is invalidated wholesale on
a bump, so routing's hot path re-scans the table only after it actually
changed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.brunet.address import BrunetAddress, directed_distance, ring_distance
from repro.brunet.connection import Connection, ConnectionType


class ConnectionTable:
    """All live connections of one node, keyed by peer address."""

    def __init__(self, my_addr: BrunetAddress):
        self.my_addr = my_addr
        self._conns: dict[BrunetAddress, Connection] = {}
        self.on_added: list[Callable[[Connection], None]] = []
        self.on_removed: list[Callable[[Connection], None]] = []
        #: bumped on any mutation that can change a routing decision
        self.version = 0
        self._structured_cache: Optional[tuple[Connection, ...]] = None
        #: (my_addr, dest, exclude_dest_link, approach) -> Connection|None,
        #: owned here, filled by repro.brunet.routing.next_hop
        self.next_hop_cache: dict[tuple, Optional[Connection]] = {}

    def bump_version(self) -> None:
        """Invalidate routing caches after a table mutation."""
        self.version += 1
        self._structured_cache = None
        if self.next_hop_cache:
            self.next_hop_cache.clear()

    # -- mutation ---------------------------------------------------------
    def add(self, conn: Connection) -> Connection:
        """Insert the connection, or merge its labels into an existing link
        to the same peer (a node pair needs at most one physical link)."""
        old = self._conns.get(conn.peer_addr)
        if old is not None:
            old.heard_from(conn.established_at)
            grew = bool(conn.types - old.types)
            old.types |= conn.types
            old.remote_endpoint = conn.remote_endpoint
            if grew:
                self.bump_version()
                for cb in list(self.on_added):
                    cb(old)
            return old
        self._conns[conn.peer_addr] = conn
        conn._table = self
        self.bump_version()
        for cb in list(self.on_added):
            cb(conn)
        return conn

    def remove(self, peer_addr: BrunetAddress) -> Optional[Connection]:
        """Drop the connection to ``peer_addr`` (fires on_removed)."""
        conn = self._conns.pop(peer_addr, None)
        if conn is not None:
            conn.closed = True
            conn._table = None
            self.bump_version()
            for cb in list(self.on_removed):
                cb(conn)
        return conn

    def clear(self) -> None:
        """Drop every connection (node shutdown)."""
        for addr in list(self._conns):
            self.remove(addr)

    # -- queries ----------------------------------------------------------
    def get(self, peer_addr: BrunetAddress) -> Optional[Connection]:
        """The connection to ``peer_addr``, or None."""
        return self._conns.get(peer_addr)

    def __contains__(self, peer_addr: BrunetAddress) -> bool:
        return peer_addr in self._conns

    def __len__(self) -> int:
        return len(self._conns)

    def all(self) -> list[Connection]:
        """Snapshot list of every live connection."""
        return list(self._conns.values())

    def by_type(self, conn_type: ConnectionType) -> list[Connection]:
        """Connections carrying the given type label."""
        return [c for c in self._conns.values() if conn_type in c.types]

    def stale(self, now: float, timeout: float) -> list[Connection]:
        """Connections not heard from within ``timeout`` seconds — the
        liveness layer's dead-peer candidates."""
        return [c for c in self._conns.values()
                if now - c.last_heard > timeout]

    def structured(self) -> Iterable[Connection]:
        """Connections that participate in greedy routing (snapshot tuple,
        rebuilt only after a table mutation)."""
        cached = self._structured_cache
        if cached is None:
            cached = self._structured_cache = tuple(
                c for c in self._conns.values() if c.structured)
        return cached

    def closest_to(self, dest: BrunetAddress) -> Optional[Connection]:
        """Structured connection whose peer is nearest to ``dest`` on the
        ring; None when the table has no structured connections.

        Two peers can be exactly equidistant from ``dest`` (one on each
        side); the tie goes to the lower address so the answer never
        depends on table insertion order.
        """
        best: Optional[Connection] = None
        best_d: Optional[int] = None
        for conn in self.structured():
            d = ring_distance(conn.peer_addr, dest)
            if (best_d is None or d < best_d
                    or (d == best_d and conn.peer_addr < best.peer_addr)):
                best, best_d = conn, d
        return best

    def right_neighbor(self) -> Optional[Connection]:
        """Nearest structured peer clockwise of me."""
        return self._directional_neighbor(clockwise=True)

    def left_neighbor(self) -> Optional[Connection]:
        """Nearest structured peer counter-clockwise of me."""
        return self._directional_neighbor(clockwise=False)

    def _directional_neighbor(self, clockwise: bool) -> Optional[Connection]:
        best: Optional[Connection] = None
        best_d: Optional[int] = None
        for conn in self.structured():
            d = (directed_distance(self.my_addr, conn.peer_addr) if clockwise
                 else directed_distance(conn.peer_addr, self.my_addr))
            if d == 0:
                continue
            # distinct peers have distinct directed distances, so the
            # address tie-break only matters for duplicate-address tables;
            # it keeps the choice independent of insertion order regardless
            if (best_d is None or d < best_d
                    or (d == best_d and conn.peer_addr < best.peer_addr)):
                best, best_d = conn, d
        return best

    def neighbors_of(self, addr: BrunetAddress,
                     per_side: int = 1) -> list[Connection]:
        """Up to ``per_side`` nearest structured peers on each side of
        ``addr`` (used when answering a joining node's CTM-to-self)."""
        left: list[tuple[int, Connection]] = []
        right: list[tuple[int, Connection]] = []
        for conn in self.structured():
            if conn.peer_addr == addr:
                continue
            d_cw = directed_distance(addr, conn.peer_addr)
            right.append((d_cw, conn))
            left.append(((-d_cw) % (1 << 160), conn))
        right.sort(key=lambda t: (t[0], int(t[1].peer_addr)))
        left.sort(key=lambda t: (t[0], int(t[1].peer_addr)))
        picked: dict[BrunetAddress, Connection] = {}
        for _, conn in right[:per_side] + left[:per_side]:
            picked[conn.peer_addr] = conn
        return list(picked.values())
