"""160-bit Brunet addresses and ring arithmetic.

Nodes are ordered on a ring modulo 2**160 (paper Fig. 2).  The helpers here
define the two distance notions everything else uses:

* :func:`directed_distance` — clockwise distance from ``a`` to ``b``;
  "right" neighbours are the nearest by this measure.
* :func:`ring_distance` — min of the two directed distances; greedy routing
  moves to the connection minimizing this to the destination.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_left
from typing import Sequence

import numpy as np

ADDRESS_BITS = 160
ADDRESS_SPACE = 1 << ADDRESS_BITS


class BrunetAddress(int):
    """A point on the ring.  Subclasses int so arithmetic is free; the class
    only adds construction helpers and a compact repr."""

    def __new__(cls, value: int) -> "BrunetAddress":
        return super().__new__(cls, value % ADDRESS_SPACE)

    def __repr__(self) -> str:
        return f"baddr:{int(self):040x}"[:16] + "…"

    def hex(self) -> str:
        return f"{int(self):040x}"

    def offset(self, delta: int) -> "BrunetAddress":
        """Address ``delta`` steps clockwise (negative = counter-clockwise)."""
        return BrunetAddress(int(self) + delta)


def directed_distance(a: int, b: int) -> int:
    """Clockwise (increasing-address) distance from ``a`` to ``b``."""
    return (b - a) % ADDRESS_SPACE


def ring_distance(a: int, b: int) -> int:
    """Shortest ring distance between ``a`` and ``b``."""
    d = directed_distance(a, b)
    return min(d, ADDRESS_SPACE - d)


def address_from_ip(virtual_ip: str) -> BrunetAddress:
    """Deterministic virtual-IP → P2P address mapping used by IPOP.

    The paper's join experiment maps the same node to "10 different virtual
    IP addresses (mapping B to different locations on the P2P ring)" — this
    hash provides exactly that behaviour.
    """
    digest = hashlib.sha1(f"ipop:{virtual_ip}".encode()).digest()
    return BrunetAddress(int.from_bytes(digest, "big"))


def random_address(rng: np.random.Generator) -> BrunetAddress:
    """Uniformly random ring address from an RNG stream."""
    words = rng.integers(0, 1 << 32, size=5, dtype=np.uint64)
    value = 0
    for w in words:
        value = (value << 32) | int(w)
    return BrunetAddress(value)


def kleinberg_far_target(me: int, rng: np.random.Generator,
                         min_distance: int = 2) -> BrunetAddress:
    """Sample a structured-far target address.

    Distance is drawn log-uniformly (harmonic / Kleinberg small-world
    distribution, the algorithm of the paper's reference [37]), which yields
    the O((1/k)·log²n) expected greedy hop count quoted in §IV-A.

    ``min_distance`` should be about the caller's ring-neighbour spacing
    (Symphony-style local size estimation): sampling below it would mostly
    hit the caller's own arc and resolve back to itself.
    """
    lo = math.log2(max(2, min_distance))
    hi = ADDRESS_BITS - 1
    exponent = rng.uniform(min(lo, hi - 1.0), hi)
    distance = int(2.0 ** exponent)
    sign = 1 if rng.random() < 0.5 else -1
    return BrunetAddress(me + sign * distance)


# ---------------------------------------------------------------------------
# bisect primitives over a *sorted* array of ring addresses
#
# These are the shared lookup kernels behind the array-backed overlay state
# (per-node ring views in ConnectionTable, the global RingIndex, census and
# invariant sweeps).  ``addrs`` must be sorted ascending and non-empty; all
# three wrap around the ring, so index arithmetic is mod len(addrs).
# ---------------------------------------------------------------------------

def successor_index(addrs: Sequence[int], target: int) -> int:
    """Index of the first address at-or-clockwise-of ``target`` (wraps).

    ``addrs[successor_index(addrs, t)] == t`` when ``t`` is present.
    """
    return bisect_left(addrs, target) % len(addrs)


def predecessor_index(addrs: Sequence[int], target: int) -> int:
    """Index of the nearest address strictly counter-clockwise of
    ``target`` (wraps).  When ``target`` is present it is *not* its own
    predecessor — except in a one-element array, where there is no other
    choice."""
    return (bisect_left(addrs, target) - 1) % len(addrs)


def nearest_index(addrs: Sequence[int], target: int) -> int:
    """Index minimizing :func:`ring_distance` to ``target``.

    The global minimum is always at the successor or the predecessor; an
    exact tie (one candidate per side) goes to the lower address, matching
    the insertion-order-free tie-break used everywhere since PR 5.
    """
    n = len(addrs)
    i = bisect_left(addrs, target) % n
    j = (i - 1) % n
    if i == j:
        return i
    ai, aj = addrs[i], addrs[j]
    di = ring_distance(ai, target)
    dj = ring_distance(aj, target)
    if di < dj or (di == dj and ai < aj):
        return i
    return j


def is_between_cw(a: int, x: int, b: int) -> bool:
    """True when walking clockwise from ``a`` to ``b`` passes through ``x``
    (exclusive of both ends)."""
    if a == b:
        return x != a
    return 0 < directed_distance(a, x) < directed_distance(a, b)
