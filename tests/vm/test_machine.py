"""WowVm: images, CPU model, IPOP restart, WAN migration."""

import pytest

from repro.sim.process import Process, WaitSignal
from repro.sim.units import MB
from repro.vm.image import DEFAULT_IMAGE, VmImage
from tests.conftest import make_mini_testbed


@pytest.fixture()
def bed():
    return make_mini_testbed(seed=7)


class TestImage:
    def test_clone_tracking(self):
        img = VmImage("base")
        img.clone("n1").clone("n2")
        assert img.clone_count == 2

    def test_with_software_derives_new_image(self):
        derived = DEFAULT_IMAGE.with_software("condor-6.8")
        assert derived.has_software("condor")
        assert not DEFAULT_IMAGE.has_software("condor")
        assert derived.name.startswith(DEFAULT_IMAGE.name)

    def test_base_has_ipop(self):
        assert DEFAULT_IMAGE.has_software("ipop")


class TestCpuModel:
    def test_compute_time_scales_with_speed(self, bed):
        sim, tb = bed
        fast = tb.vm(30)  # lsu, 1.33x
        slow = tb.vm(32)  # ncgrid, 0.54x
        calib = tb.deployment.calib
        w = 10.0
        t_fast = fast.host.compute_time(w * (1 + calib.virt_overhead))
        t_slow = slow.host.compute_time(w * (1 + calib.virt_overhead))
        assert t_slow / t_fast == pytest.approx(1.33 / 0.54, rel=0.01)

    def test_load_inflates_compute(self, bed):
        sim, tb = bed
        vm = tb.vm(3)
        base = vm.host.compute_time(10.0)
        vm.host.load = 1.0
        assert vm.host.compute_time(10.0) == pytest.approx(2 * base)
        vm.host.load = 0.0

    def test_run_compute_duration(self, bed):
        sim, tb = bed
        vm = tb.vm(3)  # speed 1.0
        t0 = sim.now
        proc = vm.run_compute(10.0)
        sim.run(until=sim.now + 60)
        assert proc.done.fired
        expected = 10.0 * (1 + tb.deployment.calib.virt_overhead)
        # fired via a 0-delay event after the last slice
        assert sim.now >= t0


class TestRestartAndMigration:
    def test_restart_ipop_rejoins_with_same_address(self, bed):
        sim, tb = bed
        vm = tb.vm(5)
        addr_before = vm.addr
        vm.restart_ipop()
        sim.run(until=sim.now + 60)
        assert vm.node.addr == addr_before
        assert vm.node.in_ring
        assert tb.deployment.resolve(vm.addr) is vm.node

    def test_migration_moves_site_and_rejoins(self, bed):
        sim, tb = bed
        vm = tb.vm(6)  # UFL
        dest = tb.deployment.sites["nwu"]
        done = vm.migrate(dest, transfer_size=MB(40.0))
        sim.run(until=sim.now + 600)
        assert done.fired
        record = done.value
        assert record.src_site == "ufl" and record.dst_site == "nwu"
        assert vm.host.site is dest
        sim.run(until=sim.now + 120)
        assert vm.node.in_ring
        assert record.outage > 0

    def test_migration_outage_scales_with_image_size(self, bed):
        sim, tb = bed
        vm_small = tb.vm(7)
        vm_large = tb.vm(8)
        dest = tb.deployment.sites["lsu"]
        d1 = vm_small.migrate(dest, transfer_size=MB(10.0))
        sim.run(until=sim.now + 2000)
        d2 = vm_large.migrate(dest, transfer_size=MB(100.0))
        sim.run(until=sim.now + 2000)
        assert d1.fired and d2.fired
        assert d2.value.outage > d1.value.outage

    def test_suspension_pauses_compute(self, bed):
        sim, tb = bed
        vm = tb.vm(9)
        proc = vm.run_compute(30.0)
        sim.run(until=sim.now + 5)
        done = vm.migrate(tb.deployment.sites["nwu"],
                          transfer_size=MB(30.0))
        sim.run(until=sim.now + 2000)
        assert done.fired and proc.done.fired
        # compute must have taken at least the outage longer than nominal
        record = done.value
        assert record.outage > 20.0

    def test_cpu_speed_change_on_migration(self, bed):
        sim, tb = bed
        vm = tb.vm(10)
        done = vm.migrate(tb.deployment.sites["nwu"],
                          transfer_size=MB(10.0), dest_cpu_speed=0.83)
        sim.run(until=sim.now + 600)
        assert done.fired
        assert vm.cpu_speed == 0.83
        assert vm.host.cpu_speed == 0.83
