"""OpenPBS-style batch system (the Fig. 7/8 workload).

:class:`PbsServer` is the head node: a FIFO queue, a single-threaded
scheduler whose per-job dispatch performs a chain of synchronous RPCs to
the worker's MOM, and completion bookkeeping.  :class:`PbsMom` executes
jobs on a worker VM: stage input over NFS, compute, write output over NFS,
report completion.
"""

from repro.middleware.pbs.job import JobRecord, JobSpec
from repro.middleware.pbs.server import PbsServer
from repro.middleware.pbs.mom import PbsMom

__all__ = ["JobSpec", "JobRecord", "PbsServer", "PbsMom"]
