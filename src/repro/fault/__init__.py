"""Deterministic fault injection and churn for the simulation.

The paper's headline claim is *self-organization*: nodes crash, restart,
migrate and NAT mappings expire, yet the ring re-converges and virtual-IP
routes come back (§V-E).  This package is the harness that proves it:

* :mod:`repro.fault.schedule` — :class:`FaultSchedule`, a scriptable,
  seed-deterministic schedule of crashes, restarts, seed death, link
  blackouts, burst loss and NAT faults;
* :mod:`repro.fault.rules` — the path-fault rules the schedule installs
  into :class:`~repro.phys.network.Internet`.

The liveness layer that *detects* the injected failures (keep-alive
pings, the ``PingReply.known`` zombie check, the hard ``last_heard``
timeout) lives with the protocol in :mod:`repro.brunet`.
"""

from repro.fault.rules import Blackout, BurstLoss, PathFault
from repro.fault.schedule import FaultEvent, FaultSchedule

__all__ = [
    "Blackout",
    "BurstLoss",
    "FaultEvent",
    "FaultSchedule",
    "PathFault",
]
