"""Array-backed ring view vs brute-force object-scan oracle (ISSUE 9).

`ConnectionTable.closest_to`/`_directional_neighbor`/`neighbors_of` and
`routing._next_hop_scan` now answer from sorted parallel arrays with
bisect.  Each test replays the pre-refactor linear scan (the oracle,
copied verbatim from the old implementations) over the same table and
asserts the decisions are identical — including ring wraparound, exact
equidistant ties (one candidate per side), destinations present in the
table, excluded direct links and both approach sides.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brunet.address import (ADDRESS_SPACE, BrunetAddress,
                                  directed_distance, ring_distance)
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.routing import _metric, _next_hop_scan
from repro.brunet.table import ConnectionTable
from repro.phys.endpoints import Endpoint


def _table(me, addrs):
    table = ConnectionTable(BrunetAddress(me))
    for i, a in enumerate(addrs):
        table.add(Connection(BrunetAddress(a), Endpoint("1.1.1.1", i + 1),
                             ConnectionType.STRUCTURED_NEAR, 0.0))
    return table


# -- oracles: the pre-array linear scans, verbatim -------------------------

def oracle_closest_to(table, dest):
    best, best_d = None, None
    for conn in table.structured():
        d = ring_distance(conn.peer_addr, dest)
        if (best_d is None or d < best_d
                or (d == best_d and conn.peer_addr < best.peer_addr)):
            best, best_d = conn, d
    return best


def oracle_directional(table, clockwise):
    best, best_d = None, None
    for conn in table.structured():
        d = (directed_distance(table.my_addr, conn.peer_addr) if clockwise
             else directed_distance(conn.peer_addr, table.my_addr))
        if d == 0:
            continue
        if (best_d is None or d < best_d
                or (d == best_d and conn.peer_addr < best.peer_addr)):
            best, best_d = conn, d
    return best


def oracle_next_hop_scan(table, my_addr, dest, exclude_dest_link=False,
                         approach=None):
    if not exclude_dest_link and approach is None:
        direct = table.get(dest)
        if direct is not None:
            return direct
    my_d = _metric(my_addr, dest, approach)
    best, best_d = None, my_d
    for conn in table.structured():
        if conn.peer_addr == dest and (exclude_dest_link or approach):
            continue
        d = _metric(conn.peer_addr, dest, approach)
        if d < best_d or (d == best_d and best is not None
                          and conn.peer_addr < best.peer_addr):
            best, best_d = conn, d
    return best


def oracle_neighbors_of(table, addr, per_side=1):
    left, right = [], []
    for conn in table.structured():
        if conn.peer_addr == addr:
            continue
        d_cw = directed_distance(addr, conn.peer_addr)
        right.append((d_cw, conn))
        left.append(((-d_cw) % ADDRESS_SPACE, conn))
    right.sort(key=lambda t: (t[0], int(t[1].peer_addr)))
    left.sort(key=lambda t: (t[0], int(t[1].peer_addr)))
    picked = {}
    for _, conn in right[:per_side] + left[:per_side]:
        picked.setdefault(conn.peer_addr, conn)
    return list(picked.values())


# -- strategies ------------------------------------------------------------
# Small offsets around probe points make wraparound and exact-tie cases
# (peers at probe ± d) common instead of measure-zero.

offsets = st.integers(min_value=-64, max_value=64)
anchors = st.sampled_from(
    [0, 1, 100, ADDRESS_SPACE // 2, ADDRESS_SPACE - 1])
near_addr = st.builds(lambda a, o: (a + o) % ADDRESS_SPACE, anchors, offsets)
any_addr = st.one_of(near_addr, st.integers(0, ADDRESS_SPACE - 1))
addr_lists = st.lists(any_addr, min_size=0, max_size=10, unique=True)


@given(me=any_addr, addrs=addr_lists, dest=any_addr)
@settings(max_examples=300, deadline=None)
def test_closest_to_matches_oracle(me, addrs, dest):
    table = _table(me, addrs)
    dest = BrunetAddress(dest)
    got, want = table.closest_to(dest), oracle_closest_to(table, dest)
    assert (got is None) == (want is None)
    if got is not None:
        assert got.peer_addr == want.peer_addr


@given(me=any_addr, addrs=addr_lists)
@settings(max_examples=300, deadline=None)
def test_directional_neighbor_matches_oracle(me, addrs):
    table = _table(me, addrs)
    for clockwise in (True, False):
        got = table._directional_neighbor(clockwise)
        want = oracle_directional(table, clockwise)
        assert (got is None) == (want is None), clockwise
        if got is not None:
            assert got.peer_addr == want.peer_addr, clockwise


@given(me=any_addr, addrs=addr_lists, dest=any_addr,
       exclude=st.booleans(),
       approach=st.sampled_from([None, "left", "right"]))
@settings(max_examples=400, deadline=None)
def test_next_hop_scan_matches_oracle(me, addrs, dest, exclude, approach):
    table = _table(me, addrs)
    me, dest = BrunetAddress(me), BrunetAddress(dest)
    got = _next_hop_scan(table, me, dest, exclude, approach)
    want = oracle_next_hop_scan(table, me, dest, exclude, approach)
    assert (got is None) == (want is None)
    if got is not None:
        assert got.peer_addr == want.peer_addr
        assert got is want  # same Connection object, not just same peer


@given(me=any_addr, addrs=addr_lists, target=any_addr,
       per_side=st.integers(min_value=1, max_value=4))
@settings(max_examples=300, deadline=None)
def test_neighbors_of_matches_oracle(me, addrs, target, per_side):
    table = _table(me, addrs)
    target = BrunetAddress(target)
    got = table.neighbors_of(target, per_side=per_side)
    want = oracle_neighbors_of(table, target, per_side=per_side)
    assert [c.peer_addr for c in got] == [c.peer_addr for c in want]


def test_dest_present_in_table_with_exclusion():
    """Excluded direct link: the scan must step past dest in the array."""
    table = _table(0, [100, 200, 300])
    dest = BrunetAddress(200)
    got = _next_hop_scan(table, BrunetAddress(0), dest,
                         exclude_dest_link=True)
    want = oracle_next_hop_scan(table, BrunetAddress(0), dest,
                                exclude_dest_link=True)
    assert got is want is not None
    assert got.peer_addr != dest
