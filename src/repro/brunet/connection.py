"""Overlay connections.

A :class:`Connection` is "an overlay link between P2P nodes over which
packets are routed" (§IV).  It remembers the peer's address, the physical
endpoint that worked during linking, and keep-alive bookkeeping.

A node pair needs only one physical link, but the link can serve several
roles at once — it may simultaneously be a structured-near connection and a
shortcut — so a connection carries a *set* of type labels.  Overlords manage
labels; the link itself is shared.
"""

from __future__ import annotations

import enum
from typing import Iterable, Union

from repro.brunet.address import BrunetAddress
from repro.phys.endpoints import Endpoint


class ConnectionType(str, enum.Enum):
    """Roles an overlay link can play (paper §IV-A/§IV-E)."""

    LEAF = "leaf"
    STRUCTURED_NEAR = "structured.near"
    STRUCTURED_FAR = "structured.far"
    SHORTCUT = "shortcut"

    @property
    def structured(self) -> bool:
        """Structured connections participate in greedy routing."""
        return self in (ConnectionType.STRUCTURED_NEAR,
                        ConnectionType.STRUCTURED_FAR,
                        ConnectionType.SHORTCUT)


class Connection:
    """One established overlay link (one node's view of it)."""

    __slots__ = ("peer_addr", "remote_endpoint", "types", "established_at",
                 "closed", "last_heard", "unanswered_pings", "packets_sent",
                 "packets_received", "bytes_sent", "_table")

    def __init__(self, peer_addr: BrunetAddress, remote_endpoint: Endpoint,
                 conn_type: Union[ConnectionType, Iterable[ConnectionType]],
                 now: float):
        self.peer_addr = peer_addr
        self.remote_endpoint = remote_endpoint
        if isinstance(conn_type, ConnectionType):
            self.types: set[ConnectionType] = {conn_type}
        else:
            self.types = set(conn_type)
        self.established_at = now
        self.closed = False
        self.last_heard = now
        self.unanswered_pings = 0
        self.packets_sent = 0
        self.packets_received = 0
        self.bytes_sent = 0
        # back-reference set by ConnectionTable.add so label changes
        # invalidate the table's routing caches
        self._table = None

    @property
    def structured(self) -> bool:
        """True when any label participates in greedy routing."""
        return any(t.structured for t in self.types)

    @property
    def conn_type(self) -> ConnectionType:
        """Most specific label, for display/trace purposes."""
        for t in (ConnectionType.STRUCTURED_NEAR, ConnectionType.SHORTCUT,
                  ConnectionType.STRUCTURED_FAR, ConnectionType.LEAF):
            if t in self.types:
                return t
        return next(iter(self.types))  # pragma: no cover - types never empty

    def add_type(self, conn_type: ConnectionType) -> None:
        """Give the link an additional role label."""
        if conn_type not in self.types:
            self.types.add(conn_type)
            if self._table is not None:
                self._table.bump_version()

    def discard_type(self, conn_type: ConnectionType) -> None:
        """Remove a role label (the link survives if others remain)."""
        if conn_type in self.types:
            self.types.discard(conn_type)
            if self._table is not None:
                self._table.bump_version()

    def heard_from(self, now: float) -> None:
        """Any traffic from the peer refreshes keep-alive state."""
        self.last_heard = now
        self.unanswered_pings = 0

    def __repr__(self) -> str:  # pragma: no cover
        labels = "+".join(sorted(t.value for t in self.types))
        return f"<Conn {labels} peer={self.peer_addr!r} via {self.remote_endpoint}>"
