"""Observability hub: one handle per simulation for metrics, spans and
the flight recorder.

Every :class:`~repro.sim.engine.Simulator` owns an :class:`Observability`
(``sim.obs``).  Metrics are **on by default** — child-instrument
increments are cheap enough for hot paths — while span tracing and the
flight recorder are opt-in (:meth:`enable_spans` /
:meth:`enable_recorder`), because they allocate per event.

:meth:`export` writes the standard run-export layout consumed by the
inspector CLI (``python -m repro.obs.inspect``)::

    <dir>/metrics.jsonl   one JSON object per metric series
    <dir>/metrics.csv     the same, flattened
    <dir>/metrics.prom    Prometheus text exposition of the same series
    <dir>/spans.jsonl     one JSON object per span (when spans enabled)
    <dir>/events.jsonl    flight-recorder spill (when recorder enabled)
    <dir>/violations.jsonl  invariant-audit findings (when auditing)
    <dir>/manifest.json   seed/time/trace-id index
    <dir>/profile.json    kernel self-profile (when profiling enabled)
    <dir>/profile.folded  flamegraph collapsed stacks (ditto)

All exported values derive from simulation state only, so a fixed seed
produces byte-identical exports — except the two ``profile.*`` files,
which carry wall-clock timings and are therefore *not* listed in the
manifest: with or without profiling, the deterministic half of the
bundle is byte-identical (pinned by ``tests/obs/test_prof.py``).
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.metrics import MetricsRegistry, SectorRollup
from repro.obs.prof import KernelProfiler
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import SpanCollector

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: default per-kind span sampling used by :meth:`Observability.enable_spans`
DEFAULT_SAMPLE = {"ip": 1, "ctm": 1}

#: node populations at or above this default to aggregated metrics
#: (``node_series=False``) in :meth:`Observability.scale_to` — per-node
#: label series cost O(n) memory and export lines, which at 10k nodes
#: swamps the bundle without adding signal (see DESIGN.md §16)
NODE_SERIES_MAX = 1000


class Observability:
    """Metrics + spans + flight recorder for one simulator."""

    __slots__ = ("sim", "metrics", "spans", "recorder", "auditor",
                 "profiler", "rollup")

    def __init__(self, sim: "Simulator", metrics: bool = True):
        self.sim = sim
        self.metrics = MetricsRegistry(enabled=metrics)
        self.spans = SpanCollector(enabled=False)
        self.recorder: Optional[FlightRecorder] = None
        # invariant auditor (repro.check); registers itself when created
        self.auditor = None
        #: kernel self-profiler (see :meth:`enable_profiler`)
        self.profiler: Optional[KernelProfiler] = None
        #: address-ring sector rollup (see :meth:`enable_rollup`)
        self.rollup: Optional[SectorRollup] = None
        if metrics:
            self.metrics.add_collector(self._collect_sim)

    def _collect_sim(self, m: MetricsRegistry) -> None:
        m.gauge("sim.events_processed").set(self.sim.events_processed)
        m.gauge("sim.now").set(self.sim.now)

    # -- switches -------------------------------------------------------
    def enable_spans(self, sample: Optional[dict[str, int]] = None,
                     max_spans: int = 200_000) -> SpanCollector:
        """Turn on causal tracing.  ``sample`` maps trace kinds to
        sampling periods (see :class:`~repro.obs.spans.SpanCollector`);
        the default traces every virtual-IP packet and every CTM."""
        self.spans = SpanCollector(enabled=True,
                                   sample=dict(sample or DEFAULT_SAMPLE),
                                   max_spans=max_spans)
        return self.spans

    def enable_recorder(self, capacity: int = 256,
                        spill_path: Optional[str] = None,
                        max_bytes: Optional[int] = None,
                        compress_rotated: bool = False) -> FlightRecorder:
        """Turn on the per-node flight recorder.  ``max_bytes`` bounds
        each spill segment (rotation; optionally gzip-compressed) so long
        churn runs cannot fill the disk."""
        self.recorder = FlightRecorder(capacity=capacity,
                                       spill_path=spill_path,
                                       max_bytes=max_bytes,
                                       compress_rotated=compress_rotated)
        return self.recorder

    def enable_profiler(self, top_k: int = 32, sample_every: int = 1024,
                        stride: int = 4) -> KernelProfiler:
        """Attach the kernel self-profiler.  Read-only: the simulation's
        event trajectory (and hence the deterministic export bundle) is
        unchanged; only wall-time attribution is collected.  ``stride``
        is the timing sample stride (every event is counted, every
        stride-th wall-timed; 1 = time everything)."""
        self.profiler = KernelProfiler(top_k=top_k,
                                       sample_every=sample_every,
                                       stride=stride)
        self.sim.profiler = self.profiler
        return self.profiler

    def scale_to(self, n_nodes: int, nodes_fn: Optional[Callable] = None,
                 node_series: Optional[bool] = None,
                 sectors: int = 16) -> MetricsRegistry:
        """Right-size the metrics pipeline for an ``n_nodes`` overlay.

        Call once at experiment setup, *before* nodes are built.  With
        ``node_series=None`` (the default) per-node label series stay on
        below :data:`NODE_SERIES_MAX` nodes and collapse into aggregate
        series at or above it; pass ``True``/``False`` to override the
        threshold explicitly.  When ``nodes_fn`` is given and per-node
        series are off, a :class:`~repro.obs.metrics.SectorRollup` over
        that population is registered instead, so large runs keep an
        O(sectors) spatial view of the ring in the export bundle.
        """
        if node_series is None:
            node_series = n_nodes < NODE_SERIES_MAX
        self.metrics.node_series = node_series
        if nodes_fn is not None and not node_series and self.rollup is None:
            self.enable_rollup(nodes_fn, sectors=sectors)
        return self.metrics

    def enable_rollup(self, nodes_fn: Callable, sectors: int = 16,
                      space_bits: int = 160) -> SectorRollup:
        """Register an address-ring sector rollup over the (live) node
        population returned by ``nodes_fn()``; the per-sector gauges are
        refreshed at every export/collector sweep."""
        self.rollup = SectorRollup(self.metrics, nodes_fn,
                                   sectors=sectors, space_bits=space_bits)
        self.metrics.add_collector(self.rollup.collect)
        return self.rollup

    # -- event fan-in ---------------------------------------------------
    def event(self, t: float, node: str, category: str,
              data: Optional[dict] = None) -> None:
        """Feed one node event to the flight recorder (no-op when the
        recorder is off)."""
        if self.recorder is not None:
            self.recorder.record(t, node, category, data)

    # -- export ---------------------------------------------------------
    def export(self, out_dir: str, seed: Optional[int] = None) -> dict:
        """Write the run-export bundle into ``out_dir``; returns the
        manifest dict."""
        os.makedirs(out_dir, exist_ok=True)
        manifest: dict = {
            "seed": seed,
            "sim_time": self.sim.now,
            "events_processed": self.sim.events_processed,
            "files": {},
            "traces": [],
        }
        path = self.metrics.export_jsonl(
            os.path.join(out_dir, "metrics.jsonl"))
        manifest["files"]["metrics"] = os.path.basename(path)
        path = self.metrics.export_csv(
            os.path.join(out_dir, "metrics.csv"))
        manifest["files"]["metrics_csv"] = os.path.basename(path)
        path = self.metrics.export_prom(
            os.path.join(out_dir, "metrics.prom"))
        manifest["files"]["metrics_prom"] = os.path.basename(path)
        if self.spans.enabled:
            path = self.spans.export_jsonl(
                os.path.join(out_dir, "spans.jsonl"))
            manifest["files"]["spans"] = os.path.basename(path)
            manifest["spans_dropped"] = self.spans.dropped
            for tid in self.spans.trace_ids():
                root = self.spans.roots.get(tid)
                root_span = next((s for s in self.spans.spans
                                  if s.id == root), None)
                manifest["traces"].append({
                    "trace": tid,
                    "kind": self.spans.trace_kind.get(tid, "?"),
                    "root": root_span.name if root_span else None,
                    "node": root_span.node if root_span else None,
                    "t0": root_span.t0 if root_span else None,
                    "duration": (root_span.duration if root_span
                                 else None),
                    "spans": len(self.spans.by_trace(tid)),
                })
        if self.recorder is not None:
            self.recorder.close()
            if self.recorder.spill_path:
                manifest["files"]["events"] = os.path.basename(
                    self.recorder.spill_path)
        if self.auditor is not None:
            path = self.auditor.export_jsonl(
                os.path.join(out_dir, "violations.jsonl"))
            manifest["files"]["violations"] = os.path.basename(path)
            manifest["audit"] = self.auditor.summary()
        if self.profiler is not None:
            # wall-clock profile: written beside the bundle but kept OUT
            # of the manifest so the deterministic half stays
            # byte-identical with profiling on or off
            self.profiler.export_json(
                os.path.join(out_dir, "profile.json"))
            self.profiler.export_folded(
                os.path.join(out_dir, "profile.folded"))
        with open(os.path.join(out_dir, "manifest.json"), "w") as fh:
            json.dump(manifest, fh, sort_keys=True, indent=1)
            fh.write("\n")
        return manifest
