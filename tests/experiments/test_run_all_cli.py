"""The wow-experiments CLI."""

import pytest

from repro.experiments import run_all


def test_list_prints_all_experiments(capsys):
    assert run_all.main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in run_all.EXPERIMENTS:
        assert name in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        run_all.main(["not-an-experiment"])


def test_fig6_via_cli(capsys):
    assert run_all.main(["fig6", "--scale", "0.15", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "completed without restart  True" in out.replace("   ", "  ") \
        or "True" in out


def test_joincdf_via_cli(capsys):
    # the smallest CLI path: patch the trial count via direct module call
    from repro.experiments import join_latency_cdf
    result = join_latency_cdf.run(seed=1, scale=0.15, trials=3, window=220.0)
    join_latency_cdf.report(result)
    out = capsys.readouterr().out
    assert "routable within 10 s" in out
