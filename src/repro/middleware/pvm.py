"""PVM master/worker runtime (the Table III workload).

fastDNAml-PVM "is based on a master-workers model, where the master
maintains a task pool and dispatches tasks to workers dynamically" and
"needs to synchronize many times during its execution, to select the best
tree at each round" (§V-D2).  Task and result messages are bulk transfers
over the live overlay route, so the master's fan-out funnels through its
few overlay neighbours (slow PlanetLab routers) until shortcuts form —
the mechanism behind the 24% no-shortcut penalty.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.ipop.transfer import OverlayTransfer
from repro.middleware.rpc import RpcClient, RpcServer
from repro.sim.process import Process, Signal, Timeout, WaitSignal

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import WowVm

_task_ids = itertools.count(1)

PVM_DAEMON_PORT = 15010


@dataclass
class PvmTask:
    """One unit of master-dispatched work."""

    work_ref: float
    send_size: float
    recv_size: float
    task_id: int = field(default_factory=lambda: next(_task_ids))
    result: Optional[float] = None  # e.g. a tree log-likelihood
    worker: str = ""
    dispatched_at: float = 0.0
    completed_at: float = 0.0


class PvmWorker:
    """Worker daemon: computes tasks pushed over the overlay.

    The pvmd answers the master's blocking-send acknowledgements — PVM
    messages ride TCP, so every ``pvm_send`` costs the master a round trip
    on the live virtual-network path."""

    def __init__(self, vm: "WowVm", master: "PvmMaster"):
        self.vm = vm
        self.master = master
        self.busy = False
        self.tasks_done = 0
        try:
            self.rpc_server = RpcServer(vm, PVM_DAEMON_PORT,
                                        lambda m, b, s: {"ack": b},
                                        cpu_per_request=0.002)
        except ValueError:
            # one pvmd per VM: a worker enrolled in an earlier master run
            # already bound the daemon port, and its ack handler serves
            # every master
            self.rpc_server = None

    def deliver(self, task: PvmTask) -> None:
        """Called when the task message has fully arrived."""
        self.busy = True
        Process(self.vm.sim, self._execute(task),
                name=f"pvm.{self.vm.name}.t{task.task_id}")

    def _execute(self, task: PvmTask):
        overhead = getattr(self.vm.deployment.calib, "pvm_task_overhead", 0.0)
        yield from self.vm.compute(task.work_ref + overhead)
        # ship the result back to the master over the overlay
        xfer = OverlayTransfer(self.vm.deployment.broker, self.vm.addr,
                               self.master.vm.addr, task.recv_size,
                               name=f"pvm.result.{task.task_id}")
        yield WaitSignal(xfer.done)
        self.busy = False
        self.tasks_done += 1
        self.master.on_result(task, self)


class PvmMaster:
    """Master daemon: owns the task pool and the per-round barrier."""

    def __init__(self, vm: "WowVm"):
        self.vm = vm
        self.sim = vm.sim
        self.calib = vm.deployment.calib
        self.workers: list[PvmWorker] = []
        self._idle: list[PvmWorker] = []
        self._pool: list[PvmTask] = []
        self._outstanding = 0
        self._wake = Signal(self.sim, "pvm.wake")
        self.rpc = RpcClient(vm)
        self.round_times: list[float] = []
        self.results: list[PvmTask] = []

    def add_worker(self, vm: "WowVm") -> PvmWorker:
        """Enrol a VM in the worker pool."""
        worker = PvmWorker(vm, self)
        self.workers.append(worker)
        self._idle.append(worker)
        return worker

    # ------------------------------------------------------------------
    def run_rounds(self, rounds: list[list[PvmTask]],
                   round_overhead: float | None = None) -> Signal:
        """Execute rounds with a synchronisation barrier after each;
        returns a latched Signal fired with the total elapsed time.

        ``round_overhead`` (default from the calibration config) covers the
        master's per-round best-tree selection and result broadcast."""
        if round_overhead is None:
            round_overhead = getattr(self.calib, "pvm_round_overhead", 0.2)
        done = Signal(self.sim, "pvm.done", latch=True)
        Process(self.sim, self._run(rounds, round_overhead, done),
                name="pvm.master")
        return done

    def _run(self, rounds: list[list[PvmTask]], round_overhead: float,
             done: Signal):
        started = self.sim.now
        for tasks in rounds:
            round_start = self.sim.now
            self._pool = list(tasks)
            self._outstanding = 0
            while self._pool or self._outstanding:
                while self._pool and self._idle:
                    task = self._pool.pop(0)
                    worker = self._idle.pop(0)
                    # master CPU per dispatch
                    yield Timeout(self.vm.host.compute_time(
                        self.calib.pvm_master_cpu))
                    self._dispatch(task, worker)
                    # blocking send: pvm_send over TCP costs the master a
                    # round trip to the pvmd before the next dispatch —
                    # this is where no-shortcut multi-hop RTTs bite
                    yield WaitSignal(self.rpc.call(
                        worker.vm.virtual_ip, PVM_DAEMON_PORT,
                        "task_ready", task.task_id))
                if self._pool or self._outstanding:
                    yield WaitSignal(self._wake)
            # barrier reached: select the best tree…
            yield Timeout(self.vm.host.compute_time(round_overhead))
            # …and broadcast it: pvm_mcast is a loop of blocking TCP sends,
            # one per worker, each riding the live overlay path — the
            # "synchronize many times during its execution" cost of §V-D2
            bcast = getattr(self.calib, "pvm_broadcast_size", 0.0)
            if bcast > 0:
                for worker in self.workers:
                    xfer = OverlayTransfer(
                        self.vm.deployment.broker, self.vm.addr,
                        worker.vm.addr, bcast,
                        name=f"pvm.bcast.{len(self.round_times)}")
                    yield WaitSignal(xfer.done)
            self.round_times.append(self.sim.now - round_start)
        done.fire(self.sim.now - started)

    def _dispatch(self, task: PvmTask, worker: PvmWorker) -> None:
        self._outstanding += 1
        task.worker = worker.vm.name
        task.dispatched_at = self.sim.now
        xfer = OverlayTransfer(self.vm.deployment.broker, self.vm.addr,
                               worker.vm.addr, task.send_size,
                               name=f"pvm.task.{task.task_id}",
                               on_complete=lambda _x: worker.deliver(task))

    def on_result(self, task: PvmTask, worker: PvmWorker) -> None:
        """Worker callback: a task's result message has fully arrived."""
        task.completed_at = self.sim.now
        self.results.append(task)
        self._outstanding -= 1
        self._idle.append(worker)
        self._wake.fire()
