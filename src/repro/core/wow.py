"""Deployment: one WOW system instance.

Wires together the physical internet, the bandwidth broker, the overlay
node registry and the VM factory.  Experiments build either ad-hoc
deployments or the paper testbed (:mod:`repro.core.testbed`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.brunet.address import BrunetAddress, random_address
from repro.brunet.config import BrunetConfig
from repro.brunet.node import BrunetNode
from repro.brunet.ring import RingIndex
from repro.brunet.uri import Uri
from repro.core.config import CalibrationConfig, SiteSpec
from repro.ipop.bandwidth import BandwidthBroker
from repro.phys.latency import LatencyModel
from repro.phys.nat import FirewallPolicy, NatSpec
from repro.phys.network import Internet
from repro.phys.topology import Site

if TYPE_CHECKING:  # pragma: no cover
    from repro.phys.host import Host
    from repro.sim.engine import Simulator
    from repro.vm.machine import WowVm


class Deployment:
    """Container and factory for one simulated WOW."""

    def __init__(self, sim: "Simulator",
                 calib: Optional[CalibrationConfig] = None,
                 brunet_config: Optional[BrunetConfig] = None):
        self.sim = sim
        self.calib = calib or CalibrationConfig()
        self.brunet_config = brunet_config or BrunetConfig()
        latency = LatencyModel(sim.rng.stream("phys.latency"),
                               default_wan_latency=self.calib.default_wan_latency,
                               default_loss=self.calib.wan_loss)
        for pair, one_way in self.calib.wan_latency.items():
            a, b = sorted(pair)
            latency.set_pair(a, b, one_way)
        self.internet = Internet(sim, latency)
        self.broker = BandwidthBroker(
            sim, self.resolve, default_wan=self.calib.default_wan_capacity)
        self.broker.set_wan_capacity("ufl", "nwu",
                                     self.calib.ufl_nwu_wan_capacity)
        self.sites: dict[str, Site] = {}
        self.nodes_by_addr: dict[BrunetAddress, BrunetNode] = {}
        #: global sorted ring index mirroring ``nodes_by_addr`` — census
        #: and invariant sweeps bisect it instead of re-sorting the dict
        self.ring_index = RingIndex()
        self.bootstrap_uris: list[Uri] = []
        self.router_nodes: list[BrunetNode] = []
        self.vms: dict[str, "WowVm"] = {}
        self._dht_enabled = False
        self._dht_replication = 1

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_site(self, spec: SiteSpec) -> Site:
        if spec.name in self.sites:
            return self.sites[spec.name]
        nat_spec = None
        firewall = None
        if spec.subnet is not None:
            nat_spec = NatSpec.cone(hairpin=spec.nat_hairpin)
        if spec.nat_open_port_only:
            firewall = FirewallPolicy(open_udp_ports=frozenset(
                {self.brunet_config.default_port}))
        site = Site(self.internet, spec.name, subnet=spec.subnet,
                    nat_spec=nat_spec, firewall=firewall,
                    lan_latency=spec.lan_latency)
        lan_capacity = spec.lan_capacity
        if spec.name == "ufl":
            lan_capacity = self.calib.ufl_lan_capacity
        elif spec.name == "nwu":
            lan_capacity = self.calib.nwu_lan_capacity
        self.broker.set_lan_capacity(spec.name, lan_capacity)
        self.sites[spec.name] = site
        return site

    def add_public_site(self, name: str) -> Site:
        return self.add_site(SiteSpec(name, None))

    # ------------------------------------------------------------------
    # overlay nodes
    # ------------------------------------------------------------------
    def register_node(self, node: BrunetNode) -> None:
        self.nodes_by_addr[node.addr] = node
        self.ring_index.add(node.addr, node)
        if self._dht_enabled and not hasattr(node, "dht"):
            from repro.brunet.dht import DhtNode
            DhtNode(node, replication=self._dht_replication)

    def unregister_node(self, node: BrunetNode) -> None:
        if self.nodes_by_addr.get(node.addr) is node:
            self.nodes_by_addr.pop(node.addr)
            self.ring_index.discard(node.addr, node)

    def resolve(self, addr: BrunetAddress) -> Optional[BrunetNode]:
        """Registry lookup used by routing previews and the flow broker."""
        return self.nodes_by_addr.get(addr)

    def add_router_node(self, host: "Host", addr: Optional[BrunetAddress] = None,
                        seed: bool = False, start: bool = True,
                        name: str = "") -> BrunetNode:
        """One overlay-router (no tap) node, e.g. a PlanetLab router."""
        if addr is None:
            addr = random_address(self.sim.rng.stream("deploy.addresses"))
        node = BrunetNode(self.sim, host, addr, self.brunet_config,
                          name=name or f"router.{host.name}.{len(self.router_nodes)}")
        if start:
            node.start(self.bootstrap_uris)
            self.register_node(node)
        if seed:
            self.bootstrap_uris.append(Uri.udp(host.ip, node.port))
        self.router_nodes.append(node)
        return node

    def add_planetlab(self, n_hosts: int = 20, n_routers: int = 118,
                      n_seeds: int = 3, stagger: float = 0.6) -> Site:
        """The public bootstrap overlay: ``n_routers`` IPOP router nodes
        spread over ``n_hosts`` PlanetLab machines (§V-A)."""
        site = self.add_public_site("planetlab")
        cap_rng = self.sim.rng.stream("planetlab.capacity")
        calib = self.calib
        hosts = []
        for i in range(n_hosts):
            host = site.add_host(f"pl{i}",
                                 proc_delay_mean=calib.planetlab_proc_delay,
                                 extra_loss=calib.planetlab_extra_loss)
            host.ipop_forward_capacity = float(
                calib.planetlab_capacity_median
                * cap_rng.lognormal(0.0, calib.planetlab_capacity_sigma))
            hosts.append(host)
        for j in range(n_routers):
            host = hosts[j % n_hosts]
            node = self.add_router_node(host, seed=(j < n_seeds), start=False,
                                        name=f"plnode{j}")
            # stagger joins so the bootstrap ring assembles cleanly
            self.sim.schedule(j * stagger, self._start_router, node)
        return site

    def _start_router(self, node: BrunetNode) -> None:
        node.start(self.bootstrap_uris)
        self.register_node(node)

    # ------------------------------------------------------------------
    # VMs
    # ------------------------------------------------------------------
    def create_vm(self, name: str, virtual_ip: str, site: Site,
                  cpu_speed: float = 1.0, image=None,
                  extra_nats=None, start: bool = False,
                  interface_mode: str = "nat") -> "WowVm":
        from repro.vm.machine import WowVm  # local import to avoid cycle
        if name in self.vms:
            raise ValueError(f"duplicate VM name {name}")
        vm = WowVm(self, name, virtual_ip, site, cpu_speed=cpu_speed,
                   image=image, extra_nats=extra_nats,
                   interface_mode=interface_mode)
        self.vms[name] = vm
        if start:
            vm.start()
        return vm

    def provision_pool(self, image, site: Site, count: int,
                       ip_prefix: str = "172.16.8.",
                       name_prefix: str = "pool",
                       cpu_speed: float = 1.0,
                       stagger: float = 2.0) -> list["WowVm"]:
        """Clone ``image`` into ``count`` VMs at ``site`` — the paper's
        §III-C appliance workflow ("a VM appliance is configured once, then
        copied and deployed across many resources").  VMs boot staggered
        and join the overlay by themselves."""
        vms = []
        base = len(self.vms)
        for i in range(count):
            vm = self.create_vm(f"{name_prefix}{base + i}",
                                f"{ip_prefix}{base + i + 2}", site,
                                cpu_speed=cpu_speed, image=image)
            self.sim.schedule(i * stagger, vm.start)
            vms.append(vm)
        return vms

    # ------------------------------------------------------------------
    # DHT (decentralized discovery substrate, §VI)
    # ------------------------------------------------------------------
    def enable_dht(self, replication: int = 1) -> None:
        """Attach a DHT service to every current and future overlay node
        (the whole ring must participate for key ownership to work)."""
        from repro.brunet.dht import DhtNode
        self._dht_enabled = True
        self._dht_replication = replication
        for node in self.nodes_by_addr.values():
            if not hasattr(node, "dht"):
                DhtNode(node, replication=replication)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def ring_nodes(self) -> list[BrunetNode]:
        """All live nodes sorted by ring address (snapshot copy of the
        incrementally-maintained :class:`RingIndex` — no per-call sort)."""
        return list(self.ring_index.items)

    def ring_consistent(self) -> bool:
        """Every live node is connected to its true ring successor."""
        nodes = self.ring_index.items
        if len(nodes) < 2:
            return True
        for i, node in enumerate(nodes):
            succ = nodes[(i + 1) % len(nodes)]
            if node.table.get(succ.addr) is None:
                return False
        return True
