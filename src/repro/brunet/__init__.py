"""Brunet structured P2P overlay — the paper's first contribution.

Reimplements the Brunet protocol suite the paper extends: a ring of nodes
ordered by 160-bit addresses with structured near/far connections, greedy
routing, the Connect-To-Me (CTM) + linking protocols (which double as
decentralized NAT hole punching), keep-alive pings, and the connection
overlords — including the score-driven ShortcutConnectionOverlord of
§IV-E.
"""

from repro.brunet.address import (
    ADDRESS_SPACE,
    BrunetAddress,
    address_from_ip,
    random_address,
    ring_distance,
    directed_distance,
)
from repro.brunet.uri import Uri
from repro.brunet.config import BrunetConfig
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.table import ConnectionTable
from repro.brunet.node import BrunetNode

__all__ = [
    "ADDRESS_SPACE",
    "BrunetAddress",
    "address_from_ip",
    "random_address",
    "ring_distance",
    "directed_distance",
    "Uri",
    "BrunetConfig",
    "Connection",
    "ConnectionType",
    "ConnectionTable",
    "BrunetNode",
]
