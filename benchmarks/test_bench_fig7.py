"""Benchmark + regeneration of Figure 7 (PBS jobs across migration)."""

from benchmarks.conftest import run_once
from repro.experiments import fig7_pbs_migration
from repro.sim.units import MB


def test_fig7_pbs_migration(benchmark):
    result = run_once(benchmark, fig7_pbs_migration.run, seed=6, scale=0.3,
                      jobs_before=12, jobs_after=10,
                      transfer_size=MB(100.0))
    fig7_pbs_migration.report(result)
    assert result.completed_all  # the in-flight job completes (paper Fig. 7)
    # the in-flight job absorbs the WAN migration latency…
    assert result.during_wall > result.pre_mean + 0.5 * result.outage
    # …and jobs run faster on the unloaded destination host afterwards
    assert result.post_mean < result.pre_mean
