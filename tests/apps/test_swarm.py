"""Swarm tooling: census audit logic and a small real-process smoke.

The audit tests run on fabricated statuses (pure logic); the smoke test
actually spawns daemon subprocesses through the same launcher CI uses —
kept small (4 nodes, seed-death drill only) so tier-1 stays fast.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.apps.swarm import main as swarm_main
from repro.apps.swarm import vip_for
from repro.apps.wowctl import audit_ring, render_census


def _status(vip: str, addr: str, right: str, in_ring: bool = True) -> dict:
    return {"vip": vip, "addr": addr, "right": right, "in_ring": in_ring,
            "connections": 2, "endpoint": "127.0.0.1:1", "stats": {}}


def test_audit_ring_accepts_consistent_successors():
    # addresses sorted; each right neighbor is the next live address
    statuses = [_status("10.128.2.2", "aa", "bb"),
                _status("10.128.2.3", "bb", "cc"),
                _status("10.128.2.4", "cc", "aa")]
    assert audit_ring(statuses) == []


def test_audit_ring_flags_stale_successor():
    # "aa" still points at a departed node "zz" instead of "bb"
    statuses = [_status("10.128.2.2", "aa", "zz"),
                _status("10.128.2.3", "bb", "cc"),
                _status("10.128.2.4", "cc", "aa")]
    problems = audit_ring(statuses)
    assert len(problems) == 1 and "10.128.2.2" in problems[0]


def test_audit_ring_flags_node_out_of_ring():
    statuses = [_status("10.128.2.2", "aa", "bb"),
                _status("10.128.2.3", "bb", "aa"),
                _status("10.128.2.4", "cc", None, in_ring=False)]
    problems = audit_ring(statuses)
    assert any("not in ring" in p for p in problems)


def test_render_census_reports_verdict():
    statuses = [_status("10.128.2.2", "aabbccddeeff", "aabbccddeeff")]
    text = render_census(statuses, errors=[], problems=[])
    assert "RING AUDIT: consistent" in text
    text = render_census(statuses, errors=["n1: dead"], problems=["bad"])
    assert "RING AUDIT: INCONSISTENT" in text and "n1: dead" in text


def test_vip_allocation_is_unique_and_valid():
    vips = [vip_for(i) for i in range(600)]
    assert len(set(vips)) == 600
    assert all(0 <= int(v.split(".")[-1]) <= 255 for v in vips)


@pytest.mark.slow
def test_small_swarm_end_to_end(tmp_path):
    """4 real daemon processes: form, ping, seed-death rejoin, drain."""
    if not os.path.exists("/proc/self/fd"):  # pragma: no cover
        pytest.skip("needs a POSIX host")
    rc = swarm_main([
        "--nodes", "4", "--seeds", "1",
        "--base-port", "17350",
        "--run-dir", str(tmp_path / "run"),
        "--settle", "60", "--pings", "3",
        "--skip-churn",  # 4 nodes is too small for a churn drill
    ])
    assert rc == 0


def test_swarm_subprocesses_import_from_this_tree():
    """The launcher must pin PYTHONPATH so spawned daemons import the
    same repro tree, wherever pytest was started from."""
    from repro.apps.swarm import Swarm
    swarm = Swarm(1, 18000, "/tmp", seeds=1)
    import repro
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    assert swarm.env["PYTHONPATH"].split(os.pathsep)[0] == src
    assert swarm.env.get("PATH")  # the rest of the environment survives
    assert sys.executable  # sanity: the interpreter the launcher re-execs
