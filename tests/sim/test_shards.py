"""ShardedKernel: single-shard byte-identity, multi-shard correctness."""

from __future__ import annotations

import hashlib

import pytest

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.uri import Uri
from repro.check import invariants
from repro.phys import Internet, Site
from repro.sim import ShardedKernel, SimulationError, Simulator

ADDRESS_SPACE = 1 << 160


def _trace_digest(tracer) -> str:
    h = hashlib.sha256()
    for cat in sorted(tracer.records):
        h.update(cat.encode())
        for t, data in tracer.records[cat]:
            h.update(repr((t, sorted(data.items()))).encode())
    return h.hexdigest()


def _build_overlay_on(sim, n_nodes: int, settle: float = 60.0):
    """conftest.build_overlay, inlined so both kernels run the exact same
    call sequence against whatever `sim` object they are handed."""
    internet = Internet(sim)
    site = Site(internet, "pub")
    config = BrunetConfig()
    rng = sim.rng.stream("tests.overlay")
    nodes, bootstrap = [], []
    for i in range(n_nodes):
        host = site.add_host(f"ov{i}")
        node = BrunetNode(sim, host, random_address(rng), config,
                          name=f"ov{i}")
        node.start(list(bootstrap))
        if not bootstrap:
            bootstrap.append(Uri.udp(host.ip, node.port))
        nodes.append(node)
        sim.run(until=sim.now + 5.0)
    sim.run(until=sim.now + settle)
    return nodes


def test_single_shard_trajectory_is_byte_identical():
    plain = Simulator(seed=42, trace=True)
    _build_overlay_on(plain, 8)
    kernel = ShardedKernel(seed=42, shards=1, trace=True)
    _build_overlay_on(kernel, 8)
    assert kernel.events_processed == plain.events_processed
    assert _trace_digest(kernel.tracer) == _trace_digest(plain.tracer)
    assert kernel.now == plain.now


def test_partition_covers_ring_in_order():
    k = ShardedKernel(seed=0, shards=4)
    assert k.shard_index(0) == 0
    assert k.shard_index(ADDRESS_SPACE - 1) == 3
    # region boundaries are monotone: walking the ring never goes back a shard
    idxs = [k.shard_index(a * ADDRESS_SPACE // 64) for a in range(64)]
    assert idxs == sorted(idxs)
    assert set(idxs) == {0, 1, 2, 3}


def test_rejects_bad_parameters():
    with pytest.raises(SimulationError):
        ShardedKernel(shards=0)
    with pytest.raises(SimulationError):
        ShardedKernel(lookahead=0.0)
    with pytest.raises(SimulationError):
        ShardedKernel(shards=2).step()


def test_cross_shard_delivery_is_clamped_and_ordered():
    kernel = ShardedKernel(seed=1, shards=2, lookahead=0.05)
    internet = Internet(kernel)
    kernel.attach(internet)
    site = Site(internet, "pub")
    host = site.add_host("far")
    kernel.register_host(host, ADDRESS_SPACE - 1)  # lives on shard 1
    arrivals = []
    internet._deliver = lambda h, d: arrivals.append(kernel.now)
    # scheduled from (idle) shard 0 at t=0 with a sub-lookahead delay
    internet._schedule_delivery(0.001, host, object())
    internet._schedule_delivery(0.2, host, object())
    assert kernel.cross_shard == 2
    assert [t for t, _seq, _fn, _args in kernel._mail[1]] == [0.05, 0.2]
    kernel.run()
    assert arrivals == [0.05, 0.2]  # clamp floor, then the honest delay


def test_same_shard_delivery_keeps_exact_delay():
    kernel = ShardedKernel(seed=1, shards=2, lookahead=0.05)
    internet = Internet(kernel)
    kernel.attach(internet)
    site = Site(internet, "pub")
    host = site.add_host("near")
    kernel.register_host(host, 1)  # shard 0, same as the idle default
    arrivals = []
    internet._deliver = lambda h, d: arrivals.append(kernel.now)
    internet._schedule_delivery(0.001, host, object())
    kernel.run()
    assert kernel.cross_shard == 0
    assert arrivals == [0.001]


def test_schedule_routes_to_the_executing_shard():
    kernel = ShardedKernel(seed=0, shards=2, lookahead=1.0)
    fired = []

    def inner():
        fired.append(kernel.now)

    def outer():
        # self-scheduling from a shard-1 callback stays on shard 1
        kernel.schedule(2.5, inner)

    kernel.shard(1).schedule(1.0, outer)
    kernel.run()
    assert fired == [3.5]
    assert kernel.shard(1).events_processed == 2
    assert kernel.shard(0).events_processed == 0


def test_idle_skip_jumps_far_gaps():
    kernel = ShardedKernel(seed=0, shards=2, lookahead=0.01)
    fired = []
    kernel.shard(1).schedule(1000.0, lambda: fired.append(kernel.now))
    kernel.run()
    assert fired == [1000.0]
    # 1000 s at 10 ms windows would be 100k rounds without the jump
    assert kernel.rounds <= 3


def test_run_until_advances_all_shard_clocks():
    kernel = ShardedKernel(seed=0, shards=3, lookahead=0.5)
    assert kernel.run(until=12.0) == 12.0
    assert all(s.now == 12.0 for s in kernel.shards)
    assert kernel.now == 12.0


def test_multi_shard_overlay_forms_consistent_ring():
    """24 nodes over 4 shards: the full join protocol runs across the
    mailbox seam and must still converge to a consistent, routable ring."""
    kernel = ShardedKernel(seed=9, shards=4, lookahead=0.002, trace=False)
    internet = Internet(kernel)
    kernel.attach(internet)
    site = Site(internet, "pub")
    config = BrunetConfig()
    rng = kernel.rng.stream("tests.overlay")
    nodes, bootstrap = [], []
    for i in range(24):
        host = site.add_host(f"sh{i}")
        addr = random_address(rng)
        kernel.register_host(host, int(addr))
        node = BrunetNode(kernel, host, addr, config, name=f"sh{i}")
        nodes.append(node)
        uris = list(bootstrap)
        if not bootstrap:
            bootstrap.append(Uri.udp(host.ip, config.default_port))
        # the start event runs on the node's owning shard, so all of the
        # node's self-timers live there from the first tick
        kernel.shard(kernel.shard_index(int(addr))).schedule_at(
            i * 5.0, node.start, uris)
    kernel.run(until=24 * 5.0 + 240.0)
    assert kernel.cross_shard > 0
    assert kernel.rounds > 0
    live = [n for n in nodes if n.active]
    assert len(live) == 24
    assert not invariants.check_ring(live, kernel.now)
    assert not invariants.check_routing(live, kernel.now)
