"""Virtual machine layer (paper §III).

:class:`~repro.vm.image.VmImage` models the clone-and-instantiate appliance
workflow; :class:`~repro.vm.machine.WowVm` is one running guest — its
network presence (a host behind the site's NAT), its IPOP node/tap, a
chunked CPU model, and WAN live migration with the paper's
kill-and-restart-IPOP recipe (§V-C).
"""

from repro.vm.image import VmImage
from repro.vm.machine import WowVm, MigrationRecord

__all__ = ["VmImage", "WowVm", "MigrationRecord"]
