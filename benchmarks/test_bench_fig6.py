"""Benchmark + regeneration of Figure 6 (SCP across migration, reduced)."""

from benchmarks.conftest import run_once
from repro.experiments import fig6_scp_migration
from repro.sim.units import MB


def test_fig6_scp_migration(benchmark):
    result = run_once(benchmark, fig6_scp_migration.run, seed=5, scale=0.3,
                      file_size=MB(200.0), transfer_size=MB(150.0),
                      migrate_at=60.0)
    fig6_scp_migration.report(result)
    assert result.completed  # "resumed without any application restarts"
    # paper: 1.36 MB/s (UFL→NWU WAN) before, 1.83 MB/s (NWU LAN) after
    assert abs(result.pre_rate_MBps - 1.36) < 0.35
    assert abs(result.post_rate_MBps - 1.83) < 0.45
    assert result.post_rate_MBps > result.pre_rate_MBps
