"""Property-based tests on the max-min fair flow allocator."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.phys.flows import Flow, FlowManager, Resource
from repro.sim import Simulator


@st.composite
def flow_systems(draw):
    n_resources = draw(st.integers(1, 6))
    capacities = [draw(st.floats(10.0, 1e6)) for _ in range(n_resources)]
    n_flows = draw(st.integers(1, 8))
    paths = []
    for _ in range(n_flows):
        k = draw(st.integers(1, n_resources))
        paths.append(sorted(draw(st.sets(
            st.integers(0, n_resources - 1), min_size=1, max_size=k))))
    sizes = [draw(st.floats(100.0, 1e7)) for _ in range(n_flows)]
    return capacities, paths, sizes


def build(capacities, paths, sizes):
    sim = Simulator(seed=0, trace=False)
    fm = FlowManager(sim)
    resources = [Resource(f"r{i}", c) for i, c in enumerate(capacities)]
    flows = [Flow(fm, f"f{i}", size, [resources[j] for j in path])
             for i, (path, size) in enumerate(zip(paths, sizes))]
    return sim, fm, resources, flows


@settings(max_examples=60, deadline=None)
@given(flow_systems())
def test_no_resource_oversubscribed(system):
    capacities, paths, sizes = system
    sim, fm, resources, flows = build(capacities, paths, sizes)
    for i, res in enumerate(resources):
        used = sum(f.rate for f in flows
                   if i in paths[flows.index(f)])
        assert used <= res.capacity * (1 + 1e-6)


@settings(max_examples=60, deadline=None)
@given(flow_systems())
def test_rates_nonnegative_and_work_conserving(system):
    capacities, paths, sizes = system
    sim, fm, resources, flows = build(capacities, paths, sizes)
    assert all(f.rate >= 0 for f in flows)
    # work conservation: every flow is bottlenecked somewhere (it could go
    # faster only by exceeding some resource on its path)
    for f, path in zip(flows, paths):
        saturated = False
        for i in path:
            used = sum(g.rate for g, p in zip(flows, paths) if i in p)
            if used >= capacities[i] * (1 - 1e-6):
                saturated = True
                break
        assert saturated, f"{f.name} not bottlenecked"


@settings(max_examples=40, deadline=None)
@given(flow_systems())
def test_all_flows_eventually_complete(system):
    capacities, paths, sizes = system
    sim, fm, resources, flows = build(capacities, paths, sizes)
    horizon = max(sizes) * len(flows) / min(capacities) + 10.0
    sim.run(until=horizon, max_events=200_000)
    assert all(f.completed for f in flows)
    for f in flows:
        # conservation: exactly size bytes moved
        assert abs(f.transferred - f.size) < 1e-3 * f.size + 1.0


@settings(max_examples=40, deadline=None)
@given(flow_systems(), st.floats(0.01, 100.0))
def test_progress_is_monotone(system, checkpoint):
    capacities, paths, sizes = system
    sim, fm, resources, flows = build(capacities, paths, sizes)
    sim.run(until=checkpoint, max_events=100_000)
    fm.advance()
    snapshot = [f.transferred for f in flows]
    sim.run(until=checkpoint * 2, max_events=100_000)
    fm.advance()
    for before, f in zip(snapshot, flows):
        assert f.transferred >= before - 1e-9
