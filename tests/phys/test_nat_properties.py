"""Property-based tests on NAT translation invariants."""

from hypothesis import given, settings, strategies as st

from repro.phys.endpoints import Endpoint
from repro.phys.nat import FilteringBehavior, MappingBehavior, Nat, NatSpec

ports = st.integers(1, 65535)
inner_eps = st.builds(lambda p: Endpoint("10.1.0.2", p), ports)
remote_eps = st.builds(lambda h, p: Endpoint(f"128.0.0.{h}", p),
                       st.integers(2, 250), ports)

specs = st.builds(
    NatSpec,
    st.sampled_from(list(MappingBehavior)),
    st.sampled_from(list(FilteringBehavior)),
    st.booleans(),
    st.floats(10.0, 1e6),
)


@settings(max_examples=80, deadline=None)
@given(specs, inner_eps, st.lists(remote_eps, min_size=1, max_size=6))
def test_reply_from_contacted_remote_always_translates_back(spec, inner,
                                                            remotes):
    """Whatever the behaviour combination, a reply from an endpoint the
    inner socket contacted must reach it (this is what makes any
    client/server protocol work through NAT)."""
    nat = Nat("n", "200.0.0.1", "10.1.", spec)
    for remote in remotes:
        pub = nat.translate_outbound("udp", inner, remote)
        assert nat.translate_inbound("udp", pub.port, remote) == inner


@settings(max_examples=80, deadline=None)
@given(specs, inner_eps, remote_eps)
def test_public_endpoint_is_public_ip(spec, inner, remote):
    nat = Nat("n", "200.0.0.1", "10.1.", spec)
    pub = nat.translate_outbound("udp", inner, remote)
    assert pub.ip == "200.0.0.1"
    assert pub.port != inner.port or True  # port may coincide; ip must not
    assert not nat.is_inside(pub.ip)


@settings(max_examples=50, deadline=None)
@given(inner_eps, st.lists(remote_eps, min_size=2, max_size=6, unique=True))
def test_eim_uses_one_public_port_per_socket(inner, remotes):
    nat = Nat("n", "200.0.0.1", "10.1.", NatSpec.cone())
    pubs = {nat.translate_outbound("udp", inner, r) for r in remotes}
    assert len(pubs) == 1


@settings(max_examples=50, deadline=None)
@given(inner_eps, st.lists(remote_eps, min_size=2, max_size=6, unique=True))
def test_symmetric_uses_fresh_port_per_remote(inner, remotes):
    nat = Nat("n", "200.0.0.1", "10.1.", NatSpec.symmetric())
    pubs = {nat.translate_outbound("udp", inner, r) for r in remotes}
    assert len(pubs) == len(remotes)


@settings(max_examples=50, deadline=None)
@given(specs, st.lists(st.tuples(inner_eps, remote_eps), min_size=2,
                       max_size=8))
def test_distinct_inner_sockets_get_distinct_mappings(spec, pairs):
    nat = Nat("n", "200.0.0.1", "10.1.", spec)
    seen: dict[int, Endpoint] = {}
    for inner, remote in pairs:
        pub = nat.translate_outbound("udp", inner, remote)
        back = nat.translate_inbound("udp", pub.port, remote)
        assert back == inner  # a mapping never leaks to another socket
        if pub.port in seen:
            assert seen[pub.port] == inner
        seen[pub.port] = inner
