"""Figure 6: SSH/SCP file transfer across a WAN VM migration.

A client VM at NWU downloads a 720 MB file from a server VM at UFL.  At
~200 s the server VM is suspended, its memory image and copy-on-write logs
are shipped to NWU, and it resumes there; IPOP is killed and restarted so
the server rejoins the overlay under the same virtual IP.  The transfer
stalls during the outage and resumes transparently; the post-migration
rate is *higher* because both VMs are now on the NWU LAN (paper:
1.36 MB/s → 1.83 MB/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentSetup,
    make_testbed,
    print_table,
    run_until_signal,
)
from repro.middleware.ssh import ScpClient, ScpServer
from repro.sim.process import Process
from repro.sim.units import MB
from repro.vm.machine import MigrationRecord

FILE_SIZE = MB(720.0)
MIGRATE_AT = 200.0


@dataclass
class ScpMigrationResult:
    size_log: list[tuple[float, float]]  # (elapsed s, bytes at client)
    pre_rate_MBps: float
    post_rate_MBps: float
    outage: float
    migration: MigrationRecord
    completed: bool


def run(seed: int = 0, scale: float = 1.0, file_size: float = FILE_SIZE,
        migrate_at: float = MIGRATE_AT,
        transfer_size: float | None = None,
        setup: ExperimentSetup | None = None) -> ScpMigrationResult:
    if setup is None:
        setup = make_testbed(seed=seed, scale=scale)
    sim, tb = setup.sim, setup.testbed
    dep = setup.deployment

    server_vm = tb.vm(3)   # UFL
    client_vm = tb.vm(17)  # NWU
    server = ScpServer(server_vm)
    server.put_file("data.bin", file_size)
    client = ScpClient(client_vm, server_vm.virtual_ip)

    t0 = sim.now
    proc = Process(sim, client.download("data.bin"), name="scp.download")
    migration_done = {}

    def start_migration() -> None:
        sig = server_vm.migrate(dep.sites["nwu"],
                                transfer_size=transfer_size)
        sig.wait_callback(lambda rec: migration_done.update(rec=rec))

    sim.schedule(migrate_at, start_migration)
    run_until_signal(sim, proc.done, 6000.0)
    sim.run(until=sim.now + 1.0)  # settle trailing events

    record: MigrationRecord = migration_done.get("rec")
    completed = proc.done.fired and client.transfer is not None \
        and client.transfer.completed
    log = [(t - t0, b) for t, b in client.local_size_log()]
    # steady-state pre-migration rate: skip the initial multi-hop phase
    # before the shortcut forms
    pre = client.transfer.mean_rate(t0 + migrate_at * 0.3,
                                    t0 + migrate_at * 0.95)
    resume_t = record.resumed_at if record else t0 + migrate_at
    end_t = client.transfer.flow.finish_time or sim.now
    post = client.transfer.mean_rate(resume_t + 30.0, end_t)
    eff = setup.calib.scp_efficiency
    return ScpMigrationResult(
        size_log=log,
        # the paper reports decimal MB/s
        pre_rate_MBps=pre * eff / 1e6,
        post_rate_MBps=post * eff / 1e6,
        outage=record.outage if record else 0.0,
        migration=record,
        completed=completed)


def report(result: ScpMigrationResult,
           csv_dir: str | None = None) -> None:
    print_table(
        "Figure 6 — SCP transfer across server VM migration",
        ["metric", "value"],
        [["completed without restart", result.completed],
         ["pre-migration rate (MB/s, decimal)",
          f"{result.pre_rate_MBps:.2f}"],
         ["post-migration rate (MB/s, decimal)",
          f"{result.post_rate_MBps:.2f}"],
         ["suspend→resume outage (s)", f"{result.outage:.0f}"],
         ["migration src→dst",
          f"{result.migration.src_site}→{result.migration.dst_site}"]])
    from repro.experiments.plotting import ascii_plot, export_series_csv
    ts = [t for t, _ in result.size_log]
    mbs = [b / 1e6 for _, b in result.size_log]
    series = {"client file size (MB)": (ts, mbs)}
    print()
    print(ascii_plot(series,
                     title="Fig. 6: file size at SCP client vs time "
                           "(flat region = migration outage)",
                     xlabel="elapsed seconds"))
    if csv_dir is not None:
        export_series_csv(f"{csv_dir}/fig6_scp_size.csv", series)


def main(seed: int = 0, scale: float = 0.5,
         file_size: float = MB(180.0),
         transfer_size: float = MB(150.0)) -> ScpMigrationResult:
    result = run(seed=seed, scale=scale, file_size=file_size,
                 transfer_size=transfer_size, migrate_at=60.0)
    report(result)
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
