"""Tracer and TimeSeries."""

import math
import time

import numpy as np
import pytest

from repro.sim.trace import TimeSeries, Tracer, cdf, fraction_below


def test_tracer_records_and_counts():
    tr = Tracer()
    tr.record(1.0, "evt", {"x": 1})
    tr.record(2.0, "evt", {"x": 2})
    tr.record(3.0, "other")
    assert tr.count("evt") == 2
    assert tr.get("evt")[1] == (2.0, {"x": 2})
    assert tr.categories() == ["evt", "other"]


def test_disabled_tracer_counts_but_does_not_store():
    tr = Tracer(enabled=False)
    tr.record(1.0, "evt", {"x": 1})
    assert tr.count("evt") == 1
    assert tr.get("evt") == []


def test_series_extraction_with_filter():
    tr = Tracer()
    for i in range(5):
        tr.record(float(i), "m", {"v": i, "keep": i % 2 == 0})
    ts = tr.series("m", "v", where=lambda d: d["keep"])
    assert list(ts.values) == [0.0, 2.0, 4.0]


def test_timeseries_statistics():
    ts = TimeSeries("t")
    for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
        ts.add(float(i), v)
    assert ts.mean() == pytest.approx(2.5)
    assert ts.std() == pytest.approx(np.std([1, 2, 3, 4]))
    assert ts.percentile(50) == pytest.approx(2.5)
    assert len(ts) == 4


def test_timeseries_empty_stats_are_nan():
    ts = TimeSeries()
    assert math.isnan(ts.mean())
    assert math.isnan(ts.std())


def test_timeseries_window():
    ts = TimeSeries()
    for i in range(10):
        ts.add(float(i), float(i))
    w = ts.window(2.0, 5.0)
    assert list(w.times) == [2.0, 3.0, 4.0]


def test_cdf_shape():
    xs, fr = cdf([3.0, 1.0, 2.0])
    assert list(xs) == [1.0, 2.0, 3.0]
    assert fr[-1] == pytest.approx(1.0)
    assert fr[0] == pytest.approx(1 / 3)


def test_cdf_empty():
    xs, fr = cdf([])
    assert xs.size == 0 and fr.size == 0


def test_fraction_below():
    assert fraction_below([1, 2, 3, 4], 3) == pytest.approx(0.5)
    assert fraction_below([], 3) == 1.0
    assert fraction_below([float("inf")], 1e9) == 0.0


def test_tracer_clear():
    tr = Tracer()
    tr.record(0.0, "a")
    tr.clear()
    assert tr.count("a") == 0
    assert tr.get("a") == []


def test_tracer_max_records_keeps_newest_and_exact_counts():
    tr = Tracer(max_records=10)
    for i in range(35):
        tr.record(float(i), "evt", {"i": i})
    tr.record(0.0, "other")
    # counters stay exact even though storage is capped
    assert tr.count("evt") == 35
    got = tr.get("evt")
    assert len(got) == 10
    assert [d["i"] for _t, d in got] == list(range(25, 35))
    # other categories keep their own (uncapped-within-cap) records
    assert len(tr.get("other")) == 1


def test_tracer_max_records_under_cap_is_untouched():
    tr = Tracer(max_records=100)
    for i in range(5):
        tr.record(float(i), "evt", {"i": i})
    assert [d["i"] for _t, d in tr.get("evt")] == [0, 1, 2, 3, 4]


def test_tracer_max_records_validation():
    with pytest.raises(ValueError):
        Tracer(max_records=0)
    with pytest.raises(ValueError):
        Tracer(max_records=-5)


def test_timeseries_window_bisect_regression():
    """Windowing a 100k-sample series must be fast (bisect, not a scan)
    and byte-identical to the naive linear-scan implementation."""
    n = 100_000
    ts = TimeSeries("big")
    for i in range(n):
        ts.add(i * 0.001, float(i % 97))

    def naive(t0, t1):
        pairs = [(t, v) for t, v in zip(ts.times, ts.values)
                 if t0 <= t < t1]
        return [t for t, _ in pairs], [v for _, v in pairs]

    windows = [(0.0, 0.05), (12.3, 12.4), (50.0, 51.0),
               (99.9, 1e9), (120.0, 130.0), (-5.0, 0.0)]
    for t0, t1 in windows:
        w = ts.window(t0, t1)
        nt, nv = naive(t0, t1)
        assert list(w.times) == nt
        assert list(w.values) == nv

    wall = time.perf_counter()
    for i in range(1000):
        ts.window(float(i % 90), float(i % 90) + 0.5)
    wall = time.perf_counter() - wall
    # a linear scan would take O(n) per call (~tens of seconds for 1000
    # calls); bisect + slice of ~500 elements stays well under a second
    assert wall < 2.0, f"window() too slow: {wall:.2f}s for 1000 calls"
