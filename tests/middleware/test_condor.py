"""Condor-style pool: matchmaking, claims, soft-state ads."""

import pytest

from repro.middleware.condor import (
    CondorCollector,
    CondorJob,
    CondorSchedD,
    CondorStartD,
)
from tests.conftest import make_mini_testbed


@pytest.fixture()
def pool():
    sim, tb = make_mini_testbed(seed=23)
    head = tb.head
    collector = CondorCollector(head)
    schedd = CondorSchedD(head, collector)
    startds = [CondorStartD(tb.vm(i), head.virtual_ip)
               for i in (3, 17, 30, 32)]
    sim.run(until=sim.now + 10)  # first ads arrive
    return sim, tb, collector, schedd, startds


def test_machines_advertise(pool):
    sim, tb, collector, schedd, startds = pool
    ads = collector.live_ads()
    assert len(ads) == 4
    assert {ad["Site"] for ad in ads} == {"ufl", "nwu", "lsu", "ncgrid"}


def test_job_runs_on_matched_machine(pool):
    sim, tb, collector, schedd, startds = pool
    job = schedd.submit(CondorJob(work_ref=5.0))
    done = schedd.expect(1)
    sim.run(until=sim.now + 120)
    assert done.fired
    assert job.finished_at is not None
    assert job.matched_machine  # ran somewhere


def test_rank_prefers_fastest_machine(pool):
    sim, tb, collector, schedd, startds = pool
    job = schedd.submit(CondorJob(work_ref=3.0))
    sim.run(until=sim.now + 60)
    assert job.matched_machine == "node030"  # the 1.33x lsu node


def test_requirements_filter_machines(pool):
    sim, tb, collector, schedd, startds = pool
    job = schedd.submit(CondorJob(
        work_ref=3.0, requirements=lambda ad: ad["Site"] == "nwu"))
    sim.run(until=sim.now + 60)
    assert job.matched_machine == "node017"


def test_unsatisfiable_requirements_stay_queued(pool):
    sim, tb, collector, schedd, startds = pool
    job = schedd.submit(CondorJob(
        work_ref=3.0, requirements=lambda ad: ad["Site"] == "mars"))
    sim.run(until=sim.now + 60)
    assert job.started_at is None
    assert schedd.peek() is job


def test_many_jobs_spread_over_pool(pool):
    sim, tb, collector, schedd, startds = pool
    done = schedd.expect(8)
    for _ in range(8):
        schedd.submit(CondorJob(work_ref=4.0))
    sim.run(until=sim.now + 400)
    assert done.fired
    used = {j.matched_machine for j in schedd.completed}
    assert len(used) >= 2  # claims spread once fast machines are busy


def test_dead_startd_ad_expires(pool):
    sim, tb, collector, schedd, startds = pool
    victim = startds[0]
    victim.stop()
    sim.run(until=sim.now + collector.AD_TTL + 40)
    names = {ad["Name"] for ad in collector.live_ads()}
    assert victim.vm.name not in names
