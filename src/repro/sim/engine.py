"""Event loop for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)`` so simultaneous events
fire in a deterministic order (FIFO within a priority class).  Everything in
the repo shares one :class:`Simulator` per experiment, which also owns the
RNG registry and the tracer so that a single seed makes a whole experiment
reproducible.

Internally the queue is a hybrid of a binary heap and a bucketed timer
wheel (a calendar queue).  Events due within the current wheel bucket go
straight onto the heap; events further out are appended to their bucket in
O(1) and only merged into the heap when simulation time approaches the
bucket.  Because a bucket is always merged *before* any event at or after
its start time can fire, the pop order is exactly the total
``(time, priority, seq)`` order — the wheel is an optimisation, not a
semantic change, and ``Simulator(timer_wheel=False)`` produces a
byte-identical event stream.

Cancellation is O(1): heap entries are tombstoned and compacted lazily
(the heap is rebuilt once more than half of it is dead), while cancelled
wheel entries are simply skipped at merge time and never touch the heap at
all.  A live-event counter makes :meth:`Simulator.pending` O(1).
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import Any, Callable, Iterator, Optional

from repro.obs.hub import Observability
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and may be
    cancelled; cancellation is O(1) (the entry is tombstoned).

    A handle is in exactly one of three states — pending, fired, or
    cancelled — and protocol code may inspect it (``handle.pending``)
    to decide whether a resend/maintenance timer is still armed.  The
    realtime kernel's handle exposes the identical surface.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled",
                 "fired", "_sim", "_in_heap")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim: Optional["Simulator"] = None
        self._in_heap = False

    @property
    def pending(self) -> bool:
        """True while the callback is still scheduled to run."""
        return not self.cancelled and not self.fired

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent, and a no-op on an
        already-fired event (late cleanup of a completed timer must not
        re-decrement the kernel's live-event count)."""
        if not self.cancelled and not self.fired:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("cancelled" if self.cancelled
                 else "fired" if self.fired else "pending")
        return f"<Event t={self.time:.6f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all RNG streams (see :class:`RngRegistry`).
    trace:
        When true, a :class:`Tracer` records events emitted via
        :meth:`Simulator.trace`.
    timer_wheel:
        Route far-future events through the bucketed timer wheel.  Off, the
        kernel degrades to a plain binary heap with identical semantics
        (used by the determinism golden tests).  None uses
        :attr:`default_timer_wheel`, which those tests flip to rerun whole
        experiments on the plain heap.
    wheel_granularity:
        Bucket width in simulated seconds.  Coarse periodic timers (pings,
        keep-alives, overlord ticks, flow-completion estimates) land whole
        buckets ahead and so pay O(1) to schedule and O(0) to cancel.
    trace_max_records:
        Per-category cap on retained tracer records (None = unbounded);
        see :class:`~repro.sim.trace.Tracer`.
    metrics:
        When true (default) the simulator's :class:`~repro.obs.hub.
        Observability` hub records metrics; span tracing and the flight
        recorder stay opt-in either way.
    """

    #: process-wide default for the ``timer_wheel`` parameter
    default_timer_wheel = True

    #: rebuild the heap when it holds more dead than live entries (and is
    #: big enough for the rebuild to be worth the copy)
    _COMPACT_MIN = 64

    def __init__(self, seed: int = 0, trace: bool = True,
                 timer_wheel: Optional[bool] = None,
                 wheel_granularity: float = 1.0,
                 trace_max_records: Optional[int] = None,
                 metrics: bool = True):
        if wheel_granularity <= 0:
            raise SimulationError("wheel_granularity must be positive")
        if timer_wheel is None:
            timer_wheel = self.default_timer_wheel
        self.now: float = 0.0
        # heap entries are (time, priority, seq, Event): tuple comparison
        # stays in C (seq is unique, so the Event itself is never compared)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: True while an event callback is executing (used by subsystems
        #: that coalesce work until the end of the current event)
        self.executing = False
        #: optional :class:`~repro.obs.prof.KernelProfiler` — when set,
        #: :meth:`step` wall-times every stride-th handler into it
        #: (read-only: attaching one never changes the event trajectory)
        self.profiler = None
        #: lazy-compaction sweeps performed so far (kernel-health signal)
        self.compactions = 0
        self.rng = RngRegistry(seed)
        self.tracer = Tracer(enabled=trace, max_records=trace_max_records)
        #: metrics registry + span collector + flight recorder (see
        #: :mod:`repro.obs`); metrics default on, spans/recorder opt-in
        self.obs = Observability(self, metrics=metrics)
        # -- hybrid queue state -----------------------------------------
        self._use_wheel = timer_wheel
        self._gran = wheel_granularity
        self._wheel: dict[int, list[Event]] = {}
        self._bucket_heap: list[int] = []   # min-heap of occupied buckets
        self._wheel_floor = 0               # buckets <= floor are heap-resident
        self._live = 0                      # non-cancelled events queued
        self._heap_dead = 0                 # tombstones inside self._queue
        # -- shared per-simulator services (see :meth:`shared`) ---------
        self._shared: dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"negative/NaN delay: {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self.now}")
        ev = Event(time, priority, self._seq, fn, args)
        ev._sim = self
        self._seq += 1
        self._live += 1
        if self._use_wheel and math.isfinite(time):
            bucket = int(time // self._gran)
            if bucket > self._wheel_floor:
                entries = self._wheel.get(bucket)
                if entries is None:
                    self._wheel[bucket] = [ev]
                    heapq.heappush(self._bucket_heap, bucket)
                else:
                    entries.append(ev)
                return ev
        ev._in_heap = True
        heapq.heappush(self._queue, (time, priority, ev.seq, ev))
        return ev

    # ------------------------------------------------------------------
    # queue maintenance
    # ------------------------------------------------------------------
    def _note_cancel(self, ev: Event) -> None:
        """O(1) bookkeeping for a cancellation; compact the heap lazily."""
        self._live -= 1
        if ev._in_heap:
            self._heap_dead += 1
            if (self._heap_dead > self._COMPACT_MIN
                    and self._heap_dead * 2 > len(self._queue)):
                self._compact()

    def _compact(self) -> None:
        """Drop tombstones and re-heapify.  Pop order is unchanged: the
        heap's pop sequence depends only on the (totally ordered) element
        set, not on its internal layout."""
        self._queue = [e for e in self._queue if not e[3].cancelled]
        heapq.heapify(self._queue)
        self._heap_dead = 0
        self.compactions += 1

    def _head(self) -> Optional[Event]:
        """The next live event (without popping), or None.

        Strips cancelled heap heads and merges every wheel bucket that
        could contain an event at or before the current heap head.
        """
        queue = self._queue
        while True:
            while queue and queue[0][3].cancelled:
                heapq.heappop(queue)
                self._heap_dead -= 1
            if self._bucket_heap:
                head_time = queue[0][0] if queue else math.inf
                bucket = self._bucket_heap[0]
                if bucket * self._gran <= head_time:
                    heapq.heappop(self._bucket_heap)
                    self._wheel_floor = bucket
                    for ev in self._wheel.pop(bucket):
                        if not ev.cancelled:
                            ev._in_heap = True
                            heapq.heappush(
                                queue, (ev.time, ev.priority, ev.seq, ev))
                    continue
            return queue[0][3] if queue else None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        ev = self._head()
        if ev is None:
            return False
        heapq.heappop(self._queue)
        if ev.time < self.now:  # pragma: no cover - defensive
            raise SimulationError("event queue corrupted: time went backwards")
        self.now = ev.time
        self.events_processed += 1
        self._live -= 1
        ev.fired = True
        self.executing = True
        prof = self.profiler
        if prof is None:
            try:
                ev.fn(*ev.args)
            finally:
                self.executing = False
        else:
            # sampling stride: every stride-th event is wall-timed and
            # attributed; the rest pay one decrement (KernelProfiler
            # scales the samples back into totals)
            tick = prof._stride_tick - 1
            if tick:
                prof._stride_tick = tick
                try:
                    ev.fn(*ev.args)
                finally:
                    self.executing = False
            else:
                prof._stride_tick = prof.stride
                t0 = perf_counter()
                try:
                    ev.fn(*ev.args)
                finally:
                    self.executing = False
                    prof.account(ev.fn, perf_counter() - t0, self)
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` fired.  Returns the final simulation time."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                head = self._head()
                if head is None:
                    if until is not None:
                        self.now = max(self.now, until)
                    break
                if until is not None and head.time > until:
                    self.now = until
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @property
    def trace_on(self) -> bool:
        """True when :meth:`trace` will store records.  Hot call sites
        guard on this *before* building their kwargs dict, making a
        disabled-tracing run allocation-free (record counts are then
        skipped too — durable tallies live in subsystem counters like
        ``Internet.drops`` and ``node.stats``)."""
        return self.tracer.enabled

    def trace(self, category: str, **data: Any) -> None:
        """Record a trace entry stamped with the current time."""
        self.tracer.record(self.now, category, data)

    def shared(self, key: Any, factory: Callable[["Simulator"], Any]) -> Any:
        """Per-simulator service registry: return the object registered
        under ``key``, creating it via ``factory(self)`` on first use.

        Subsystems that want exactly one instance *per kernel* (e.g. the
        batched :class:`SweepWheel` shared by every node on a shard) go
        through here instead of module globals, so a sharded simulation
        gets one instance per shard and two simulators in one process
        never share state."""
        try:
            return self._shared[key]
        except KeyError:
            obj = self._shared[key] = factory(self)
            return obj

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def iter_pending(self) -> Iterator[Event]:
        """Iterate live queued events in arbitrary (not chronological)
        order."""
        for entry in self._queue:
            if not entry[3].cancelled:
                yield entry[3]
        for entries in self._wheel.values():
            for ev in entries:
                if not ev.cancelled:
                    yield ev


class SweepWheel:
    """Batched periodic work: many registrants share one kernel timer.

    n nodes each rescheduling a keep-alive every ``ping_interval/2``
    put 2n/ping_interval events per simulated second through the kernel
    — at 10k nodes the heap traffic dominates the overlay itself.  The
    sweep wheel quantizes registrations into buckets of ``granularity``
    seconds and fires **one** kernel event per occupied bucket, walking
    that bucket's due entries in key order.  Registrants key themselves
    by ring address, so a sweep walks due connections in address order.

    Cancellation is tombstone-free: every key carries a generation
    counter; :meth:`cancel` (and re-registration) bump it, and an entry
    whose captured generation is stale is simply skipped at fire time —
    no bucket-list scan, no kernel-event cancellation.

    Quantization rounds *up* to the bucket edge, so work is never run
    early — a registrant asking for ``delay`` seconds runs within
    ``[delay, delay + granularity)``.  Batching therefore perturbs
    timing by design; it is opt-in via ``BrunetConfig.batch_timers``
    (off by default, keeping default trajectories byte-identical) and
    meant for the 10k-node scaling runs where per-node timer precision
    is irrelevant.
    """

    def __init__(self, sim: Simulator, granularity: float = 1.0):
        if granularity <= 0:
            raise SimulationError("granularity must be positive")
        self.sim = sim
        self.granularity = granularity
        #: bucket index -> [(key, generation, fn), ...] (unsorted until fire)
        self._buckets: dict[int, list[tuple]] = {}
        #: current generation per key (bumped on schedule/cancel)
        self._gen: dict[Any, int] = {}
        #: fired sweep buckets (telemetry)
        self.sweeps = 0
        #: entries skipped as stale (telemetry)
        self.skipped = 0

    def schedule(self, key: Any, delay: float, fn: Callable[[], Any]) -> None:
        """Run ``fn()`` at the first bucket edge at or after now+``delay``.
        Any earlier registration under the same key is implicitly
        cancelled (one live entry per key)."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"negative/NaN delay: {delay!r}")
        gen = self._gen.get(key, 0) + 1
        self._gen[key] = gen
        t = self.sim.now + delay
        g = self.granularity
        bucket = -int(-t // g)  # ceil: never early
        entries = self._buckets.get(bucket)
        if entries is None:
            self._buckets[bucket] = [(key, gen, fn)]
            self.sim.schedule_at(bucket * g, self._fire, bucket)
        else:
            entries.append((key, gen, fn))

    def cancel(self, key: Any) -> None:
        """Invalidate the key's live entry (O(1); idempotent).  The entry
        stays in its bucket and is discarded, not run, at fire time."""
        if key in self._gen:
            self._gen[key] += 1

    def pending(self, key: Any) -> bool:
        """True when the key has a live (not cancelled/fired) entry."""
        return self._gen.get(key, 0) > 0 and any(
            e[0] == key and e[1] == self._gen[key]
            for entries in self._buckets.values() for e in entries)

    def _fire(self, bucket: int) -> None:
        entries = self._buckets.pop(bucket, [])
        entries.sort(key=lambda e: e[0])  # address order within the sweep
        self.sweeps += 1
        gen = self._gen
        for key, g, fn in entries:
            if gen.get(key) != g:
                self.skipped += 1
                continue
            fn()


def sweep_wheel(sim: Simulator, granularity: float = 1.0) -> SweepWheel:
    """The simulator's shared :class:`SweepWheel` (one per kernel/shard;
    the first caller's ``granularity`` wins)."""
    return sim.shared("sweep_wheel",
                      lambda s: SweepWheel(s, granularity=granularity))
