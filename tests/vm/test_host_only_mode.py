"""Host-only interface mode (§V-E future work): guest isolation."""

import pytest

from repro.ipop import Pinger
from repro.phys.endpoints import Endpoint
from tests.conftest import make_mini_testbed


@pytest.fixture(scope="module")
def bed_with_isolated():
    sim, tb = make_mini_testbed(seed=303)
    dep = tb.deployment
    vm = dep.create_vm("isolated", "172.16.3.2", dep.sites["ufl"],
                       interface_mode="host-only")
    vm.start()
    sim.run(until=sim.now + 60)
    return sim, tb, vm


def test_isolated_vm_joins_overlay(bed_with_isolated):
    sim, tb, vm = bed_with_isolated
    assert vm.node.in_ring


def test_virtual_network_fully_functional(bed_with_isolated):
    sim, tb, vm = bed_with_isolated
    pinger = Pinger(vm.router)
    done = pinger.run(tb.vm(17).virtual_ip, count=8, interval=0.5)
    sim.run(until=sim.now + 10)
    stats = done.value
    pinger.close()
    assert stats.loss_fraction() < 0.8


def test_physical_ports_cannot_be_bound(bed_with_isolated):
    sim, tb, vm = bed_with_isolated
    with pytest.raises(PermissionError):
        vm.host.bind_udp(8080, lambda *a: None)


def test_stray_physical_traffic_dropped(bed_with_isolated):
    """Even intra-site physical packets to non-IPOP ports vanish."""
    sim, tb, vm = bed_with_isolated
    neighbor = tb.vm(3)  # same UFL site
    hits = []
    sock = neighbor.host.bind_udp(7777, lambda *a: hits.append(1))
    sock.send(Endpoint(vm.host.ip, 9999), "probe", 10)
    sim.run(until=sim.now + 2)
    # nothing raised, nothing delivered; the IPOP port still works
    assert vm.node.sock.received > 0


def test_isolation_survives_ipop_restart(bed_with_isolated):
    sim, tb, vm = bed_with_isolated
    vm.restart_ipop()
    sim.run(until=sim.now + 90)
    assert vm.node.in_ring
    assert vm.host.allowed_ports == {vm.node.port}
    with pytest.raises(PermissionError):
        vm.host.bind_udp(8081, lambda *a: None)


def test_nat_mode_unrestricted():
    sim, tb = make_mini_testbed(seed=304)
    vm = tb.vm(3)
    assert vm.interface_mode == "nat"
    sock = vm.host.bind_udp(8080, lambda *a: None)
    sock.close()
