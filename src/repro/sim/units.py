"""Unit helpers.

Internal units: seconds, bytes, bytes/second.  These helpers keep
calibration constants readable (``KB(85)`` rather than ``85 * 1024``).
The paper reports bandwidth in KB/s — we follow its convention of
1 KB = 1024 bytes.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def KB(x: float) -> float:
    """Kilobytes (1024 B) to bytes."""
    return x * KIB


def MB(x: float) -> float:
    """Megabytes (1024 KiB) to bytes."""
    return x * MIB


def GB(x: float) -> float:
    """Gigabytes to bytes."""
    return x * GIB


def ms(x: float) -> float:
    """Milliseconds to seconds."""
    return x / 1000.0


def minutes(x: float) -> float:
    """Minutes to seconds."""
    return x * 60.0


def to_KBps(bytes_per_second: float) -> float:
    """Bytes/second to the paper's KB/s."""
    return bytes_per_second / KIB


def to_MBps(bytes_per_second: float) -> float:
    """Bytes/second to MB/s."""
    return bytes_per_second / MIB
