"""End-to-end: observed churn run → export bundle → inspector CLI.

One small fixed-seed churn run (module-scoped) backs every test here; a
second identical run checks the byte-identical-export guarantee.
"""

import json
import os

import pytest

from repro.experiments import churn_recovery
from repro.obs import inspect as inspect_cli

RUN_KW = dict(seed=3, n_nodes=10, kill_fraction=0.2,
              settle=200.0, horizon=300.0)


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("obs") / "run")
    churn_recovery.run(obs_dir=out, **RUN_KW)
    return out


def test_export_layout(run_dir):
    for name in ("metrics.jsonl", "metrics.csv", "spans.jsonl",
                 "events.jsonl", "manifest.json"):
        assert os.path.exists(os.path.join(run_dir, name)), name
    manifest = json.load(open(os.path.join(run_dir, "manifest.json")))
    assert manifest["seed"] == RUN_KW["seed"]
    assert manifest["traces"], "no traces recorded"
    kinds = {t["kind"] for t in manifest["traces"]}
    assert {"ip", "ctm"} <= kinds


def test_export_is_byte_identical_across_runs(run_dir, tmp_path):
    again = str(tmp_path / "again")
    churn_recovery.run(obs_dir=again, **RUN_KW)
    for name in ("metrics.jsonl", "metrics.csv", "spans.jsonl",
                 "events.jsonl", "manifest.json"):
        a = open(os.path.join(run_dir, name), "rb").read()
        b = open(os.path.join(again, name), "rb").read()
        assert a == b, f"{name} differs between identical-seed runs"


def test_metrics_cover_the_advertised_namespaces(run_dir):
    rows = inspect_cli.load_metrics(run_dir)
    names = {r["name"] for r in rows}
    for expected in ("brunet.route.hops", "brunet.route.delivered",
                     "linking.attempts", "linking.successes",
                     "ipop.encap_bytes", "ipop.decap_packets",
                     "fault.injected", "phys.delivered",
                     "sim.events_processed", "overlord.announces"):
        assert expected in names, expected
    fault = [r for r in rows if r["name"] == "fault.injected"]
    assert sum(r["value"] for r in fault) >= 1
    assert any(r["labels"].get("kind") == "node.crash" for r in fault)


def test_ip_trace_tree_is_multi_hop(run_dir, capsys):
    manifest = inspect_cli.load_manifest(run_dir)
    ip = [t for t in manifest["traces"] if t["kind"] == "ip"]
    assert ip, "no traced virtual-IP packet"
    tid = max(ip, key=lambda t: t["spans"])["trace"]
    assert inspect_cli.main([run_dir, "--trace", str(tid)]) == 0
    out = capsys.readouterr().out
    assert "ip.packet" in out
    assert out.count("route.hop") >= 2, "expected a multi-hop timeline"
    assert "phys.tx" in out
    assert "route.deliver" in out


def test_ctm_trace_tree_shows_handshake(run_dir, capsys):
    manifest = inspect_cli.load_manifest(run_dir)
    ctm = [t for t in manifest["traces"] if t["kind"] == "ctm"]
    assert ctm, "no traced CTM handshake"
    tid = max(ctm, key=lambda t: t["spans"])["trace"]
    assert inspect_cli.main([run_dir, "--trace", str(tid)]) == 0
    out = capsys.readouterr().out
    assert "ctm.handshake" in out
    assert "route.hop" in out
    assert "link.attempt" in out
    assert "link.send" in out


def test_inspector_summary_views(run_dir, capsys):
    assert inspect_cli.main([run_dir]) == 0
    out = capsys.readouterr().out
    assert "node health" in out
    assert "connection census" in out
    assert "slowest routes" in out
    assert "traces" in out


def test_inspector_unknown_trace_fails(run_dir, capsys):
    assert inspect_cli.main([run_dir, "--trace", "999999"]) == 1
    assert "not found" in capsys.readouterr().out


def test_inspector_bad_dir(tmp_path, capsys):
    assert inspect_cli.main([str(tmp_path / "nope")]) == 2
