"""Deterministic named RNG streams."""

import numpy as np

from repro.sim import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(7)
    assert reg.stream("a") is reg.stream("a")


def test_same_seed_reproduces_values():
    a = RngRegistry(7).stream("phys.latency").random(5)
    b = RngRegistry(7).stream("phys.latency").random(5)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    reg = RngRegistry(7)
    a = reg.stream("one").random(5)
    b = reg.stream("two").random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random(5)
    b = RngRegistry(2).stream("x").random(5)
    assert not np.array_equal(a, b)


def test_new_stream_does_not_perturb_existing():
    """Adding a consumer must not change other streams' sequences."""
    reg1 = RngRegistry(7)
    _ = reg1.stream("a").random(3)
    after = reg1.stream("b").random(3)

    reg2 = RngRegistry(7)
    direct = reg2.stream("b").random(3)
    assert np.array_equal(after, direct)


def test_fork_streams_are_distinct():
    reg = RngRegistry(7)
    a = reg.fork("trial", 0).random(4)
    b = reg.fork("trial", 1).random(4)
    assert not np.array_equal(a, b)


def test_names_listing():
    reg = RngRegistry(0)
    reg.stream("z")
    reg.stream("a")
    assert reg.names() == ["a", "z"]
