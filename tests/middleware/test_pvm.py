"""PVM master/worker: dynamic dispatch, barriers, heterogeneity."""

import pytest

from repro.middleware.pvm import PvmMaster, PvmTask
from repro.sim.units import KB
from tests.conftest import make_mini_testbed


@pytest.fixture()
def bed():
    return make_mini_testbed(seed=61)


def tasks(n, work=3.0):
    return [PvmTask(work_ref=work, send_size=KB(10), recv_size=KB(5))
            for _ in range(n)]


def test_single_round_completes(bed):
    sim, tb = bed
    master = PvmMaster(tb.head)
    for w in tb.workers()[:4]:
        master.add_worker(w)
    done = master.run_rounds([tasks(8)])
    sim.run(until=sim.now + 600)
    assert done.fired
    assert len(master.results) == 8
    assert len(master.round_times) == 1


def test_barrier_between_rounds(bed):
    sim, tb = bed
    master = PvmMaster(tb.head)
    for w in tb.workers()[:3]:
        master.add_worker(w)
    done = master.run_rounds([tasks(5), tasks(5)])
    sim.run(until=sim.now + 900)
    assert done.fired
    first_round = [t for t in master.results[:5]]
    second_round = [t for t in master.results[5:]]
    # every task of round 1 completed before any dispatch of round 2
    assert max(t.completed_at for t in first_round) <= \
        min(t.dispatched_at for t in second_round)


def test_dynamic_dispatch_balances_heterogeneous_speeds(bed):
    sim, tb = bed
    master = PvmMaster(tb.head)
    fast = tb.vm(30)   # 1.33x
    slow = tb.vm(32)   # 0.54x
    wf = master.add_worker(fast)
    ws = master.add_worker(slow)
    done = master.run_rounds([tasks(12, work=4.0)])
    sim.run(until=sim.now + 900)
    assert done.fired
    assert wf.tasks_done > ws.tasks_done  # pool feeds the fast node more


def test_parallel_faster_than_serial(bed):
    sim, tb = bed
    work = tasks(12, work=5.0)
    master = PvmMaster(tb.head)
    for w in tb.workers()[:6]:
        master.add_worker(w)
    done = master.run_rounds([work])
    t0 = sim.now
    sim.run(until=sim.now + 900)
    elapsed = done.value
    serial_estimate = 12 * 5.0  # even ignoring overheads
    assert elapsed < serial_estimate


def test_task_accounting_fields(bed):
    sim, tb = bed
    master = PvmMaster(tb.head)
    master.add_worker(tb.vm(3))
    done = master.run_rounds([tasks(2)])
    sim.run(until=sim.now + 600)
    for t in master.results:
        assert t.worker == tb.vm(3).name
        assert t.completed_at > t.dispatched_at > 0
