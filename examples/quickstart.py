#!/usr/bin/env python
"""Quickstart: build a small WOW and watch self-organization happen.

Creates a bootstrap overlay plus two firewalled campuses, starts a handful
of WOW virtual workstations, pings across the virtual network, and prints
the moment the traffic-driven shortcut connection forms (paper §IV-E).

Run:  python examples/quickstart.py
"""

from repro.brunet.connection import ConnectionType
from repro.core import Deployment
from repro.core.config import SiteSpec
from repro.ipop import Pinger
from repro.sim import Simulator
from repro.sim.units import ms


def main() -> None:
    sim = Simulator(seed=7)
    wow = Deployment(sim)

    # 1. a public bootstrap overlay (stands in for the paper's PlanetLab)
    wow.add_planetlab(n_hosts=4, n_routers=10)

    # 2. two firewalled campuses; campus-a's NAT cannot hairpin (like UFL)
    campus_a = wow.add_site(SiteSpec("campus-a", "10.50.",
                                     nat_hairpin=False))
    campus_b = wow.add_site(SiteSpec("campus-b", "10.60.",
                                     nat_hairpin=True))

    # 3. clone VMs into both campuses — each joins the overlay on boot
    alice = wow.create_vm("alice", "172.16.0.2", campus_a)
    bob = wow.create_vm("bob", "172.16.0.3", campus_b)
    carol = wow.create_vm("carol", "172.16.0.4", campus_b)
    sim.run(until=30)  # let the bootstrap ring assemble
    for vm in (alice, bob, carol):
        vm.start()
    sim.run(until=sim.now + 60)

    for vm in (alice, bob, carol):
        joined = vm.node.joined_at - vm.node.started_at
        print(f"{vm.name}: joined the P2P ring {joined:.1f}s after boot "
              f"(virtual IP {vm.virtual_ip})")

    # 4. ping bob from alice: multi-hop at first, single-hop once the
    #    shortcut overlord reacts to the traffic
    pinger = Pinger(alice.router)
    ping_started = sim.now
    done = pinger.run(bob.virtual_ip, count=60, interval=1.0)
    shortcut_at = {}

    def watch(conn) -> None:
        if conn.peer_addr == bob.addr and \
                ConnectionType.SHORTCUT in conn.types:
            shortcut_at.setdefault("t", sim.now)
    alice.node.on_connection.append(watch)

    sim.run(until=sim.now + 65)
    stats = done.value
    print(f"\nping alice→bob: {int((1 - stats.loss_fraction()) * 60)}/60 "
          f"replies, mean RTT {1000 * stats.mean_rtt():.1f} ms")
    early = stats.mean_rtt(0, 10)
    late = stats.mean_rtt(50, 60)
    print(f"  first 10 pings (multi-hop route): {1000 * early:.1f} ms")
    print(f"  last 10 pings (direct shortcut):  {1000 * late:.1f} ms")
    if "t" in shortcut_at:
        print(f"  shortcut self-configured {shortcut_at['t'] - ping_started:.0f}s "
              f"into the ping stream (decentralized NAT hole punching)")


if __name__ == "__main__":
    main()
