"""DHT over the ring + decentralized resource discovery (§VI extension)."""

import pytest

from repro.brunet.dht import DhtNode, key_address
from repro.middleware.discovery import (
    ResourceAd,
    ResourceDiscovery,
    ResourcePublisher,
)
from repro.sim.process import Process, WaitSignal
from tests.conftest import build_overlay, make_mini_testbed


@pytest.fixture()
def dht_ring(sim, internet):
    nodes, _ = build_overlay(sim, internet, 10)
    dhts = [DhtNode(n) for n in nodes]
    return nodes, dhts


class TestDht:
    def test_put_get_roundtrip(self, sim, dht_ring):
        nodes, dhts = dht_ring
        ack = dhts[0].put("alpha", 42)
        sim.run(until=sim.now + 5)
        assert ack.fired
        got = dhts[7].get("alpha")
        sim.run(until=sim.now + 5)
        assert got.fired and got.value.found
        assert got.value.values == [42]

    def test_get_missing_key(self, sim, dht_ring):
        nodes, dhts = dht_ring
        got = dhts[3].get("never-stored")
        sim.run(until=sim.now + 5)
        assert got.fired and not got.value.found

    def test_key_lives_at_nearest_node(self, sim, dht_ring):
        from repro.brunet.address import ring_distance
        nodes, dhts = dht_ring
        dhts[0].put("beta", "x")
        sim.run(until=sim.now + 5)
        owner = min(nodes, key=lambda n: ring_distance(n.addr,
                                                       key_address("beta")))
        assert "beta" in owner.dht.store

    def test_replication_to_both_neighbors(self, sim, dht_ring):
        nodes, dhts = dht_ring
        dhts[0].put("gamma", "y")
        sim.run(until=sim.now + 5)
        holders = [n.name for n in nodes if "gamma" in n.dht.store]
        assert len(holders) == 3  # owner + both ring neighbours

    def test_multiple_values_per_key(self, sim, dht_ring):
        nodes, dhts = dht_ring
        dhts[1].put("pool", "a")
        dhts[2].put("pool", "b")
        sim.run(until=sim.now + 5)
        got = dhts[5].get("pool")
        sim.run(until=sim.now + 5)
        assert sorted(got.value.values) == ["a", "b"]

    def test_republish_replaces_not_duplicates(self, sim, dht_ring):
        nodes, dhts = dht_ring
        for _ in range(3):
            dhts[1].put("dup", "same")
            sim.run(until=sim.now + 3)
        got = dhts[4].get("dup")
        sim.run(until=sim.now + 5)
        assert got.value.values == ["same"]

    def test_entries_expire(self, sim, dht_ring):
        nodes, dhts = dht_ring
        dhts[0].put("ephemeral", 1, ttl=20.0)
        sim.run(until=sim.now + 5)
        got = dhts[3].get("ephemeral")
        sim.run(until=sim.now + 5)
        assert got.value.found
        sim.run(until=sim.now + 60)  # past TTL + gc
        got2 = dhts[3].get("ephemeral")
        sim.run(until=sim.now + 5)
        assert not got2.value.found

    def test_survives_owner_death_via_replica(self, sim, dht_ring):
        from repro.brunet.address import ring_distance
        nodes, dhts = dht_ring
        dhts[0].put("resilient", "v", ttl=600.0)
        sim.run(until=sim.now + 5)
        owner = min(nodes, key=lambda n: ring_distance(
            n.addr, key_address("resilient")))
        owner.stop()
        sim.run(until=sim.now + 120)  # ring heals; replica becomes nearest
        asker = next(n for n in nodes if n is not owner)
        got = asker.dht.get("resilient")
        sim.run(until=sim.now + 10)
        assert got.fired and got.value.found


class TestDiscovery:
    def test_capability_keys(self):
        fast = ResourceAd("n", "ip", 1.33, 1, "lsu")
        assert "cpu:fast" in fast.capability_keys()
        assert "slots:free" in fast.capability_keys()
        slow = ResourceAd("n", "ip", 0.5, 0, "gru")
        keys = slow.capability_keys()
        assert "cpu:slow" in keys and "slots:free" not in keys
        assert "site:gru" in keys

    def test_publish_and_discover_on_testbed(self):
        sim, tb = make_mini_testbed(seed=88)
        tb.deployment.enable_dht()
        publishers = [ResourcePublisher(tb.vm(i)) for i in (30, 31, 32, 33)]
        finder = ResourceDiscovery(tb.vm(2))
        sim.run(until=sim.now + 20)
        found = finder.find("cpu:fast")
        sim.run(until=sim.now + 10)
        names = {t[0] for t in found.value}
        # lsu (30, 31) and vims (33) hosts are 1.33x
        assert {"node030", "node031", "node033"} <= names
        assert "node032" not in names  # ncgrid is the slow PIII

    def test_ranked_discovery(self):
        sim, tb = make_mini_testbed(seed=89)
        tb.deployment.enable_dht()
        for i in (3, 17, 30):
            ResourcePublisher(tb.vm(i))
        finder = ResourceDiscovery(tb.vm(2))
        sim.run(until=sim.now + 20)
        out = {}

        def proc():
            ranked = yield from finder.find_and_rank("workers:any")
            out["ranked"] = ranked

        Process(sim, proc())
        sim.run(until=sim.now + 15)
        speeds = [t[2] for t in out["ranked"]]
        assert speeds == sorted(speeds, reverse=True)
        assert len(speeds) == 3
