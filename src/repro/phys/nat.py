"""NAT and firewall middlebox models.

The WOW experiments hinge on NAT semantics: the UFL campus NAT drops
"hairpin" packets (sourced inside, addressed to the NAT's own public
mapping), which forces the linking protocol through its full retry/back-off
schedule before falling back to private URIs; the VMware NAT does support
hairpin, so NWU-NWU shortcuts form quickly (paper §V-B).

Behaviour taxonomy follows RFC 4787 / the hole-punching literature the paper
cites ([25] Ford et al.):

* **Mapping**: ``ENDPOINT_INDEPENDENT`` (one public port per inner socket —
  "cone") or ``ADDRESS_PORT_DEPENDENT`` (a fresh public port per remote
  endpoint — "symmetric").
* **Filtering**: which inbound packets a mapping accepts —
  ``ENDPOINT_INDEPENDENT`` (full cone), ``ADDRESS_DEPENDENT`` (restricted
  cone) or ``ADDRESS_PORT_DEPENDENT`` (port-restricted cone).
* **hairpin**: whether packets from the inside addressed to the NAT's own
  public endpoint are looped back inside.

Mappings expire after ``mapping_timeout`` seconds of disuse; expiry may
change a node's NAT-assigned URI — §V-E notes IPOP survives exactly this on
the home-network node, which we reproduce in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.phys.endpoints import Endpoint, ip_in_subnet


class MappingBehavior(enum.Enum):
    """How public ports are allocated: one per inner socket (cone) or one
    per (inner socket, remote endpoint) pair (symmetric)."""

    ENDPOINT_INDEPENDENT = "eim"
    ADDRESS_PORT_DEPENDENT = "apdm"  # "symmetric"


class FilteringBehavior(enum.Enum):
    """Which inbound packets an existing mapping accepts (RFC 4787)."""

    ENDPOINT_INDEPENDENT = "eif"  # full cone
    ADDRESS_DEPENDENT = "adf"  # restricted cone
    ADDRESS_PORT_DEPENDENT = "apdf"  # port-restricted cone


@dataclass(frozen=True)
class NatSpec:
    """Static description of a NAT's behaviour (used by topology builders)."""

    mapping: MappingBehavior = MappingBehavior.ENDPOINT_INDEPENDENT
    filtering: FilteringBehavior = FilteringBehavior.ADDRESS_PORT_DEPENDENT
    hairpin: bool = True
    mapping_timeout: float = 120.0

    @staticmethod
    def cone(hairpin: bool = True, timeout: float = 120.0) -> "NatSpec":
        """Typical consumer/campus cone NAT (port-restricted filtering)."""
        return NatSpec(MappingBehavior.ENDPOINT_INDEPENDENT,
                       FilteringBehavior.ADDRESS_PORT_DEPENDENT,
                       hairpin, timeout)

    @staticmethod
    def symmetric(hairpin: bool = False, timeout: float = 120.0) -> "NatSpec":
        """Symmetric NAT: hole punching with another NATed peer fails."""
        return NatSpec(MappingBehavior.ADDRESS_PORT_DEPENDENT,
                       FilteringBehavior.ADDRESS_PORT_DEPENDENT,
                       hairpin, timeout)


@dataclass
class FirewallPolicy:
    """Stateless inbound firewall in front of *public* hosts.

    ``open_udp_ports`` — inbound UDP allowed only to these ports (None means
    allow everything).  Outbound traffic always passes; the stateful part of
    campus firewalls is subsumed by the NAT filtering model.
    """

    open_udp_ports: Optional[frozenset[int]] = None

    def allows_inbound(self, dst_port: int) -> bool:
        """True when the firewall admits inbound UDP to ``dst_port``."""
        return self.open_udp_ports is None or dst_port in self.open_udp_ports


@dataclass
class _Mapping:
    inner: Endpoint
    public_port: int
    key: tuple = ()
    # remote endpoints the inner socket has sent to through this mapping
    contacted: set[Endpoint] = field(default_factory=set)
    last_used: float = 0.0


class Nat:
    """A NAT device translating between an inner subnet and a public IP.

    The device owns ``public_ip`` and translates UDP traffic for inner hosts
    whose IPs fall inside ``subnet``.  NATs nest: a VMware NAT's "public" IP
    may itself be a private address inside a campus NAT.
    """

    #: public ports are drawn from [PORT_MIN, PORT_MAX] and reused after
    #: their holder expires — real NATs never mint ports past 65535
    PORT_MIN = 20000
    PORT_MAX = 65535

    def __init__(self, name: str, public_ip: str, subnet: str, spec: NatSpec,
                 clock=None):
        self.name = name
        self.public_ip = public_ip
        self.subnet = subnet if subnet.endswith(".") else subnet + "."
        self.spec = spec
        self._clock = clock or (lambda: 0.0)
        self._next_port = self.PORT_MIN
        # EIM: key (proto, inner_ep); APDM: key (proto, inner_ep, remote_ep)
        self._by_key: dict[tuple, _Mapping] = {}
        self._by_port: dict[int, _Mapping] = {}
        self.drops: dict[str, int] = {"filtering": 0, "hairpin": 0,
                                      "no_mapping": 0}

    # ------------------------------------------------------------------
    def live_mappings(self) -> int:
        """Number of currently live (non-expired) mappings — exported as
        the ``nat.mappings_live`` gauge."""
        return sum(1 for m in self._by_port.values()
                   if not self._expired(m))

    # ------------------------------------------------------------------
    def is_inside(self, ip: str) -> bool:
        """True when ``ip`` belongs to this NAT's private subnet."""
        return ip_in_subnet(ip, self.subnet)

    def _now(self) -> float:
        return self._clock()

    def _expired(self, m: _Mapping) -> bool:
        return self._now() - m.last_used > self.spec.mapping_timeout

    def _gc(self, m: _Mapping) -> None:
        self._by_key.pop(m.key, None)
        self._by_port.pop(m.public_port, None)

    def _alloc_port(self) -> int:
        """Next free public port, wrapping within [PORT_MIN, PORT_MAX].

        Ports whose holder has expired are reclaimed in passing; a port
        still held by a live mapping is skipped."""
        span = self.PORT_MAX - self.PORT_MIN + 1
        for _ in range(span):
            port = self._next_port
            self._next_port = (port + 1 if port < self.PORT_MAX
                               else self.PORT_MIN)
            holder = self._by_port.get(port)
            if holder is None:
                return port
            if self._expired(holder):
                self._gc(holder)
                return port
        raise RuntimeError(f"{self.name}: public port space exhausted")

    def _key(self, proto: str, inner: Endpoint, remote: Endpoint) -> tuple:
        if self.spec.mapping == MappingBehavior.ENDPOINT_INDEPENDENT:
            return (proto, inner)
        return (proto, inner, remote)

    # ------------------------------------------------------------------
    def translate_outbound(self, proto: str, inner: Endpoint,
                           remote: Endpoint) -> Endpoint:
        """Rewrite an outbound packet's source; creates/refreshes a mapping.

        Returns the public source endpoint.
        """
        key = self._key(proto, inner, remote)
        m = self._by_key.get(key)
        if m is not None and self._expired(m):
            self._gc(m)
            m = None
        if m is None:
            port = self._alloc_port()
            m = _Mapping(inner=inner, public_port=port, key=key)
            self._by_key[key] = m
            self._by_port[port] = m
        m.contacted.add(remote)
        m.last_used = self._now()
        return Endpoint(self.public_ip, m.public_port)

    def translate_inbound(self, proto: str, public_port: int,
                          remote: Endpoint) -> Optional[Endpoint]:
        """Rewrite an inbound packet's destination.

        Returns the inner endpoint, or None when the packet must be dropped
        (no mapping / filtering violation / expiry).
        """
        m = self._by_port.get(public_port)
        if m is None:
            self.drops["no_mapping"] += 1
            return None
        if self._expired(m):
            self._gc(m)
            self.drops["no_mapping"] += 1
            return None
        filt = self.spec.filtering
        if filt == FilteringBehavior.ENDPOINT_INDEPENDENT:
            allowed = True
        elif filt == FilteringBehavior.ADDRESS_DEPENDENT:
            allowed = any(r.ip == remote.ip for r in m.contacted)
        else:  # ADDRESS_PORT_DEPENDENT
            allowed = remote in m.contacted
        if not allowed:
            self.drops["filtering"] += 1
            return None
        m.last_used = self._now()
        return m.inner

    # ------------------------------------------------------------------
    def lookup_public(self, proto: str, inner: Endpoint) -> Optional[Endpoint]:
        """The public endpoint currently mapped for ``inner`` (EIM only)."""
        if self.spec.mapping != MappingBehavior.ENDPOINT_INDEPENDENT:
            return None
        m = self._by_key.get((proto, inner))
        if m is None or self._expired(m):
            return None
        return Endpoint(self.public_ip, m.public_port)

    def expire_all(self) -> None:
        """Drop every mapping (models NAT reboot / ISP re-translation)."""
        self._by_key.clear()
        self._by_port.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Nat {self.name} {self.subnet}* -> {self.public_ip} "
                f"{self.spec.mapping.value}/{self.spec.filtering.value} "
                f"hairpin={self.spec.hairpin}>")
