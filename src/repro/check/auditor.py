"""Inline invariant auditor.

Runs the checks in :mod:`repro.check.invariants` against the *live*
overlay at sampled sim-time intervals, entirely read-only: the sweep is
an ordinary scheduled event that inspects node state and never sends a
message, so enabling ``--audit`` does not perturb same-seed trajectories
(the only side effect, warming ``next_hop_cache`` entries, is
semantically transparent by the cache-coherence invariant itself).

Convergence-dependent findings (``gated=True``) go through persistence
gating: a finding's stable ``key`` must be re-observed continuously for
:attr:`AuditConfig.grace` seconds before it is promoted to a violation.
Mid-churn the ring *is* briefly wrong — the liveness layer needs up to
``liveness_timeout`` (90 s) to even notice a dead peer — so the default
grace of 120 s separates "repair in progress" from "wedged".  Instant
findings (cache incoherence, metric increases, empty label sets, leaks)
are reported on first sight and deduplicated by key.
"""

from __future__ import annotations

import dataclasses
import json
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Union

from repro.check import invariants
from repro.check.invariants import Violation

if TYPE_CHECKING:  # pragma: no cover
    from repro.brunet.node import BrunetNode
    from repro.phys.network import Internet
    from repro.sim.engine import Simulator

ALL_CHECKS = ("ring", "symmetry", "routing", "cache", "leak")


@dataclasses.dataclass
class AuditConfig:
    """Knobs for the inline auditor."""

    #: sim seconds between sweeps
    interval: float = 10.0
    #: how long a gated finding must persist before it becomes a violation
    grace: float = 120.0
    #: connections younger than this skip the symmetry check
    handshake_grace: float = 30.0
    #: routing chains sampled per sweep
    max_pairs: int = 64
    #: next_hop_cache entries re-verified per node per sweep
    max_cache_entries: int = 256
    #: non-root spans open longer than this are leaks
    span_grace: float = 900.0
    #: per-sweep work budget for big rings (None = unbounded): bounds the
    #: ring/symmetry sweeps to a deterministic stride sample of this many
    #: nodes, the partition BFS to 50× as many edges, the routing sample
    #: to this many pairs and the cache audit to this many entries total
    budget: Optional[int] = None
    #: which invariant classes to run
    checks: tuple = ALL_CHECKS


class Auditor:
    """Samples the overlay's invariants while a simulation runs.

    ``nodes`` is either a concrete iterable of nodes or a zero-argument
    callable returning one — experiments that add/remove nodes pass a
    callable so each sweep sees the current population.
    """

    def __init__(self, sim: "Simulator",
                 nodes: Union[Iterable["BrunetNode"],
                              Callable[[], Iterable["BrunetNode"]]],
                 internet: Optional["Internet"] = None,
                 config: Optional[AuditConfig] = None,
                 name: str = "audit"):
        self.sim = sim
        self._nodes = nodes
        self.internet = internet
        self.config = config or AuditConfig()
        self.name = name
        self.violations: list[Violation] = []
        #: gated finding key -> sim time first observed
        self._pending: dict[str, float] = {}
        #: keys already promoted/reported (dedup)
        self._reported: set[str] = set()
        self.sweeps = 0
        self._timer = None
        self._finished = False
        metrics = sim.obs.metrics
        self._m_sweeps = metrics.counter("audit.sweeps")
        self._m_violations = {
            check: metrics.counter("audit.violations", check=check)
            for check in (*ALL_CHECKS, "span")}
        sim.obs.auditor = self

    # ------------------------------------------------------------------
    def nodes(self) -> list["BrunetNode"]:
        src = self._nodes
        return list(src() if callable(src) else src)

    def start(self) -> "Auditor":
        self._timer = self.sim.schedule(self.config.interval, self._tick)
        return self

    def _tick(self) -> None:
        self.sweep()
        if not self._finished:
            self._timer = self.sim.schedule(self.config.interval, self._tick)

    # ------------------------------------------------------------------
    def sweep(self) -> list[Violation]:
        """Run one audit pass; returns violations *promoted this pass*."""
        cfg = self.config
        now = self.sim.now
        nodes = self.nodes()
        findings: list[Violation] = []
        if "ring" in cfg.checks:
            findings += invariants.check_ring(nodes, now, budget=cfg.budget)
        if "symmetry" in cfg.checks:
            findings += invariants.check_symmetry(
                nodes, now, handshake_grace=cfg.handshake_grace,
                budget=cfg.budget)
        if "routing" in cfg.checks:
            findings += invariants.check_routing(
                nodes, now, max_pairs=cfg.max_pairs, budget=cfg.budget)
        if "cache" in cfg.checks:
            findings += invariants.check_cache(
                nodes, now, max_entries=cfg.max_cache_entries,
                budget=cfg.budget)
        if "leak" in cfg.checks:
            findings += invariants.check_leaks(
                nodes, now, internet=self.internet,
                spans=self.sim.obs.spans, span_grace=cfg.span_grace)
        promoted = self._ingest(findings, now)
        self.sweeps += 1
        self._m_sweeps.inc()
        return promoted

    def _ingest(self, findings: list[Violation],
                now: float) -> list[Violation]:
        promoted: list[Violation] = []
        seen_gated: set[str] = set()
        for v in findings:
            if v.key in self._reported:
                continue
            if not v.gated:
                promoted.append(v)
                continue
            seen_gated.add(v.key)
            first = self._pending.setdefault(v.key, now)
            if now - first >= self.config.grace:
                promoted.append(dataclasses.replace(v, t=first))
        # findings that healed drop out of the pending map entirely
        self._pending = {k: t for k, t in self._pending.items()
                         if k in seen_gated}
        for v in promoted:
            self._reported.add(v.key)
            self._pending.pop(v.key, None)
            self._m_violations[v.check].inc()
        self.violations.extend(promoted)
        return promoted

    # ------------------------------------------------------------------
    def finish(self) -> list[Violation]:
        """Cancel the sweep timer and run one final full pass (leak and
        span audits included).  Returns all violations of the run."""
        if not self._finished:
            self._finished = True
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self.sweep()
        return self.violations

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    def export_jsonl(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            for v in self.violations:
                fh.write(json.dumps(v.to_row(), sort_keys=True) + "\n")
        return path

    def summary(self) -> dict:
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.kind] = counts.get(v.kind, 0) + 1
        return {"sweeps": self.sweeps,
                "violations": len(self.violations),
                "by_kind": dict(sorted(counts.items()))}

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Auditor {self.name} sweeps={self.sweeps} "
                f"violations={len(self.violations)}>")
