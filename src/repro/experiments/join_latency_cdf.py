"""Join-latency CDF (abstract / §I claim).

"In a set of 300 trials, 90% of the nodes self-configured P2P routes
within 10 seconds, and more than 99% established direct connections to
other nodes within 200 seconds."

Each trial starts a fresh VM at a random compute site, measures (a) time
to routability — first ICMP reply from a fixed probe target — and (b) time
until a direct (single overlay hop) connection to a node it communicates
with exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import ExperimentSetup, make_testbed, print_table
from repro.ipop import Pinger
from repro.sim.trace import fraction_below

SITES = ("ufl", "nwu", "lsu", "vims", "ncgrid")


@dataclass
class JoinCdfResult:
    route_times: list[float]
    direct_times: list[float]  # inf when no shortcut formed in the window

    def route_frac_within(self, seconds: float) -> float:
        return fraction_below(self.route_times, seconds)

    def direct_frac_within(self, seconds: float) -> float:
        return fraction_below(self.direct_times, seconds)


def run(seed: int = 0, scale: float = 1.0, trials: int = 300,
        window: float = 260.0,
        setup: ExperimentSetup | None = None) -> JoinCdfResult:
    if setup is None:
        setup = make_testbed(seed=seed, scale=scale)
    sim, tb = setup.sim, setup.testbed
    dep = setup.deployment
    rng = sim.rng.stream("joincdf.sites")

    route_times: list[float] = []
    direct_times: list[float] = []
    for trial in range(trials):
        site = dep.sites[SITES[int(rng.integers(0, len(SITES)))]]
        target = tb.vm(int(rng.integers(2, 30)))
        ip = f"172.16.{2 + trial // 200}.{trial % 200 + 10}"
        vm = dep.create_vm(f"cdf-{trial}", ip, site, cpu_speed=1.0)
        t0 = sim.now
        vm.start()
        pinger = Pinger(vm.router)
        done = pinger.run(target.virtual_ip, count=int(window),
                          interval=1.0)
        # watch for a direct connection to the ping target
        direct_at: dict = {}

        def watch(conn, vm=vm, target=target, direct_at=direct_at,
                  t0=t0) -> None:
            if conn.peer_addr == target.addr and "t" not in direct_at:
                direct_at["t"] = sim.now - t0
        vm.node.on_connection.append(watch)
        sim.run(until=sim.now + window + 5.0)
        stats = done.value
        first = stats.first_reply_seq()
        route_times.append(float(first) if first is not None
                           else float("inf"))
        direct_times.append(direct_at.get("t", float("inf")))
        pinger.close()
        vm.stop()
        del dep.vms[vm.name]
        sim.run(until=sim.now + 30.0)
    return JoinCdfResult(route_times, direct_times)


def report(result: JoinCdfResult) -> None:
    rt = np.array(result.route_times)
    dt = np.array(result.direct_times)
    print_table(
        "Join latency CDF (paper: 90% routable ≤10 s; >99% direct ≤200 s)",
        ["metric", "value"],
        [["trials", rt.size],
         ["routable within 10 s", f"{100*result.route_frac_within(10):.0f}%"],
         ["median route time (s)", f"{np.median(rt[np.isfinite(rt)]):.1f}"],
         ["direct connection within 200 s",
          f"{100*result.direct_frac_within(200):.0f}%"],
         ["median direct time (s)", f"{np.median(dt[np.isfinite(dt)]):.1f}"]])


def main(seed: int = 0, scale: float = 0.5, trials: int = 30
         ) -> JoinCdfResult:
    result = run(seed=seed, scale=scale, trials=trials)
    report(result)
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
