"""Real fastDNAml miniature: JC69 likelihood, pruning, stepwise search."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.fastdnaml import (
    FastDnaMl,
    FastDnamlWorkload,
    _TreeNode,
    jc69_likelihood,
    jc69_transition,
)
from repro.apps.sequences import random_dna
from repro.core.config import CalibrationConfig


class TestJc69:
    def test_transition_rows_sum_to_one(self):
        p = jc69_transition(0.3)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_zero_branch_is_identity(self):
        assert np.allclose(jc69_transition(0.0), np.eye(4))

    def test_long_branch_approaches_uniform(self):
        p = jc69_transition(50.0)
        assert np.allclose(p, 0.25, atol=1e-3)

    def test_negative_branch_rejected(self):
        with pytest.raises(ValueError):
            jc69_transition(-0.1)

    @settings(max_examples=25, deadline=None)
    @given(t=st.floats(0.001, 5.0))
    def test_transition_is_stochastic_and_symmetric(self, t):
        p = jc69_transition(t)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.allclose(p, p.T)
        assert (p > 0).all()


def three_taxa_tree(branch=0.1):
    return _TreeNode(
        left=_TreeNode(taxon=0, branch=branch),
        right=_TreeNode(left=_TreeNode(taxon=1, branch=branch),
                        right=_TreeNode(taxon=2, branch=branch),
                        branch=branch))


class TestLikelihood:
    def test_identical_sequences_like_higher_than_random(self):
        rng = np.random.default_rng(0)
        base = rng.integers(0, 4, size=60, dtype=np.int8)
        identical = np.stack([base, base, base])
        different = random_dna(rng, 3, 60)
        tree = three_taxa_tree()
        assert jc69_likelihood(tree, identical) > \
            jc69_likelihood(tree, different)

    def test_likelihood_is_negative_log(self):
        rng = np.random.default_rng(1)
        aln = random_dna(rng, 3, 40)
        assert jc69_likelihood(three_taxa_tree(), aln) < 0


class TestSearch:
    def test_search_builds_full_tree(self):
        rng = np.random.default_rng(2)
        aln = random_dna(rng, 7, 150)
        ml = FastDnaMl(aln)
        tree, ll = ml.search()
        assert tree.leaf_count() == 7
        taxa = sorted(n.taxon for n in tree.edges() if n.is_leaf)
        assert taxa == list(range(7))
        assert np.isfinite(ll)

    def test_round_sizes_grow_linearly(self):
        rng = np.random.default_rng(3)
        aln = random_dna(rng, 8, 60)
        ml = FastDnaMl(aln)
        ml.search()
        # one round per added taxon, each evaluating #edges candidates
        assert len(ml.round_sizes) == 5
        assert all(b > a for a, b in zip(ml.round_sizes, ml.round_sizes[1:]))
        assert ml.trees_evaluated == sum(ml.round_sizes)

    def test_related_taxa_grouped(self):
        """Two mutated copies of the same ancestor should be placed as
        sister taxa more likely than random ones."""
        rng = np.random.default_rng(4)
        anc1 = rng.integers(0, 4, size=200, dtype=np.int8)
        anc2 = rng.integers(0, 4, size=200, dtype=np.int8)

        def mutate(seq, rate=0.05):
            out = seq.copy()
            flip = rng.random(seq.size) < rate
            out[flip] = rng.integers(0, 4, size=int(flip.sum()), dtype=np.int8)
            return out

        aln = np.stack([mutate(anc1), mutate(anc1), mutate(anc2),
                        mutate(anc2), mutate(anc1)])
        tree, ll_true = ml_search_ll(aln)
        # score a deliberately wrong pairing lower
        assert np.isfinite(ll_true)

    def test_too_few_taxa_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            FastDnaMl(random_dna(rng, 2, 50))


def ml_search_ll(aln):
    ml = FastDnaMl(aln)
    return ml.search()


class TestWorkload:
    def test_rounds_follow_2r_minus_5(self):
        calib = CalibrationConfig()
        wl = FastDnamlWorkload(calib, np.random.default_rng(0))
        rounds = wl.rounds()
        assert len(rounds) == calib.fastdnaml_taxa - 3
        assert len(rounds[0]) == 2 * 4 - 5
        assert len(rounds[-1]) == 2 * calib.fastdnaml_taxa - 5

    def test_sequential_work_calibrated_to_node002(self):
        """Σ work ≈ 22272 s / (1 + virt overhead) on the reference CPU —
        node002's measured sequential runtime is wall time including the
        13% virtualization overhead."""
        calib = CalibrationConfig()
        wl = FastDnamlWorkload(calib, np.random.default_rng(0))
        work = wl.sequential_work()
        wall_on_node002 = work * (1 + calib.virt_overhead)
        assert wall_on_node002 == pytest.approx(22272, rel=0.08)

    def test_task_work_grows_with_round(self):
        calib = CalibrationConfig()
        wl = FastDnamlWorkload(calib, np.random.default_rng(0))
        early = np.mean([wl.task_work(5) for _ in range(50)])
        late = np.mean([wl.task_work(50) for _ in range(50)])
        assert late > 5 * early
