#!/usr/bin/env python
"""Parallel fastDNAml over PVM on a WOW (the paper's §V-D2 use case).

First runs the *real* miniature fastDNAml (Felsenstein-pruning ML stepwise
addition) on a small synthetic alignment, then replays the paper's 50-taxa
workload shape on simulated WOW clusters of different sizes and reports the
parallel speedups — Table III's experiment.

Run:  python examples/parallel_phylogenetics.py [taxa]
"""

import sys

import numpy as np

from repro.apps.fastdnaml import FastDnaMl, FastDnamlWorkload
from repro.apps.sequences import random_dna
from repro.core import build_paper_testbed
from repro.middleware.pvm import PvmMaster
from repro.sim import Simulator
from repro.sim.process import Process


def run_real_search() -> None:
    print("— the application: ML phylogenetics (JC69 + stepwise addition) —")
    rng = np.random.default_rng(1)
    alignment = random_dna(rng, 9, 300)
    ml = FastDnaMl(alignment)
    tree, loglik = ml.search()
    print(f"  9 taxa, 300 sites: best tree logL {loglik:.1f}; "
          f"{ml.trees_evaluated} candidate trees across "
          f"{len(ml.round_sizes)} rounds {ml.round_sizes}")
    print("  each round is the parallel unit fastDNAml-PVM distributes\n")


def sequential(sim, vm, workload) -> float:
    t0 = sim.now
    state = {}

    def proc():
        for round_tasks in workload.rounds():
            for task in round_tasks:
                yield from vm.compute(task.work_ref)
        state["t"] = sim.now - t0

    p = Process(sim, proc())
    p.done.wait_callback(lambda _v: sim.stop())
    sim.run(until=t0 + 5e5)
    return state["t"]


def main(taxa: int = 20) -> None:
    run_real_search()

    print(f"— the cluster: Table III at {taxa} taxa —")
    sim = Simulator(seed=3, trace=False)
    testbed = build_paper_testbed(sim, n_planetlab_routers=24,
                                  n_planetlab_hosts=6)
    testbed.run_warmup()
    calib = testbed.deployment.calib
    calib.fastdnaml_taxa = taxa
    workload = FastDnamlWorkload(calib, sim.rng.stream("example.dnaml"))

    t_seq = sequential(sim, testbed.vm(2), workload)
    print(f"  sequential on node002: {t_seq:.0f}s")
    for n_workers in (8, 15, 30):
        master = PvmMaster(testbed.head)
        for vm in testbed.workers()[:n_workers]:
            master.add_worker(vm)
        done = master.run_rounds(workload.rounds())
        done.wait_callback(lambda _v: sim.stop())
        sim.run(until=sim.now + 5e5)
        elapsed = done.value
        print(f"  {n_workers:2d} workers: {elapsed:.0f}s "
              f"→ speedup {t_seq / elapsed:.1f}x")
    print("  (paper at 50 taxa: 15 nodes 9.1x, 30 nodes 13.6x — limited by "
          "heterogeneous CPUs and per-round synchronisation)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20)
