"""Experiment scaffolding: run_until_signal, make_testbed, warmup."""

import pytest

from repro.experiments.common import make_testbed, run_until_signal
from repro.sim import Signal, Simulator


class TestRunUntilSignal:
    def test_stops_at_signal(self):
        sim = Simulator()
        sig = Signal(sim, "s", latch=True)
        sim.schedule(10.0, sig.fire, "x")
        sim.schedule(50.0, lambda: None)  # later noise
        assert run_until_signal(sim, sig, timeout=100.0)
        assert sim.now == pytest.approx(10.0)

    def test_times_out(self):
        sim = Simulator()
        sig = Signal(sim, "never", latch=True)
        sim.schedule(1.0, lambda: None)
        assert not run_until_signal(sim, sig, timeout=5.0)
        assert sim.now == pytest.approx(5.0)

    def test_already_fired_is_instant(self):
        sim = Simulator()
        sig = Signal(sim, "s", latch=True)
        sig.fire(1)
        assert run_until_signal(sim, sig, timeout=100.0)
        assert sim.now == 0.0


class TestMakeTestbed:
    def test_scale_bounds_planetlab(self):
        setup = make_testbed(seed=1, scale=0.01, settle=60.0)
        pl = setup.deployment.sites["planetlab"]
        # floor of 12 routers regardless of scale
        routers = [n for n in setup.deployment.router_nodes]
        assert len(routers) == 12
        assert len(setup.testbed.vms) == 33

    def test_shortcuts_flag_propagates(self):
        setup = make_testbed(seed=1, scale=0.01, shortcuts=False,
                             settle=60.0)
        assert not setup.deployment.brunet_config.shortcuts_enabled

    def test_warmup_reaches_ring_consistency(self):
        setup = make_testbed(seed=5, scale=0.15)
        assert setup.deployment.ring_consistent()
