"""Microbenchmarks of the hot substrate operations.

These are classic pytest-benchmark timings (many rounds) for the paths
profiling showed dominate experiment wall time: the event loop, datagram
delivery through NAT chains, greedy routing decisions, max-min flow rate
computation, and the two real application kernels.
"""

import numpy as np
import pytest

from repro.apps.fastdnaml import jc69_likelihood
from repro.apps.meme import MemeMotifFinder
from repro.apps.sequences import random_dna
from repro.brunet.address import BrunetAddress, random_address, ring_distance
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.routing import next_hop
from repro.brunet.table import ConnectionTable
from repro.phys import Endpoint, Internet, NatSpec, Site
from repro.phys.flows import Flow, FlowManager, Resource
from repro.phys.nat import Nat
from repro.sim import Simulator


def test_event_loop_throughput(benchmark):
    def run_10k_events():
        sim = Simulator(seed=0, trace=False)
        for i in range(10_000):
            sim.schedule(i * 0.001, lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run_10k_events) == 10_000


def test_nat_translate_roundtrip(benchmark):
    nat = Nat("n", "200.0.0.1", "10.1.", NatSpec.cone())
    inner = Endpoint("10.1.0.2", 14001)
    remote = Endpoint("128.0.0.5", 9000)

    def xlate():
        pub = nat.translate_outbound("udp", inner, remote)
        return nat.translate_inbound("udp", pub.port, remote)

    assert benchmark(xlate) == inner


def test_datagram_delivery_through_nat(benchmark):
    sim = Simulator(seed=1, trace=False)
    net = Internet(sim)
    priv = Site(net, "campus", subnet="10.9.", nat_spec=NatSpec.cone())
    pub = Site(net, "pub")
    a = priv.add_host("a")
    b = pub.add_host("b")
    got = []
    b.bind_udp(5, lambda p, s, z: got.append(p))
    sock = a.bind_udp(5, lambda *a_: None)

    def send_and_run():
        sock.send(Endpoint(b.ip, 5), "x", 10)
        sim.run()

    benchmark(send_and_run)
    assert got


def test_greedy_next_hop_decision(benchmark):
    rng = np.random.default_rng(0)
    me = random_address(rng)
    table = ConnectionTable(me)
    for i in range(12):
        table.add(Connection(random_address(rng), Endpoint("1.1.1.1", i),
                             ConnectionType.STRUCTURED_FAR, 0.0))
    dest = random_address(rng)
    conn = benchmark(next_hop, table, me, dest)
    if conn is not None:
        assert ring_distance(conn.peer_addr, dest) < ring_distance(me, dest)


def test_ring_index_lookup(benchmark):
    """Bisect ring queries over a 10k-entry index (census/warm-start
    hot path)."""
    from repro.brunet.ring import RingIndex
    rng = np.random.default_rng(7)
    idx = RingIndex()
    for i in range(10_000):
        idx.add(int(random_address(rng)), i)
    probe = int(random_address(rng))

    def lookups():
        idx.successor(probe)
        idx.nearest(probe)
        return idx.neighbors(probe, per_side=2)

    assert len(benchmark(lookups)) == 4


def test_flow_rate_recompute(benchmark):
    sim = Simulator(seed=2, trace=False)
    fm = FlowManager(sim)
    resources = [Resource(f"r{i}", 1e6) for i in range(20)]
    rng = np.random.default_rng(3)
    for i in range(50):
        path = [resources[j] for j in rng.choice(20, size=3, replace=False)]
        Flow(fm, f"f{i}", 1e12, path)

    benchmark(fm.recompute)
    assert sum(f.rate for f in fm.flows) > 0


def test_meme_em_iteration(benchmark):
    rng = np.random.default_rng(4)
    seqs = random_dna(rng, 30, 150)
    finder = MemeMotifFinder(width=10, max_iter=3, seed=0)
    result = benchmark(finder.fit, seqs)
    assert np.isfinite(result.log_likelihood)


def test_jc69_tree_likelihood(benchmark):
    from repro.apps.fastdnaml import FastDnaMl
    rng = np.random.default_rng(5)
    aln = random_dna(rng, 10, 500)
    ml = FastDnaMl(aln)
    tree, _ = ml.search()
    ll = benchmark(jc69_likelihood, tree, aln)
    assert np.isfinite(ll)


def test_overlay_node_join(benchmark):
    """Cost of simulating one node joining a 15-node overlay."""
    def join():
        sim = Simulator(seed=6, trace=False)
        net = Internet(sim)
        site = Site(net, "pub")
        from repro.brunet import BrunetConfig, BrunetNode
        from repro.brunet.uri import Uri
        boot = None
        nodes = []
        rng = sim.rng.stream("b")
        for i in range(15):
            h = site.add_host(f"h{i}")
            n = BrunetNode(sim, h, random_address(rng), BrunetConfig())
            n.start([boot] if boot else [])
            if boot is None:
                boot = Uri.udp(h.ip, n.port)
            nodes.append(n)
            sim.run(until=sim.now + 2)
        sim.run(until=sim.now + 30)
        return sum(1 for n in nodes if n.in_ring)

    assert benchmark(join) == 15
