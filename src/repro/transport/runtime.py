"""RealtimeKernel: the simulator surface, backed by asyncio + wall clock.

Protocol code (``BrunetNode``, the linker, the overlords, ``IpopRouter``)
consumes a narrow slice of :class:`~repro.sim.engine.Simulator`:

- ``now`` and ``schedule(delay, fn, *args)`` returning a cancellable handle
- ``rng`` — the named-stream :class:`~repro.sim.rng.RngRegistry`
- ``obs`` — metrics / spans / flight recorder
- ``tracer`` / ``trace()`` / ``trace_on``

This class implements exactly that slice over a running asyncio event
loop, so the identical node objects drive real UDP sockets.  Time is
relative to kernel creation (``loop.time() - t0``), which keeps timer
arithmetic in the same small-positive-float regime the simulator uses.

It is intentionally *not* a subclass of ``Simulator`` — the discrete
event queue, the timer wheel and ``run()`` make no sense under a wall
clock.  Anything outside the slice above raises ``AttributeError``
loudly rather than silently misbehaving.
"""

from __future__ import annotations

import asyncio
import json
from time import perf_counter
from typing import Any, Callable, Optional

from repro.obs.hub import Observability
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class _Handle:
    """Duck-type of :class:`repro.sim.engine.Event` over ``call_later``."""

    __slots__ = ("_timer", "cancelled")

    def __init__(self, timer: asyncio.TimerHandle):
        self._timer = timer
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._timer.cancel()


class RealtimeKernel:
    """Wall-clock stand-in for ``Simulator`` (see module docstring)."""

    def __init__(self, seed: int = 0,
                 loop: Optional[asyncio.AbstractEventLoop] = None):
        self.loop = loop or asyncio.get_running_loop()
        self._t0 = self.loop.time()
        self.rng = RngRegistry(seed)
        self.tracer = Tracer(enabled=False)
        self.obs = Observability(self, metrics=True)
        self.events_processed = 0
        #: mirrors ``Simulator.executing``; subsystems use it to coalesce
        #: work until the end of the current callback
        self.executing = False
        #: optional :class:`~repro.obs.prof.KernelProfiler` (same hook
        #: contract as ``Simulator.profiler``: every fired callback is
        #: counted, every stride-th one wall-timed into it)
        self.profiler = None
        self._stats_transport: Optional[asyncio.DatagramTransport] = None

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Seconds since kernel creation (monotonic)."""
        return self.loop.time() - self._t0

    # -- scheduling ------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> _Handle:
        """Run ``fn(*args)`` after ``delay`` wall-clock seconds."""
        handle = _Handle(self.loop.call_later(
            max(0.0, delay), self._fire, fn, args))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    priority: int = 0) -> _Handle:
        """Run ``fn(*args)`` at absolute kernel time ``time``."""
        return self.schedule(time - self.now, fn, *args, priority=priority)

    def _fire(self, fn: Callable[..., Any], args: tuple) -> None:
        self.events_processed += 1
        self.executing = True
        prof = self.profiler
        if prof is None:
            try:
                fn(*args)
            finally:
                self.executing = False
        else:
            tick = prof._stride_tick - 1
            if tick:
                prof._stride_tick = tick
                try:
                    fn(*args)
                finally:
                    self.executing = False
            else:
                prof._stride_tick = prof.stride
                t0 = perf_counter()
                try:
                    fn(*args)
                finally:
                    self.executing = False
                    prof.account(fn, perf_counter() - t0, self)

    # -- stats socket -----------------------------------------------------
    async def serve_stats(self, host: str = "127.0.0.1",
                          port: int = 0) -> tuple[str, int]:
        """Expose a UDP stats socket: any datagram is answered with one
        JSON snapshot (see :func:`repro.obs.top.build_stats`) — the
        attach point for ``python -m repro.obs.top --connect ip:port``
        against a long-running daemon.  Returns the bound ``(ip, port)``.
        """
        from repro.obs.top import build_stats
        kernel = self

        class _StatsProtocol(asyncio.DatagramProtocol):
            def connection_made(self, transport) -> None:
                self.transport = transport

            def datagram_received(self, data: bytes, addr) -> None:
                try:
                    payload = json.dumps(
                        build_stats(kernel), sort_keys=True).encode()
                except Exception:  # pragma: no cover - stats must not kill
                    payload = b"{}"
                self.transport.sendto(payload, addr)

        transport, _ = await self.loop.create_datagram_endpoint(
            _StatsProtocol, local_addr=(host, port))
        self._stats_transport = transport
        sockname = transport.get_extra_info("sockname")
        return sockname[0], sockname[1]

    def close_stats(self) -> None:
        """Tear down the stats socket (idempotent)."""
        if self._stats_transport is not None:
            self._stats_transport.close()
            self._stats_transport = None

    # -- tracing ---------------------------------------------------------
    @property
    def trace_on(self) -> bool:
        """Always False: the structured tracer is a sim-analysis tool."""
        return self.tracer.enabled

    def trace(self, category: str, **data: Any) -> None:
        """No-op under the wall clock (tracer is constructed disabled)."""
        self.tracer.record(self.now, category, data)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RealtimeKernel t={self.now:.3f}>"
