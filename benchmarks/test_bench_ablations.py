"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one mechanism and checks the direction of the effect:

* far-connection count k — routing hop count (§IV-A: O(log²n / k));
* the shortcut overlord — virtual-network RTT for a communicating pair;
* race resolution policy — address tie-break vs the paper's
  abort-and-back-off (same outcome, different convergence);
* the linking back-off constants — the UFL-UFL shortcut delay scales with
  the URI-ladder length (footnote 2).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.routing import overlay_hop_count
from repro.brunet.uri import Uri
from repro.phys import Internet, Site
from repro.sim import Simulator


def build_ring(n, config, seed=0):
    sim = Simulator(seed=seed, trace=False)
    net = Internet(sim)
    site = Site(net, "pub")
    rng = sim.rng.stream("ab")
    nodes, boot = [], []
    for i in range(n):
        h = site.add_host(f"h{i}")
        node = BrunetNode(sim, h, random_address(rng), config, name=f"n{i}")
        node.start(list(boot))
        if not boot:
            boot.append(Uri.udp(h.ip, node.port))
        nodes.append(node)
        sim.run(until=sim.now + 1.5)
    sim.run(until=sim.now + 120)
    return sim, nodes


def mean_hops(nodes):
    reg = {n.addr: n for n in nodes}
    hops = [overlay_hop_count(a, b.addr, reg.get)
            for a in nodes[:10] for b in nodes if a is not b]
    return float(np.mean([h for h in hops if h is not None]))


def test_ablation_far_count_vs_hops(benchmark):
    def sweep():
        results = {}
        for k in (1, 2, 4, 8):
            _, nodes = build_ring(30, BrunetConfig(far_count=k), seed=3)
            results[k] = mean_hops(nodes)
        return results

    hops = run_once(benchmark, sweep)
    print("\nfar-count ablation (mean overlay hops, n=30):", hops)
    assert hops[8] < hops[1]  # more far links → shorter routes
    assert hops[1] <= 9.0


def test_ablation_race_policy(benchmark):
    """Both race-resolution policies must converge to the same ring; the
    paper's abort-and-back-off is merely slower."""
    def both():
        out = {}
        for label, tiebreak in (("address", True), ("backoff", False)):
            cfg = BrunetConfig(race_tiebreak_by_address=tiebreak)
            sim, nodes = build_ring(20, cfg, seed=4)
            ring = sorted(nodes, key=lambda n: int(n.addr))
            complete = all(
                ring[i].table.get(ring[(i + 1) % len(ring)].addr) is not None
                for i in range(len(ring)))
            out[label] = (complete, mean_hops(nodes))
        return out

    results = run_once(benchmark, both)
    print("\nrace-policy ablation:", results)
    assert results["address"][0] and results["backoff"][0]


def test_ablation_backoff_ladder_length(benchmark):
    """The UFL-UFL shortcut delay is the URI give-up time: shrinking the
    retry ladder shrinks it proportionally."""
    def give_up_times():
        short = BrunetConfig(link_max_retries=3)   # 5+10+20 = 35 s
        long = BrunetConfig(link_max_retries=5)    # 155 s
        return short.uri_give_up_time(), long.uri_give_up_time()

    short_t, long_t = run_once(benchmark, give_up_times)
    assert short_t == 35.0
    assert long_t == 155.0
    assert long_t / short_t > 4.0
