"""``obs.top`` — a live, refreshing dashboard for a running overlay.

Two attach modes:

* **in-process** — wrap a :class:`Top` around any kernel (a
  :class:`~repro.sim.engine.Simulator` or a
  :class:`~repro.transport.runtime.RealtimeKernel`) and call
  :meth:`Top.render` between simulation slices; ``python -m
  repro.obs.top --sim churn`` does exactly that against an inline churn
  overlay, repainting as simulated time advances;
* **stats socket** — ``python -m repro.obs.top --connect IP:PORT`` polls
  the UDP stats socket exposed by
  :meth:`~repro.transport.runtime.RealtimeKernel.serve_stats` (see
  ``python -m repro.apps.udp_demo --stats-port``), so a long-running
  live-UDP daemon can be watched from another process.

The dashboard shows event rate, kernel health (backlog / tombstones /
compactions), route + IPOP traffic rates, wire decode errors, profiler
category shares and hot nodes (when the kernel profiler is attached),
and address-ring sector health (when a
:class:`~repro.obs.metrics.SectorRollup` is registered) — per-sector,
O(sectors) rows, never O(n) per repaint.

Rendering is plain text (ANSI home+clear between frames); ``--curses``
upgrades to a curses screen when the terminal supports it.  Everything
is read-only: attaching a dashboard never changes a run's trajectory.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from typing import Any, Optional

#: metric names whose per-node children feed the hot-node table
_NODE_ACTIVITY = ("brunet.route.sent", "brunet.route.forwarded",
                  "brunet.route.delivered")
_NODE_EXTRA = ("wire.decode_error",)


# ---------------------------------------------------------------------------
# snapshot building (shared by in-process mode and the stats socket)
# ---------------------------------------------------------------------------

def build_stats(kernel: Any, top_nodes: int = 8) -> dict:
    """One JSON-ready dashboard snapshot from a live kernel.

    Read-only and bounded: aggregate sums are O(series names), the node
    table is capped at ``top_nodes`` rows, sectors at O(sectors), and the
    profiler block at its own top-K.
    """
    obs = kernel.obs
    rows = obs.metrics.snapshot()
    sums: dict[str, float] = {}
    per_node: dict[str, dict[str, float]] = {}
    for row in rows:
        name = row["name"]
        if row["type"] == "histogram":
            sums[name + ".count"] = sums.get(name + ".count", 0) \
                + row["count"]
            continue
        value = row.get("value", 0)
        sums[name] = sums.get(name, 0) + value
        node = row["labels"].get("node")
        if node is not None and (name in _NODE_ACTIVITY
                                 or name in _NODE_EXTRA):
            per_node.setdefault(node, {})[name] = value
    hot = sorted(
        per_node.items(),
        key=lambda kv: (-sum(kv[1].get(n, 0) for n in _NODE_ACTIVITY),
                        kv[0]))[:top_nodes]
    out: dict[str, Any] = {
        "t": kernel.now,
        "events": kernel.events_processed,
        "sums": sums,
        "nodes": [{"node": n, **vals} for n, vals in hot],
    }
    pending = getattr(kernel, "pending", None)
    if pending is not None:
        out["backlog"] = pending()
        queue = getattr(kernel, "_queue", ())
        out["tombstone_ratio"] = (getattr(kernel, "_heap_dead", 0)
                                  / len(queue)) if queue else 0.0
        out["compactions"] = getattr(kernel, "compactions", 0)
    rollup = getattr(obs, "rollup", None)
    if rollup is not None:
        out["sectors"] = rollup.refresh()
    profiler = getattr(obs, "profiler", None)
    if profiler is not None and profiler.events:
        summary = profiler.summary(top_handlers=5)
        out["profile"] = {"categories": summary["categories"],
                          "handlers": summary["handlers"],
                          "hot_nodes": summary["hot_nodes"][:top_nodes],
                          "health": summary["health"],
                          "events": summary["events"],
                          "wall_s": summary["wall_s"]}
    return out


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _fmt_bytes(n: float) -> str:
    for unit in ("B", "kB", "MB", "GB"):
        if abs(n) < 1000:
            return f"{n:.1f}{unit}"
        n /= 1000.0
    return f"{n:.1f}TB"


def _rate(cur: dict, prev: Optional[dict], name: str, dt: float) -> str:
    if prev is None or dt <= 0:
        return ""
    d = cur["sums"].get(name, 0) - prev["sums"].get(name, 0)
    return f" (+{d / dt:.1f}/s)" if d else ""


def _bar(frac: float, width: int = 24) -> str:
    return "#" * max(0, min(width, int(round(frac * width))))


def render_stats(cur: dict, prev: Optional[dict] = None,
                 wall_dt: Optional[float] = None,
                 width: int = 78) -> str:
    """Render one dashboard frame from a snapshot (and its predecessor,
    for rates).  Pure function of its inputs — unit-testable offline."""
    sums = cur["sums"]
    lines: list[str] = []
    dt_sim = (cur["t"] - prev["t"]) if prev else 0.0
    ev = cur["events"] - (prev["events"] if prev else 0)
    rate_bits = []
    if prev and dt_sim > 0:
        rate_bits.append(f"{ev / dt_sim:,.0f} ev/sim-s")
    if prev and wall_dt and wall_dt > 0:
        rate_bits.append(f"{ev / wall_dt:,.0f} ev/wall-s")
    head = (f"wow obs.top  t={cur['t']:.1f}s  "
            f"events={cur['events']:,}"
            + (f"  [{' | '.join(rate_bits)}]" if rate_bits else ""))
    lines.append(head[:width])
    if "backlog" in cur:
        lines.append(
            f"kernel   backlog={cur['backlog']}  "
            f"tombstones={cur.get('tombstone_ratio', 0) * 100:.0f}%  "
            f"compactions={cur.get('compactions', 0)}")
    dt = dt_sim if dt_sim > 0 else (wall_dt or 0.0)
    lines.append(
        "routes   "
        f"sent={sums.get('brunet.route.sent', 0):g}"
        f"{_rate(cur, prev, 'brunet.route.sent', dt)}  "
        f"fwd={sums.get('brunet.route.forwarded', 0):g}  "
        f"dlvd={sums.get('brunet.route.delivered', 0):g}"
        f"{_rate(cur, prev, 'brunet.route.delivered', dt)}")
    lines.append(
        "traffic  "
        f"encap={_fmt_bytes(sums.get('ipop.encap_bytes', 0))}"
        f"{_rate(cur, prev, 'ipop.encap_bytes', dt)}  "
        f"decap={_fmt_bytes(sums.get('ipop.decap_bytes', 0))}  "
        f"link ok/fail="
        f"{sums.get('linking.successes', 0):g}/"
        f"{sums.get('linking.failures', 0):g}")
    lines.append(
        "wire     "
        f"tx={_fmt_bytes(sums.get('wire.tx_bytes', 0))}"
        f"{_rate(cur, prev, 'wire.tx_bytes', dt)}  "
        f"rx={_fmt_bytes(sums.get('wire.rx_bytes', 0))}  "
        f"decode_err={sums.get('wire.decode_error', 0):g}  "
        f"body_drop={sums.get('wire.body_decode_drop', 0):g}  "
        f"opaque={sums.get('wire.opaque_frames', 0):g}")
    prof = cur.get("profile")
    if prof:
        total = prof["wall_s"] or 1e-12
        cats = sorted(prof["categories"].items(),
                      key=lambda kv: -kv[1]["time_s"])
        lines.append("profile  " + "  ".join(
            f"{cat}={agg['time_s'] / total * 100:.0f}%"
            for cat, agg in cats[:6]))
        health = prof["health"]
        lines.append(
            f"         slowest={health['max_handler_ms']:.2f}ms "
            f"{health['max_handler'].rsplit('.', 2)[-1]}  "
            f"hot: " + " ".join(
                f"{h['node']}({h['time_s'] * 1e3:.0f}ms)"
                for h in prof["hot_nodes"][:5]))
    sectors = cur.get("sectors")
    if sectors:
        lines.append(f"ring     {len(sectors)} sectors "
                     "(nodes/conns/dlvd per arc)")
        peak = max((s["conns"] for s in sectors), default=0) or 1
        for s in sectors:
            lines.append(
                f"  [{s['sector']}] n={s['nodes']:<4d} "
                f"c={s['conns']:<5d} d={s['route_dlvd']:<7d} "
                f"{_bar(s['conns'] / peak)}")
    if cur.get("nodes"):
        lines.append("hot nodes  (sent/fwd/dlvd/decode_err)")
        for row in cur["nodes"]:
            lines.append(
                f"  {row['node']:<16s} "
                f"{row.get('brunet.route.sent', 0):>7g} "
                f"{row.get('brunet.route.forwarded', 0):>7g} "
                f"{row.get('brunet.route.delivered', 0):>7g} "
                f"{row.get('wire.decode_error', 0):>5g}")
    return "\n".join(line[:width] for line in lines)


class Top:
    """Stateful in-process dashboard: keeps the previous snapshot so
    successive :meth:`render` calls show rates."""

    def __init__(self, kernel: Any, width: int = 78, top_nodes: int = 8):
        self.kernel = kernel
        self.width = width
        self.top_nodes = top_nodes
        self._prev: Optional[dict] = None
        self._prev_wall: Optional[float] = None

    def render(self) -> str:
        """One frame; read-only against the kernel."""
        wall = time.perf_counter()
        cur = build_stats(self.kernel, top_nodes=self.top_nodes)
        wall_dt = (wall - self._prev_wall
                   if self._prev_wall is not None else None)
        out = render_stats(cur, self._prev, wall_dt, width=self.width)
        self._prev = cur
        self._prev_wall = wall
        return out


# ---------------------------------------------------------------------------
# stats-socket client
# ---------------------------------------------------------------------------

def fetch_stats(addr: tuple[str, int], timeout: float = 2.0) -> dict:
    """Poll one snapshot from a :meth:`RealtimeKernel.serve_stats`
    socket (blocking; raises ``socket.timeout`` when the daemon is
    gone)."""
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
        sock.settimeout(timeout)
        sock.sendto(b"stats", addr)
        data, _ = sock.recvfrom(1 << 16)
    return json.loads(data.decode())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _paint(frame: str, plain: bool, out) -> None:
    if plain:
        print(frame, file=out)
        print(file=out, flush=True)
    else:
        out.write("\x1b[H\x1b[2J" + frame + "\n")
        out.flush()


def _watch_socket(args, out) -> int:
    host, _, port = args.connect.rpartition(":")
    addr = (host or "127.0.0.1", int(port))
    prev: Optional[dict] = None
    prev_wall: Optional[float] = None
    frames = 0
    while args.frames is None or frames < args.frames:
        try:
            cur = fetch_stats(addr, timeout=args.timeout)
        except (socket.timeout, OSError) as exc:
            print(f"stats socket {addr[0]}:{addr[1]}: {exc}",
                  file=sys.stderr)
            return 1
        wall = time.perf_counter()
        wall_dt = wall - prev_wall if prev_wall is not None else None
        _paint(render_stats(cur, prev, wall_dt, width=args.width),
               args.plain, out)
        prev, prev_wall = cur, wall
        frames += 1
        if args.frames is None or frames < args.frames:
            time.sleep(args.interval)
    return 0


def _watch_sim(args, out) -> int:
    """Inline demo/smoke mode: run a churn overlay and repaint the
    dashboard as simulated time advances."""
    from repro.brunet.config import BrunetConfig
    from repro.experiments.churn_recovery import _build_overlay
    from repro.sim.engine import Simulator

    sim = Simulator(seed=args.seed, trace=False)
    if args.profile:
        sim.obs.enable_profiler()
    _internet, nodes, _routers = _build_overlay(sim, args.nodes,
                                                BrunetConfig())
    sim.obs.enable_rollup(lambda: [n for n in nodes if n.active],
                          sectors=args.sectors)
    top = Top(sim, width=args.width)
    frames = args.frames if args.frames is not None else 20
    for i in range(frames):
        sim.run(until=sim.now + args.sim_dt)
        _paint(top.render(), args.plain, out)
        if args.interval and i + 1 < frames:
            time.sleep(args.interval)
    return 0


def main(argv: Optional[list[str]] = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="Live dashboard for a running overlay (in-process "
                    "sim demo or a RealtimeKernel stats socket).")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--connect", metavar="IP:PORT",
                      help="poll a RealtimeKernel stats socket "
                           "(see udp_demo --stats-port)")
    mode.add_argument("--sim", choices=["churn"],
                      help="run an inline simulated overlay and watch it")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="wall seconds between repaints (default 1)")
    parser.add_argument("--frames", type=int, default=None,
                        help="stop after N frames (default: forever; "
                             "sim mode defaults to 20)")
    parser.add_argument("--timeout", type=float, default=2.0,
                        help="stats-socket poll timeout")
    parser.add_argument("--width", type=int, default=78)
    parser.add_argument("--plain", action="store_true",
                        help="append frames instead of clearing the "
                             "screen (logs, CI)")
    parser.add_argument("--curses", action="store_true",
                        help="render inside a curses screen when the "
                             "terminal supports it")
    parser.add_argument("--nodes", type=int, default=12,
                        help="overlay size for --sim (default 12)")
    parser.add_argument("--sectors", type=int, default=8,
                        help="ring sectors for the rollup (default 8)")
    parser.add_argument("--sim-dt", type=float, default=10.0,
                        help="simulated seconds per frame (default 10)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--profile", action="store_true",
                        help="attach the kernel profiler in --sim mode")
    args = parser.parse_args(argv)
    out = out or sys.stdout

    runner = _watch_socket if args.connect else _watch_sim
    if args.curses and out is sys.stdout and sys.stdout.isatty():
        try:
            import curses
        except ImportError:  # pragma: no cover - platform-dependent
            args.curses = False
        else:  # pragma: no cover - needs a real terminal
            class _CursesOut:
                def __init__(self, screen):
                    self.screen = screen

                def write(self, text: str) -> None:
                    self.screen.erase()
                    plain = text.replace("\x1b[H\x1b[2J", "")
                    maxy, maxx = self.screen.getmaxyx()
                    for y, line in enumerate(plain.splitlines()[:maxy - 1]):
                        self.screen.addnstr(y, 0, line, maxx - 1)

                def flush(self) -> None:
                    self.screen.refresh()

            return curses.wrapper(
                lambda screen: runner(args, _CursesOut(screen)))
    return runner(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
