"""FlightRecorder: ring eviction, spill file, counters."""

import json

import pytest

from repro.obs.recorder import FlightRecorder


def test_capacity_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_ring_keeps_newest_per_node():
    rec = FlightRecorder(capacity=3)
    for i in range(5):
        rec.record(float(i), "a", "evt", {"i": i})
    rec.record(0.0, "b", "evt", {"i": 99})
    assert [d["i"] for _t, _c, d in rec.recent("a")] == [2, 3, 4]
    assert [d["i"] for _t, _c, d in rec.recent("b")] == [99]
    assert rec.recent("missing") == []
    assert rec.nodes() == ["a", "b"]
    assert rec.recorded == 6
    assert rec.evicted == 2


def test_recent_shape():
    rec = FlightRecorder(capacity=4)
    rec.record(1.5, "n", "conn.add", {"peer": "x"})
    rec.record(2.0, "n", "conn.drop", None)
    assert rec.recent("n") == [(1.5, "conn.add", {"peer": "x"}),
                               (2.0, "conn.drop", {})]


def test_spill_holds_complete_history(tmp_path):
    path = str(tmp_path / "events.jsonl")
    rec = FlightRecorder(capacity=2, spill_path=path)
    for i in range(5):
        rec.record(float(i), "a", "evt", {"i": i})
    rec.close()
    rows = [json.loads(line) for line in open(path)]
    # 3 evictions in order, then the retained tail
    assert [r["data"]["i"] for r in rows] == [0, 1, 2, 3, 4]
    assert all(r["node"] == "a" and r["category"] == "evt" for r in rows)
    # close() is idempotent
    rec.close()


def test_spill_stringifies_exotic_values(tmp_path):
    path = str(tmp_path / "events.jsonl")
    rec = FlightRecorder(capacity=1, spill_path=path)
    rec.record(0.0, "n", "evt", {"obj": object()})
    rec.record(1.0, "n", "evt", {"i": 1})  # evicts the first
    rec.close()
    rows = [json.loads(line) for line in open(path)]
    assert isinstance(rows[0]["data"]["obj"], str)


def test_no_spill_just_drops(tmp_path):
    rec = FlightRecorder(capacity=1)
    rec.record(0.0, "n", "evt", {"i": 0})
    rec.record(1.0, "n", "evt", {"i": 1})
    assert rec.evicted == 1
    rec.flush()  # no-op without a spill file
    rec.close()


# ---------------------------------------------------------------------------
# spill rotation
# ---------------------------------------------------------------------------

def _fill(rec: FlightRecorder, n: int) -> None:
    # capacity=1 ⇒ every record after the first per node spills its
    # predecessor immediately
    for i in range(n):
        rec.record(float(i), "n", "evt", {"i": i})


def test_max_bytes_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=1, max_bytes=0)


def test_rotation_boundaries_and_complete_history(tmp_path):
    path = str(tmp_path / "events.jsonl")
    one_line = len(json.dumps(
        {"t": 0.0, "node": "n", "category": "evt", "data": {"i": 0}},
        sort_keys=True)) + 1
    # segments hold exactly two lines: the third write rotates
    rec = FlightRecorder(capacity=1, spill_path=path,
                         max_bytes=2 * one_line)
    _fill(rec, 7)
    rec.close()
    assert rec.rotations == 3
    assert rec.rotated_paths == [f"{path}.1", f"{path}.2", f"{path}.3"]
    rows = []
    for seg in rec.rotated_paths + [path]:
        with open(seg) as fh:
            seg_rows = [json.loads(line) for line in fh]
        assert len(seg_rows) <= 2  # no segment exceeds the cap
        rows.extend(seg_rows)
    # rotation never loses or reorders events
    assert [r["data"]["i"] for r in rows] == list(range(7))


def test_oversize_line_lands_alone_without_rotation(tmp_path):
    path = str(tmp_path / "events.jsonl")
    rec = FlightRecorder(capacity=1, spill_path=path, max_bytes=10)
    rec.record(0.0, "n", "evt", {"blob": "x" * 100})
    rec.record(1.0, "n", "evt", None)  # spills the oversize line
    rec.close()
    # first line exceeded max_bytes on an empty segment: written anyway,
    # the *next* write rotated it out
    assert rec.rotations == 1
    rows = [json.loads(line) for line in open(f"{path}.1")]
    assert len(rows) == 1 and rows[0]["data"]["blob"] == "x" * 100


def test_gzip_rotated_segments_deterministic(tmp_path):
    import gzip

    def spill(path):
        rec = FlightRecorder(capacity=1, spill_path=path, max_bytes=80,
                             compress_rotated=True)
        _fill(rec, 9)
        rec.close()
        return rec

    rec = spill(str(tmp_path / "a.jsonl"))
    assert rec.rotations >= 1
    assert all(p.endswith(".gz") for p in rec.rotated_paths)
    rows = []
    for seg in rec.rotated_paths:
        with gzip.open(seg, "rt") as fh:
            rows.extend(json.loads(line) for line in fh)
    with open(str(tmp_path / "a.jsonl")) as fh:
        rows.extend(json.loads(line) for line in fh)
    assert [r["data"]["i"] for r in rows] == list(range(9))
    # byte-determinism: an identical event stream compresses identically
    rec_b = spill(str(tmp_path / "b.jsonl"))
    for pa, pb in zip(rec.rotated_paths, rec_b.rotated_paths):
        assert open(pa, "rb").read() == open(pb, "rb").read()
