"""Decentralized bootstrap: the cached-peer store.

The paper's testbed (like every early IPOP deployment) bootstraps off a
short list of well-known seed nodes — which makes seed death fatal to any
node that restarts afterwards.  "Addressing the P2P Bootstrap Problem for
Small Overlay Networks" (PAPERS.md) fixes this with persistent peer
caching: every node keeps a small on-disk store of the last peers it was
actually connected to, and on restart tries those cached endpoints
*before* (and alongside) the configured seeds.  As long as any cached
peer survives, a restarted node rejoins the overlay even when every seed
is dead; once rejoined, the normal self-announce repair path (PR 2) pulls
it back to its true ring position.

:class:`PeerCache` is deliberately tiny and dependency-free: a JSON file
of ``(uri, last_seen wall-clock)`` pairs, most recently confirmed first,
written atomically (tmp + rename) so a crash mid-write never corrupts the
previous generation.  The daemon snapshots its live connection table into
the cache on a timer and on clean shutdown.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterable, Optional

from repro.brunet.uri import Uri

#: current on-disk format version
CACHE_VERSION = 1


class PeerCache:
    """Persistent store of last-known-live peer URIs for bootstrap.

    Parameters
    ----------
    path:
        JSON file backing the cache (created on first :meth:`save`).
    capacity:
        Retained entry count; least recently confirmed entries are
        evicted first.
    max_age:
        Entries older than this many wall-clock seconds are dropped at
        load time (0 disables aging).  A week-old endpoint behind a NAT
        is almost certainly stale; retrying it only delays bootstrap.
    """

    def __init__(self, path: str, capacity: int = 64,
                 max_age: float = 7 * 24 * 3600.0):
        self.path = path
        self.capacity = capacity
        self.max_age = max_age
        #: uri-string -> last_seen wall-clock timestamp
        self._entries: dict[str, float] = {}
        self.loaded_from_disk = False

    # -- mutation ----------------------------------------------------------
    def record(self, uris: Iterable[Uri],
               now: Optional[float] = None) -> None:
        """Confirm ``uris`` as live right now (moves them to the front)."""
        stamp = time.time() if now is None else now
        for uri in uris:
            self._entries[str(uri)] = stamp
        if len(self._entries) > self.capacity:
            keep = sorted(self._entries.items(), key=lambda kv: -kv[1])
            self._entries = dict(keep[:self.capacity])

    def forget(self, uri: Uri) -> None:
        """Drop one endpoint (e.g. confirmed dead)."""
        self._entries.pop(str(uri), None)

    # -- queries -----------------------------------------------------------
    def peers(self) -> list[Uri]:
        """Cached URIs, most recently confirmed first."""
        ordered = sorted(self._entries.items(), key=lambda kv: -kv[1])
        out = []
        for text, _stamp in ordered:
            try:
                out.append(Uri.parse(text))
            except ValueError:  # pragma: no cover - defensive
                continue
        return out

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> list[dict]:
        """JSON-ready view (for the control socket's ``cache`` command)."""
        return [{"uri": text, "last_seen": stamp}
                for text, stamp in sorted(self._entries.items(),
                                          key=lambda kv: -kv[1])]

    # -- persistence -------------------------------------------------------
    def load(self) -> list[Uri]:
        """Read the store from disk (missing/corrupt file = empty cache)
        and return the usable peers, freshest first."""
        try:
            with open(self.path, encoding="utf-8") as fh:
                raw = json.load(fh)
        except (OSError, ValueError):
            return []
        if not isinstance(raw, dict) or raw.get("version") != CACHE_VERSION:
            return []
        cutoff = (time.time() - self.max_age) if self.max_age > 0 else None
        entries: dict[str, float] = {}
        for item in raw.get("peers", []):
            try:
                text, stamp = item["uri"], float(item["last_seen"])
                Uri.parse(text)  # validate before trusting
            except (KeyError, TypeError, ValueError):
                continue
            if cutoff is not None and stamp < cutoff:
                continue
            entries[text] = stamp
        self._entries = entries
        self.loaded_from_disk = True
        return self.peers()

    def save(self) -> None:
        """Atomically persist the store (tmp file + rename)."""
        payload = {"version": CACHE_VERSION, "peers": self.snapshot()}
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PeerCache {self.path} n={len(self._entries)}>"


def merge_bootstrap_uris(seed_uris: Iterable[Uri],
                         cached_uris: Iterable[Uri]) -> list[Uri]:
    """The restart-time bootstrap list: cached peers first (they were
    alive recently — the seeds may be long dead), then the configured
    seeds, deduplicated preserving order."""
    out: list[Uri] = []
    seen: set[Uri] = set()
    for uri in [*cached_uris, *seed_uris]:
        if uri not in seen:
            seen.add(uri)
            out.append(uri)
    return out
