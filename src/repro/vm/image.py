"""VM appliance images.

"Our goal is to make the addition of a node to a pool of Grid resources as
simple as instantiating a pre-configured VM image" (§III-C).  The image is
configured once with the execution environment and cloned per node; the
clone count and software manifest are what deployment tooling (examples,
docs) reason about.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class VmImage:
    """A base appliance: guest OS plus installed software manifest."""

    name: str
    guest_os: str = "Debian/Linux 2.4.27-2"
    software: tuple[str, ...] = (
        "ipop", "mono-1.1.9.2", "openpbs-2.3.16", "pvm-3.4.5",
        "nfs-3", "ssh",
    )
    disk_size: float = 2.0e9  # bytes
    _clones: list[str] = field(default_factory=list)

    def clone(self, instance_name: str) -> "VmImage":
        """Record a clone; returns self (copy-on-write semantics)."""
        self._clones.append(instance_name)
        return self

    @property
    def clone_count(self) -> int:
        return len(self._clones)

    def has_software(self, package: str) -> bool:
        return any(s.startswith(package) for s in self.software)

    def with_software(self, *packages: str) -> "VmImage":
        """A derived image with extra packages (e.g. Condor, Globus)."""
        return VmImage(f"{self.name}+{'+'.join(packages)}", self.guest_os,
                       self.software + tuple(packages), self.disk_size)


DEFAULT_IMAGE = VmImage("wow-base")
