"""PBS server + MOM lifecycle over the virtual network."""

import pytest

from repro.apps.meme import MemeWorkload
from repro.middleware.nfs import NfsServer
from repro.middleware.pbs import JobSpec, PbsMom, PbsServer
from repro.sim.units import KB
from tests.conftest import make_mini_testbed


@pytest.fixture()
def pbs_bed():
    sim, tb = make_mini_testbed(seed=51)
    head = tb.head
    nfs = NfsServer(head)
    nfs.export("job.in", KB(50))
    pbs = PbsServer(head)
    moms = []
    for w in tb.workers()[:4]:
        moms.append(PbsMom(w, head.virtual_ip))
        pbs.register_worker(w.virtual_ip)
    return sim, tb, pbs, nfs, moms


def spec(work=5.0):
    return JobSpec("job", work_ref=work, input_size=KB(50),
                   output_size=KB(20))


def test_single_job_lifecycle(pbs_bed):
    sim, tb, pbs, nfs, moms = pbs_bed
    record = pbs.qsub(spec())
    sim.run(until=sim.now + 300)
    assert record.status == "done"
    assert record.dispatch_time >= record.submit_time
    assert record.start_time is not None
    assert record.end_time > record.start_time
    assert record.wall_time > 5.0  # compute + staging
    assert record.node_name  # assigned a worker


def test_jobs_fan_out_over_workers(pbs_bed):
    sim, tb, pbs, nfs, moms = pbs_bed
    records = [pbs.qsub(spec()) for _ in range(8)]
    sim.run(until=sim.now + 900)
    assert all(r.status == "done" for r in records)
    used = {r.node_name for r in records}
    assert len(used) >= 3  # spread across the 4 workers


def test_output_files_land_on_head(pbs_bed):
    sim, tb, pbs, nfs, moms = pbs_bed
    record = pbs.qsub(spec())
    sim.run(until=sim.now + 300)
    outs = [name for name in nfs.files if name.startswith("job.out")]
    assert len(outs) == 1


def test_expect_fires_all_done(pbs_bed):
    sim, tb, pbs, nfs, moms = pbs_bed
    done = pbs.expect(5)
    for _ in range(5):
        pbs.qsub(spec(work=2.0))
    sim.run(until=sim.now + 900)
    assert done.fired and done.value == 5


def test_throughput_accounting(pbs_bed):
    sim, tb, pbs, nfs, moms = pbs_bed
    for _ in range(6):
        pbs.qsub(spec(work=2.0))
    sim.run(until=sim.now + 900)
    assert pbs.throughput_jobs_per_minute() > 0


def test_worker_register_via_rpc(pbs_bed):
    sim, tb, pbs, nfs, moms = pbs_bed
    extra = tb.workers()[5]
    mom = PbsMom(extra, tb.head.virtual_ip)
    mom.register()
    sim.run(until=sim.now + 30)
    assert extra.virtual_ip in pbs.free_workers


def test_meme_workload_generates_calibrated_specs():
    from repro.core.config import CalibrationConfig
    import numpy as np
    calib = CalibrationConfig()
    rng = np.random.default_rng(0)
    wl = MemeWorkload(calib, rng)
    jobs = wl.jobs(200)
    works = np.array([j.work_ref for j in jobs])
    assert works.mean() == pytest.approx(calib.meme_base_work, rel=0.05)
    assert all(j.input_size == calib.meme_input_size for j in jobs)


def test_worker_death_marks_job_failed_and_pool_continues(pbs_bed):
    """A worker that dies mid-handshake exhausts the head's RPC retries;
    the job is marked failed and the remaining workers keep serving."""
    sim, tb, pbs, nfs, moms = pbs_bed
    victim_ip = pbs.free_workers[0]
    victim = next(vm for vm in tb.vms.values()
                  if vm.virtual_ip == victim_ip)
    victim.stop()
    records = [pbs.qsub(spec(work=2.0)) for _ in range(4)]
    sim.run(until=sim.now + 1200)
    statuses = [r.status for r in records]
    assert statuses.count("failed") <= 1  # only the one sent to the corpse
    assert statuses.count("done") >= 3
