"""End-to-end: audited churn run → clean verdict → bundle → inspector."""

from __future__ import annotations

import json
import os

import pytest

from repro.check import audit_bundle
from repro.experiments import churn_recovery
from repro.obs import inspect as inspect_cli

RUN_KW = dict(seed=3, n_nodes=10, kill_fraction=0.2,
              settle=200.0, horizon=300.0)


@pytest.fixture(scope="module")
def audited(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("audit") / "run")
    result = churn_recovery.run(obs_dir=out, audit=True, **RUN_KW)
    return out, result


def test_audited_churn_run_is_clean(audited):
    _out, result = audited
    assert result.recovered
    assert result.violations == []


def test_bundle_carries_the_audit(audited):
    out, _result = audited
    assert os.path.exists(os.path.join(out, "violations.jsonl"))
    manifest = json.load(open(os.path.join(out, "manifest.json")))
    assert manifest["files"]["violations"] == "violations.jsonl"
    assert manifest["audit"]["violations"] == 0
    assert manifest["audit"]["sweeps"] > 0


def test_inspector_renders_the_audit_verdict(audited, capsys):
    out, _result = audited
    assert inspect_cli.main([out, "--violations"]) == 0
    captured = capsys.readouterr().out
    assert "invariant audit: clean" in captured


def test_posthoc_audit_of_the_bundle_is_clean(audited):
    out, _result = audited
    assert audit_bundle(out) == []


def test_auditing_does_not_perturb_the_run(audited, tmp_path):
    """The auditor is read-only: the same seed with auditing off must
    produce the identical recovery trajectory.  (``obs_dir`` stays on in
    both runs — the observed run sends an extra probe ping.)"""
    _out, with_audit = audited
    plain = churn_recovery.run(obs_dir=str(tmp_path / "plain"), **RUN_KW)
    assert plain.series == with_audit.series
    assert plain.recovery_ring == with_audit.recovery_ring
    assert plain.recovery_routes == with_audit.recovery_routes
