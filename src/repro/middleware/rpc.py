"""Reliable request/response RPC over the virtual network.

Middleware protocols (PBS, NFS control traffic) are modelled as synchronous
RPCs over virtual UDP with timeout/retransmit — the reliability the real
systems get from TCP.  Requests are idempotent at the server via a
response cache keyed by request id, so retransmits after a migration outage
do not double-execute handlers.

Servers can be **single-threaded** (``serialize=True``): requests queue and
are served in arrival order, each consuming server CPU — this is the PBS
head-node bottleneck the paper blames for the no-shortcut throughput
collapse ("the use of shortcuts also reduced queuing delays in the PBS head
node", §V-D1).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.ipop.ippacket import VirtualIpPacket
from repro.sim.process import Process, Signal, Timeout, WaitSignal

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import WowVm

_rid_counter = itertools.count(1)


class RpcFailure:
    """Sentinel fired when a call exhausts its retries."""

    def __init__(self, reason: str = "timeout"):
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RpcFailure {self.reason}>"

    def __bool__(self) -> bool:
        return False


@dataclass
class RpcRequest:
    """One call on the wire; ``rid`` matches retransmits and replies."""

    rid: int
    method: str
    body: Any
    reply_port: int
    reply_ip: str


@dataclass
class RpcResponse:
    """Server answer, addressed back to the caller's reply port."""

    rid: int
    body: Any


#: handler return type: plain body, or (body, response_size_bytes)
Handler = Callable[[str, Any, str], Any]

DEFAULT_REQUEST_SIZE = 256
DEFAULT_RESPONSE_SIZE = 256
RESPONSE_CACHE_SIZE = 512


class RpcServer:
    """Serves RPCs on one virtual UDP port."""

    def __init__(self, vm: "WowVm", port: int, handler: Handler,
                 cpu_per_request: float = 0.002, serialize: bool = False):
        self.vm = vm
        self.sim = vm.sim
        self.port = port
        self.handler = handler
        self.cpu_per_request = cpu_per_request
        self.serialize = serialize
        self.requests_served = 0
        self._cache: OrderedDict[int, tuple[Any, int]] = OrderedDict()
        self._queue: deque[tuple[RpcRequest, str]] = deque()
        self._wake = Signal(self.sim, f"rpc{port}.wake")
        vm.router.bind("udp", port, self._on_packet)
        if serialize:
            Process(self.sim, self._serve_loop(), name=f"rpcserver.{port}")

    def close(self) -> None:
        """Unbind the service port."""
        self.vm.router.unbind("udp", self.port)

    # ------------------------------------------------------------------
    def _on_packet(self, pkt: VirtualIpPacket) -> None:
        req = pkt.payload
        if not isinstance(req, RpcRequest):
            return
        cached = self._cache.get(req.rid)
        if cached is not None:
            body, size = cached
            self._respond(req, body, size)
            return
        if self.serialize:
            self._queue.append((req, pkt.src_ip))
            self._wake.fire()
        else:
            delay = self.vm.host.compute_time(self.cpu_per_request)
            self.sim.schedule(delay, self._handle, req, pkt.src_ip)

    def _serve_loop(self):
        while True:
            if not self._queue:
                yield WaitSignal(self._wake)
                continue
            req, src_ip = self._queue.popleft()
            if self._cache.get(req.rid) is not None:
                continue
            yield Timeout(self.vm.host.compute_time(self.cpu_per_request))
            self._handle(req, src_ip)

    def _handle(self, req: RpcRequest, src_ip: str) -> None:
        if req.rid in self._cache:
            return
        self.requests_served += 1
        result = self.handler(req.method, req.body, src_ip)
        if isinstance(result, tuple):
            body, size = result
        else:
            body, size = result, DEFAULT_RESPONSE_SIZE
        self._cache[req.rid] = (body, size)
        while len(self._cache) > RESPONSE_CACHE_SIZE:
            self._cache.popitem(last=False)
        self._respond(req, body, size)

    def _respond(self, req: RpcRequest, body: Any, size: int) -> None:
        if not self.vm.started or self.vm.suspended:
            return
        self.vm.router.send_ip(req.reply_ip, "udp", req.reply_port,
                               RpcResponse(req.rid, body), size)


class RpcClient:
    """Issues reliable calls from one VM."""

    def __init__(self, vm: "WowVm", reply_port: Optional[int] = None):
        self.vm = vm
        self.sim = vm.sim
        calib = vm.deployment.calib
        self.timeout = calib.rpc_timeout
        self.retries = calib.rpc_retries
        self.backoff = calib.rpc_backoff
        self.reply_port = reply_port if reply_port is not None else 16000
        while True:
            try:
                vm.router.bind("udp", self.reply_port, self._on_packet)
                break
            except ValueError:
                self.reply_port += 1
        self._pending: dict[int, dict] = {}
        self.timeouts = 0
        self.calls = 0

    def close(self) -> None:
        """Unbind the reply port; outstanding calls will time out."""
        self.vm.router.unbind("udp", self.reply_port)

    # ------------------------------------------------------------------
    def call(self, dst_ip: str, port: int, method: str, body: Any = None,
             size: int = DEFAULT_REQUEST_SIZE,
             timeout: Optional[float] = None,
             retries: Optional[int] = None) -> Signal:
        """Returns a latched Signal fired with the response body, or with
        an :class:`RpcFailure` after all retries are spent."""
        rid = next(_rid_counter)
        self.calls += 1
        done = Signal(self.sim, f"rpc.{method}.{rid}", latch=True)
        state = {
            "req": RpcRequest(rid, method, body, self.reply_port,
                              self.vm.virtual_ip),
            "dst_ip": dst_ip, "port": port, "size": size,
            "attempts_left": (retries if retries is not None
                              else self.retries),
            "interval": timeout if timeout is not None else self.timeout,
            "done": done, "timer": None, "started": self.sim.now,
        }
        self._pending[rid] = state
        self._transmit(state)
        return done

    def call_and_wait(self, *args, **kwargs):
        """Convenience for processes: ``resp = yield from client.call_and_wait(...)``."""
        done = self.call(*args, **kwargs)
        resp = yield WaitSignal(done)
        return resp

    # ------------------------------------------------------------------
    def _transmit(self, state: dict) -> None:
        rid = state["req"].rid
        if rid not in self._pending:
            return
        if state["attempts_left"] <= 0:
            self._pending.pop(rid, None)
            self.timeouts += 1
            self.sim.trace("rpc.failure", method=state["req"].method,
                           dst=state["dst_ip"])
            state["done"].fire(RpcFailure())
            return
        state["attempts_left"] -= 1
        if self.vm.started and not self.vm.suspended:
            self.vm.router.send_ip(state["dst_ip"], "udp", state["port"],
                                   state["req"], state["size"])
        state["timer"] = self.sim.schedule(state["interval"], self._transmit,
                                           state)
        state["interval"] *= self.backoff

    def _on_packet(self, pkt: VirtualIpPacket) -> None:
        resp = pkt.payload
        if not isinstance(resp, RpcResponse):
            return
        state = self._pending.pop(resp.rid, None)
        if state is None:
            return  # duplicate response
        if state["timer"] is not None:
            state["timer"].cancel()
        state["rtt"] = self.sim.now - state["started"]
        state["done"].fire(resp.body)
