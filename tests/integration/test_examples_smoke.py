"""Every example script must run end to end (reduced arguments)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: float = 420.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "joined the P2P ring" in out
    assert "direct shortcut" in out


def test_batch_cluster_small():
    out = run_example("batch_cluster.py", "40")
    assert "EM recovered" in out
    assert "jobs completed" in out


def test_parallel_phylogenetics_small():
    out = run_example("parallel_phylogenetics.py", "12")
    assert "best tree logL" in out
    assert "speedup" in out


def test_live_migration():
    out = run_example("live_migration.py")
    assert "zero application" in out
    assert "rate after migration" in out


def test_decentralized_grid():
    out = run_example("decentralized_grid.py")
    assert "decentralized discovery" in out
    assert "matched and run" in out


@pytest.mark.slow
def test_nat_traversal():
    out = run_example("nat_traversal.py", timeout=500.0)
    assert "hole punch" in out
    assert "URI-ladder fallback" in out
