"""IP endpoints and tiny address-space helpers.

IPs are plain dotted strings; subnets are dotted prefixes (``"10.5.1."``).
That is all the structure the NAT and routing models need, and it keeps
every address printable in traces.
"""

from __future__ import annotations

from typing import NamedTuple


class Endpoint(NamedTuple):
    """A transport endpoint: (ip, port)."""

    ip: str
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "Endpoint":
        """Inverse of ``str()``: ``Endpoint.parse("10.0.0.2:14001")``."""
        ip, _, port = text.rpartition(":")
        if not ip or not port.isdigit():
            raise ValueError(f"not an ip:port endpoint: {text!r}")
        return cls(ip, int(port))


def ip_in_subnet(ip: str, subnet_prefix: str) -> bool:
    """True when ``ip`` belongs to the dotted-prefix ``subnet_prefix``.

    >>> ip_in_subnet("10.5.1.7", "10.5.1.")
    True
    >>> ip_in_subnet("10.51.1.7", "10.5.1.")
    False
    """
    if not subnet_prefix.endswith("."):
        subnet_prefix += "."
    return ip.startswith(subnet_prefix)


class IpAllocator:
    """Sequential allocator of host addresses inside a subnet prefix."""

    def __init__(self, subnet_prefix: str, first: int = 2):
        if not subnet_prefix.endswith("."):
            subnet_prefix += "."
        self.prefix = subnet_prefix
        self._next = first

    def allocate(self) -> str:
        """Next free address in the subnet; raises when exhausted."""
        ip = f"{self.prefix}{self._next}"
        self._next += 1
        if self._next > 254:
            raise ValueError(f"subnet {self.prefix} exhausted")
        return ip
