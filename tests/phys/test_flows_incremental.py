"""Incremental fairness: scoped recomputation, coalescing, early returns.

The invariant throughout: incremental (component-scoped, coalesced)
recomputation must produce exactly the rates a full progressive-filling
pass over all flows would.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.phys.flows import Flow, FlowManager, Resource
from repro.sim import Simulator


@pytest.fixture
def mgr():
    sim = Simulator(seed=7, trace=False)
    return sim, FlowManager(sim)


def _full_rates(fm: FlowManager) -> dict[str, float]:
    """Oracle: force a full recomputation and snapshot all rates."""
    fm.recompute()
    return {f.name: f.rate for f in fm.flows}


def test_disjoint_component_rates_untouched(mgr):
    sim, fm = mgr
    ra = Resource("a", 100.0)
    rb = Resource("b", 60.0)
    fa = Flow(fm, "fa", 1e9, [ra])
    fb = Flow(fm, "fb", 1e9, [rb])
    assert fa.rate == pytest.approx(100.0)
    assert fb.rate == pytest.approx(60.0)

    full_before = fm.full_recomputes
    # mutate only component b from inside an event
    sim.schedule(1.0, lambda: Flow(fm, "fb2", 1e9, [rb]))
    sim.run(until=2.0)
    assert fb.rate == pytest.approx(30.0)
    assert fa.rate == pytest.approx(100.0)
    assert fm.full_recomputes == full_before  # scoped, not global
    assert fm.scoped_recomputes > 0


def test_set_capacity_on_idle_resource_skips_recompute(mgr):
    sim, fm = mgr
    idle = Resource("idle", 10.0)
    busy = Resource("busy", 100.0)
    f = Flow(fm, "f", 1e9, [busy])
    scoped, full = fm.scoped_recomputes, fm.full_recomputes
    idle.set_capacity(500.0, fm)
    assert idle.capacity == 500.0
    assert (fm.scoped_recomputes, fm.full_recomputes) == (scoped, full)
    # a flow admitted over it later still sees the new capacity
    g = Flow(fm, "g", 1e9, [idle])
    assert g.rate == pytest.approx(500.0)
    assert f.rate == pytest.approx(100.0)


def test_set_capacity_with_flows_recomputes(mgr):
    sim, fm = mgr
    r = Resource("r", 100.0)
    f = Flow(fm, "f", 1e9, [r])
    r.set_capacity(40.0, fm)
    assert f.rate == pytest.approx(40.0)


def test_mutations_in_one_event_coalesce_into_one_flush(mgr):
    sim, fm = mgr
    r = Resource("r", 120.0)
    flows = []

    def burst():
        for i in range(8):
            flows.append(Flow(fm, f"f{i}", 1e9, [r]))

    before = fm.scoped_recomputes + fm.full_recomputes
    sim.schedule(1.0, burst)
    sim.run(until=1.5)
    # one flush for the whole burst, not one per admission
    assert fm.scoped_recomputes + fm.full_recomputes == before + 1
    for f in flows:
        assert f.rate == pytest.approx(120.0 / 8)


def test_later_events_observe_fresh_rates(mgr):
    """The coalesced flush runs before any ordinary event at the same
    timestamp, so same-time observers never see stale rates."""
    sim, fm = mgr
    r = Resource("r", 100.0)
    f = Flow(fm, "f", 1e9, [r])
    seen = []
    sim.schedule(1.0, lambda: Flow(fm, "g", 1e9, [r]))
    sim.schedule(1.0, lambda: seen.append(f.rate))  # same time, later seq
    sim.run(until=2.0)
    assert seen == [pytest.approx(50.0)]


def test_completion_rebalances_only_its_component(mgr):
    sim, fm = mgr
    ra = Resource("a", 100.0)
    rb = Resource("b", 80.0)
    short = Flow(fm, "short", 100.0, [ra])   # completes at t=2
    long_a = Flow(fm, "long_a", 1e9, [ra])
    long_b = Flow(fm, "long_b", 1e9, [rb])
    sim.run(until=10.0)
    assert short.completed
    assert long_a.rate == pytest.approx(100.0)  # inherited released share
    assert long_b.rate == pytest.approx(80.0)


def test_bottleneck_passes_counted_per_water_fill(mgr):
    """Each flush counts one scoped recompute but may take several
    bottleneck-scoped water-fill passes when unhappy frozen flows pull
    their paths into scope; a clean single-bottleneck mutation takes
    exactly one pass."""
    sim, fm = mgr
    r = Resource("r", 100.0)
    Flow(fm, "f", 1e9, [r])
    scoped, passes = fm.scoped_recomputes, fm.bottleneck_recomputes
    sim.schedule(1.0, lambda: Flow(fm, "g", 1e9, [r]))
    sim.run(until=2.0)
    assert fm.scoped_recomputes == scoped + 1
    assert fm.bottleneck_recomputes == passes + 1


def test_incremental_matches_full_recompute_after_repath(mgr):
    sim, fm = mgr
    r1, r2, r3 = (Resource(f"r{i}", 90.0 * i) for i in (1, 2, 3))
    f1 = Flow(fm, "f1", 1e9, [r1, r2])
    f2 = Flow(fm, "f2", 1e9, [r2, r3])
    f3 = Flow(fm, "f3", 1e9, [r3])
    sim.schedule(1.0, f1.set_path, [r3])
    sim.schedule(2.0, f2.pause)
    sim.schedule(3.0, f2.resume)
    sim.run(until=4.0)
    incremental = {f.name: f.rate for f in fm.flows}
    assert incremental == _full_rates(fm)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                          st.sampled_from(["add", "cancel", "pause",
                                           "resume", "capacity",
                                           "repath"])),
                min_size=1, max_size=25))
def test_incremental_equals_full_under_random_churn(ops):
    sim = Simulator(seed=11, trace=False)
    fm = FlowManager(sim)
    resources = [Resource(f"r{i}", 50.0 + 25.0 * i) for i in range(6)]
    flows: list[Flow] = []

    def apply(op, a, b):
        if op == "add":
            path = [resources[a]] + ([resources[b]] if b != a else [])
            flows.append(Flow(fm, f"f{len(flows)}", 1e9, path))
        elif op == "cancel" and flows:
            flows[a % len(flows)].cancel()
        elif op == "pause" and flows:
            flows[a % len(flows)].pause()
        elif op == "resume" and flows:
            flows[a % len(flows)].resume()
        elif op == "capacity":
            resources[a].set_capacity(30.0 + 20.0 * b, fm)
        elif op == "repath" and flows:
            path = [resources[b]] + ([resources[a]] if a != b else [])
            flows[a % len(flows)].set_path(path)

    for i, (a, b, op) in enumerate(ops):
        sim.schedule(float(i) + 1.0, apply, op, a, b)
    sim.run(until=len(ops) + 2.0)
    incremental = {f.name: f.rate for f in fm.flows}
    fm.recompute()
    full = {f.name: f.rate for f in fm.flows}
    assert set(incremental) == set(full)
    for name in full:
        assert incremental[name] == pytest.approx(full[name], abs=1e-6), name


def test_mutating_a_cancelled_flow_is_inert(mgr):
    """Hypothesis-found: set_path on a cancelled flow re-registered it on
    the resources, letting a zombie steal live flows' share."""
    sim, fm = mgr
    r = Resource("r", 50.0)
    f0 = Flow(fm, "f0", 1e9, [r])
    f1 = Flow(fm, "f1", 1e9, [r])
    f0.cancel()
    assert f1.rate == pytest.approx(50.0)
    f0.set_path([r])
    f0.pause()
    f0.resume()
    f0.set_rate_cap(10.0)
    assert r.flows == {f1}
    assert not f0.paused
    assert f1.rate == pytest.approx(50.0)
    assert {f.name: f.rate for f in fm.flows} == _full_rates(fm)
