"""The simulated internet: datagram routing across sites and NAT chains.

Outbound, a packet walks its source host's NAT chain from the innermost
device: at each NAT it is either (a) delivered inside that NAT's scope,
(b) hairpinned (or dropped, if the NAT does not support hairpin — the UFL
behaviour central to Fig. 4), or (c) source-translated and pushed outward.
At the public core the destination is resolved — possibly descending through
the *destination's* NAT chain with filtering checks — and delivery is
scheduled after a sampled latency, unless the loss model drops the packet.

Every drop is counted by reason; the Fig. 4/5 experiments read ICMP loss
straight off these mechanics.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Optional

from repro.phys.endpoints import Endpoint
from repro.phys.latency import LatencyModel
from repro.phys.packet import Datagram

if TYPE_CHECKING:  # pragma: no cover
    from repro.phys.host import Host
    from repro.phys.nat import Nat
    from repro.sim.engine import Simulator


class Internet:
    """Routes datagrams between hosts; owns the latency/loss model."""

    def __init__(self, sim: "Simulator",
                 latency_model: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency_model or LatencyModel(
            sim.rng.stream("phys.latency"))
        self.hosts_by_ip: dict[str, "Host"] = {}
        self.nats_by_ip: dict[str, "Nat"] = {}
        #: active fault-injection rules (see :mod:`repro.fault.rules`);
        #: consulted after NAT traversal, before the loss model
        self.fault_rules: list = []
        self.drops: Counter = Counter()
        self.delivered = 0
        self._public_net = 0
        self._public_host = 0
        # drop/delivery tallies surface as metrics only at export time
        sim.obs.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, m) -> None:
        m.gauge("phys.delivered").set(self.delivered)
        for reason, n in self.drops.items():
            m.gauge("phys.drops", reason=reason).set(n)

    # -- registration ----------------------------------------------------
    def register_host(self, host: "Host") -> None:
        """Make ``host.ip`` routable (called by Host.__init__)."""
        if host.ip in self.hosts_by_ip:
            raise ValueError(f"duplicate IP {host.ip}")
        self.hosts_by_ip[host.ip] = host

    def unregister_host(self, host: "Host") -> None:
        """Remove the host's IP from the routing table (migration)."""
        self.hosts_by_ip.pop(host.ip, None)

    def register_nat(self, nat: "Nat") -> None:
        """Make a NAT's public IP resolvable for inbound descent."""
        if nat.public_ip in self.nats_by_ip:
            raise ValueError(f"duplicate NAT public IP {nat.public_ip}")
        self.nats_by_ip[nat.public_ip] = nat
        metrics = self.sim.obs.metrics
        metrics.gauge_fn("nat.mappings_live", nat.live_mappings,
                         nat=nat.name)
        metrics.add_collector(
            lambda m, nat=nat: [
                m.gauge("nat.drops", nat=nat.name, reason=reason).set(n)
                for reason, n in nat.drops.items()])

    def add_fault_rule(self, rule) -> None:
        """Install a path-fault rule (see :mod:`repro.fault.rules`)."""
        self.fault_rules.append(rule)

    def remove_fault_rule(self, rule) -> None:
        """Lift a previously installed fault rule (idempotent)."""
        if rule in self.fault_rules:
            self.fault_rules.remove(rule)

    def allocate_public_ip(self) -> str:
        """A fresh globally-routable address (for NAT devices)."""
        self._public_host += 1
        return f"128.0.{self._public_host // 250}.{self._public_host % 250 + 2}"

    def allocate_public_prefix(self) -> str:
        """A fresh /24-style prefix for a public site."""
        self._public_net += 1
        return f"150.{self._public_net}.0."

    # -- sending ----------------------------------------------------------
    def send(self, src_host: "Host", dgram: Datagram) -> None:
        """Route one datagram.  Never raises for network-level failures —
        packets silently vanish with a counted reason, like real UDP."""
        if self.sim.obs.spans.enabled and dgram.trace is None:
            # lift the causal context off the payload message (if any) so
            # NAT traversal and the transit span attach to the right trace;
            # codec-mode transports attach it explicitly instead (the
            # payload is then opaque bytes with no ``trace`` attribute)
            dgram.trace = getattr(dgram.payload, "trace", None)
        proto = dgram.proto
        for nat in src_host.nat_chain:
            if nat.is_inside(dgram.dst.ip):
                # stays within this NAT's scope — no translation at/above it
                dgram.hop(f"lan:{nat.name}")
                self._resolve_and_schedule(src_host, dgram, trusted=True)
                return
            public_src = nat.translate_outbound(proto, dgram.src, dgram.dst)
            if dgram.dst.ip == nat.public_ip:
                if not nat.spec.hairpin:
                    nat.drops["hairpin"] += 1
                    self._drop(dgram, f"hairpin:{nat.name}")
                    return
                inner = nat.translate_inbound(proto, dgram.dst.port,
                                              public_src)
                if inner is None:
                    self._drop(dgram, f"filtering:{nat.name}")
                    return
                dgram.src = public_src
                dgram.dst = inner
                dgram.hop(f"hairpin:{nat.name}")
                self._resolve_and_schedule(src_host, dgram, trusted=True)
                return
            dgram.src = public_src
            dgram.hop(f"snat:{nat.name}")
        self._resolve_and_schedule(src_host, dgram)

    # -- destination resolution ------------------------------------------
    def _resolve_and_schedule(self, src_host: "Host", dgram: Datagram,
                              trusted: bool = False) -> None:
        """Deliver toward the destination, descending through its NATs.

        ``trusted`` marks packets that legitimately entered a private scope
        (intra-site delivery, hairpin translation).  Untrusted packets from
        the public core addressed straight at a private (NATed) host are
        unroutable — private URIs only work from inside (§IV-D).
        """
        # descend through destination NATs
        seen = 0
        while True:
            nat = self.nats_by_ip.get(dgram.dst.ip)
            if nat is None:
                break
            seen += 1
            if seen > 8:  # pragma: no cover - defensive
                self._drop(dgram, "nat-loop")
                return
            inner = nat.translate_inbound(dgram.proto, dgram.dst.port,
                                          dgram.src)
            if inner is None:
                self._drop(dgram, f"filtering:{nat.name}")
                return
            dgram.dst = inner
            dgram.hop(f"dnat:{nat.name}")
            trusted = True  # the NAT mapping vouches for the inner hop

        host = self.hosts_by_ip.get(dgram.dst.ip)
        if host is None or not host.up:
            self._drop(dgram, "unroutable")
            return
        if not trusted and host.nat_chain:
            self._drop(dgram, "private-unroutable")
            return
        fw = host.site.firewall
        if fw is not None and src_host.site is not host.site \
                and not fw.allows_inbound(dgram.dst.port):
            self._drop(dgram, f"firewall:{host.site.name}")
            return
        for rule in self.fault_rules:
            if rule.drops(src_host, host):
                self._drop(dgram, f"fault:{rule.name}")
                return
        if self.latency.sample_loss(src_host, host):
            self._drop(dgram, "loss")
            return
        delay = self.latency.sample_delay(src_host, host)
        if dgram.trace is not None:
            dgram.span = self.sim.obs.spans.start(
                "phys.tx", node=src_host.name, t=self.sim.now,
                trace_id=dgram.trace.trace_id, parent=dgram.trace.parent,
                dst=str(dgram.dst), size=dgram.size,
                path=">".join(dgram.path) or "direct")
        self._schedule_delivery(delay, host, dgram)

    def _schedule_delivery(self, delay: float, host: "Host",
                           dgram: Datagram) -> None:
        """Schedule the final delivery event — the kernel seam.  The
        default plants it on this internet's own simulator; a sharded
        kernel (:class:`repro.sim.shards.ShardedKernel`) overrides the
        bound method per instance to route the event onto the shard that
        owns the destination host, clamping cross-shard delays to the
        lookahead window."""
        self.sim.schedule(delay, self._deliver, host, dgram)

    def _deliver(self, host: "Host", dgram: Datagram) -> None:
        if not host.up:
            self._drop(dgram, "host-down")
            return
        self.delivered += 1
        if dgram.span is not None:
            self.sim.obs.spans.end(dgram.span, self.sim.now)
            # downstream hops at the receiving node parent at the transit
            dgram.trace.parent = dgram.span
        host.deliver(dgram)

    def _drop(self, dgram: Datagram, reason: str) -> None:
        self.drops[reason] += 1
        sim = self.sim
        if dgram.trace is not None:
            sim.obs.spans.event(
                "phys.drop", node="", t=sim.now,
                trace_id=dgram.trace.trace_id, parent=dgram.trace.parent,
                reason=reason, dst=str(dgram.dst),
                path=">".join(dgram.path) or "direct")
            if dgram.span is not None:
                sim.obs.spans.end(dgram.span, sim.now, dropped=reason)
        # guard before building the kwargs dict: drops are hot under
        # churn/loss and tracing is usually off in big sweeps
        if sim.trace_on:
            sim.trace("net.drop", reason=reason, dst=str(dgram.dst))

    # -- utilities -------------------------------------------------------
    def host_for_ip(self, ip: str) -> Optional["Host"]:
        """The host registered at ``ip``, if any."""
        return self.hosts_by_ip.get(ip)

    def reachable_endpoint(self, host: "Host") -> Endpoint:
        """The outermost public IP a fully-external peer would see for
        ``host`` (NAT public IP if NATed).  Port 0 placeholder."""
        if host.nat_chain:
            return Endpoint(host.nat_chain[-1].public_ip, 0)
        return Endpoint(host.ip, 0)
