"""Virtual IP packets as seen by the tap interface."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class VirtualIpPacket:
    """One IP packet on the virtual network.

    ``proto`` is "icmp" or "udp"; ``port`` selects the bound handler for
    UDP.  ``size`` is the on-(virtual-)wire size in bytes.
    """

    src_ip: str
    dst_ip: str
    proto: str
    port: int
    payload: Any
    size: int


@dataclass
class IcmpEcho:
    """ICMP echo request/reply body."""

    seq: int
    is_reply: bool
    sent_at: float
    data_size: int = 56
