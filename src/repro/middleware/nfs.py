"""NFSv3-style network file system over the virtual network.

Reads/writes are one metadata RPC (which doubles as an RTT probe) plus a
bulk transfer whose rate is capped at ``window / RTT`` — the synchronous
windowed behaviour that makes NFS so sensitive to the multi-hop overlay
paths shortcuts eliminate.  The PBS/MEME jobs of Fig. 8 stage all input and
output through an NFS export on the head node (§V-D1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ipop.mapping import addr_for_ip
from repro.ipop.transfer import OverlayTransfer
from repro.middleware.rpc import RpcClient, RpcFailure, RpcServer
from repro.sim.process import WaitSignal

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import WowVm

NFS_PORT = 2049


class NfsServer:
    """Exports a directory of (name → size) files from one VM."""

    def __init__(self, vm: "WowVm"):
        self.vm = vm
        self.files: dict[str, float] = {}
        self.rpc = RpcServer(vm, NFS_PORT, self._handle,
                             cpu_per_request=0.003)
        self.reads = 0
        self.writes = 0

    def export(self, name: str, size: float) -> None:
        """Publish a file of ``size`` bytes under ``name``."""
        self.files[name] = size

    def _handle(self, method: str, body, src_ip: str):
        if method == "getattr":
            self.reads += 1
            size = self.files.get(body)
            return {"exists": size is not None, "size": size}
        if method == "create":
            return {"ok": True}
        if method == "commit":
            self.writes += 1
            name, size = body
            self.files[name] = size
            return {"ok": True}
        return {"error": f"bad method {method}"}

    def close(self) -> None:
        """Stop serving."""
        self.rpc.close()


class NfsClient:
    """Mounts a remote export; read/write are process generators."""

    def __init__(self, vm: "WowVm", server_ip: str):
        self.vm = vm
        self.server_ip = server_ip
        self.server_addr = addr_for_ip(server_ip)
        self.rpc = RpcClient(vm)
        self.calib = vm.deployment.calib
        self.transfers = 0

    def _rate_cap(self, rtt: float) -> float:
        return self.calib.nfs_window / max(rtt, 1e-4)

    def read(self, name: str, size: Optional[float] = None):
        """Generator: fetch ``name`` from the server.  Returns bytes read
        (0.0 on failure)."""
        done = self.rpc.call(self.server_ip, NFS_PORT, "getattr", name)
        t0 = self.vm.sim.now
        resp = yield WaitSignal(done)
        if isinstance(resp, RpcFailure) or not resp.get("exists"):
            return 0.0
        rtt = self.vm.sim.now - t0
        size = resp["size"] if size is None else size
        self.transfers += 1
        xfer = OverlayTransfer(
            self.vm.deployment.broker, self.server_addr, self.vm.addr,
            size / self.calib.nfs_efficiency,
            name=f"nfs.read.{self.vm.name}.{self.transfers}",
            rate_cap=self._rate_cap(rtt))
        yield WaitSignal(xfer.done)
        return size

    def write(self, name: str, size: float):
        """Generator: push ``name`` to the server.  Returns bytes written
        (0.0 on failure)."""
        done = self.rpc.call(self.server_ip, NFS_PORT, "create", name)
        t0 = self.vm.sim.now
        resp = yield WaitSignal(done)
        if isinstance(resp, RpcFailure):
            return 0.0
        rtt = self.vm.sim.now - t0
        self.transfers += 1
        xfer = OverlayTransfer(
            self.vm.deployment.broker, self.vm.addr, self.server_addr,
            size / self.calib.nfs_efficiency,
            name=f"nfs.write.{self.vm.name}.{self.transfers}",
            rate_cap=self._rate_cap(rtt))
        yield WaitSignal(xfer.done)
        commit = self.rpc.call(self.server_ip, NFS_PORT, "commit",
                               (name, size))
        resp = yield WaitSignal(commit)
        if isinstance(resp, RpcFailure):
            return 0.0
        return size

    def close(self) -> None:
        """Unmount: release the RPC reply port."""
        self.rpc.close()
