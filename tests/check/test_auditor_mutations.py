"""Mutation tests: every invariant class must fire on a deliberately
corrupted overlay and stay silent on a healthy one.

Each test corrupts exactly one piece of state behind the overlay's back
(no close-notify, no version bump unless stated) and asserts the auditor
flags exactly that violation kind.
"""

from __future__ import annotations

import pytest

from repro.brunet.address import ADDRESS_SPACE, BrunetAddress
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.linking import LinkAttempt
from repro.brunet.overlords import FarConnectionOverlord
from repro.brunet.routing import next_hop, ring_distance
from repro.check import AuditConfig, Auditor, invariants
from repro.obs.spans import SpanCollector
from repro.phys.endpoints import Endpoint
from repro.phys.nat import Nat, NatSpec, _Mapping

from tests.conftest import build_overlay


def _ordered(nodes):
    return sorted((n for n in nodes if n.active), key=lambda n: int(n.addr))


def _kinds(violations):
    return {v.kind for v in violations}


@pytest.fixture
def immediate():
    """Auditor config with no persistence gating (mutations stay put, so
    promoting on first sight keeps the tests single-sweep)."""
    return AuditConfig(grace=0.0, handshake_grace=0.0)


@pytest.fixture
def overlay(sim, internet):
    return build_overlay(sim, internet, 12)[0]


def test_settled_overlay_audits_clean(sim, internet, overlay):
    auditor = Auditor(sim, overlay, internet=internet).start()
    sim.run(until=sim.now + 120.0)
    auditor.finish()
    assert auditor.ok, [v.detail for v in auditor.violations]
    assert auditor.sweeps > 5


# ---------------------------------------------------------------------------
# ring consistency
# ---------------------------------------------------------------------------

def test_ring_flags_silently_removed_neighbor(sim, overlay, immediate):
    ordered = _ordered(overlay)
    node, neighbor = ordered[0], ordered[1]
    assert node.table.get(neighbor.addr) is not None
    node.table._conns.pop(neighbor.addr)  # no close-notify, a real bug
    node.table.bump_version()
    auditor = Auditor(sim, overlay, config=immediate)
    promoted = auditor.sweep()
    assert f"ring.neighbor-missing:{node.name}:right" in {
        v.key for v in promoted}


def test_ring_flags_mislabeled_near(sim, overlay, immediate):
    ordered = _ordered(overlay)
    node, distant = ordered[0], ordered[5]
    node.table.add(Connection(distant.addr, Endpoint("9.9.9.9", 1),
                              ConnectionType.STRUCTURED_NEAR, sim.now))
    found = invariants.check_ring(overlay, sim.now)
    assert f"ring.mislabeled:{node.name}:{distant.addr.hex()}" in {
        v.key for v in found}


def test_ring_flags_structured_link_to_dead_node(sim, overlay):
    ordered = _ordered(overlay)
    node = ordered[0]
    ghost = BrunetAddress((int(node.addr) + 77777) % ADDRESS_SPACE)
    assert ghost not in {n.addr for n in overlay}
    node.table.add(Connection(ghost, Endpoint("9.9.9.8", 1),
                              ConnectionType.STRUCTURED_FAR, sim.now))
    found = invariants.check_ring(overlay, sim.now)
    assert f"ring.stale-peer:{node.name}:{ghost.hex()}" in {
        v.key for v in found}


def test_ring_skips_neighbor_with_handshake_in_flight(sim, overlay):
    """A joiner behind a hairpin-dropping NAT legally spends ~155 s
    linking its true neighbour (one dead URI's worth of retries) — far
    longer than the audit grace.  While that attempt is in flight the
    missing link is repair in progress, not a violation."""
    ordered = _ordered(overlay)
    node, neighbor = ordered[0], ordered[1]
    node.table._conns.pop(neighbor.addr)
    node.table.bump_version()
    node.linker.by_addr[neighbor.addr] = LinkAttempt(
        999998, neighbor.addr, [], ConnectionType.STRUCTURED_NEAR, sim.now,
        node.config.link_resend_interval)
    found = invariants.check_ring(overlay, sim.now)
    keys = {v.key for v in found}
    assert f"ring.neighbor-missing:{node.name}:right" not in keys
    # the neighbour's mirror finding is excused by the same attempt
    assert f"ring.neighbor-missing:{neighbor.name}:left" not in keys
    # once the attempt gives up with the link still missing, it promotes
    node.linker.by_addr.pop(neighbor.addr)
    found = invariants.check_ring(overlay, sim.now)
    assert f"ring.neighbor-missing:{node.name}:right" in {
        v.key for v in found}


def test_ring_excuses_stale_near_while_peer_repairs(sim, overlay):
    """node A keeps its *old* neighbour B NEAR-labelled while B is still
    linking toward a node that joined between them — B ranks A as its
    best-known neighbour until that handshake lands, so the stale label
    is the legal pre-join neighbourhood, not a violation."""
    ordered = _ordered(overlay)
    node, distant = ordered[0], ordered[5]
    node.table.add(Connection(distant.addr, Endpoint("9.9.9.9", 1),
                              ConnectionType.STRUCTURED_NEAR, sim.now))
    key = f"ring.mislabeled:{node.name}:{distant.addr.hex()}"
    assert key in {v.key for v in invariants.check_ring(overlay, sim.now)}
    # the labelled peer starts repairing toward its own true neighbour
    distant.linker.by_addr[ordered[6].addr] = LinkAttempt(
        999997, ordered[6].addr, [], ConnectionType.STRUCTURED_NEAR,
        sim.now, distant.config.link_resend_interval)
    assert key not in {v.key for v in invariants.check_ring(overlay, sim.now)}


def test_routing_dead_end_excused_while_ring_repairs(sim, overlay):
    """A greedy chain that bottoms out at a node whose true-neighbour
    link is mid-handshake is a legal local minimum, not non-convergence."""
    ordered = _ordered(overlay)
    node, neighbor = ordered[0], ordered[1]
    # sever both directions so the chain node->neighbor truly dead-ends
    node.table._conns.pop(neighbor.addr)
    node.table.bump_version()
    for conn in list(node.table.all()):
        if ring_distance(conn.peer_addr, neighbor.addr) < ring_distance(
                node.addr, neighbor.addr):
            node.table._conns.pop(conn.peer_addr)
    node.table.bump_version()
    key = f"routing.non-convergent:{node.name}->{neighbor.name}"
    found = invariants.check_routing(overlay, sim.now)
    if key in {v.key for v in found}:  # chain sampled and dead-ended
        node.linker.by_addr[neighbor.addr] = LinkAttempt(
            999996, neighbor.addr, [], ConnectionType.STRUCTURED_NEAR,
            sim.now, node.config.link_resend_interval)
        found = invariants.check_routing(overlay, sim.now)
        assert key not in {v.key for v in found}


def test_ring_flags_partition(sim, internet):
    island_a, _ = build_overlay(sim, internet, 5)
    island_b, _ = build_overlay(sim, internet, 5)  # separate bootstrap
    found = invariants.check_ring(island_a + island_b, sim.now)
    assert "ring.partition" in _kinds(found)


# ---------------------------------------------------------------------------
# connection symmetry
# ---------------------------------------------------------------------------

def test_symmetry_flags_one_way_connection(sim, overlay, immediate):
    ordered = _ordered(overlay)
    a, b = ordered[3], ordered[4]
    assert a.table.get(b.addr) is not None
    a.table._conns.pop(b.addr)
    a.table.bump_version()
    auditor = Auditor(sim, overlay,
                      config=AuditConfig(grace=0.0, handshake_grace=0.0,
                                         checks=("symmetry",)))
    promoted = auditor.sweep()
    assert f"symmetry.one-way:{b.name}:{a.name}" in {v.key for v in promoted}


def test_symmetry_flags_empty_label_set(sim, overlay):
    ordered = _ordered(overlay)
    node = ordered[2]
    conn = node.table.all()[0]
    conn.types.clear()
    found = invariants.check_symmetry(overlay, sim.now, handshake_grace=0.0)
    assert "symmetry.empty-labels" in _kinds(found)


def test_symmetry_flags_disjoint_labels(sim, overlay):
    ordered = _ordered(overlay)
    a, b = ordered[0], ordered[1]
    fwd, back = a.table.get(b.addr), b.table.get(a.addr)
    assert fwd is not None and back is not None
    fwd.types.clear()
    fwd.types.add(ConnectionType.STRUCTURED_NEAR)
    back.types.clear()
    back.types.add(ConnectionType.LEAF)
    found = invariants.check_symmetry(overlay, sim.now, handshake_grace=0.0)
    assert f"symmetry.label-mismatch:{a.name}:{b.name}" in {
        v.key for v in found}


def test_symmetry_skips_in_flight_handshakes(sim, overlay):
    ordered = _ordered(overlay)
    a, b = ordered[3], ordered[4]
    a.table._conns.pop(b.addr)
    a.table.bump_version()
    # an in-flight linking attempt on either side excuses the asymmetry
    a.linker.by_addr[b.addr] = LinkAttempt(
        999999, b.addr, [], ConnectionType.STRUCTURED_NEAR, sim.now,
        a.config.link_resend_interval)
    found = invariants.check_symmetry(overlay, sim.now, handshake_grace=0.0)
    assert f"symmetry.one-way:{b.name}:{a.name}" not in {
        v.key for v in found}


# ---------------------------------------------------------------------------
# routing convergence and cache coherence
# ---------------------------------------------------------------------------

def test_cache_flags_poisoned_entry(sim, overlay):
    ordered = _ordered(overlay)
    src, dest = ordered[0], ordered[6].addr
    real = next_hop(src.table, src.addr, dest)  # warm the cache
    key = (src.addr, dest, False, None)
    assert src.table.next_hop_cache[key] is real
    poison = next(c for c in src.table.all() if c is not real)
    src.table.next_hop_cache[key] = poison  # no version bump: stale entry
    found = invariants.check_cache(overlay, sim.now)
    assert any(v.kind == "cache.incoherent" and v.node == src.name
               for v in found)


def test_routing_flags_metric_increase(sim, overlay, immediate):
    ordered = _ordered(overlay)
    src, owner = ordered[0], ordered[1]
    d_here = ring_distance(src.addr, owner.addr)
    worse = next(c for c in src.table.all() if c.structured
                 and ring_distance(c.peer_addr, owner.addr) >= d_here)
    # a poisoned memoized decision sends the chain *away* from the owner
    src.table.next_hop_cache[(src.addr, owner.addr, False, None)] = worse
    auditor = Auditor(sim, overlay, config=immediate)
    promoted = auditor.sweep()
    assert any(v.kind in ("routing.metric-increase", "cache.incoherent")
               and v.node == src.name for v in promoted)
    assert "routing.metric-increase" in _kinds(promoted)


# ---------------------------------------------------------------------------
# resource leaks
# ---------------------------------------------------------------------------

def test_leak_flags_stale_far_pending(sim, overlay):
    node = _ordered(overlay)[0]
    far = next(o for o in node.overlords
               if isinstance(o, FarConnectionOverlord))
    far._pending.append(sim.now - 100.0)  # expired, never pruned
    found = invariants.check_leaks(overlay, sim.now)
    assert f"leak.far-pending:{node.name}" in {v.key for v in found}


def test_leak_flags_shortcut_pending_for_connected_peer(sim, overlay):
    ordered = _ordered(overlay)
    node, peer = ordered[0], ordered[1]
    assert node.table.get(peer.addr) is not None
    node.shortcut_overlord._pending[peer.addr] = sim.now + 50.0
    found = invariants.check_leaks(overlay, sim.now)
    assert f"leak.shortcut-pending:{node.name}:{peer.addr.hex()}" in {
        v.key for v in found}


def test_leak_flags_linker_state_after_stop(sim, overlay):
    ordered = _ordered(overlay)
    node = ordered[-1]
    node.stop()
    node.linker.by_token[1] = LinkAttempt(
        1, ordered[0].addr, [], ConnectionType.STRUCTURED_NEAR, sim.now,
        node.config.link_resend_interval)
    found = invariants.check_leaks(overlay, sim.now)
    assert f"leak.linker-after-stop:{node.name}" in {v.key for v in found}


def test_leak_flags_stuck_link_attempt(sim, overlay):
    node = _ordered(overlay)[0]
    stuck = LinkAttempt(424242, None, [], ConnectionType.STRUCTURED_FAR,
                        sim.now - 10_000.0, node.config.link_resend_interval)
    node.linker.by_token[stuck.token] = stuck
    found = invariants.check_leaks(overlay, sim.now)
    assert f"leak.link-attempt:{node.name}:424242" in {v.key for v in found}


def test_leak_flags_nat_mirror_desync(sim, internet, overlay):
    nat = Nat("corrupt-nat", "8.8.1.1", "10.9.9.", NatSpec.cone())
    internet.register_nat(nat)
    orphan = _Mapping(inner=Endpoint("10.9.9.5", 500), public_port=30000,
                      key=("udp", Endpoint("10.9.9.5", 500)))
    nat._by_port[30000] = orphan  # _by_key side missing: mirrors disagree
    found = invariants.check_leaks(overlay, sim.now, internet=internet)
    assert "leak.nat-mapping:corrupt-nat" in {v.key for v in found}


def test_span_leak_flags_open_non_root_only():
    spans = SpanCollector(enabled=True, sample={"ip": 1})
    tid = spans.maybe_trace("ip")
    root = spans.start("ip.packet", "n0", 10.0, tid)
    spans.start("route.fwd", "n1", 11.0, tid, parent=root)
    found = invariants.check_spans(spans, now=10_000.0, span_grace=900.0)
    assert len(found) == 1
    assert found[0].kind == "span.dangling"
    assert "route.fwd" in found[0].detail  # the open root is exempt


# ---------------------------------------------------------------------------
# persistence gating
# ---------------------------------------------------------------------------

def _break_ring(overlay):
    ordered = _ordered(overlay)
    node, neighbor = ordered[0], ordered[1]
    conn = node.table._conns.pop(neighbor.addr)
    node.table.bump_version()
    return node, neighbor, conn


def test_gating_waits_out_grace_before_promoting(sim, overlay):
    node, neighbor, _conn = _break_ring(overlay)
    key = f"ring.neighbor-missing:{node.name}:right"
    auditor = Auditor(sim, overlay,
                      config=AuditConfig(grace=300.0, checks=("ring",)))
    assert auditor.sweep() == []          # first sight: pending only
    assert key in auditor._pending
    sim.run(until=sim.now + 400.0)
    # self-repair is live, so the neighbor link may have been re-formed by
    # the overlords; force the breakage to persist for the gating check
    # (and clear any in-flight re-link attempt, which would excuse it)
    node.table._conns.pop(neighbor.addr, None)
    node.table.bump_version()
    node.linker.by_addr.pop(neighbor.addr, None)
    neighbor.linker.by_addr.pop(node.addr, None)
    promoted = auditor.sweep()
    assert key in {v.key for v in promoted}
    assert not auditor.ok


def test_gating_drops_healed_findings(sim, overlay):
    node, neighbor, conn = _break_ring(overlay)
    key = f"ring.neighbor-missing:{node.name}:right"
    auditor = Auditor(sim, overlay,
                      config=AuditConfig(grace=50.0, checks=("ring",)))
    auditor.sweep()
    assert key in auditor._pending
    node.table._conns[neighbor.addr] = conn   # heal it back
    node.table.bump_version()
    sim.run(until=sim.now + 100.0)
    auditor.sweep()
    assert auditor.ok
    assert key not in auditor._pending


def test_violations_deduplicate_across_sweeps(sim, overlay, immediate):
    node = _ordered(overlay)[0]
    far = next(o for o in node.overlords
               if isinstance(o, FarConnectionOverlord))
    far._pending.append(sim.now - 100.0)
    auditor = Auditor(sim, overlay, config=immediate)
    first = auditor.sweep()
    again = auditor.sweep()
    key = f"leak.far-pending:{node.name}"
    assert key in {v.key for v in first}
    assert key not in {v.key for v in again}
    assert len([v for v in auditor.violations if v.key == key]) == 1
