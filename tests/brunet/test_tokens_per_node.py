"""Per-node protocol tokens: same-seed runs must be token-identical.

The historical ``repro.brunet.messages.next_token`` counter is
module-global, so a second same-seed run in one process continued where
the first left off and drew different tokens.  Tokens now come from a
per-node counter; the module-global stays only as a deprecated helper.
"""

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.messages import next_token
from repro.brunet.uri import Uri
from repro.phys import Internet, Site
from repro.sim import Simulator


def _run_and_collect_tokens(seed: int) -> list[tuple[str, int]]:
    """Build a small overlay and record every token each node hands out,
    in order."""
    sim = Simulator(seed=seed, trace=False)
    net = Internet(sim)
    site = Site(net, "pub")
    rng = sim.rng.stream("tokens")
    cfg = BrunetConfig()
    boot = None
    nodes = []
    tokens: list[tuple[str, int]] = []
    for i in range(6):
        h = site.add_host(f"h{i}")
        node = BrunetNode(sim, h, random_address(rng), cfg, name=f"n{i}")
        real = node.next_token

        def spying(node=node, real=real):
            t = real()
            tokens.append((node.name, t))
            return t

        node.next_token = spying
        node.start([boot] if boot else [])
        if boot is None:
            boot = Uri.udp(h.ip, node.port)
        nodes.append(node)
    sim.run(until=60.0)
    assert all(n.in_ring for n in nodes)
    return tokens


def test_same_seed_runs_produce_identical_token_sequences():
    first = _run_and_collect_tokens(seed=77)
    # poison the module-global counter between runs: per-node tokens must
    # be immune to unrelated consumers in the same process
    for _ in range(1000):
        next_token()
    second = _run_and_collect_tokens(seed=77)
    assert first == second
    assert first  # the overlay actually handed out tokens


def test_tokens_are_monotone_per_node():
    tokens = _run_and_collect_tokens(seed=5)
    last: dict[str, int] = {}
    for node_name, tok in tokens:
        assert tok > last.get(node_name, 0)
        last[node_name] = tok
    # counters are per node: several nodes issue the same small tokens
    firsts = [tok for _, tok in tokens if tok == 1]
    assert len(firsts) > 1


def test_module_global_next_token_still_works():
    a, b = next_token(), next_token()
    assert b == a + 1
