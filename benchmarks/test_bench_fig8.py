"""Benchmark + regeneration of Figure 8 (PBS/MEME histograms, reduced)."""

from benchmarks.conftest import run_once
from repro.experiments import fig8_meme_histogram


def test_fig8_meme_throughput(benchmark):
    # the no-shortcut penalty depends on multi-hop routes crossing loaded
    # PlanetLab routers, so keep the PlanetLab:VM ratio near the paper's
    results = run_once(benchmark, fig8_meme_histogram.run, seed=0,
                       scale=0.55, n_jobs=600)
    fig8_meme_histogram.report(results)
    on, off = results[True], results[False]
    assert on.completed == off.completed == 600
    # paper: 24.1 s ± 6.5 vs 32.2 s ± 9.7 wall clock.  At this reduced
    # overlay scale some multi-hop routes skip the loaded PlanetLab
    # routers, so the no-shortcut penalty is a little smaller than at
    # paper scale (EXPERIMENTS.md records the full-scale numbers).
    assert abs(on.wall_mean - 24.1) < 4.0
    assert 26.0 <= off.wall_mean <= 38.0
    assert off.wall_mean > on.wall_mean + 2.5
    assert off.wall_std > 0 and on.wall_std > 0
    # paper: 53 vs 22 jobs/minute — a ~2.4x throughput win
    assert on.throughput_jpm / off.throughput_jpm > 1.6
    assert 15.0 <= off.throughput_jpm <= 34.0
