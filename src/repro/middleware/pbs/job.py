"""PBS job descriptions and accounting records."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_job_ids = itertools.count(1)


@dataclass(frozen=True)
class JobSpec:
    """What a job costs: compute work (reference-CPU seconds) plus the NFS
    input/output it stages through the head node."""

    name: str
    work_ref: float
    input_size: float
    output_size: float


@dataclass
class JobRecord:
    """Lifecycle timestamps of one queued job."""

    spec: JobSpec
    submit_time: float
    job_id: int = field(default_factory=lambda: next(_job_ids))
    dispatch_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    node_name: str = ""
    status: str = "queued"  # queued | running | done | failed

    @property
    def wall_time(self) -> Optional[float]:
        """Execution wall-clock (start to end) — Fig. 8's histogram metric."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def turnaround(self) -> Optional[float]:
        """Submit-to-completion time."""
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time
