"""Tracer and TimeSeries."""

import math

import numpy as np
import pytest

from repro.sim.trace import TimeSeries, Tracer, cdf, fraction_below


def test_tracer_records_and_counts():
    tr = Tracer()
    tr.record(1.0, "evt", {"x": 1})
    tr.record(2.0, "evt", {"x": 2})
    tr.record(3.0, "other")
    assert tr.count("evt") == 2
    assert tr.get("evt")[1] == (2.0, {"x": 2})
    assert tr.categories() == ["evt", "other"]


def test_disabled_tracer_counts_but_does_not_store():
    tr = Tracer(enabled=False)
    tr.record(1.0, "evt", {"x": 1})
    assert tr.count("evt") == 1
    assert tr.get("evt") == []


def test_series_extraction_with_filter():
    tr = Tracer()
    for i in range(5):
        tr.record(float(i), "m", {"v": i, "keep": i % 2 == 0})
    ts = tr.series("m", "v", where=lambda d: d["keep"])
    assert list(ts.values) == [0.0, 2.0, 4.0]


def test_timeseries_statistics():
    ts = TimeSeries("t")
    for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
        ts.add(float(i), v)
    assert ts.mean() == pytest.approx(2.5)
    assert ts.std() == pytest.approx(np.std([1, 2, 3, 4]))
    assert ts.percentile(50) == pytest.approx(2.5)
    assert len(ts) == 4


def test_timeseries_empty_stats_are_nan():
    ts = TimeSeries()
    assert math.isnan(ts.mean())
    assert math.isnan(ts.std())


def test_timeseries_window():
    ts = TimeSeries()
    for i in range(10):
        ts.add(float(i), float(i))
    w = ts.window(2.0, 5.0)
    assert list(w.times) == [2.0, 3.0, 4.0]


def test_cdf_shape():
    xs, fr = cdf([3.0, 1.0, 2.0])
    assert list(xs) == [1.0, 2.0, 3.0]
    assert fr[-1] == pytest.approx(1.0)
    assert fr[0] == pytest.approx(1 / 3)


def test_cdf_empty():
    xs, fr = cdf([])
    assert xs.size == 0 and fr.size == 0


def test_fraction_below():
    assert fraction_below([1, 2, 3, 4], 3) == pytest.approx(0.5)
    assert fraction_below([], 3) == 1.0
    assert fraction_below([float("inf")], 1e9) == 0.0


def test_tracer_clear():
    tr = Tracer()
    tr.record(0.0, "a")
    tr.clear()
    assert tr.count("a") == 0
    assert tr.get("a") == []
