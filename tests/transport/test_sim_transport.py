"""SimTransport behaviour across the three wire modes.

The protocol trajectory (who connects to whom, when) must be identical in
all modes — sizes feed byte accounting, not latency — while the byte
accounting itself switches from paper constants to measured encoded
lengths.
"""

import pytest

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.messages import PingRequest
from repro.brunet.uri import Uri
from repro.ipop.ippacket import IcmpEcho
from repro.ipop.mapping import addr_for_ip
from repro.ipop.router import IpopRouter
from repro.phys import Internet, Site
from repro.sim import Simulator
from repro.transport.sim import SimTransport
from repro.wire import UDP_IP_OVERHEAD, encode, encoded_size


def _build_overlay(mode: str, n: int = 8, seed: int = 11, until: float = 60.0):
    sim = Simulator(seed=seed, trace=True)
    net = Internet(sim)
    site = Site(net, "pub")
    rng = sim.rng.stream("overlay")
    cfg = BrunetConfig(wire_mode=mode)
    boot = None
    nodes = []
    for i in range(n):
        h = site.add_host(f"h{i}")
        node = BrunetNode(sim, h, random_address(rng), cfg, name=f"n{i}")
        node.start([boot] if boot else [])
        if boot is None:
            boot = Uri.udp(h.ip, node.port)
        nodes.append(node)
    sim.run(until=until)
    return sim, net, nodes


@pytest.mark.parametrize("mode", ["reference", "measured", "codec"])
def test_overlay_forms_in_every_wire_mode(mode):
    sim, net, nodes = _build_overlay(mode)
    assert all(n.in_ring for n in nodes)
    assert net.drops.get("unroutable", 0) == 0


def test_trajectory_identical_across_modes():
    """Same seed → same event trace regardless of wire mode: byte
    accounting must never leak into protocol behaviour."""
    def fingerprint(mode):
        sim, _, nodes = _build_overlay(mode)
        trace = [(cat, t, repr(sorted(d.items())))
                 for cat, recs in sorted(sim.tracer.records.items())
                 for t, d in recs]
        return trace, [n.joined_at for n in nodes]
    ref = fingerprint("reference")
    assert fingerprint("measured") == ref
    assert fingerprint("codec") == ref


def test_codec_mode_carries_bytes_on_the_wire():
    sim, net, nodes = _build_overlay("codec", n=2, until=10.0)
    # spy on the next datagram: payload must be encoded bytes
    seen = []
    orig_send = net.send

    def spy(src_host, dgram):
        seen.append(dgram.payload)
        orig_send(src_host, dgram)

    net.send = spy
    for conn in nodes[0].table.all():
        # stale enough for a keep-alive ping, fresh enough to dodge the
        # liveness-timeout backstop
        conn.last_heard = sim.now - 20.0
    nodes[0]._ping_tick()
    sim.run(until=sim.now + 1.0)
    assert seen and all(isinstance(p, bytes) for p in seen)


def test_measured_mode_charges_encoded_length():
    sim = Simulator(seed=1, trace=False)
    net = Internet(sim)
    site = Site(net, "pub")
    host = site.add_host("a")
    peer = site.add_host("b")
    got = []
    peer.bind_udp(7000, lambda payload, src, size: got.append((payload, size)))
    t = SimTransport(sim, host, 6000, wire_mode="measured", name="a")
    t.open(lambda *a: None)
    msg = PingRequest(5, random_address(sim.rng.stream("x")))
    t.send(peer.sockets[7000].endpoint, msg, size_hint=96)
    sim.run()
    assert len(got) == 1
    payload, size = got[0]
    assert payload is msg  # measured mode: object passes by reference
    assert size == encoded_size(msg) + UDP_IP_OVERHEAD
    assert size != 96  # the paper-constant hint is ignored


def test_reference_mode_charges_paper_constant():
    from repro.phys.packet import HEADER_BYTES
    sim = Simulator(seed=1, trace=False)
    net = Internet(sim)
    site = Site(net, "pub")
    host = site.add_host("a")
    peer = site.add_host("b")
    got = []
    peer.bind_udp(7000, lambda payload, src, size: got.append(size))
    t = SimTransport(sim, host, 6000, wire_mode="reference", name="a")
    t.open(lambda *a: None)
    t.send(peer.sockets[7000].endpoint, PingRequest(5, addr_for_ip("10.128.0.2")),
           size_hint=96)
    sim.run()
    assert got == [96 + HEADER_BYTES]


def test_codec_mode_counts_decode_errors_and_drops():
    sim = Simulator(seed=1, trace=False)
    net = Internet(sim)
    site = Site(net, "pub")
    host = site.add_host("a")
    peer = site.add_host("b")
    delivered = []
    t = SimTransport(sim, peer, 7000, wire_mode="codec", name="b")
    t.open(lambda msg, src, size: delivered.append(msg))
    sender = host.bind_udp(6000, lambda *a: None)
    ep = t.local_endpoint
    sender.send(ep, b"\xde\xad\xbe\xef", size=4)          # garbage frame
    sender.send(ep, encode(PingRequest(1, addr_for_ip("10.128.0.2")))[:-2],
                size=10)                                   # truncated frame
    sender.send(ep, encode(PingRequest(2, addr_for_ip("10.128.0.2"))),
                size=10)                                   # valid frame
    sim.run()
    errs = sim.obs.metrics.counter("wire.decode_error", node="b").value
    assert errs == 2
    assert [m.token for m in delivered] == [2]


def test_codec_mode_preserves_trace_context_across_bytes():
    sim = Simulator(seed=13, trace=False)
    sim.obs.enable_spans()
    net = Internet(sim)
    site = Site(net, "pub")
    cfg = BrunetConfig(wire_mode="codec")
    ips = ["10.128.0.2", "10.128.0.3"]
    nodes, routers = [], []
    boot = None
    for i, ip in enumerate(ips):
        h = site.add_host(f"h{i}")
        node = BrunetNode(sim, h, addr_for_ip(ip), cfg, name=f"n{i}")
        node.start([boot] if boot else [])
        if boot is None:
            boot = Uri.udp(h.ip, node.port)
        nodes.append(node)
        routers.append(IpopRouter(node, ip))
    sim.run(until=30.0)
    assert all(n.in_ring for n in nodes)
    got = []
    routers[0].bind("icmp", 0, lambda pkt: got.append(pkt))
    routers[0].send_ip(ips[1], "icmp", 0, IcmpEcho(1, False, sim.now), 64)
    sim.run(until=sim.now + 5.0)
    assert [p.payload.is_reply for p in got] == [True]
    spans = sim.obs.spans
    ip_traces = [tid for tid, kind in spans.trace_kind.items() if kind == "ip"]
    assert ip_traces
    # the trace must span both sides of the byte boundary: sender hops
    # (ipop.encap) and receiver delivery recorded under one trace id
    names = {s.name for s in spans.by_trace(ip_traces[0])}
    assert "ipop.encap" in names
    assert "route.deliver" in names
    assert "phys.tx" in names


def test_node_restart_reuses_transport_and_keeps_port():
    sim, net, nodes = _build_overlay("codec", n=3, until=30.0)
    node = nodes[2]
    port = node.port
    node.stop()
    sim.run(until=sim.now + 5.0)
    node.start([Uri.udp(nodes[0].host.ip, nodes[0].port)])
    sim.run(until=sim.now + 30.0)
    assert node.port == port
    assert node.in_ring
