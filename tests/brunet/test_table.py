"""ConnectionTable queries and label-merge semantics."""

import pytest

from repro.brunet.address import BrunetAddress
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.table import ConnectionTable
from repro.phys.endpoints import Endpoint

ME = BrunetAddress(1000)


def conn(addr, ctype=ConnectionType.STRUCTURED_NEAR, port=1):
    return Connection(BrunetAddress(addr), Endpoint("1.1.1.1", port),
                      ctype, 0.0)


@pytest.fixture
def table():
    return ConnectionTable(ME)


def test_add_and_get(table):
    c = table.add(conn(2000))
    assert table.get(BrunetAddress(2000)) is c
    assert BrunetAddress(2000) in table
    assert len(table) == 1


def test_add_same_peer_merges_labels(table):
    table.add(conn(2000, ConnectionType.LEAF))
    merged = table.add(conn(2000, ConnectionType.STRUCTURED_NEAR))
    assert len(table) == 1
    assert merged.types == {ConnectionType.LEAF,
                            ConnectionType.STRUCTURED_NEAR}


def test_merge_fires_on_added_only_for_new_labels(table):
    events = []
    table.on_added.append(lambda c: events.append(set(c.types)))
    table.add(conn(2000, ConnectionType.LEAF))
    table.add(conn(2000, ConnectionType.LEAF))  # duplicate: no event
    table.add(conn(2000, ConnectionType.SHORTCUT))
    assert len(events) == 2


def test_remove_fires_callback(table):
    removed = []
    table.on_removed.append(lambda c: removed.append(c.peer_addr))
    table.add(conn(2000))
    assert table.remove(BrunetAddress(2000)) is not None
    assert removed == [BrunetAddress(2000)]
    assert table.remove(BrunetAddress(2000)) is None


def test_by_type_uses_label_sets(table):
    c = table.add(conn(2000, ConnectionType.LEAF))
    c.add_type(ConnectionType.SHORTCUT)
    assert list(table.by_type(ConnectionType.SHORTCUT)) == [c]
    assert list(table.by_type(ConnectionType.LEAF)) == [c]
    assert list(table.by_type(ConnectionType.STRUCTURED_FAR)) == []


def test_leaf_only_connection_not_structured(table):
    table.add(conn(2000, ConnectionType.LEAF))
    assert list(table.structured()) == []
    assert table.closest_to(BrunetAddress(2000)) is None


def test_closest_to(table):
    table.add(conn(2000))
    table.add(conn(5000))
    table.add(conn(9000))
    best = table.closest_to(BrunetAddress(5100))
    assert best.peer_addr == 5000


def test_left_right_neighbors(table):
    table.add(conn(900))    # just left of me (1000)
    table.add(conn(1200))   # just right
    table.add(conn(50000))  # far right
    assert table.right_neighbor().peer_addr == 1200
    assert table.left_neighbor().peer_addr == 900


def test_neighbors_wrap_around_ring(table):
    # only one peer: it is both left and right neighbour
    table.add(conn(2000))
    assert table.right_neighbor().peer_addr == 2000
    assert table.left_neighbor().peer_addr == 2000


def test_neighbors_of(table):
    table.add(conn(500))
    table.add(conn(900))
    table.add(conn(1200))
    table.add(conn(4000))
    picked = table.neighbors_of(BrunetAddress(1100), per_side=1)
    addrs = {int(c.peer_addr) for c in picked}
    assert addrs == {900, 1200}


def test_clear_removes_all(table):
    table.add(conn(2000))
    table.add(conn(3000))
    removed = []
    table.on_removed.append(lambda c: removed.append(c))
    table.clear()
    assert len(table) == 0 and len(removed) == 2
