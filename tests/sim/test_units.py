"""Unit helpers."""

import pytest

from repro.sim.units import GB, KB, MB, minutes, ms, to_KBps, to_MBps


def test_byte_units_nest():
    assert KB(1) == 1024
    assert MB(1) == 1024 * KB(1)
    assert GB(1) == 1024 * MB(1)


def test_time_units():
    assert ms(250) == pytest.approx(0.25)
    assert minutes(2) == 120.0


def test_bandwidth_roundtrip():
    assert to_KBps(KB(85)) == pytest.approx(85.0)
    assert to_MBps(MB(1.83)) == pytest.approx(1.83)
