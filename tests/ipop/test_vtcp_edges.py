"""VTCP edge cases: strays, SYN give-up, duplicate SYN, listener close."""

import pytest

from repro.ipop.vtcp import MAX_SYN_RETRIES, Segment, VtcpStack
from tests.conftest import make_mini_testbed


@pytest.fixture(scope="module")
def bed():
    return make_mini_testbed(seed=71)


def test_stray_segments_from_wrong_peer_ignored(bed):
    sim, tb = bed
    got = []
    server = VtcpStack(tb.vm(3).router).socket(9000, on_message=got.append)
    server.listen()
    client = VtcpStack(tb.vm(4).router).socket(9001)
    client.connect(tb.vm(3).virtual_ip, 9000)
    sim.run(until=sim.now + 10)
    assert server.state == "ESTABLISHED"
    # a third party injects a DATA segment claiming an in-window seq
    intruder = VtcpStack(tb.vm(5).router).socket(9002)
    intruder.peer_ip = tb.vm(3).virtual_ip
    intruder.peer_port = 9000
    intruder._transmit(Segment(server.rcv_next, 0, "DATA", "evil", 100))
    sim.run(until=sim.now + 5)
    assert "evil" not in got


def test_connect_to_dead_host_gives_up(bed):
    sim, tb = bed
    client = VtcpStack(tb.vm(6).router).socket(9100)
    closed = client.closed
    client.connect("172.16.250.250", 1)  # nobody there
    # SYN retries back off exponentially up to RTO_MAX; give it headroom
    sim.run(until=sim.now + 4000)
    if not closed.fired:
        sim.run(until=sim.now + 60 * MAX_SYN_RETRIES)
    assert closed.fired
    assert client.state == "CLOSED"
    assert not client.established.fired


def test_duplicate_syn_reacked(bed):
    sim, tb = bed
    server = VtcpStack(tb.vm(7).router).socket(9200,
                                               on_message=lambda m: None)
    server.listen()
    client = VtcpStack(tb.vm(8).router).socket(9201)
    client.connect(tb.vm(7).virtual_ip, 9200)
    sim.run(until=sim.now + 10)
    # replay the SYN (as a retransmission would)
    client._transmit(Segment(client.snd_una - 1, 0, "SYN"))
    sim.run(until=sim.now + 5)
    assert server.state == "ESTABLISHED"
    assert client.state == "ESTABLISHED"


def test_listen_close_without_connection(bed):
    sim, tb = bed
    stack = VtcpStack(tb.vm(9).router)
    sock = stack.socket(9300)
    sock.listen()
    closed = sock.close()
    assert closed.fired
    assert sock.state == "CLOSED"


def test_messages_survive_loss_via_retransmission(bed):
    """Force datagram loss high for a while: cumulative ACKs recover."""
    sim, tb = bed
    got = []
    server = VtcpStack(tb.vm(10).router).socket(9400, on_message=got.append)
    server.listen()
    client = VtcpStack(tb.vm(11).router).socket(9401)
    client.connect(tb.vm(10).virtual_ip, 9400)
    sim.run(until=sim.now + 10)
    net = tb.deployment.internet
    old_loss = net.latency.default_loss
    net.latency.default_loss = 0.3
    for i in range(10):
        client.send(i)
    sim.run(until=sim.now + 240)
    net.latency.default_loss = old_loss
    sim.run(until=sim.now + 60)
    assert got == list(range(10))
    assert client.retransmissions > 0
