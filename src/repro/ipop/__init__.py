"""IPOP: IP-over-P2P virtual networking (paper §III-B, ref [29]).

Gives each WOW node a virtual IP on a private subnet (the paper's
``172.16.1.x``), deterministically mapped onto the Brunet ring, and tunnels
IP traffic over the overlay.  Small packets (ICMP, RPC) are simulated
per-datagram through the real router code; bulk data rides the fluid-flow
model over the *current* overlay route, re-pathed live as shortcuts form or
nodes migrate.
"""

from repro.ipop.ippacket import VirtualIpPacket, IcmpEcho
from repro.ipop.mapping import addr_for_ip
from repro.ipop.router import IpopRouter
from repro.ipop.bandwidth import BandwidthBroker
from repro.ipop.transfer import OverlayTransfer
from repro.ipop.icmp import Pinger, PingStats

__all__ = [
    "VirtualIpPacket",
    "IcmpEcho",
    "addr_for_ip",
    "IpopRouter",
    "BandwidthBroker",
    "OverlayTransfer",
    "Pinger",
    "PingStats",
]
