"""Generator-based processes on top of the event kernel.

A *process* is a Python generator that yields :class:`Timeout`,
:class:`WaitSignal` or :class:`AllOf` commands.  This gives protocol code a
sequential shape (handshakes, retry loops with back-off) without threads.

Example
-------
>>> from repro.sim import Simulator, Process, Timeout
>>> sim = Simulator()
>>> log = []
>>> def worker():
...     log.append(("start", sim.now))
...     yield Timeout(2.5)
...     log.append(("done", sim.now))
>>> _ = Process(sim, worker())
>>> _ = sim.run()
>>> log
[('start', 0.0), ('done', 2.5)]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional


class Timeout:
    """Yielded by a process to sleep for ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        self.delay = float(delay)


class Signal:
    """A broadcast condition variable carrying a value.

    Processes wait on it by yielding :class:`WaitSignal`; plain callbacks can
    subscribe with :meth:`wait_callback`.  Firing resumes every waiter with
    the fired value.  A signal may fire many times; waiters registered after
    a firing wait for the *next* one unless the signal was created with
    ``latch=True``, in which case the first firing is remembered and late
    waiters complete immediately.
    """

    __slots__ = ("sim", "name", "latch", "fired", "value", "_waiters")

    def __init__(self, sim, name: str = "", latch: bool = False):
        self.sim = sim
        self.name = name
        self.latch = latch
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Resume all current waiters with ``value`` (via 0-delay events)."""
        if self.latch and self.fired:
            return
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for fn in waiters:
            self.sim.schedule(0.0, fn, value)

    def wait_callback(self, fn: Callable[[Any], None]) -> None:
        """Invoke ``fn(value)`` on the next firing (or now, if latched)."""
        if self.latch and self.fired:
            self.sim.schedule(0.0, fn, self.value)
        else:
            self._waiters.append(fn)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.name!r} fired={self.fired}>"


class WaitSignal:
    """Yielded by a process to block until ``signal`` fires.

    ``timeout`` (seconds, optional) bounds the wait; on expiry the process
    resumes with the value ``TIMED_OUT``.
    """

    TIMED_OUT = object()

    __slots__ = ("signal", "timeout")

    def __init__(self, signal: Signal, timeout: Optional[float] = None):
        self.signal = signal
        self.timeout = timeout


class AllOf:
    """Yielded by a process to block until all ``signals`` have fired.

    Resumes with the list of values in signal order.
    """

    __slots__ = ("signals",)

    def __init__(self, signals: Iterable[Signal]):
        self.signals = list(signals)


class Process:
    """Drives a generator against a :class:`~repro.sim.engine.Simulator`.

    The process starts immediately (its first segment runs synchronously up
    to the first yield).  ``done`` is a latched :class:`Signal` fired with
    the generator's return value when it finishes.
    """

    def __init__(self, sim, gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Signal(sim, f"{self.name}.done", latch=True)
        self.alive = True
        self._advance(None)

    def interrupt(self) -> None:
        """Kill the process.  ``done`` fires with ``None``."""
        if not self.alive:
            return
        self.alive = False
        self.gen.close()
        self.done.fire(None)

    # ------------------------------------------------------------------
    def _advance(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            cmd = self.gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.done.fire(stop.value)
            return
        self._dispatch(cmd)

    def _dispatch(self, cmd: Any) -> None:
        if isinstance(cmd, Timeout):
            self.sim.schedule(cmd.delay, self._advance, None)
        elif isinstance(cmd, WaitSignal):
            self._wait_signal(cmd)
        elif isinstance(cmd, AllOf):
            self._wait_all(cmd)
        elif isinstance(cmd, Signal):
            self._wait_signal(WaitSignal(cmd))
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported command {cmd!r}")

    def _wait_signal(self, cmd: WaitSignal) -> None:
        state = {"settled": False}
        timer = None

        def on_fire(value: Any) -> None:
            if state["settled"]:
                return
            state["settled"] = True
            if timer is not None:
                timer.cancel()
            self._advance(value)

        cmd.signal.wait_callback(on_fire)
        if cmd.timeout is not None:
            def on_timeout() -> None:
                if state["settled"]:
                    return
                state["settled"] = True
                self._advance(WaitSignal.TIMED_OUT)
            timer = self.sim.schedule(cmd.timeout, on_timeout)

    def _wait_all(self, cmd: AllOf) -> None:
        remaining = {"n": len(cmd.signals)}
        values: list[Any] = [None] * len(cmd.signals)
        if remaining["n"] == 0:
            self.sim.schedule(0.0, self._advance, values)
            return
        for i, sig in enumerate(cmd.signals):
            def on_fire(value: Any, i: int = i) -> None:
                values[i] = value
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    self._advance(values)
            sig.wait_callback(on_fire)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Process {self.name!r} alive={self.alive}>"
