"""Terminal plots and CSV export for experiment series.

The paper's figures are line plots and histograms; these helpers render
them as ASCII in the terminal (so ``wow-experiments`` output is
self-contained) and export the raw series to CSV for external plotting.
"""

from __future__ import annotations

import csv
import math
import os
from typing import Iterable, Sequence

import numpy as np

PLOT_WIDTH = 72
PLOT_HEIGHT = 14


def ascii_plot(series: dict[str, tuple[Sequence[float], Sequence[float]]],
               title: str = "", xlabel: str = "", ylabel: str = "",
               height: int = PLOT_HEIGHT, width: int = PLOT_WIDTH) -> str:
    """Multi-series ASCII scatter/line plot.

    ``series`` maps label → (xs, ys); each series gets a marker.  NaNs are
    skipped.  Returns the rendered string.
    """
    markers = "*o+x#@%&"
    pts = []
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        for x, y in zip(xs, ys):
            if x is None or y is None:
                continue
            if isinstance(y, float) and math.isnan(y):
                continue
            pts.append((float(x), float(y), marker))
    if not pts:
        return f"{title}\n(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in pts:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(f"{markers[i % len(markers)]} {label}"
                        for i, label in enumerate(series))
    lines.append(legend)
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:>9.3g} |"
        elif i == height - 1:
            label = f"{y_lo:>9.3g} |"
        else:
            label = " " * 9 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(f"{'':10}{x_lo:<12.4g}{xlabel:^{max(0, width - 24)}}"
                 f"{x_hi:>12.4g}")
    return "\n".join(lines)


def ascii_histogram(values: Iterable[float], bins: Sequence[float],
                    title: str = "", width: int = 50) -> str:
    """Horizontal ASCII histogram over explicit bin edges."""
    counts, edges = np.histogram(list(values), bins=bins)
    total = counts.sum() or 1
    lines = [title] if title else []
    peak = counts.max() or 1
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "█" * int(round(width * count / peak))
        pct = 100.0 * count / total
        lines.append(f"{lo:6.0f}-{hi:<6.0f} |{bar:<{width}} {pct:4.1f}%")
    return "\n".join(lines)


def export_csv(path: str, header: Sequence[str],
               rows: Iterable[Sequence]) -> str:
    """Write rows to ``path`` (creating directories); returns the path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
    return path


def export_series_csv(path: str,
                      series: dict[str, tuple[Sequence[float],
                                              Sequence[float]]]) -> str:
    """Export multiple (x, y) series to one long-format CSV."""
    rows = []
    for label, (xs, ys) in series.items():
        for x, y in zip(xs, ys):
            rows.append((label, x, y))
    return export_csv(path, ("series", "x", "y"), rows)
