"""Linking handshake: URI trial order, back-off schedule, races."""

import pytest

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.connection import ConnectionType
from repro.brunet.uri import Uri
from repro.phys import Internet, NatSpec, Site
from repro.sim import Simulator


@pytest.fixture
def world():
    sim = Simulator(seed=9)
    net = Internet(sim)
    return sim, net


def make_node(sim, net, site, name, config=None):
    host = site.add_host(f"h-{name}")
    rng = sim.rng.stream("linktest")
    node = BrunetNode(sim, host, random_address(rng),
                      config or BrunetConfig(), name=name)
    node.start([])
    return node


def test_direct_link_two_public_nodes(world):
    sim, net = world
    site = Site(net, "pub")
    a = make_node(sim, net, site, "a")
    b = make_node(sim, net, site, "b")
    a.linker.start(b.addr, b.uris.advertised(), ConnectionType.LEAF)
    sim.run(until=sim.now + 5)
    assert a.table.get(b.addr) is not None
    assert b.table.get(a.addr) is not None


def test_link_reply_teaches_nat_uri(world):
    sim, net = world
    priv = Site(net, "campus", subnet="10.7.", nat_spec=NatSpec.cone())
    pub = Site(net, "pub")
    a = make_node(sim, net, priv, "a")
    b = make_node(sim, net, pub, "b")
    a.linker.start(b.addr, b.uris.advertised(), ConnectionType.LEAF)
    sim.run(until=sim.now + 5)
    advertised = a.uris.advertised()
    assert advertised[0].endpoint.ip == priv.nat.public_ip
    assert advertised[-1] == a.uris.local


def test_dead_uri_burns_backoff_schedule(world):
    """5 sends with 5 s base and ×2 back-off ⇒ next URI tried at ~155 s
    (the paper's footnote-2 'order of 150 seconds')."""
    sim, net = world
    site = Site(net, "pub")
    a = make_node(sim, net, site, "a")
    b = make_node(sim, net, site, "b")
    dead = Uri.udp("99.0.0.1", 1)  # unroutable
    t0 = sim.now
    done = {}
    a.linker.start(b.addr, [dead, b.uris.local], ConnectionType.LEAF,
                   on_success=lambda c: done.setdefault("t", sim.now))
    sim.run(until=sim.now + 300)
    cfg = a.config
    assert cfg.uri_give_up_time() == pytest.approx(155.0)
    assert "t" in done
    assert done["t"] - t0 == pytest.approx(155.0, abs=2.0)


def test_all_uris_dead_fails(world):
    sim, net = world
    site = Site(net, "pub")
    a = make_node(sim, net, site, "a")
    failed = {}
    a.linker.start(random_address(sim.rng.stream("x")),
                   [Uri.udp("99.0.0.1", 1), Uri.udp("99.0.0.2", 1)],
                   ConnectionType.LEAF,
                   on_fail=lambda: failed.setdefault("t", sim.now))
    sim.run(until=sim.now + 400)
    assert failed["t"] == pytest.approx(310.0, abs=2.0)
    assert a.linker.failures == 1


def test_simultaneous_linking_race_converges(world):
    sim, net = world
    site = Site(net, "pub")
    a = make_node(sim, net, site, "a")
    b = make_node(sim, net, site, "b")
    a.linker.start(b.addr, b.uris.advertised(), ConnectionType.SHORTCUT)
    b.linker.start(a.addr, a.uris.advertised(), ConnectionType.SHORTCUT)
    sim.run(until=sim.now + 20)
    assert a.table.get(b.addr) is not None
    assert b.table.get(a.addr) is not None


def test_race_with_paper_backoff_mode(world):
    sim, net = world
    site = Site(net, "pub")
    cfg = BrunetConfig(race_tiebreak_by_address=False)
    a = make_node(sim, net, site, "a", cfg)
    b = make_node(sim, net, site, "b", cfg)
    a.linker.start(b.addr, b.uris.advertised(), ConnectionType.SHORTCUT)
    b.linker.start(a.addr, a.uris.advertised(), ConnectionType.SHORTCUT)
    sim.run(until=sim.now + 120)
    assert a.table.get(b.addr) is not None
    assert b.table.get(a.addr) is not None


def test_hole_punch_between_two_nated_sites(world):
    """Both ends behind port-restricted cone NATs: linking succeeds only
    because both sides initiate (§IV-D)."""
    sim, net = world
    s1 = Site(net, "c1", subnet="10.7.", nat_spec=NatSpec.cone())
    s2 = Site(net, "c2", subnet="10.8.", nat_spec=NatSpec.cone())
    pub = Site(net, "pub")
    rendezvous = make_node(sim, net, pub, "rv")
    a = make_node(sim, net, s1, "a")
    b = make_node(sim, net, s2, "b")
    # teach a and b their public URIs via the public node
    a.linker.start(rendezvous.addr, rendezvous.uris.advertised(),
                   ConnectionType.LEAF)
    b.linker.start(rendezvous.addr, rendezvous.uris.advertised(),
                   ConnectionType.LEAF)
    sim.run(until=sim.now + 5)
    # now both try each other simultaneously (as after a CTM exchange)
    a.linker.start(b.addr, b.uris.advertised(), ConnectionType.SHORTCUT)
    b.linker.start(a.addr, a.uris.advertised(), ConnectionType.SHORTCUT)
    sim.run(until=sim.now + 30)
    assert a.table.get(b.addr) is not None
    assert b.table.get(a.addr) is not None


def test_one_sided_attempt_against_nat_fails_alone(world):
    """Without bi-directionality, a public node cannot reach a NATed one
    whose filter has no hole."""
    sim, net = world
    s1 = Site(net, "c1", subnet="10.7.", nat_spec=NatSpec.cone())
    pub = Site(net, "pub")
    rendezvous = make_node(sim, net, pub, "rv")
    a = make_node(sim, net, s1, "a")
    p = make_node(sim, net, pub, "p")
    a.linker.start(rendezvous.addr, rendezvous.uris.advertised(),
                   ConnectionType.LEAF)
    sim.run(until=sim.now + 5)
    # p tries a's URIs (public mapping + private); a never sends to p
    failed = {}
    p.linker.start(a.addr, a.uris.advertised(), ConnectionType.SHORTCUT,
                   on_fail=lambda: failed.setdefault("t", sim.now))
    sim.run(until=sim.now + 400)
    assert "t" in failed
    assert p.table.get(a.addr) is None


def test_duplicate_link_requests_idempotent(world):
    sim, net = world
    site = Site(net, "pub")
    a = make_node(sim, net, site, "a")
    b = make_node(sim, net, site, "b")
    for _ in range(3):
        a.linker.start(b.addr, b.uris.advertised(), ConnectionType.LEAF)
    sim.run(until=sim.now + 10)
    assert len(b.table.all()) == 1
    assert len(a.table.all()) == 1


def test_existing_connection_gains_new_role(world):
    sim, net = world
    site = Site(net, "pub")
    a = make_node(sim, net, site, "a")
    b = make_node(sim, net, site, "b")
    a.linker.start(b.addr, b.uris.advertised(), ConnectionType.LEAF)
    sim.run(until=sim.now + 5)
    got = {}
    a.linker.start(b.addr, b.uris.advertised(), ConnectionType.SHORTCUT,
                   on_success=lambda c: got.setdefault("conn", c))
    assert ConnectionType.SHORTCUT in got["conn"].types
    assert ConnectionType.LEAF in got["conn"].types


def test_race_recheck_with_empty_uris_fires_on_fail(world):
    """Regression: when a race-abort recheck retries via ``Linker.start``
    and the peer's URI list has meanwhile become empty, ``start`` returns
    None without seeing the saved callbacks — waiters (e.g. a leaf
    overlord's ``_attempting`` flag) must still be failed, not hung."""
    from repro.brunet.messages import LinkError
    from repro.brunet import random_address
    sim, net = world
    site = Site(net, "pub")
    a = make_node(sim, net, site, "a")
    target = random_address(sim.rng.stream("tgt"))
    dead = Uri.udp("203.0.113.9", 14001)  # no such host: unroutable
    fails = []
    attempt = a.linker.start(target, [dead], ConnectionType.STRUCTURED_FAR,
                             on_fail=lambda: fails.append(1))
    assert attempt is not None
    # the peer wins the linking race and tells us to abandon the attempt
    a.linker.handle_error(LinkError(attempt.token, target), dead.endpoint)
    # by recheck time every advertised URI of the peer has been withdrawn
    a.peer_uris[target] = []
    sim.run(until=sim.now + 120.0)
    assert fails == [1]
