"""Overlord behaviours: leaf maintenance, shortcut score queue, eviction."""

import pytest

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.connection import ConnectionType
from repro.brunet.overlords import ShortcutConnectionOverlord
from repro.phys import Internet, Site
from repro.sim import Simulator
from tests.conftest import build_overlay


class TestScoreQueue:
    """The §IV-E recurrence s(i+1) = max(s(i) + a(i) − c, 0)."""

    def setup_method(self):
        self.sim = Simulator(seed=4)
        net = Internet(self.sim)
        site = Site(net, "pub")
        host = site.add_host("h")
        cfg = BrunetConfig()
        self.node = BrunetNode(self.sim, host,
                               random_address(self.sim.rng.stream("t")), cfg)
        self.node.start([])
        self.overlord = self.node.shortcut_overlord
        self.dest = random_address(self.sim.rng.stream("d"))

    def test_score_accumulates_above_service_rate(self):
        cfg = self.node.config
        for _ in range(10):
            self.overlord.observe(self.dest, 1)
            self.overlord.tick()
        expected = 10 * (1 - cfg.shortcut_service_rate * cfg.shortcut_tick)
        assert self.overlord.score_of(self.dest) == pytest.approx(expected)

    def test_score_drains_when_idle(self):
        self.overlord.observe(self.dest, 5)
        self.overlord.tick()
        for _ in range(30):
            self.overlord.tick()
        assert self.overlord.score_of(self.dest) == 0.0

    def test_score_never_negative(self):
        self.overlord.observe(self.dest, 1)
        for _ in range(10):
            self.overlord.tick()
        assert self.overlord.score_of(self.dest) >= 0.0

    def test_threshold_triggers_ctm(self):
        before = self.node.stats["ctm_sent"]
        self.overlord.observe(self.dest, 100)
        self.overlord.tick()
        assert self.node.stats["ctm_sent"] == before + 1

    def test_no_duplicate_ctm_while_pending(self):
        self.overlord.observe(self.dest, 100)
        self.overlord.tick()
        sent = self.node.stats["ctm_sent"]
        self.overlord.observe(self.dest, 100)
        self.overlord.tick()
        assert self.node.stats["ctm_sent"] == sent

    def test_disabled_overlord_ignores_traffic(self):
        self.node.config.shortcuts_enabled = False
        self.overlord.observe(self.dest, 1000)
        self.overlord.tick()
        assert self.overlord.score_of(self.dest) == 0.0
        self.node.config.shortcuts_enabled = True

    def test_own_address_never_scored(self):
        self.overlord.observe(self.node.addr, 100)
        self.overlord.tick()
        assert self.overlord.score_of(self.node.addr) == 0.0


class TestShortcutsEndToEnd:
    def test_traffic_creates_shortcut(self, sim, internet):
        nodes, _ = build_overlay(sim, internet, 10)
        a, b = nodes[0], nodes[-1]
        if a.table.get(b.addr) is not None:
            pytest.skip("already adjacent in this topology")

        def drive():
            a.inspect_traffic(b.addr, 1)
        for i in range(60):
            sim.schedule(i * 1.0, drive)
        sim.run(until=sim.now + 90)
        conn = a.table.get(b.addr)
        assert conn is not None
        assert ConnectionType.SHORTCUT in conn.types

    def test_cap_evicts_lowest_score(self, sim, internet):
        nodes, _ = build_overlay(sim, internet, 18)
        a = nodes[0]
        a.config.shortcut_max = 2
        others = [n for n in nodes[1:] if a.table.get(n.addr) is None]
        if len(others) < 3:
            pytest.skip("topology too dense for this seed")
        targets = others[:3]
        # drive traffic to 3 destinations with increasing intensity
        for weight, target in enumerate(targets, start=1):
            for i in range(80):
                sim.schedule(i * 1.0, a.inspect_traffic, target.addr,
                             weight * 2)
        sim.run(until=sim.now + 150)
        shortcuts = a.table.by_type(ConnectionType.SHORTCUT)
        assert len(shortcuts) <= 2
        a.config.shortcut_max = 8


class TestLeafOverlord:
    def test_leaf_reestablished_after_bootstrap_loss(self, sim, internet):
        nodes, bootstrap = build_overlay(sim, internet, 6)
        site = Site(internet, "extra")
        host = site.add_host("x")
        node = BrunetNode(sim, host, random_address(sim.rng.stream("x")),
                          BrunetConfig(), name="x")
        # two seeds: the first will die
        from repro.brunet.uri import Uri
        seeds = [Uri.udp(nodes[0].host.ip, nodes[0].port),
                 Uri.udp(nodes[1].host.ip, nodes[1].port)]
        node.start(seeds)
        sim.run(until=sim.now + 30)
        leaf = node.leaf_connection()
        assert leaf is not None
        # kill the leaf target; the overlord should find another seed
        victim = nodes[0] if leaf.peer_addr == nodes[0].addr else nodes[1]
        victim.stop()
        sim.run(until=sim.now + 240)
        leaf = node.leaf_connection()
        assert leaf is not None
        assert leaf.peer_addr != victim.addr


class TestFarOverlord:
    def test_far_success_releases_pending_slot(self):
        """Regression: a far connection that actually lands must free its
        ``_pending`` slot immediately — it used to count against ``need``
        until the 30 s TTL, so nodes sat below ``far_count`` after churn."""
        from repro.brunet.connection import Connection
        from repro.brunet.overlords import FarConnectionOverlord
        from repro.phys.endpoints import Endpoint
        sim = Simulator(seed=7)
        net = Internet(sim)
        site = Site(net, "pub")
        host = site.add_host("h")
        cfg = BrunetConfig(far_count=1)
        node = BrunetNode(sim, host, random_address(sim.rng.stream("t")), cfg)
        node.start([])
        far = next(o for o in node.overlords
                   if isinstance(o, FarConnectionOverlord))
        # fake ring membership so the overlord is willing to work
        node.table.add(Connection(node.addr.offset(12345),
                                  Endpoint("150.1.0.9", 14001),
                                  ConnectionType.STRUCTURED_NEAR, sim.now))
        far.tick()
        assert len(far._pending) == 1
        sent = node.stats["ctm_sent"]
        # the CTM succeeds: a structured-far connection is established
        far_peer = node.addr.offset(999999)
        node.table.add(Connection(far_peer, Endpoint("150.1.0.10", 14001),
                                  ConnectionType.STRUCTURED_FAR, sim.now))
        assert not far._pending
        # that link dies; the very next tick must start the repair (no
        # 30 s dead time from the stale pending entry)
        node.table.remove(far_peer)
        far.tick()
        assert node.stats["ctm_sent"] == sent + 1
