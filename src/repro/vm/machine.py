"""WowVm: one running WOW guest.

The VM owns (a) a guest :class:`~repro.phys.host.Host` for its network
presence — sitting behind the site NAT exactly like a VMware NAT-mode
guest, (b) a :class:`~repro.brunet.node.BrunetNode` + IPOP tap, (c) a
chunked CPU so computations stretch across suspensions, and (d) WAN
migration: suspend → ship memory/COW logs at WAN speed → resume at the
destination with a *new* physical address → kill-and-restart IPOP, which
rejoins the ring under the unchanged virtual IP (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.brunet.node import BrunetNode
from repro.ipop.mapping import addr_for_ip
from repro.ipop.router import IpopRouter
from repro.phys.flows import Flow
from repro.sim.process import Process, Signal, Timeout, WaitSignal
from repro.vm.image import DEFAULT_IMAGE, VmImage

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.wow import Deployment
    from repro.phys.host import Host
    from repro.phys.topology import Site

#: compute is executed in slices this long (ref-seconds) so suspension can
#: interrupt at slice boundaries
COMPUTE_SLICE = 2.0


@dataclass
class MigrationRecord:
    """Timeline of one migration, for the Fig. 6/7 experiments."""

    started_at: float
    suspend_done: float = 0.0
    transfer_done: float = 0.0
    resumed_at: float = 0.0
    rejoined_at: Optional[float] = None
    src_site: str = ""
    dst_site: str = ""

    @property
    def outage(self) -> float:
        """Suspend-to-resume wall time (virtual-IP outage lasts until the
        overlay rejoin completes, shortly after ``resumed_at``)."""
        return self.resumed_at - self.started_at


class WowVm:
    """A WOW compute node: guest VM + IPOP virtual networking."""

    def __init__(self, deployment: "Deployment", name: str, virtual_ip: str,
                 site: "Site", cpu_speed: float = 1.0,
                 image: Optional[VmImage] = None,
                 extra_nats: Optional[list] = None,
                 interface_mode: str = "nat"):
        self.deployment = deployment
        self.sim = deployment.sim
        self.name = name
        self.virtual_ip = virtual_ip
        self.addr = addr_for_ip(virtual_ip)
        self.image = (image or DEFAULT_IMAGE).clone(name)
        self.cpu_speed = cpu_speed
        calib = deployment.calib
        self.host: "Host" = site.add_host(
            f"vm-{name}", cpu_speed=cpu_speed,
            proc_delay_mean=calib.guest_proc_delay,
            extra_nats=extra_nats)
        self.host.ipop_forward_capacity = calib.compute_forward_capacity
        if interface_mode not in ("nat", "host-only"):
            raise ValueError(f"unknown interface mode {interface_mode!r}")
        self.interface_mode = interface_mode
        self.node = BrunetNode(self.sim, self.host, self.addr,
                               deployment.brunet_config, name=f"ipop.{name}")
        if interface_mode == "host-only":
            # §V-E: "the use of a host-only interface will further improve
            # the isolation of WOW nodes from the physical network" — the
            # guest's only physical presence is the IPOP socket
            self.host.allowed_ports = {self.node.port}
        self.router = IpopRouter(self.node, virtual_ip)
        self.suspended = False
        self.resumed = Signal(self.sim, f"{name}.resumed")
        self.migrations: list[MigrationRecord] = []
        self.started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot the guest and join the overlay."""
        self.node.start(self.deployment.bootstrap_uris)
        self.deployment.register_node(self.node)
        self.started = True

    def stop(self) -> None:
        """Power the guest off (IPOP leaves the overlay)."""
        self.deployment.unregister_node(self.node)
        self.node.stop()
        self.started = False

    def restart_ipop(self) -> None:
        """Kill and restart the user-level IPOP program (§V-C): new node
        object, same ring address, same tap state."""
        self.deployment.unregister_node(self.node)
        self.node.stop()
        self.router.detach()
        self.node = BrunetNode(self.sim, self.host, self.addr,
                               self.deployment.brunet_config,
                               name=f"ipop.{self.name}")
        if self.interface_mode == "host-only":
            self.host.allowed_ports = {self.node.port}
        self.router.attach(self.node)
        self.node.start(self.deployment.bootstrap_uris)
        self.deployment.register_node(self.node)

    # ------------------------------------------------------------------
    # CPU
    # ------------------------------------------------------------------
    def compute(self, work_ref_seconds: float):
        """Generator: execute guest compute, pausing across suspensions.

        Wall time per slice reflects host speed, host background load and
        the machine-virtualization overhead (§V-D1's 13%).
        """
        overhead = 1.0 + self.deployment.calib.virt_overhead
        remaining = work_ref_seconds
        while remaining > 0:
            if self.suspended:
                yield WaitSignal(self.resumed)
                continue
            slice_ref = min(COMPUTE_SLICE, remaining)
            yield Timeout(self.host.compute_time(slice_ref * overhead))
            remaining -= slice_ref

    def run_compute(self, work_ref_seconds: float) -> Process:
        """Spawn :meth:`compute` as a process; ``.done`` fires at the end."""
        return Process(self.sim, self.compute(work_ref_seconds),
                       name=f"{self.name}.compute")

    # ------------------------------------------------------------------
    # migration (§V-C)
    # ------------------------------------------------------------------
    def migrate(self, dest_site: "Site",
                transfer_size: Optional[float] = None,
                dest_cpu_speed: Optional[float] = None) -> Signal:
        """Begin a WAN live migration; returns a latched Signal fired with
        the :class:`MigrationRecord` when the VM is resumed and rejoining."""
        done = Signal(self.sim, f"{self.name}.migrated", latch=True)
        Process(self.sim, self._migrate_proc(dest_site, transfer_size,
                                             dest_cpu_speed, done),
                name=f"{self.name}.migrate")
        return done

    def _migrate_proc(self, dest_site: "Site",
                      transfer_size: Optional[float],
                      dest_cpu_speed: Optional[float], done: Signal):
        calib = self.deployment.calib
        record = MigrationRecord(started_at=self.sim.now,
                                 src_site=self.host.site.name,
                                 dst_site=dest_site.name)
        self.migrations.append(record)
        src_site = self.host.site

        # 1. suspend the guest; the IPOP process dies with it
        self.suspended = True
        self.deployment.unregister_node(self.node)
        self.node.stop()
        self.router.detach()
        yield Timeout(calib.vm_suspend_overhead)
        record.suspend_done = self.sim.now

        # 2. ship memory image + copy-on-write logs over the physical WAN
        size = (calib.vm_image_transfer_size if transfer_size is None
                else transfer_size)
        broker = self.deployment.broker
        if src_site is dest_site:
            path = [broker.lan_resource(src_site.name)]
        else:
            path = [broker.wan_resource(src_site.name, dest_site.name)]
        flow = Flow(broker.flows, f"{self.name}.image", size, path)
        yield WaitSignal(flow.done)
        record.transfer_done = self.sim.now

        # 3. resume at the destination: new physical address (the VM "
        #    acquired a new physical address for eth0", §V-C1)
        self.deployment.internet.unregister_host(self.host)
        self.host.shutdown()
        old_host = self.host
        self.host = dest_site.add_host(
            f"vm-{self.name}@{dest_site.name}",
            cpu_speed=dest_cpu_speed if dest_cpu_speed is not None
            else self.cpu_speed,
            proc_delay_mean=calib.guest_proc_delay)
        self.host.ipop_forward_capacity = getattr(
            old_host, "ipop_forward_capacity",
            calib.compute_forward_capacity)
        if dest_cpu_speed is not None:
            self.cpu_speed = dest_cpu_speed
        yield Timeout(calib.vm_resume_overhead)
        if self.interface_mode == "host-only":
            self.host.allowed_ports = {self.deployment.brunet_config.default_port}

        # 4. restart IPOP: the tap (virtual IP) is unchanged; the node
        #    rejoins the overlay autonomously
        self.node = BrunetNode(self.sim, self.host, self.addr,
                               self.deployment.brunet_config,
                               name=f"ipop.{self.name}")
        self.router.attach(self.node)
        self.node.start(self.deployment.bootstrap_uris)
        self.deployment.register_node(self.node)
        self.suspended = False
        record.resumed_at = self.sim.now
        self.resumed.fire(record)
        self.sim.trace("vm.migrated", vm=self.name,
                       outage=record.outage, dst=dest_site.name)

        def note_join(_conn) -> None:
            if record.rejoined_at is None:
                record.rejoined_at = self.sim.now
        if self.node.joined_at is not None:  # pragma: no cover - instant join
            record.rejoined_at = self.node.joined_at
        else:
            self.node.on_connection.append(note_join)
        done.fire(record)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<WowVm {self.name} {self.virtual_ip}@{self.host.site.name}>"
