"""Datagram model.

A :class:`Datagram` is one UDP packet travelling through the simulated
internet.  ``payload`` is any Python object (protocol message) — or raw
``bytes`` when the sending transport runs the wire codec.  ``size`` is
the on-wire size in bytes used for serialization-delay accounting.  NATs
rewrite ``src``/``dst`` in place as the packet crosses them, and append to
``path`` for debugging/tests.

``header`` selects the fixed framing charge added on top of ``size``.
The reference (paper-constant) accounting uses :data:`HEADER_BYTES`,
which bundles IP + UDP *and* overlay framing into one constant.  The
measured modes pass :data:`~repro.wire.codec.UDP_IP_OVERHEAD` instead,
because there the overlay framing is already part of the encoded payload
length — charging :data:`HEADER_BYTES` on top would count it twice.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.phys.endpoints import Endpoint

# Rough fixed header cost (IP + UDP + overlay framing) added to payloads
# in the reference (paper-constant) accounting mode.
HEADER_BYTES = 60


class Datagram:
    """One simulated UDP packet."""

    __slots__ = ("src", "dst", "payload", "size", "proto", "path",
                 "orig_src", "trace", "span")

    def __init__(self, src: Endpoint, dst: Endpoint, payload: Any,
                 size: Optional[int] = None, proto: str = "udp",
                 header: Optional[int] = None):
        self.src = src
        self.dst = dst
        self.payload = payload
        framing = HEADER_BYTES if header is None else header
        self.size = framing + (size if size is not None else 0)
        self.proto = proto
        # original (pre-NAT) source, for trace assertions
        self.orig_src = src
        self.path: list[str] = []
        # causal-trace context lifted off the payload by Internet.send
        # when span tracing is on; ``span`` is the open phys.tx span id
        self.trace = None
        self.span = None

    def hop(self, label: str) -> None:
        """Record a traversal step (NAT, core, delivery)."""
        self.path.append(label)

    def __repr__(self) -> str:  # pragma: no cover
        kind = type(self.payload).__name__
        return f"<Datagram {self.src}->{self.dst} {kind} {self.size}B>"
