"""Next-hop cache: memoized decisions must always equal a fresh scan.

The cache in :mod:`repro.brunet.routing` is invalidated wholesale whenever
``ConnectionTable.version`` bumps; these property tests drive arbitrary
add/remove/relabel sequences and check cache coherence after every step.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.brunet.address import BrunetAddress, random_address
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.routing import _next_hop_scan, next_hop
from repro.brunet.table import ConnectionTable
from repro.phys.endpoints import Endpoint

TYPES = [ConnectionType.LEAF, ConnectionType.STRUCTURED_NEAR,
         ConnectionType.STRUCTURED_FAR, ConnectionType.SHORTCUT]


def _addr(i: int) -> BrunetAddress:
    rng = np.random.default_rng(i)
    return random_address(rng)


@pytest.fixture
def table():
    return ConnectionTable(_addr(0))


def test_cache_hit_returns_same_decision(table):
    for i in range(1, 8):
        table.add(Connection(_addr(i), Endpoint("1.1.1.1", i),
                             ConnectionType.STRUCTURED_FAR, 0.0))
    dest = _addr(99)
    first = next_hop(table, table.my_addr, dest)
    assert (table.my_addr, dest, False, None) in table.next_hop_cache
    assert next_hop(table, table.my_addr, dest) is first
    assert first is _next_hop_scan(table, table.my_addr, dest)


def test_add_remove_relabel_bump_version_and_clear_cache(table):
    v0 = table.version
    conn = table.add(Connection(_addr(1), Endpoint("1.1.1.1", 1),
                                ConnectionType.LEAF, 0.0))
    assert table.version > v0
    dest = _addr(50)
    next_hop(table, table.my_addr, dest)
    assert table.next_hop_cache

    v1 = table.version
    conn.add_type(ConnectionType.SHORTCUT)     # leaf becomes routable
    assert table.version > v1
    assert not table.next_hop_cache

    next_hop(table, table.my_addr, dest)
    v2 = table.version
    conn.discard_type(ConnectionType.SHORTCUT)
    assert table.version > v2
    assert not table.next_hop_cache

    next_hop(table, table.my_addr, dest)
    v3 = table.version
    table.remove(conn.peer_addr)
    assert table.version > v3
    assert not table.next_hop_cache


def test_relabel_changes_routing_decision(table):
    """A leaf link must not route greedily until it gains a structured
    label — the cache has to notice the transition both ways."""
    peer = _addr(3)
    conn = table.add(Connection(peer, Endpoint("2.2.2.2", 3),
                                ConnectionType.LEAF, 0.0))
    dest = peer  # direct-link fast path applies regardless of labels
    assert next_hop(table, table.my_addr, dest) is conn
    other = _addr(7)
    assert next_hop(table, table.my_addr, other) is None  # leaf: no greedy
    conn.add_type(ConnectionType.STRUCTURED_FAR)
    fresh = _next_hop_scan(table, table.my_addr, other)
    assert next_hop(table, table.my_addr, other) is fresh
    conn.discard_type(ConnectionType.STRUCTURED_FAR)
    assert next_hop(table, table.my_addr, other) is None


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["add", "remove", "label",
                                           "unlabel"]),
                          st.integers(1, 12), st.integers(0, 3)),
                min_size=1, max_size=40),
       st.lists(st.tuples(st.integers(0, 20), st.booleans(),
                          st.sampled_from([None, "left", "right"])),
                min_size=1, max_size=8))
def test_cached_always_equals_fresh_scan(ops, queries):
    table = ConnectionTable(_addr(0))
    for op, peer_i, type_i in ops:
        peer = _addr(peer_i)
        if op == "add":
            table.add(Connection(peer, Endpoint("9.9.9.9", peer_i),
                                 TYPES[type_i], 0.0))
        elif op == "remove":
            table.remove(peer)
        else:
            conn = table.get(peer)
            if conn is not None:
                if op == "label":
                    conn.add_type(TYPES[type_i])
                elif len(conn.types) > 1:  # never strip the last label
                    conn.discard_type(TYPES[type_i])
        for dest_i, exclude, approach in queries:
            dest = _addr(dest_i)
            cached = next_hop(table, table.my_addr, dest, exclude, approach)
            fresh = _next_hop_scan(table, table.my_addr, dest, exclude,
                                   approach)
            assert cached is fresh, (op, peer_i, dest_i, exclude, approach)


def test_cache_size_is_bounded(table):
    from repro.brunet import routing
    for i in range(1, 10):
        table.add(Connection(_addr(i), Endpoint("1.1.1.1", i),
                             ConnectionType.STRUCTURED_FAR, 0.0))
    for i in range(routing._CACHE_MAX + 50):
        next_hop(table, table.my_addr, _addr(1000 + i))
    assert len(table.next_hop_cache) <= routing._CACHE_MAX + 1
