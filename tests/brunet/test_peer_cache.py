"""Cached-peer store: the decentralized-bootstrap state machine."""

from __future__ import annotations

import json
import os

from repro.brunet.bootstrap import (CACHE_VERSION, PeerCache,
                                    merge_bootstrap_uris)
from repro.brunet.node import BrunetNode
from repro.brunet.uri import Uri
from repro.ipop.mapping import addr_for_ip
from repro.phys.topology import Site


def u(port: int) -> Uri:
    return Uri.udp("127.0.0.1", port)


def test_roundtrip_preserves_recency_order(tmp_path):
    import time
    t0 = time.time()  # explicit stamps must be recent or load() ages them out
    path = str(tmp_path / "peers.json")
    cache = PeerCache(path)
    cache.record([u(1000)], now=t0 - 30.0)
    cache.record([u(2000), u(3000)], now=t0 - 20.0)
    cache.record([u(1000)], now=t0)  # re-confirmed: back to the front
    cache.save()

    reloaded = PeerCache(path)
    assert reloaded.load() == [u(1000), u(2000), u(3000)]
    assert reloaded.loaded_from_disk
    assert len(reloaded) == 3


def test_capacity_evicts_least_recently_confirmed(tmp_path):
    cache = PeerCache(str(tmp_path / "p.json"), capacity=3)
    for i, port in enumerate([1, 2, 3, 4, 5]):
        cache.record([u(1000 + port)], now=float(i))
    assert cache.peers() == [u(1005), u(1004), u(1003)]


def test_load_tolerates_missing_corrupt_and_stale(tmp_path):
    missing = PeerCache(str(tmp_path / "nope.json"))
    assert missing.load() == []
    assert not missing.loaded_from_disk

    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json", encoding="utf-8")
    assert PeerCache(str(corrupt)).load() == []

    wrong_version = tmp_path / "old.json"
    wrong_version.write_text(
        json.dumps({"version": CACHE_VERSION + 1, "peers": []}),
        encoding="utf-8")
    assert PeerCache(str(wrong_version)).load() == []

    # stale entries age out, bad entries are skipped, good ones survive
    import time
    mixed = tmp_path / "mixed.json"
    mixed.write_text(json.dumps({
        "version": CACHE_VERSION,
        "peers": [
            {"uri": str(u(1500)), "last_seen": time.time()},
            {"uri": str(u(1501)), "last_seen": 1.0},        # 1970: stale
            {"uri": "not-a-uri", "last_seen": time.time()},  # unparsable
            {"last_seen": time.time()},                      # no uri
        ]}), encoding="utf-8")
    assert PeerCache(str(mixed)).load() == [u(1500)]


def test_save_is_atomic_and_creates_directory(tmp_path):
    path = str(tmp_path / "deep" / "peers.json")
    cache = PeerCache(path)
    cache.record([u(1700)])
    cache.save()
    assert PeerCache(path).load() == [u(1700)]
    # no temp files left behind
    assert os.listdir(tmp_path / "deep") == ["peers.json"]


def test_empty_cache_is_falsy_but_load_still_runs(tmp_path):
    """Regression: PeerCache defines __len__, so a not-yet-loaded cache
    is falsy — callers gating load() on truthiness silently skip the
    disk read and strand a restarted node on its dead seeds."""
    path = str(tmp_path / "peers.json")
    seeded = PeerCache(path)
    seeded.record([u(1600)])
    seeded.save()

    cache = PeerCache(path)
    assert not cache          # empty until load() — that's the trap
    assert cache is not None  # the correct gate
    assert cache.load() == [u(1600)]
    assert cache               # now truthy


def test_merge_puts_cached_peers_before_seeds():
    seeds = [u(1), u(2)]
    cached = [u(9), u(2), u(8)]
    assert merge_bootstrap_uris(seeds, cached) == [u(9), u(2), u(8), u(1)]


def test_rebootstrap_adopts_fresh_uris_and_filters_self(sim, internet):
    host = Site(internet, "solo").add_host("h0")
    node = BrunetNode(sim, host, addr_for_ip("10.128.0.2"))
    node.start([Uri.udp("10.0.0.9", 4000)])
    own = node.uris.local
    adopted = node.rebootstrap([own,                     # self: dropped
                                Uri.udp("10.0.0.9", 4000),  # dup: dropped
                                Uri.udp("10.0.0.7", 4000)])
    assert adopted == 1
    # freshest first: the new URI leads the rotation
    assert node.bootstrap_uris[0] == Uri.udp("10.0.0.7", 4000)
    node.stop()
