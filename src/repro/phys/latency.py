"""WAN latency model.

One-way delay between two hosts =

    base(site_a, site_b)        symmetric site-pair base latency
  + jitter                      lognormal multiplicative jitter
  + host processing             per-endpoint delay scaled by host load

Site-pair base latencies are stored in a symmetric table with a default for
unlisted pairs.  Intra-site delay is the site's ``lan_latency``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.units import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.phys.host import Host


class LatencyModel:
    """Computes per-datagram one-way delays and loss decisions."""

    def __init__(self, rng: np.random.Generator,
                 default_wan_latency: float = ms(25.0),
                 jitter_sigma: float = 0.08,
                 default_loss: float = 0.0005):
        self.rng = rng
        self.default_wan_latency = default_wan_latency
        self.jitter_sigma = jitter_sigma
        self.default_loss = default_loss
        self._pair_latency: dict[frozenset, float] = {}
        self._pair_loss: dict[frozenset, float] = {}

    # -- configuration -------------------------------------------------
    def set_pair(self, site_a: str, site_b: str, one_way: float,
                 loss: float | None = None) -> None:
        """Configure the symmetric base latency (and loss) for a site pair."""
        key = frozenset((site_a, site_b))
        self._pair_latency[key] = one_way
        if loss is not None:
            self._pair_loss[key] = loss

    def base_latency(self, site_a: str, site_b: str) -> float:
        """One-way base latency between two (distinct) sites."""
        if site_a == site_b:
            raise ValueError("intra-site latency comes from the Site object")
        return self._pair_latency.get(frozenset((site_a, site_b)),
                                      self.default_wan_latency)

    def loss_probability(self, site_a: str, site_b: str) -> float:
        """Per-packet loss probability for the site pair (0 intra-site)."""
        if site_a == site_b:
            return 0.0
        return self._pair_loss.get(frozenset((site_a, site_b)),
                                   self.default_loss)

    # -- sampling --------------------------------------------------------
    def sample_delay(self, src: "Host", dst: "Host") -> float:
        """One-way delay for a datagram from ``src`` to ``dst``."""
        if src.site is dst.site:
            base = src.site.lan_latency
        else:
            base = self.base_latency(src.site.name, dst.site.name)
        jitter = float(self.rng.lognormal(mean=0.0, sigma=self.jitter_sigma))
        proc = src.processing_delay(self.rng) + dst.processing_delay(self.rng)
        return base * jitter + proc

    def sample_loss(self, src: "Host", dst: "Host") -> bool:
        """True when the datagram should be dropped in transit."""
        p = self.loss_probability(src.site.name, dst.site.name)
        p = min(1.0, p + src.extra_loss + dst.extra_loss)
        return bool(self.rng.random() < p) if p > 0 else False
