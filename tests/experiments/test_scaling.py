"""Unit-level checks of the scaling-sweep experiment."""

import math

import pytest

from repro.experiments import scaling


@pytest.fixture(scope="module")
def point():
    return scaling.measure(24, seed=9, sample_pairs=120)


def test_all_pairs_routable(point):
    assert point.unreachable == 0


def test_hops_reasonable_for_small_ring(point):
    assert 1.0 <= point.mean_hops <= 5.0
    assert point.p95_hops <= 10


def test_joins_fast(point):
    assert 0.0 < point.mean_join_s < 10.0


def test_normalisation_math(point):
    expected = point.mean_hops / (math.log2(24) ** 2)
    assert point.hops_per_log2n_sq == pytest.approx(expected)


def test_report_renders(capsys, point):
    scaling.report([point])
    out = capsys.readouterr().out
    assert "Overlay scaling sweep" in out
    assert "24" in out
