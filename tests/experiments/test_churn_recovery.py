"""Churn-recovery experiment: the overlay must heal after mass crashes."""

import pytest

from repro.experiments import churn_recovery


def _key(result):
    return (result.recovery_ring, result.recovery_routes, result.series,
            [(e.time, e.kind, e.detail) for e in result.fault_log])


def test_recovers_after_killing_a_quarter(capsys):
    """The acceptance bar: kill >=20% of the nodes at once, the ring must
    regain consistency and full all-pairs virtual-IP routability."""
    result = churn_recovery.run(seed=0, n_nodes=20, kill_fraction=0.25)
    assert result.n_killed == 5
    assert result.n_killed / result.n_nodes >= 0.20
    assert result.recovered
    assert result.recovery_ring is not None and result.recovery_ring > 0
    assert result.recovery_routes is not None and result.recovery_routes > 0
    # the crash actually broke routing before repair kicked in
    assert any(frac < 1.0 for _t, frac, _ring in result.series)
    # every kill is logged, at the scheduled instant
    assert [e.kind for e in result.fault_log] == ["node.crash"] * 5
    assert all(e.time == result.t_kill for e in result.fault_log)
    churn_recovery.report(result)
    out = capsys.readouterr().out
    assert "Churn recovery" in out and "never" not in out


def test_same_seed_is_bit_identical():
    a = churn_recovery.run(seed=3, n_nodes=12, kill_fraction=0.25,
                           settle=300.0)
    b = churn_recovery.run(seed=3, n_nodes=12, kill_fraction=0.25,
                           settle=300.0)
    assert _key(a) == _key(b)


def test_csv_export(tmp_path, capsys):
    result = churn_recovery.run(seed=1, n_nodes=12, kill_fraction=0.25,
                                settle=300.0)
    churn_recovery.report(result, csv_dir=str(tmp_path))
    assert (tmp_path / "churn_recovery.csv").exists()
    assert "[csv]" in capsys.readouterr().out


@pytest.mark.slow
def test_recovers_at_larger_scale_and_kill_fraction():
    result = churn_recovery.run(seed=0, n_nodes=32, kill_fraction=0.3,
                                settle=600.0, horizon=900.0)
    assert result.recovered
