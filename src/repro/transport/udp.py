"""UdpTransport: real datagrams over asyncio UDP sockets.

Every outbound message is framed by :mod:`repro.wire` (version byte, type
tag, length-prefixed fields) and handed to the OS; every inbound datagram
is decoded back into the protocol object the node layer expects.  A frame
that fails to decode increments the ``wire.decode_error`` counter and is
dropped — malformed traffic never raises into the event loop.

The reported receive ``size`` is ``len(frame) + UDP_IP_OVERHEAD`` so that
byte accounting (``conn.bytes_sent`` etc.) matches what a codec-mode
:class:`~repro.transport.sim.SimTransport` charges for the same message —
the measurable half of the sim-vs-live equivalence argument.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.phys.endpoints import Endpoint
from repro.transport.base import ReceiveHandler, Transport
from repro.transport.runtime import RealtimeKernel
from repro.wire import codec


class _Protocol(asyncio.DatagramProtocol):
    """Thin adapter: asyncio callbacks -> UdpTransport methods."""

    def __init__(self, transport_obj: "UdpTransport"):
        self.owner = transport_obj

    def datagram_received(self, data: bytes, addr) -> None:
        self.owner._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:
        # OS-level socket errors (e.g. ICMP port-unreachable from a peer
        # process that just died — constant background noise in a swarm
        # under churn) are not codec failures: keep them out of
        # wire.decode_error, which the inspector reads as codec health
        self.owner._m_socket_err.inc()


class UdpTransport(Transport):
    """One node's live UDP endpoint (localhost or LAN)."""

    def __init__(self, kernel: RealtimeKernel, name: str = ""):
        self.kernel = kernel
        self.name = name
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._handler: Optional[ReceiveHandler] = None
        self._endpoint: Optional[Endpoint] = None
        metrics = kernel.obs.metrics
        self._m_decode_err = metrics.counter("wire.decode_error", node=name)
        self._m_socket_err = metrics.counter("wire.socket_error", node=name)
        self._m_tx_bytes = metrics.counter("wire.tx_bytes", node=name)
        self._m_rx_bytes = metrics.counter("wire.rx_bytes", node=name)
        self._m_opaque = metrics.counter("wire.opaque_frames", node=name)
        self.sent = 0
        self.received = 0

    @classmethod
    async def create(cls, kernel: RealtimeKernel, ip: str = "127.0.0.1",
                     port: int = 0, name: str = "") -> "UdpTransport":
        """Bind a real UDP socket on ``(ip, port)`` (0 = OS-assigned)."""
        self = cls(kernel, name=name)
        transport, _ = await kernel.loop.create_datagram_endpoint(
            lambda: _Protocol(self), local_addr=(ip, port))
        self._transport = transport
        sockname = transport.get_extra_info("sockname")
        self._endpoint = Endpoint(sockname[0], sockname[1])
        return self

    # ------------------------------------------------------------------
    @property
    def local_endpoint(self) -> Endpoint:
        if self._endpoint is None:
            raise RuntimeError("transport not bound yet (use UdpTransport.create)")
        return self._endpoint

    def open(self, handler: ReceiveHandler) -> Endpoint:
        """Start dispatching inbound frames into ``handler``.  The socket
        itself was bound by :meth:`create`; datagrams arriving before
        ``open`` are dropped."""
        self._handler = handler
        return self.local_endpoint

    def close(self) -> None:
        self._handler = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # ------------------------------------------------------------------
    def send(self, dst: Endpoint, msg: Any, size_hint: int = 0) -> None:
        if self._transport is None or self._transport.is_closing():
            return
        before = codec.opaque_frames
        buf = codec.encode(msg)
        if codec.opaque_frames != before:
            self._m_opaque.inc(codec.opaque_frames - before)
        self.sent += 1
        self._m_tx_bytes.inc(len(buf))
        self._transport.sendto(buf, (dst.ip, dst.port))

    def _on_datagram(self, data: bytes, addr) -> None:
        if self._handler is None:
            return
        try:
            # header-only fast path: routed frames in transit keep their
            # payload undecoded until the node delivers locally
            msg = codec.decode_lazy(data)
        except codec.DecodeError:
            self._m_decode_err.inc()
            return
        self.received += 1
        self._m_rx_bytes.inc(len(data))
        self._handler(msg, Endpoint(addr[0], addr[1]),
                      len(data) + codec.UDP_IP_OVERHEAD)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<UdpTransport {self.name} {self._endpoint}>"
