"""A DHT over the Brunet ring — the paper's §VI future work.

"In future work we plan to investigate approaches for decentralized
resource discovery, scheduling and data management that are suitable for
large-scale systems."  The structured ring already gives consistent
key ownership: the node nearest a key's hash stores it (the same
deliver-at-nearest semantics CTM uses).  This module adds:

* ``put``/``get`` with per-key replication to the owner's ring successors,
* soft-state entries with TTL (re-publish to survive churn),
* a request/reply protocol over routed overlay packets.

:mod:`repro.middleware.discovery` builds decentralized resource discovery
on top.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.brunet.address import BrunetAddress
from repro.sim.process import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.brunet.node import BrunetNode

_rid = itertools.count(1)

MSG_SIZE = 300


def key_address(key: str) -> BrunetAddress:
    """Ring address that owns ``key``."""
    digest = hashlib.sha1(f"dht:{key}".encode()).digest()
    return BrunetAddress(int.from_bytes(digest, "big"))


@dataclass
class DhtPut:
    """Store request, routed to the key's owner (nearest node)."""

    rid: int
    key: str
    value: Any
    ttl: float
    reply_to: BrunetAddress
    replicate: int = 1  # hops of successor replication left
    primary: bool = True  # False on replica copies (no ack sent)


@dataclass
class DhtGet:
    """Lookup request, routed to the key's owner."""

    rid: int
    key: str
    reply_to: BrunetAddress


@dataclass
class DhtReply:
    """Answer to a put (ack) or get (values), routed back to the asker."""

    rid: int
    key: str
    values: list
    found: bool


@dataclass
class _Entry:
    value: Any
    expires_at: float
    publisher: BrunetAddress


class DhtNode:
    """DHT service attached to one Brunet node.

    Every participating node runs one; keys live at the node whose address
    is nearest the key hash (plus ``replication`` ring successors).
    """

    def __init__(self, node: "BrunetNode", replication: int = 1,
                 gc_interval: float = 30.0):
        self.node = node
        self.sim = node.sim
        self.replication = replication
        self.store: dict[str, list[_Entry]] = {}
        self._pending: dict[int, Signal] = {}
        self.puts_served = 0
        self.gets_served = 0
        node.dht = self
        self._gc_interval = gc_interval
        self._gc_timer = self.sim.schedule(gc_interval, self._gc)
        node.payload_handlers[DhtPut] = lambda pkt: self._on_put(pkt.payload)
        node.payload_handlers[DhtGet] = lambda pkt: self._on_get(pkt.payload)
        node.payload_handlers[DhtReply] = \
            lambda pkt: self._on_reply(pkt.payload)

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, ttl: float = 120.0) -> Signal:
        """Store (append) ``value`` under ``key``; returns a latched Signal
        fired with the storing node's ack (or never, if the put is lost —
        soft state is republished by callers)."""
        rid = next(_rid)
        done = Signal(self.sim, f"dht.put.{rid}", latch=True)
        self._pending[rid] = done
        msg = DhtPut(rid, key, value, ttl, self.node.addr,
                     replicate=self.replication)
        self.node.send_routed(key_address(key), msg, MSG_SIZE, exact=False)
        return done

    def get(self, key: str) -> Signal:
        """Look up ``key``; Signal fires with a :class:`DhtReply`."""
        rid = next(_rid)
        done = Signal(self.sim, f"dht.get.{rid}", latch=True)
        self._pending[rid] = done
        msg = DhtGet(rid, key, self.node.addr)
        self.node.send_routed(key_address(key), msg, MSG_SIZE, exact=False)
        return done

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def _on_put(self, msg: DhtPut) -> None:
        self.puts_served += 1
        entries = self.store.setdefault(msg.key, [])
        # replace an entry from the same publisher (republish), else append
        entries[:] = [e for e in entries if e.publisher != msg.reply_to
                      or e.value != msg.value]
        entries.append(_Entry(msg.value, self.sim.now + msg.ttl,
                              msg.reply_to))
        if msg.primary and msg.replicate > 0:
            # replicate to both ring neighbours: whichever of them becomes
            # the key's nearest node after this owner dies already holds it
            import dataclasses
            from repro.brunet.messages import RoutedPacket
            for conn in (self.node.table.right_neighbor(),
                         self.node.table.left_neighbor()):
                if conn is None:
                    continue
                copy = dataclasses.replace(msg, replicate=msg.replicate - 1,
                                           primary=False)
                pkt = RoutedPacket(src=self.node.addr, dest=conn.peer_addr,
                                   payload=copy, size=MSG_SIZE, exact=True,
                                   ttl=self.node.config.ttl)
                self.node.send_over(conn, pkt)
        if msg.primary:
            reply = DhtReply(msg.rid, msg.key, [], True)
            self.node.send_routed(msg.reply_to, reply, MSG_SIZE, exact=True)

    def _on_get(self, msg: DhtGet) -> None:
        self.gets_served += 1
        now = self.sim.now
        entries = [e for e in self.store.get(msg.key, [])
                   if e.expires_at > now]
        reply = DhtReply(msg.rid, msg.key, [e.value for e in entries],
                         bool(entries))
        self.node.send_routed(msg.reply_to, reply, MSG_SIZE, exact=True)

    def _on_reply(self, msg: DhtReply) -> None:
        done = self._pending.pop(msg.rid, None)
        if done is not None:
            done.fire(msg)

    # ------------------------------------------------------------------
    def _gc(self) -> None:
        if not self.node.active:
            return
        now = self.sim.now
        for key in list(self.store):
            live = [e for e in self.store[key] if e.expires_at > now]
            if live:
                self.store[key] = live
            else:
                del self.store[key]
        self._gc_timer = self.sim.schedule(self._gc_interval, self._gc)

    def stop(self) -> None:
        """Cancel the garbage-collection timer."""
        if self._gc_timer is not None:
            self._gc_timer.cancel()
