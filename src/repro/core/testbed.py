"""The paper's testbed (Figure 1 / Table I).

33 compute VMs across six firewalled domains plus 118 PlanetLab router
nodes.  Virtual IPs are ``172.16.1.2`` … ``172.16.1.34``; node034 is the
home-network machine behind multiple NAT levels (VMware + wireless router +
ISP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.brunet.config import BrunetConfig
from repro.core.config import (
    CalibrationConfig,
    PLANETLAB_HOSTS,
    PLANETLAB_ROUTERS,
    SITE_SPECS,
    TABLE1_HOSTS,
)
from repro.core.wow import Deployment
from repro.phys.nat import Nat, NatSpec
from repro.vm.image import VmImage

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.vm.machine import WowVm


@dataclass
class Testbed:
    """Handle to a constructed paper testbed."""

    deployment: Deployment
    vms: dict[str, "WowVm"] = field(default_factory=dict)
    warmup_until: float = 0.0

    @property
    def sim(self):
        return self.deployment.sim

    def vm(self, number: int) -> "WowVm":
        """``vm(2)`` → node002 (virtual IP 172.16.1.2)."""
        return self.vms[f"node{number:03d}"]

    @property
    def head(self) -> "WowVm":
        """Conventional head node (PBS server / NFS export), node002."""
        return self.vm(2)

    def workers(self) -> list["WowVm"]:
        return [vm for name, vm in sorted(self.vms.items())
                if vm is not self.head]

    def run_warmup(self, settle: float = 120.0,
                   max_extra: float = 1200.0) -> None:
        """Advance the simulation until all joins have settled *and* the
        ring is consistent.

        UFL-UFL near links need the full hairpin/back-off ladder (~155 s per
        dead URI — the Fig. 4 behaviour), so a mature overlay like the
        paper's month-old deployment takes several hundred simulated seconds
        to converge.
        """
        self.sim.run(until=self.warmup_until + settle)
        deadline = self.sim.now + max_extra
        while not self.deployment.ring_consistent() \
                and self.sim.now < deadline:
            self.sim.run(until=self.sim.now + 60.0)


def build_paper_testbed(sim: "Simulator",
                        calib: Optional[CalibrationConfig] = None,
                        brunet_config: Optional[BrunetConfig] = None,
                        n_planetlab_routers: int = PLANETLAB_ROUTERS,
                        n_planetlab_hosts: int = PLANETLAB_HOSTS,
                        n_compute: int = 33,
                        vm_stagger: float = 4.0,
                        start_vms: bool = True) -> Testbed:
    """Construct (and begin starting) the Figure 1 testbed.

    ``n_planetlab_routers``/``n_compute`` can be scaled down for fast tests
    and benchmarks; defaults match the paper.
    """
    deployment = Deployment(sim, calib=calib, brunet_config=brunet_config)
    for spec in SITE_SPECS.values():
        deployment.add_site(spec)
    deployment.add_planetlab(n_hosts=n_planetlab_hosts,
                             n_routers=n_planetlab_routers)
    bootstrap_done = n_planetlab_routers * 0.6 + 30.0

    image = VmImage("wow-base")
    testbed = Testbed(deployment)
    hosts = TABLE1_HOSTS[:n_compute]
    for index, host_spec in enumerate(hosts):
        number = index + 2  # node002 is the first compute node
        name = f"node{number:03d}"
        virtual_ip = f"172.16.1.{number}"
        site = deployment.sites[host_spec.site]
        extra_nats = None
        if host_spec.site == "gru":
            # home network: guest additionally behind a VMware NAT inside
            # the broadband router's subnet (§V-A, Fig. 1).  The guest IP
            # is re-homed into the VMware subnet so the chain nests.
            vmware = Nat("nat.gru.vmware", "10.6.0.1", "10.6.200.",
                         NatSpec.cone(hairpin=True),
                         clock=lambda: sim.now)
            deployment.internet.register_nat(vmware)
            extra_nats = [vmware]
        vm = deployment.create_vm(name, virtual_ip, site,
                                  cpu_speed=host_spec.cpu_speed, image=image,
                                  extra_nats=extra_nats)
        if extra_nats is not None:
            # move the guest's address inside the innermost NAT's subnet
            deployment.internet.unregister_host(vm.host)
            vm.host.ip = "10.6.200.2"
            deployment.internet.register_host(vm.host)
            vm.node.uris.local = vm.node.uris.local._replace(
                endpoint=vm.node.uris.local.endpoint._replace(ip=vm.host.ip))
        testbed.vms[name] = vm
        if start_vms:
            sim.schedule(bootstrap_done + index * vm_stagger, vm.start)
    testbed.warmup_until = bootstrap_done + len(hosts) * vm_stagger + 30.0
    return testbed
