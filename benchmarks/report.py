#!/usr/bin/env python
"""Substrate performance report: micro ops/sec + experiment wall-clocks.

Writes ``BENCH_substrate.json`` so every future PR has a perf trajectory
to regress against, and (with ``--check``) compares a fresh run to the
committed numbers.

Usage::

    python benchmarks/report.py                  # full run, write JSON
    python benchmarks/report.py --smoke --check  # quick CI regression gate

Because absolute throughput varies wildly across machines, the regression
check is *normalized*: every metric is divided by a pure-Python
calibration loop measured in the same process, and only the normalized
ratios are compared (default tolerance: 25% regression).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_JSON = REPO_ROOT / "BENCH_substrate.json"

#: metrics measured in ops/sec (higher is better); wall-clocks (seconds,
#: lower is better) are everything else
OPS_SUFFIX = "_ops_per_s"


def _calibration_ops_per_s() -> float:
    """A fixed pure-Python workload used to normalize across machines.

    Best-of-3: every metric is divided by this number, so a scheduler
    stall inside a single-shot calibration window would skew *all*
    normalized ratios at once — the one place noise multiplies instead
    of adding.
    """
    def once() -> float:
        t0 = time.perf_counter()
        acc = 0
        for i in range(2_000_000):
            acc += i & 1023
        dt = time.perf_counter() - t0
        return 2_000_000 / dt

    return max(once() for _ in range(3))


def bench_event_throughput() -> float:
    """Plain schedule+fire throughput (test_event_loop_throughput shape)."""
    from repro.sim import Simulator
    n = 20_000
    t0 = time.perf_counter()
    sim = Simulator(seed=0, trace=False)
    for i in range(n):
        sim.schedule(i * 0.001, _noop)
    sim.run()
    return n * 2 / (time.perf_counter() - t0)  # schedule + fire


def bench_event_churn() -> float:
    """Timer churn: far-future schedule immediately cancelled, the shape of
    keep-alive timers and flow completion estimates under re-pathing."""
    from repro.sim import Simulator
    n = 60_000
    sim = Simulator(seed=0, trace=False)
    t0 = time.perf_counter()
    for i in range(n):
        ev = sim.schedule(500.0 + (i % 97), _noop)
        ev.cancel()
        if i % 64 == 0:
            sim.pending()
    sim.schedule(0.001, _noop)
    sim.run(until=0.5)
    return n / (time.perf_counter() - t0)


def bench_next_hop() -> float:
    """Greedy next-hop decisions against a static 24-link table."""
    import numpy as np

    from repro.brunet.address import random_address
    from repro.brunet.connection import Connection, ConnectionType
    from repro.brunet.routing import next_hop
    from repro.brunet.table import ConnectionTable
    from repro.phys.endpoints import Endpoint

    rng = np.random.default_rng(0)
    me = random_address(rng)
    table = ConnectionTable(me)
    for i in range(24):
        table.add(Connection(random_address(rng), Endpoint("1.1.1.1", i),
                             ConnectionType.STRUCTURED_FAR, 0.0))
    dests = [random_address(rng) for _ in range(64)]
    n = 50_000
    t0 = time.perf_counter()
    for i in range(n):
        next_hop(table, me, dests[i & 63])
    return n / (time.perf_counter() - t0)


def bench_ring_lookup() -> float:
    """RingIndex successor/nearest/neighbors queries over a 10k-entry
    ring — the array-state hot path behind census surveys, warm-start
    wiring and the sector rollup (PR-9's bisect refactor target)."""
    import numpy as np

    from repro.brunet.address import random_address
    from repro.brunet.ring import RingIndex

    rng = np.random.default_rng(0)
    idx = RingIndex()
    for i in range(10_000):
        idx.add(int(random_address(rng)), i)
    probes = [int(random_address(rng)) for _ in range(256)]
    n = 30_000
    t0 = time.perf_counter()
    for i in range(n):
        p = probes[i & 255]
        idx.successor(p)
        idx.nearest(p)
        idx.neighbors(p, per_side=2)
    return n * 3 / (time.perf_counter() - t0)  # 3 queries per iteration


def bench_flow_churn() -> float:
    """Flow add/remove churn across disjoint resource components — the
    incremental-fairness target (fig8's job arrival/completion pattern)."""
    from repro.phys.flows import Flow, FlowManager, Resource
    from repro.sim import Simulator

    sim = Simulator(seed=0, trace=False)
    fm = FlowManager(sim)
    components = [[Resource(f"r{c}.{i}", 1e6) for i in range(3)]
                  for c in range(40)]
    # a standing population of long-lived flows
    for c, res in enumerate(components):
        for j in range(4):
            Flow(fm, f"base{c}.{j}", 1e15, res)
    n = 3_000

    def churn(i: int) -> None:
        f = Flow(fm, f"churn{i}", 1e12, components[i % 40])
        sim.schedule(0.5, f.cancel)
        if i + 1 < n:
            sim.schedule(0.01, churn, i + 1)

    t0 = time.perf_counter()
    sim.schedule(0.0, churn, 0)
    sim.run(until=n * 0.01 + 2.0)
    return n / (time.perf_counter() - t0)


def _wire_sample_messages():
    """A representative mix of frames (the codec-mode hot path)."""
    from repro.brunet.address import BrunetAddress
    from repro.brunet.messages import (
        CtmRequest,
        IpEncap,
        LinkRequest,
        PingRequest,
        RoutedPacket,
    )
    from repro.brunet.uri import Uri
    from repro.ipop.ippacket import IcmpEcho, VirtualIpPacket

    addr = BrunetAddress(123456789)
    uris = [Uri.udp("10.0.0.2", 14001), Uri.udp("150.1.0.3", 40001)]
    vip = VirtualIpPacket("10.128.0.2", "10.128.0.3", "icmp", 0,
                          IcmpEcho(7, False, 12.5), 84)
    return [
        PingRequest(42, addr),
        LinkRequest(43, addr, uris, "structured.near"),
        RoutedPacket(src=addr, dest=BrunetAddress(987654321),
                     payload=CtmRequest(44, addr, uris, "structured.near"),
                     size=320, exact=False, via=[addr]),
        RoutedPacket(src=addr, dest=BrunetAddress(987654321),
                     payload=IpEncap(vip, 84), size=84, exact=True),
    ]


def bench_wire_encode() -> float:
    """Wire-codec serialization throughput (messages/s)."""
    from repro.wire import encode
    msgs = _wire_sample_messages()
    n = 20_000
    t0 = time.perf_counter()
    for i in range(n):
        encode(msgs[i & 3])
    return n / (time.perf_counter() - t0)


def bench_wire_decode() -> float:
    """Wire-codec parse throughput (messages/s)."""
    from repro.wire import decode, encode
    bufs = [encode(m) for m in _wire_sample_messages()]
    n = 20_000
    t0 = time.perf_counter()
    for i in range(n):
        decode(bufs[i & 3])
    return n / (time.perf_counter() - t0)


def bench_wire_peek() -> float:
    """Header-only peek throughput — the transit-forwarding fast path
    (a router touches src/dest/ttl, never the payload)."""
    from repro.wire import encode, peek_header
    bufs = [encode(m) for m in _wire_sample_messages()]
    n = 20_000
    t0 = time.perf_counter()
    for i in range(n):
        peek_header(bufs[i & 3])
    return n / (time.perf_counter() - t0)


def _obs_workload(profile: bool) -> float:
    """Kernel events/sec through a small churn-shaped overlay (join +
    steady-state protocol traffic), with the self-profiler attached or
    not."""
    from repro.brunet.config import BrunetConfig
    from repro.experiments.churn_recovery import _build_overlay
    from repro.sim import Simulator

    sim = Simulator(seed=0, trace=False)
    if profile:
        sim.obs.enable_profiler()
    _build_overlay(sim, 10, BrunetConfig())
    ev0 = sim.events_processed
    t0 = time.perf_counter()
    sim.run(until=sim.now + 3000.0)
    dt = time.perf_counter() - t0
    return (sim.events_processed - ev0) / dt


def bench_obs_overhead() -> tuple[float, float]:
    """(off, on) churn-mix throughput.  Off/on runs are *interleaved* and
    best-of-4 each, so machine noise (shared CI runners) hits both sides
    alike and the overhead ratio — which is what the gate checks — stays
    meaningful."""
    off = on = 0.0
    for _ in range(4):
        off = max(off, _obs_workload(profile=False))
        on = max(on, _obs_workload(profile=True))
    return off, on


def bench_scaling10k(n_nodes: int) -> float:
    """Warm-start formation + settle + survey on the sharded kernel."""
    from repro.experiments import scaling_10k
    t0 = time.perf_counter()
    scaling_10k.measure_point(n_nodes, seed=0, settle=30.0,
                              sample_pairs=200, audit=False)
    return time.perf_counter() - t0


def bench_scaling(n_nodes: int) -> float:
    from repro.experiments import scaling
    t0 = time.perf_counter()
    scaling.measure(n_nodes, seed=0)
    return time.perf_counter() - t0


def bench_joincdf(trials: int) -> float:
    from repro.experiments import join_latency_cdf
    t0 = time.perf_counter()
    join_latency_cdf.run(seed=0, scale=0.5, trials=trials)
    return time.perf_counter() - t0


def bench_fig8(n_jobs: int) -> float:
    from repro.experiments import fig8_meme_histogram
    t0 = time.perf_counter()
    fig8_meme_histogram.run(seed=0, scale=0.5, n_jobs=n_jobs)
    return time.perf_counter() - t0


def _noop() -> None:
    pass


def _best_of(fn, n: int = 3) -> float:
    """Best of ``n`` runs.  Each micro bench finishes in well under a
    second, so single runs are at the mercy of shared-host scheduling
    noise (observed swings: 2×); the max over a few runs approximates
    the machine's noise-free speed on both sides of every comparison."""
    return max(fn() for _ in range(n))


def run_benches(smoke: bool) -> dict:
    micro = {
        "event_throughput_ops_per_s": _best_of(bench_event_throughput),
        "event_churn_ops_per_s": _best_of(bench_event_churn),
        "next_hop_ops_per_s": _best_of(bench_next_hop),
        "ring_lookup_ops_per_s": _best_of(bench_ring_lookup),
        "flow_churn_ops_per_s": _best_of(bench_flow_churn),
        "wire_encode_ops_per_s": _best_of(bench_wire_encode),
        "wire_decode_ops_per_s": _best_of(bench_wire_decode),
        "wire_peek_ops_per_s": _best_of(bench_wire_peek),
    }
    obs_off, obs_on = bench_obs_overhead()
    micro["obs_overhead_off_ops_per_s"] = obs_off
    micro["obs_overhead_on_ops_per_s"] = obs_on
    experiments = {"scaling_64_s": bench_scaling(64)}
    if not smoke:
        experiments["scaling_128_s"] = bench_scaling(128)
        experiments["scaling10k_1000_s"] = bench_scaling10k(1000)
        experiments["joincdf_3_s"] = bench_joincdf(3)
        experiments["fig8_200_s"] = bench_fig8(200)
    return {
        "meta": {
            "smoke": smoke,
            "python": platform.python_version(),
            "calibration_ops_per_s": _calibration_ops_per_s(),
        },
        "micro": micro,
        "experiments": experiments,
    }


def _normalized(report: dict) -> dict[str, float]:
    """Metrics divided by the calibration speed, so two machines (or two
    commits on one machine) compare by shape rather than absolute speed.
    Normalized values are 'bigger is better' throughout (wall-clocks are
    inverted)."""
    cal = report["meta"]["calibration_ops_per_s"]
    out: dict[str, float] = {}
    for name, value in report["micro"].items():
        out[name] = value / cal
    for name, value in report["experiments"].items():
        out[name] = (1.0 / value) / cal if value > 0 else 0.0
    return out


#: pinned minimum normalized ratios (metric / calibration loop).  Unlike
#: the relative tolerance check — which compares against the *last
#: committed* numbers and therefore lets performance erode a few percent
#: per PR — these floors are absolute: the hot-path speedups this
#: substrate was tuned for (10× wire encode/decode, 10× flow churn) may
#: never regress below them, on any machine, regardless of what the
#: committed JSON says.
RATIO_FLOORS = {
    "wire_encode_ops_per_s": 0.130,   # ≥10× the pre-codec-v2 275k baseline
    "wire_decode_ops_per_s": 0.055,   # ≥10× the pre-codec-v2 90k baseline
    "wire_peek_ops_per_s": 0.030,     # header-only transit fast path
    "flow_churn_ops_per_s": 6.0e-4,   # ≥10× the component-solver 1.3k
    "ring_lookup_ops_per_s": 0.015,   # bisect ring index (~0.033 typical);
                                      # a linear-scan regression lands ~10×
                                      # below this on a 10k ring
}

#: the kernel self-profiler may cost at most this fraction of churn-mix
#: event throughput (profiling on vs off, measured in the *same* fresh
#: report, so the gate is machine-independent)
OBS_OVERHEAD_MIN = 0.90


def check(fresh: dict, committed: dict, tolerance: float) -> list[str]:
    """Regressions (normalized slowdown beyond ``tolerance``) in metrics
    present in both reports, plus violations of the pinned floors."""
    fresh_n = _normalized(fresh)
    committed_n = _normalized(committed)
    failures = []
    for name, base in committed_n.items():
        now = fresh_n.get(name)
        if now is None or base <= 0:
            continue
        if now < base * (1.0 - tolerance):
            failures.append(
                f"{name}: normalized {now:.4g} vs committed {base:.4g} "
                f"({(1 - now / base) * 100:.0f}% regression, "
                f"tolerance {tolerance * 100:.0f}%)")
    for name, floor in RATIO_FLOORS.items():
        now = fresh_n.get(name)
        if now is not None and now < floor:
            failures.append(
                f"{name}: normalized {now:.4g} below pinned floor {floor:.4g}")
    off = fresh["micro"].get("obs_overhead_off_ops_per_s", 0.0)
    on = fresh["micro"].get("obs_overhead_on_ops_per_s", 0.0)
    if off > 0 and on < off * OBS_OVERHEAD_MIN:
        failures.append(
            f"obs_overhead: profiling costs "
            f"{(1 - on / off) * 100:.0f}% of churn-mix throughput "
            f"({on:,.0f} vs {off:,.0f} ev/s; allowed "
            f"{(1 - OBS_OVERHEAD_MIN) * 100:.0f}%)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="micro benches + one small experiment only")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed JSON and fail "
                             "on regression instead of overwriting it")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help=f"report path (default {DEFAULT_JSON.name})")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args(argv)

    report = run_benches(smoke=args.smoke)
    print(f"{'metric':34s} {'value':>14s}")
    for section in ("micro", "experiments"):
        for name, value in report[section].items():
            unit = "ops/s" if name.endswith(OPS_SUFFIX) else "s"
            print(f"{name:34s} {value:14,.1f} {unit}")

    if args.check:
        if not args.json.exists():
            print(f"no committed report at {args.json}; nothing to check")
            return 1
        committed = json.loads(args.json.read_text())
        failures = check(report, committed, args.tolerance)
        if failures:
            print("\nPERF REGRESSION:")
            for f in failures:
                print(f"  {f}")
            return 1
        print("\nno regression beyond tolerance")
        return 0

    args.json.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
