"""Decentralized resource discovery and scheduling (paper §VI future work).

Every WOW node periodically **advertises** its resources (CPU speed, free
slots, site) into the ring DHT under coarse *capability keys* ("cpu-fast",
"slots-free", site names).  A decentralized scheduler on any node can then
**discover** candidate workers and claim slots without a central server —
the direction the paper sketches as the fix for client/server middleware
("may not scale to the same large numbers", §VI).

The advertisement is soft state: entries expire unless re-published, so a
crashed node's resources disappear from the index by themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.brunet.dht import DhtNode, DhtReply
from repro.sim.process import Signal, WaitSignal

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import WowVm

#: CPU-speed class boundaries for capability keys
FAST_CPU = 1.2
SLOW_CPU = 0.7


@dataclass
class ResourceAd:
    """One node's advertisement."""

    vm_name: str
    virtual_ip: str
    cpu_speed: float
    free_slots: int
    site: str

    def capability_keys(self) -> list[str]:
        """The DHT keys this advertisement is indexed under."""
        keys = [f"site:{self.site}", "workers:any"]
        if self.cpu_speed >= FAST_CPU:
            keys.append("cpu:fast")
        elif self.cpu_speed <= SLOW_CPU:
            keys.append("cpu:slow")
        else:
            keys.append("cpu:standard")
        if self.free_slots > 0:
            keys.append("slots:free")
        return keys


class ResourcePublisher:
    """Periodically advertises one VM's resources into the DHT."""

    def __init__(self, vm: "WowVm", free_slots: int = 1,
                 period: float = 45.0, ttl: float = 120.0):
        self.vm = vm
        self.sim = vm.sim
        self.free_slots = free_slots
        self.period = period
        self.ttl = ttl
        self.dht = getattr(vm.node, "dht", None) or DhtNode(vm.node)
        self.publishes = 0
        self._stopped = False
        self._tick()

    def ad(self) -> ResourceAd:
        """The advertisement reflecting current state."""
        return ResourceAd(self.vm.name, self.vm.virtual_ip,
                          self.vm.cpu_speed, self.free_slots,
                          self.vm.host.site.name)

    def _tick(self) -> None:
        if self._stopped or not self.vm.node.active:
            return
        ad = self.ad()
        for key in ad.capability_keys():
            self.dht.put(key, (ad.vm_name, ad.virtual_ip, ad.cpu_speed),
                         ttl=self.ttl)
        self.publishes += 1
        self.sim.schedule(self.period, self._tick)

    def set_free_slots(self, n: int) -> None:
        """Update the advertised free-slot count (next publish)."""
        self.free_slots = n

    def stop(self) -> None:
        """Stop republishing; existing entries age out via TTL."""
        self._stopped = True


class ResourceDiscovery:
    """Query side: find workers by capability, no central index."""

    def __init__(self, vm: "WowVm"):
        self.vm = vm
        self.sim = vm.sim
        self.dht = getattr(vm.node, "dht", None) or DhtNode(vm.node)

    def find(self, key: str, timeout: float = 5.0) -> Signal:
        """Latched Signal fired with a list of (name, ip, speed) tuples
        (empty on miss/timeout)."""
        result = Signal(self.sim, f"discover.{key}", latch=True)
        done = self.dht.get(key)

        def on_reply(reply) -> None:
            if isinstance(reply, DhtReply):
                result.fire(list(reply.values))

        done.wait_callback(on_reply)
        self.sim.schedule(timeout, lambda: result.fire([])
                          if not result.fired else None)
        return result

    def find_and_rank(self, key: str, timeout: float = 5.0):
        """Generator: discover workers under ``key``, fastest CPU first."""
        found = yield WaitSignal(self.find(key, timeout))
        return sorted(found or [], key=lambda t: -t[2])
