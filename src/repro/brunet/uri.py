"""Transport URIs.

Connections "may operate over any transport.  The information about
transport protocol and the physical endpoint is contained inside a Uniform
Resource Indicator (URI), such as ``brunet.tcp:192.0.1.1:1024``" (§IV-A).
A NATed node accumulates several URIs over time: its locally-bound private
endpoint plus every NAT-assigned endpoint peers have observed for it.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.phys.endpoints import Endpoint


class Uri(NamedTuple):
    """A (transport, endpoint) pair a node can be contacted at."""

    transport: str  # "udp" or "tcp"
    endpoint: Endpoint

    def __str__(self) -> str:
        return f"brunet.{self.transport}:{self.endpoint.ip}:{self.endpoint.port}"

    @staticmethod
    def parse(text: str) -> "Uri":
        """Parse ``brunet.udp:1.2.3.4:1024`` back into a :class:`Uri`."""
        scheme, ip, port = text.split(":")
        if not scheme.startswith("brunet."):
            raise ValueError(f"not a brunet URI: {text!r}")
        return Uri(scheme[len("brunet."):], Endpoint(ip, int(port)))

    @staticmethod
    def udp(ip: str, port: int) -> "Uri":
        """Shorthand for a UDP-transport URI."""
        return Uri("udp", Endpoint(ip, port))


class UriSet:
    """Ordered collection of a node's own URIs.

    Ordering matters: "nodes first attempt the URIs corresponding to the NAT
    assigned public IP/port ... before ... the private IP/port" (§V-B), so
    learned (NAT-assigned) URIs precede the locally bound one, most recently
    confirmed first.
    """

    def __init__(self, local: Uri):
        self.local = local
        self._learned: list[Uri] = []

    def learn(self, uri: Uri) -> bool:
        """Record a peer-observed URI.  Returns True when it is new
        information (either unseen or freshly re-confirmed to the front)."""
        if uri == self.local:
            return False
        if self._learned and self._learned[0] == uri:
            return False
        if uri in self._learned:
            self._learned.remove(uri)
        self._learned.insert(0, uri)
        del self._learned[4:]  # keep the freshest few
        return True

    def advertised(self) -> list[Uri]:
        """URI list to put in CTM/link messages: NAT-assigned first."""
        return [*self._learned, self.local]

    def __contains__(self, uri: Uri) -> bool:
        return uri == self.local or uri in self._learned
