"""RPC substrate: calls, retries, idempotence, serialization."""

import pytest

from repro.middleware.rpc import RpcClient, RpcFailure, RpcServer
from repro.sim.process import Process, Timeout, WaitSignal
from tests.conftest import make_mini_testbed


@pytest.fixture(scope="module")
def bed():
    return make_mini_testbed(seed=21)


def test_basic_call(bed):
    sim, tb = bed
    a, b = tb.vm(3), tb.vm(4)
    server = RpcServer(b, 6000, lambda m, body, src: {"echo": body})
    client = RpcClient(a)
    done = client.call(b.virtual_ip, 6000, "echo", 42)
    sim.run(until=sim.now + 10)
    assert done.fired and done.value == {"echo": 42}
    server.close()
    client.close()


def test_call_to_dead_vm_fails_after_retries(bed):
    sim, tb = bed
    a = tb.vm(5)
    client = RpcClient(a)
    done = client.call("172.16.77.1", 6000, "void", retries=3, timeout=1.0)
    sim.run(until=sim.now + 30)
    assert isinstance(done.value, RpcFailure)
    assert client.timeouts == 1
    client.close()


def test_handler_can_set_response_size(bed):
    sim, tb = bed
    a, b = tb.vm(6), tb.vm(7)
    server = RpcServer(b, 6001, lambda m, body, src: ({"big": True}, 4096))
    client = RpcClient(a)
    done = client.call(b.virtual_ip, 6001, "q")
    sim.run(until=sim.now + 10)
    assert done.value == {"big": True}
    server.close()
    client.close()


def test_duplicate_requests_execute_once(bed):
    """Retransmits after response loss must not double-execute."""
    sim, tb = bed
    a, b = tb.vm(8), tb.vm(9)
    calls = []
    server = RpcServer(b, 6002, lambda m, body, src: calls.append(body))
    client = RpcClient(a)
    # short timeout forces at least one retransmit against ~40ms+ RTT
    done = client.call(b.virtual_ip, 6002, "inc", 1, timeout=0.010)
    sim.run(until=sim.now + 10)
    assert done.fired
    assert len(calls) == 1
    server.close()
    client.close()


def test_serialized_server_processes_in_order(bed):
    sim, tb = bed
    a, b = tb.vm(10), tb.vm(11)
    seen = []
    server = RpcServer(b, 6003, lambda m, body, src: seen.append(body),
                       cpu_per_request=0.5, serialize=True)
    client = RpcClient(a)
    sigs = [client.call(b.virtual_ip, 6003, "job", i) for i in range(4)]
    t0 = sim.now
    sim.run(until=sim.now + 60)
    # all served exactly once (arrival order may differ from send order)
    assert sorted(seen) == [0, 1, 2, 3]
    assert all(s.fired for s in sigs)
    # serialized: 4 × 0.5 s of CPU means the batch took ≥ 2 s
    assert sim.now - t0 >= 2.0
    server.close()
    client.close()


def test_client_reply_ports_do_not_collide(bed):
    sim, tb = bed
    a = tb.vm(12)
    c1, c2 = RpcClient(a), RpcClient(a)
    assert c1.reply_port != c2.reply_port
    c1.close()
    c2.close()


def test_call_and_wait_in_process(bed):
    sim, tb = bed
    a, b = tb.vm(13), tb.vm(14)
    server = RpcServer(b, 6004, lambda m, body, src: body * 2)
    client = RpcClient(a)
    out = {}

    def proc():
        resp = yield from client.call_and_wait(b.virtual_ip, 6004, "x", 21)
        out["resp"] = resp

    Process(sim, proc())
    sim.run(until=sim.now + 10)
    assert out["resp"] == 42
    server.close()
    client.close()


def test_late_response_after_failure_is_ignored(bed):
    """A response that arrives after the client already gave up must not
    crash or resurrect the call."""
    sim, tb = bed
    a, b = tb.vm(20), tb.vm(21)
    # server that exists but is slower than the client's patience
    server = RpcServer(b, 6005, lambda m, body, src: body,
                       cpu_per_request=5.0, serialize=True)
    client = RpcClient(a)
    done = client.call(b.virtual_ip, 6005, "slow", 1,
                       timeout=0.5, retries=2)
    sim.run(until=sim.now + 60)
    assert isinstance(done.value, RpcFailure)
    # the slow server's (cached) responses eventually arrive: no effect
    sim.run(until=sim.now + 60)
    assert isinstance(done.value, RpcFailure)
    server.close()
    client.close()
