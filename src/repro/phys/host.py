"""Physical hosts: network stack endpoint + CPU model.

A :class:`Host` owns one primary IP, sits in a :class:`~repro.phys.topology.Site`,
optionally behind a chain of NATs (innermost first — e.g. ``[vmware_nat,
campus_nat]``), and exposes a UDP socket API to the layers above.

The CPU model is intentionally coarse: a relative ``cpu_speed`` factor
(1.0 = the testbed's reference 2.4 GHz Xeon) plus a time-varying background
``load`` (runnable-process count).  Compute time for a job of *W* reference
seconds is ``W / cpu_speed * (1 + load)``.  Heavily loaded PlanetLab hosts
also add per-packet processing delay (``proc_delay_mean``), which is what
made the paper's multi-hop routes slow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.phys.endpoints import Endpoint
from repro.phys.packet import Datagram

if TYPE_CHECKING:  # pragma: no cover
    from repro.phys.nat import Nat
    from repro.phys.network import Internet
    from repro.phys.topology import Site


class UdpSocket:
    """A bound UDP port on a host.

    ``handler(payload, src_endpoint, size)`` is invoked on delivery.  A
    transport that needs the full :class:`Datagram` (e.g. to recover the
    post-transit trace context around an encoded payload) may set
    :attr:`dgram_handler`, which then takes precedence.
    """

    def __init__(self, host: "Host", port: int,
                 handler: Callable[[Any, Endpoint, int], None]):
        self.host = host
        self.port = port
        self.handler = handler
        #: optional richer delivery hook: ``dgram_handler(dgram)``
        self.dgram_handler: Optional[Callable[[Datagram], None]] = None
        self.closed = False
        self.sent = 0
        self.received = 0

    @property
    def endpoint(self) -> Endpoint:
        """The socket's (ip, port)."""
        return Endpoint(self.host.ip, self.port)

    def send(self, dst: Endpoint, payload: Any, size: int = 0,
             header: Optional[int] = None, trace: Any = None) -> None:
        """Fire-and-forget datagram send.

        ``header`` overrides the fixed framing charge (see
        :class:`~repro.phys.packet.Datagram`); ``trace`` attaches causal
        context explicitly when ``payload`` is encoded bytes and the
        context can no longer be lifted off it by attribute.
        """
        if self.closed:
            raise RuntimeError(f"socket {self.endpoint} is closed")
        self.sent += 1
        dgram = Datagram(self.endpoint, dst, payload, size=size,
                         header=header)
        if trace is not None:
            dgram.trace = trace
        self.host.internet.send(self.host, dgram)

    def deliver(self, dgram: Datagram) -> None:
        """Hand an arriving datagram to the bound handler."""
        if self.closed:
            return
        self.received += 1
        if self.dgram_handler is not None:
            self.dgram_handler(dgram)
        else:
            self.handler(dgram.payload, dgram.src, dgram.size)

    def close(self) -> None:
        """Unbind the port; further sends raise, deliveries are dropped."""
        self.closed = True
        self.host.sockets.pop(self.port, None)


class Host:
    """One machine (physical host, PlanetLab node, or VM guest's NIC view)."""

    def __init__(self, name: str, ip: str, site: "Site",
                 internet: "Internet",
                 nat_chain: Optional[list["Nat"]] = None,
                 cpu_speed: float = 1.0,
                 proc_delay_mean: float = 0.0,
                 extra_loss: float = 0.0):
        self.name = name
        self.ip = ip
        self.site = site
        self.internet = internet
        self.nat_chain: list["Nat"] = list(nat_chain or [])
        self.cpu_speed = cpu_speed
        self.proc_delay_mean = proc_delay_mean
        self.extra_loss = extra_loss
        self.load = 0.0  # background runnable processes
        self.sockets: dict[int, UdpSocket] = {}
        self._ephemeral = 40000
        self.up = True
        #: when set, only these UDP ports may be bound or receive traffic —
        #: models a host-only guest whose sole physical presence is the
        #: IPOP process (paper §V-E future work)
        self.allowed_ports: Optional[set[int]] = None
        internet.register_host(self)

    # -- sockets ---------------------------------------------------------
    def bind_udp(self, port: int,
                 handler: Callable[[Any, Endpoint, int], None]) -> UdpSocket:
        """Bind ``handler`` on a UDP port; raises if taken or isolated."""
        if port in self.sockets:
            raise ValueError(f"{self.name}: UDP port {port} already bound")
        if self.allowed_ports is not None and port not in self.allowed_ports:
            raise PermissionError(
                f"{self.name}: host-only isolation forbids binding {port}")
        sock = UdpSocket(self, port, handler)
        self.sockets[port] = sock
        return sock

    def ephemeral_port(self) -> int:
        """A fresh high port (40000+), never reused on this host."""
        port = self._ephemeral
        self._ephemeral += 1
        return port

    def deliver(self, dgram: Datagram) -> None:
        """Called by the internet when a datagram reaches this host."""
        if not self.up:
            return
        if self.allowed_ports is not None \
                and dgram.dst.port not in self.allowed_ports:
            return
        sock = self.sockets.get(dgram.dst.port)
        if sock is not None:
            sock.deliver(dgram)

    # -- CPU ---------------------------------------------------------------
    def compute_time(self, ref_seconds: float) -> float:
        """Wall time to execute ``ref_seconds`` of reference-CPU work now."""
        return ref_seconds / self.cpu_speed * (1.0 + max(0.0, self.load))

    def processing_delay(self, rng: np.random.Generator) -> float:
        """Per-packet user-level processing delay at this host."""
        if self.proc_delay_mean <= 0.0:
            return 0.0
        scale = self.proc_delay_mean * (1.0 + max(0.0, self.load))
        return float(rng.exponential(scale))

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self) -> None:
        """Stop receiving; sockets keep their state for a later restart."""
        self.up = False

    def boot(self) -> None:
        """Bring the host back up after :meth:`shutdown`."""
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} {self.ip}@{self.site.name}>"
