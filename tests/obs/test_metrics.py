"""MetricsRegistry: instruments, labels, histograms, export."""

import math

from repro.obs.metrics import (
    NULL,
    Histogram,
    MetricsRegistry,
    merge_rows,
)


def test_counter_child_identity_and_inc():
    m = MetricsRegistry()
    c1 = m.counter("brunet.route.sent", node="a")
    c2 = m.counter("brunet.route.sent", node="a")
    c3 = m.counter("brunet.route.sent", node="b")
    assert c1 is c2
    assert c1 is not c3
    c1.inc()
    c1.inc(4)
    assert c1.value == 5
    assert c3.value == 0


def test_label_order_is_irrelevant():
    m = MetricsRegistry()
    a = m.counter("x", node="n", reason="r")
    b = m.counter("x", reason="r", node="n")
    assert a is b


def test_disabled_registry_hands_out_shared_noop():
    m = MetricsRegistry(enabled=False)
    c = m.counter("x", node="a")
    assert c is NULL
    c.inc()
    c.observe(3)
    c.set(1)
    c.dec()
    assert m.snapshot() == []
    m.gauge_fn("y", lambda: 1.0)
    m.add_collector(lambda reg: reg.gauge("z").set(9))
    assert m.snapshot() == []


def test_gauge_set_inc_dec():
    m = MetricsRegistry()
    g = m.gauge("sim.now")
    g.set(10)
    g.inc(2)
    g.dec()
    assert g.value == 11


def test_gauge_fn_sampled_at_snapshot():
    m = MetricsRegistry()
    state = {"v": 1}
    m.gauge_fn("nat.mappings_live", lambda: state["v"], nat="n1")
    state["v"] = 7
    rows = m.snapshot()
    assert rows == [{"name": "nat.mappings_live", "type": "gauge",
                     "labels": {"nat": "n1"}, "value": 7}]


def test_collector_runs_before_export():
    m = MetricsRegistry()
    calls = []

    def fill(reg):
        calls.append(1)
        reg.gauge("phys.delivered").set(42)

    m.add_collector(fill)
    rows = m.snapshot()
    assert calls == [1]
    assert merge_rows(rows, "phys.delivered") == 42


def test_histogram_log2_buckets_and_quantile():
    h = Histogram("h", ())
    for v in [0.4, 0.5, 3.0, 3.5, 1000.0]:
        h.observe(v)
    h.observe(0.0)
    h.observe(-2.0)
    assert h.count == 7
    assert h.total == sum([0.4, 0.5, 3.0, 3.5, 1000.0, 0.0, -2.0])
    row = h.row()
    # buckets are (2^(e-1), 2^e]-style frexp exponents: 0.4 → le=0.5,
    # 0.5 → le=1, 3.0/3.5 → le=4, 1000 → le=1024; non-positives → le=0
    assert row["buckets"]["le=0"] == 2
    assert row["buckets"]["le=0.5"] == 1
    assert row["buckets"]["le=1"] == 1
    assert row["buckets"]["le=4"] == 2
    assert row["buckets"]["le=1024"] == 1
    assert h.quantile(0.5) == 1.0
    assert h.quantile(1.0) == 1024.0


def test_histogram_empty_quantile_is_nan():
    h = Histogram("h", ())
    assert math.isnan(h.quantile(0.5))


def test_find_does_not_create():
    m = MetricsRegistry()
    assert m.find("nope", node="a") is None
    m.counter("yes", node="a").inc()
    assert m.find("yes", node="a").value == 1
    assert m.find("yes", node="b") is None


def test_export_deterministic_and_sorted(tmp_path):
    m = MetricsRegistry()
    m.counter("b.second", node="z").inc(2)
    m.counter("a.first", node="y").inc()
    m.histogram("c.hist").observe(3.0)
    p1 = m.export_jsonl(str(tmp_path / "m1.jsonl"))
    p2 = m.export_jsonl(str(tmp_path / "m2.jsonl"))
    b1 = open(p1, "rb").read()
    assert b1 == open(p2, "rb").read()
    names = [line.split(b'"name": "')[1].split(b'"')[0]
             for line in b1.splitlines()]
    assert names == sorted(names)
    csv = open(m.export_csv(str(tmp_path / "m.csv"))).read().splitlines()
    assert csv[0] == "name,labels,type,value,count,sum"
    assert csv[1].startswith("a.first,node=y,counter,1")
    assert any(line.startswith("c.hist,,histogram,,1,3.0") for line in csv)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def test_export_prom_counters_and_gauges(tmp_path):
    m = MetricsRegistry()
    m.counter("brunet.route.sent", node="a").inc(3)
    m.counter("brunet.route.sent", node="b").inc(2)
    m.gauge("sim.now").set(12.5)
    text = open(m.export_prom(str(tmp_path / "m.prom"))).read()
    lines = text.splitlines()
    # dots mangle to underscores; one TYPE line per family
    assert lines.count("# TYPE brunet_route_sent counter") == 1
    assert 'brunet_route_sent{node="a"} 3' in lines
    assert 'brunet_route_sent{node="b"} 2' in lines
    assert "# TYPE sim_now gauge" in lines
    assert "sim_now 12.5" in lines
    # integer-valued floats render without a trailing .0
    assert "brunet_route_sent{node=\"a\"} 3.0" not in text


def test_export_prom_histogram_cumulative(tmp_path):
    m = MetricsRegistry()
    h = m.histogram("brunet.route.hops", node="a")
    for v in (0.5, 3.0, 3.5, 1000.0):
        h.observe(v)
    lines = open(m.export_prom(str(tmp_path / "m.prom"))).read().splitlines()
    assert "# TYPE brunet_route_hops histogram" in lines
    bucket = [line for line in lines if "_bucket" in line]
    # cumulative counts: le=1 → 1, le=4 → 3, le=1024 → 4, +Inf → 4
    assert 'brunet_route_hops_bucket{le="1",node="a"} 1' in bucket
    assert 'brunet_route_hops_bucket{le="4",node="a"} 3' in bucket
    assert 'brunet_route_hops_bucket{le="1024",node="a"} 4' in bucket
    assert 'brunet_route_hops_bucket{le="+Inf",node="a"} 4' in bucket
    assert 'brunet_route_hops_sum{node="a"} 1007' in lines
    assert 'brunet_route_hops_count{node="a"} 4' in lines


def test_export_prom_deterministic(tmp_path):
    m = MetricsRegistry()
    m.counter("z.last").inc()
    m.counter("a.first", node="n").inc(2)
    m.histogram("h").observe(1.0)
    p1 = open(m.export_prom(str(tmp_path / "p1.prom")), "rb").read()
    p2 = open(m.export_prom(str(tmp_path / "p2.prom")), "rb").read()
    assert p1 == p2


def test_export_prom_empty_registry(tmp_path):
    m = MetricsRegistry()
    assert open(m.export_prom(str(tmp_path / "e.prom"))).read() == ""
