"""Tracing and time-series collection.

Experiments record structured events (``tracer.record(t, "icmp.reply",
{...})``) and post-process them into the series the paper plots.
:class:`TimeSeries` is a light append-only (t, value) container with the
summary statistics used across EXPERIMENTS.md.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter, defaultdict
from typing import Callable, Iterable, Optional

import numpy as np


class TimeSeries:
    """Append-only series of (time, value) samples."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def add(self, t: float, v: float) -> None:
        """Append one (time, value) sample."""
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The samples as (times, values) numpy arrays."""
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)

    # -- summary statistics -------------------------------------------
    def mean(self) -> float:
        """Mean of the values (NaN when empty)."""
        return float(np.mean(self.values)) if self.values else float("nan")

    def std(self) -> float:
        """Population standard deviation of the values."""
        return float(np.std(self.values)) if self.values else float("nan")

    def percentile(self, q: float) -> float:
        """q-th percentile of the values (NaN when empty)."""
        return float(np.percentile(self.values, q)) if self.values else float("nan")

    def window(self, t0: float, t1: float) -> "TimeSeries":
        """Sub-series with t0 <= t < t1.

        Times are appended in nondecreasing order everywhere in the repo,
        so the window is found by bisection and sliced — O(log n + k)
        instead of a full scan per call."""
        out = TimeSeries(f"{self.name}[{t0},{t1})")
        i0 = bisect_left(self.times, t0)
        i1 = bisect_left(self.times, t1, i0)
        out.times = self.times[i0:i1]
        out.values = self.values[i0:i1]
        return out


class Tracer:
    """Stores trace records grouped by category.

    A record is ``(time, dict)``.  Disable tracing for large sweeps by
    constructing with ``enabled=False``; ``record`` then becomes a no-op.

    ``max_records`` bounds the retained records *per category* (oldest
    evicted first) so long sweeps cannot grow memory without bound —
    :attr:`counters` stay exact regardless of eviction.  Eviction is
    amortized: a category's list may transiently hold up to twice the cap
    and is trimmed in bulk; :meth:`get` always returns at most the cap.
    """

    def __init__(self, enabled: bool = True,
                 max_records: Optional[int] = None):
        if max_records is not None and max_records <= 0:
            raise ValueError("max_records must be positive or None")
        self.enabled = enabled
        self.max_records = max_records
        self.records: dict[str, list[tuple[float, dict]]] = defaultdict(list)
        self.counters: Counter = Counter()

    def record(self, t: float, category: str, data: Optional[dict] = None) -> None:
        """Count (and, when enabled, store) one event record."""
        self.counters[category] += 1
        if self.enabled:
            records = self.records[category]
            records.append((t, data or {}))
            cap = self.max_records
            if cap is not None and len(records) > 2 * cap:
                del records[:len(records) - cap]

    def count(self, category: str) -> int:
        """How many records of ``category`` were ever recorded."""
        return self.counters[category]

    def get(self, category: str) -> list[tuple[float, dict]]:
        """Stored (time, data) records of ``category`` (the newest
        ``max_records`` of them when a cap is set)."""
        records = self.records.get(category, [])
        cap = self.max_records
        if cap is not None and len(records) > cap:
            return records[-cap:]
        return records

    def series(self, category: str, key: str,
               where: Optional[Callable[[dict], bool]] = None) -> TimeSeries:
        """Extract a :class:`TimeSeries` of ``data[key]`` from a category."""
        ts = TimeSeries(f"{category}.{key}")
        for t, data in self.get(category):
            if key in data and (where is None or where(data)):
                ts.add(t, float(data[key]))
        return ts

    def categories(self) -> list[str]:
        """All categories seen so far, sorted."""
        return sorted(self.counters)

    def clear(self) -> None:
        """Forget all records and counters."""
        self.records.clear()
        self.counters.clear()


def cdf(samples: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted samples, cumulative fractions)."""
    xs = np.sort(np.asarray(list(samples), dtype=float))
    if xs.size == 0:
        return xs, xs
    fr = np.arange(1, xs.size + 1, dtype=float) / xs.size
    return xs, fr


def fraction_below(samples: Iterable[float], threshold: float) -> float:
    """Fraction of samples strictly below ``threshold`` (1.0 for empty)."""
    xs = list(samples)
    if not xs:
        return 1.0
    return sum(1 for x in xs if x < threshold) / len(xs)
