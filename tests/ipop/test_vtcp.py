"""Virtual TCP: handshake, ordering, retransmission, migration survival."""

import pytest

from repro.ipop.vtcp import VtcpStack
from repro.sim.units import MB
from tests.conftest import make_mini_testbed


@pytest.fixture()
def bed():
    return make_mini_testbed(seed=17)


def make_pair(sim, tb, a_num=3, b_num=4, port=9100):
    a_vm, b_vm = tb.vm(a_num), tb.vm(b_num)
    got: list = []
    server_stack = VtcpStack(b_vm.router)
    server = server_stack.socket(port, on_message=got.append)
    server.listen()
    client_stack = VtcpStack(a_vm.router)
    client = client_stack.socket(port + 1)
    client.connect(b_vm.virtual_ip, port)
    return a_vm, b_vm, client, server, got


def test_three_way_handshake(bed):
    sim, tb = bed
    _, _, client, server, _ = make_pair(sim, tb)
    sim.run(until=sim.now + 10)
    assert client.state == "ESTABLISHED"
    assert server.state == "ESTABLISHED"
    assert client.established.fired


def test_messages_delivered_in_order(bed):
    sim, tb = bed
    _, _, client, server, got = make_pair(sim, tb, 5, 6, 9200)
    for i in range(25):
        client.send({"n": i})
    sim.run(until=sim.now + 60)
    assert got == [{"n": i} for i in range(25)]
    assert server.messages_delivered == 25


def test_send_before_established_is_buffered(bed):
    sim, tb = bed
    _, _, client, server, got = make_pair(sim, tb, 7, 8, 9300)
    client.send("early")  # still SYN_SENT
    sim.run(until=sim.now + 10)
    assert got == ["early"]


def test_window_limits_in_flight(bed):
    sim, tb = bed
    from repro.ipop.vtcp import DEFAULT_WINDOW
    _, _, client, server, got = make_pair(sim, tb, 9, 10, 9400)
    sim.run(until=sim.now + 5)
    for i in range(50):
        client.send(i)
    assert len(client._in_flight) <= DEFAULT_WINDOW
    sim.run(until=sim.now + 90)
    assert got == list(range(50))


def test_graceful_close(bed):
    sim, tb = bed
    _, _, client, server, got = make_pair(sim, tb, 11, 12, 9500)
    client.send("bye")
    closed = client.close()
    sim.run(until=sim.now + 30)
    assert got == ["bye"]  # close flushes pending data first
    assert closed.fired
    assert client.state == "CLOSED"
    assert server.state == "CLOSED"


def test_connection_survives_server_ipop_restart(bed):
    """The §V-C claim: TCP connection state stays valid across the
    virtual-network outage of an IPOP restart."""
    sim, tb = bed
    a_vm, b_vm, client, server, got = make_pair(sim, tb, 13, 14, 9600)
    client.send("before")
    sim.run(until=sim.now + 10)
    assert got == ["before"]
    b_vm.restart_ipop()  # kills connectivity until rejoin
    client.send("during-outage")
    sim.run(until=sim.now + 240)
    assert "during-outage" in got
    assert client.retransmissions > 0
    assert client.state == "ESTABLISHED"


def test_connection_survives_migration(bed):
    sim, tb = bed
    a_vm, b_vm, client, server, got = make_pair(sim, tb, 15, 16, 9700)
    sim.run(until=sim.now + 5)
    done = b_vm.migrate(tb.deployment.sites["nwu"], transfer_size=MB(20.0))
    client.send("across-the-wan")
    sim.run(until=sim.now + 600)
    assert done.fired
    assert "across-the-wan" in got
    assert client.state == "ESTABLISHED"


def test_duplicate_port_rejected(bed):
    sim, tb = bed
    stack = VtcpStack(tb.vm(17).router)
    stack.socket(9800)
    with pytest.raises(ValueError):
        stack.socket(9800)
    stack.release(9800)
    stack.socket(9800)  # reusable after release


def test_connect_twice_rejected(bed):
    sim, tb = bed
    stack = VtcpStack(tb.vm(18).router)
    sock = stack.socket(9900)
    sock.connect(tb.vm(19).virtual_ip, 1)
    with pytest.raises(RuntimeError):
        sock.connect(tb.vm(19).virtual_ip, 1)
