"""Experiment harnesses: one module per table/figure of the paper.

Each module exposes ``run(seed=..., scale=...)`` returning a result object
with the rows/series the paper reports, plus ``main()`` for CLI use.  The
``scale`` knob shrinks trial counts / job counts for CI and benchmarks;
``scale=1.0`` is the paper's configuration.  ``run_all`` drives everything
and regenerates EXPERIMENTS.md's measured column.
"""

from repro.experiments import common

__all__ = ["common"]
