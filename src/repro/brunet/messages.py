"""Protocol message types.

Messages travel either *directly* over UDP (link handshake, pings) or
wrapped in a :class:`RoutedPacket` and forwarded greedily over overlay
connections (CTM requests/replies, tunnelled IP).  Every type here has a
deterministic binary encoding in :mod:`repro.wire`; ``size`` accounting
uses either the paper constants in
:class:`~repro.brunet.config.BrunetConfig` (``wire_mode="reference"``) or
the measured encoded length (``"measured"``/``"codec"``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.brunet.address import BrunetAddress
from repro.brunet.uri import Uri
from repro.obs.spans import TraceRef

_token_counter = itertools.count(1)


def next_token() -> int:
    """Monotonic token for matching requests with replies.

    .. deprecated::
        This counter is module-global, so a second same-seed run in the
        same process draws different tokens than the first.  Protocol code
        now uses the per-node ``BrunetNode.next_token()`` instead; this
        stays only for tests/tools that need a throwaway token.
    """
    return next(_token_counter)


# ---------------------------------------------------------------------------
# direct (physical-network) messages
# ---------------------------------------------------------------------------

@dataclass
class LinkRequest:
    """Linking-handshake request, sent directly to a candidate URI."""

    token: int
    sender_addr: BrunetAddress
    sender_uris: list[Uri]
    conn_type: str  # ConnectionType value
    #: causal-trace context (None unless the handshake is being traced)
    trace: Optional[TraceRef] = None


@dataclass
class LinkReply:
    """Successful linking response.  ``observed_uri`` tells the requester
    which (possibly NAT-assigned) endpoint its request arrived from — the
    decentralized address-discovery mechanism of §IV-C/§IV-D."""

    token: int
    sender_addr: BrunetAddress
    sender_uris: list[Uri]
    observed_uri: Uri
    conn_type: str
    trace: Optional[TraceRef] = None


@dataclass
class LinkError:
    """Race-resolution message: the target should abandon its attempt and
    let the sender's in-flight attempt proceed (§IV-B)."""

    token: int
    sender_addr: BrunetAddress
    reason: str = "busy"


@dataclass
class CloseMessage:
    """Graceful connection teardown: the sender has discarded its state for
    this link (trimmed near label, shortcut eviction, shutdown)."""

    sender_addr: BrunetAddress
    reason: str = ""


@dataclass
class PingRequest:
    """Keep-alive probe over an established connection."""

    token: int
    sender_addr: BrunetAddress


@dataclass
class PingReply:
    """Keep-alive answer; echoes the observed source for NAT-remap
    detection (§V-E).

    ``known`` reports whether the replier still holds a connection to the
    requester.  A peer that crashed and restarted answers pings (the socket
    is rebound) but has forgotten the link — without this flag such zombie
    one-way connections survive the keep-alive protocol forever."""

    token: int
    sender_addr: BrunetAddress
    observed_uri: Uri
    known: bool = True


# ---------------------------------------------------------------------------
# overlay-routed payloads
# ---------------------------------------------------------------------------

@dataclass
class CtmRequest:
    """Connect-To-Me: conveys intent to connect plus the initiator's URIs,
    routed over the overlay to the target address (§IV-B).

    ``reply_via`` supports the join announce (§IV-C): a node not yet in the
    ring asks responders to route replies to its leaf target, which relays
    them over the leaf connection.  ``fanout`` lets the nearest node forward
    one copy to its neighbour on the far side of the joining address so the
    joiner learns *both* ring neighbours.
    """

    token: int
    initiator_addr: BrunetAddress
    initiator_uris: list[Uri]
    conn_type: str
    reply_via: Optional[BrunetAddress] = None
    fanout: int = 0


@dataclass
class CtmReply:
    """CTM response carrying the target's URIs, routed back through the
    overlay."""

    token: int
    responder_addr: BrunetAddress
    responder_uris: list[Uri]
    conn_type: str


@dataclass
class IpEncap:
    """A tunnelled virtual-IP packet (handled by the IPOP layer)."""

    payload: Any
    size: int


@dataclass
class Forward:
    """Relay wrapper: the node at the packet's destination re-routes
    ``inner`` toward ``final_dest`` — used so a leaf target can pass CTM
    replies back to a joining node (§IV-C: "acts as forwarding agent")."""

    final_dest: BrunetAddress
    inner: Any
    size: int


@dataclass
class RoutedPacket:
    """Overlay envelope, forwarded greedily toward ``dest``.

    ``exact`` — deliver only to the exact destination (tunnelled IP);
    otherwise the nearest node in the address space accepts it, which is how
    CTM requests reach a joining node's future neighbours (§IV-C).
    ``exclude_dest_link`` — route *around* the destination: never hand the
    packet to the destination itself (join/repair announces must stop at the
    nearest *other* node).
    """

    src: BrunetAddress
    dest: BrunetAddress
    payload: Any
    size: int
    exact: bool = False
    exclude_dest_link: bool = False
    #: directional greedy: "right" delivers at the nearest node clockwise
    #: of ``dest``, "left" counter-clockwise — used by the join-announce
    #: fanout to find the joiner's *other* ring neighbour
    approach: Optional[str] = None
    ttl: int = 32
    hops: int = 0
    via: list = field(default_factory=list)  # node addresses traversed
    #: causal-trace context; each routing hop re-parents it at its own
    #: span, so the hop chain reconstructs as a tree (see repro.obs.spans)
    trace: Optional[TraceRef] = None
