"""Overlay-wide diagnostics.

Deployment-level surveys used by experiments, tests, and the examples:
connection census, greedy hop-count distribution, RTT estimates per route,
and a printable ring summary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.brunet.connection import ConnectionType
from repro.brunet.routing import overlay_hop_count

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.wow import Deployment


@dataclass
class OverlaySurvey:
    """Snapshot of a deployment's overlay health."""

    n_nodes: int
    ring_consistent: bool
    connections_by_type: Counter = field(default_factory=Counter)
    degree_mean: float = 0.0
    degree_max: int = 0
    hop_counts: list[int] = field(default_factory=list)
    unreachable_pairs: int = 0

    @property
    def hop_mean(self) -> float:
        """Mean greedy hop count over the sampled routes."""
        return float(np.mean(self.hop_counts)) if self.hop_counts else 0.0

    @property
    def hop_p95(self) -> float:
        """95th-percentile hop count."""
        return (float(np.percentile(self.hop_counts, 95))
                if self.hop_counts else 0.0)

    def summary_lines(self) -> list[str]:
        """Human-readable multi-line summary."""
        lines = [
            f"nodes: {self.n_nodes}  ring consistent: {self.ring_consistent}",
            f"degree: mean {self.degree_mean:.1f}, max {self.degree_max}",
            "connections: " + ", ".join(
                f"{t}: {n}" for t, n in sorted(
                    self.connections_by_type.items())),
        ]
        if self.hop_counts:
            lines.append(f"routes: mean {self.hop_mean:.2f} hops, "
                         f"p95 {self.hop_p95:.0f}, "
                         f"unreachable pairs {self.unreachable_pairs}")
        return lines


def survey(deployment: "Deployment", sample_sources: int = 12,
           include_routes: bool = True,
           sample_dests: Optional[int] = None) -> OverlaySurvey:
    """Measure the live overlay (structural census + sampled routes).

    The node list comes off the deployment's incrementally-maintained
    :class:`~repro.brunet.ring.RingIndex` (no per-call sort).  By default
    every sampled source is routed to *every* destination — exact, but
    O(sources·n); pass ``sample_dests`` to stride-sample destinations
    too, keeping a 10k-node census O(sources·dests) and deterministic
    (same stride pattern every call, no RNG).
    """
    nodes = deployment.ring_nodes()
    out = OverlaySurvey(n_nodes=len(nodes),
                        ring_consistent=deployment.ring_consistent())
    degrees = []
    for node in nodes:
        conns = node.table.all()
        degrees.append(len(conns))
        for conn in conns:
            for t in conn.types:
                out.connections_by_type[t.value] += 1
    if degrees:
        out.degree_mean = float(np.mean(degrees))
        out.degree_max = int(max(degrees))
    if include_routes and len(nodes) > 1:
        sources = nodes[:: max(1, len(nodes) // sample_sources)]
        dests = nodes
        if sample_dests is not None:
            dests = nodes[:: max(1, len(nodes) // sample_dests)]
        for src in sources:
            for dst in dests:
                if src is dst:
                    continue
                hops = overlay_hop_count(src, dst.addr, deployment.resolve)
                if hops is None:
                    out.unreachable_pairs += 1
                else:
                    out.hop_counts.append(hops)
    return out


def shortcut_census(deployment: "Deployment") -> dict[str, int]:
    """How many shortcut links exist between each site pair."""
    pairs: Counter = Counter()
    for node in deployment.ring_nodes():
        for conn in node.table.by_type(ConnectionType.SHORTCUT):
            peer = deployment.resolve(conn.peer_addr)
            if peer is None:
                continue
            a = node.host.site.name
            b = peer.host.site.name
            pairs["~".join(sorted((a, b)))] += 1
    # each link counted once per endpoint
    return {k: v // 2 for k, v in pairs.items() if v >= 2} | \
        {k: v for k, v in pairs.items() if v == 1}
