"""Figure 4: ICMP RTT and loss profiles while a node joins the WOW.

Protocol (§V-B): node A is fixed; node B is started fresh, sends 400 ICMP
echoes at 1 s intervals to A, and is torn down; repeated across trials with
different virtual IPs (different ring positions).  Three location cases:
UFL-NWU, UFL-UFL, NWU-NWU.

Output: per-sequence mean RTT (over replies) and loss percentage — the two
panels of Fig. 4 — plus the regime summary used by Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import ExperimentSetup, make_testbed, print_table
from repro.ipop import Pinger

CASES = ("UFL-UFL", "UFL-NWU", "NWU-NWU")


@dataclass
class JoinProfile:
    """Aggregated ping outcomes for one location case."""

    case: str
    count: int
    rtt_sum: np.ndarray
    rtt_n: np.ndarray
    lost: np.ndarray
    trials: int
    shortcut_seqs: list[int] = field(default_factory=list)

    @property
    def mean_rtt_ms(self) -> np.ndarray:
        with np.errstate(invalid="ignore", divide="ignore"):
            return 1000.0 * self.rtt_sum / self.rtt_n

    @property
    def loss_pct(self) -> np.ndarray:
        return 100.0 * self.lost / self.trials

    def summary(self) -> dict:
        m = self.mean_rtt_ms
        return {
            "case": self.case,
            "loss_first3_pct": float(self.loss_pct[:3].mean()),
            "rtt_mid_ms": float(np.nanmean(m[4:33])),
            "rtt_final_ms": float(np.nanmean(m[-50:])),
            "median_shortcut_seq": (float(np.median(self.shortcut_seqs))
                                    if self.shortcut_seqs else None),
        }


def _detect_shortcut(rtt: np.ndarray, final_rtt: float) -> int | None:
    """First sequence from which RTTs stay at the direct-path level."""
    window = 8
    for start in range(rtt.size - window):
        w = rtt[start:start + window]
        w = w[~np.isnan(w)]
        if w.size >= window // 2 and np.median(w) <= final_rtt * 1.5:
            return start
    return None


def run(seed: int = 0, scale: float = 1.0, trials_per_case: int = 10,
        count: int = 400, setup: ExperimentSetup | None = None
        ) -> dict[str, JoinProfile]:
    if setup is None:
        setup = make_testbed(seed=seed, scale=scale)
    sim, tb = setup.sim, setup.testbed
    dep = setup.deployment

    profiles: dict[str, JoinProfile] = {}
    ip_counter = 100
    for case in CASES:
        src_site, dst = case.split("-")
        target = tb.vm(2) if dst == "UFL" else tb.vm(17)
        agg = JoinProfile(case, count, np.zeros(count), np.zeros(count),
                          np.zeros(count), trials_per_case)
        for trial in range(trials_per_case):
            ip = f"172.16.1.{ip_counter % 150 + 100}"
            ip_counter += 1
            vm = dep.create_vm(f"joiner-{case}-{trial}", ip,
                               dep.sites[src_site.lower()], cpu_speed=1.0)
            vm.start()
            pinger = Pinger(vm.router)
            done = pinger.run(target.virtual_ip, count=count, interval=1.0)
            sim.run(until=sim.now + count + 10)
            stats = done.value
            rtt = stats.rtt
            agg.rtt_sum += np.nan_to_num(rtt, nan=0.0)
            agg.rtt_n += stats.replied
            agg.lost += ~stats.replied
            final = float(np.nanmedian(rtt[-40:]))
            if np.isfinite(final):
                sc = _detect_shortcut(rtt, final)
                if sc is not None:
                    agg.shortcut_seqs.append(sc)
            pinger.close()
            vm.stop()
            del dep.vms[vm.name]
            # let stale connection state at peers drain between trials
            sim.run(until=sim.now + 60)
        profiles[case] = agg
    return profiles


def report(profiles: dict[str, JoinProfile],
           csv_dir: str | None = None) -> list[dict]:
    from repro.experiments.plotting import ascii_plot, export_series_csv
    rows = []
    for case, prof in profiles.items():
        s = prof.summary()
        rows.append(s)
    print_table(
        "Figure 4 — ICMP profiles during WOW node join",
        ["case", "loss% (seq 0-2)", "RTT ms (seq 4-32)", "RTT ms (final)",
         "shortcut @ seq (median)"],
        [[r["case"], f"{r['loss_first3_pct']:.0f}%",
          f"{r['rtt_mid_ms']:.0f}", f"{r['rtt_final_ms']:.1f}",
          r["median_shortcut_seq"]] for r in rows])
    seqs = np.arange(next(iter(profiles.values())).count)
    rtt_series = {case: (seqs, prof.mean_rtt_ms)
                  for case, prof in profiles.items()}
    loss_series = {case: (seqs, prof.loss_pct)
                   for case, prof in profiles.items()}
    print()
    print(ascii_plot(rtt_series, title="Fig. 4 (left): mean ICMP RTT (ms)",
                     xlabel="ICMP sequence number"))
    print()
    print(ascii_plot(loss_series, title="Fig. 4 (right): lost packets (%)",
                     xlabel="ICMP sequence number"))
    if csv_dir is not None:
        export_series_csv(f"{csv_dir}/fig4_rtt_ms.csv", rtt_series)
        export_series_csv(f"{csv_dir}/fig4_loss_pct.csv", loss_series)
    return rows


def main(seed: int = 0, scale: float = 0.5, trials: int = 3) -> list[dict]:
    profiles = run(seed=seed, scale=scale, trials_per_case=trials)
    return report(profiles)


if __name__ == "__main__":  # pragma: no cover
    main()
