"""fastDNAml: maximum-likelihood phylogenetics (paper refs [41], [48]).

:class:`FastDnaMl` is a real miniature of the algorithm: Jukes-Cantor (JC69)
site likelihoods computed by Felsenstein's pruning algorithm over unrooted
binary trees, driving the stepwise-addition search fastDNAml parallelizes —
taxa are added one at a time, and adding the *k*-th taxon evaluates one
candidate tree per branch of the current (2k-5)-branch topology.  That
"2i-5 trees per round, rounds synchronize on the best tree" structure is
exactly the master/worker task stream of Table III, which
:class:`FastDnamlWorkload` reproduces at the paper's 50-taxa scale via the
calibrated cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.middleware.pvm import PvmTask


# ---------------------------------------------------------------------------
# real algorithm: JC69 likelihood + stepwise addition
# ---------------------------------------------------------------------------

def jc69_transition(branch_length: float) -> np.ndarray:
    """JC69 transition probability matrix for one branch."""
    if branch_length < 0:
        raise ValueError("negative branch length")
    e = np.exp(-4.0 * branch_length / 3.0)
    same = 0.25 + 0.75 * e
    diff = 0.25 - 0.25 * e
    p = np.full((4, 4), diff)
    np.fill_diagonal(p, same)
    return p


@dataclass
class _TreeNode:
    """Node of a rooted view of the (conceptually unrooted) tree."""

    taxon: Optional[int] = None  # leaf: index into the alignment
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    branch: float = 0.1  # length of the edge to the parent

    @property
    def is_leaf(self) -> bool:
        return self.taxon is not None

    def copy(self) -> "_TreeNode":
        if self.is_leaf:
            return _TreeNode(taxon=self.taxon, branch=self.branch)
        return _TreeNode(left=self.left.copy(), right=self.right.copy(),
                         branch=self.branch)

    def edges(self) -> list["_TreeNode"]:
        """All nodes (≙ the edge to their parent) in this subtree."""
        out = [self]
        if not self.is_leaf:
            out += self.left.edges() + self.right.edges()
        return out

    def leaf_count(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.leaf_count() + self.right.leaf_count()


def _conditional(node: _TreeNode, alignment: np.ndarray) -> np.ndarray:
    """Felsenstein pruning: (sites, 4) conditional likelihoods at ``node``
    (before crossing its parent edge)."""
    if node.is_leaf:
        sites = alignment[node.taxon]
        cond = np.zeros((sites.size, 4))
        cond[np.arange(sites.size), sites] = 1.0
        return cond
    left = _conditional(node.left, alignment) @ jc69_transition(
        node.left.branch)
    right = _conditional(node.right, alignment) @ jc69_transition(
        node.right.branch)
    return left * right


def jc69_likelihood(root: _TreeNode, alignment: np.ndarray) -> float:
    """Log-likelihood of the alignment under JC69 on the given tree."""
    cond = _conditional(root, alignment)
    site_lik = cond @ np.full(4, 0.25)
    site_lik = np.maximum(site_lik, 1e-300)
    return float(np.log(site_lik).sum())


class FastDnaMl:
    """Stepwise-addition ML tree search (the sequential algorithm)."""

    def __init__(self, alignment: np.ndarray, branch: float = 0.08):
        alignment = np.asarray(alignment, dtype=np.int8)
        if alignment.shape[0] < 3:
            raise ValueError("need at least 3 taxa")
        self.alignment = alignment
        self.branch = branch
        self.trees_evaluated = 0
        self.round_sizes: list[int] = []

    def _insert_candidates(self, tree: _TreeNode,
                           taxon: int) -> list[_TreeNode]:
        """One candidate per edge: the new leaf grafted onto that edge."""
        candidates = []
        edges = tree.edges()
        for i in range(len(edges)):
            candidate = tree.copy()
            cedges = candidate.edges()
            target = cedges[i]
            grafted = _TreeNode(left=_TreeNode(taxon=taxon,
                                               branch=self.branch),
                                right=None, branch=target.branch)
            # splice: replace target with (new internal node: taxon, target)
            replacement = _TreeNode(
                left=grafted.left,
                right=_TreeNode(taxon=target.taxon, left=target.left,
                                right=target.right, branch=self.branch),
                branch=target.branch)
            target.taxon = None
            target.left = replacement.left
            target.right = replacement.right
            candidates.append(candidate)
        return candidates

    def search(self) -> tuple[_TreeNode, float]:
        """Add taxa 3..n one at a time, keeping the best insertion.

        Evaluating the candidate set of round *k* is the parallel unit of
        fastDNAml-PVM; ``round_sizes`` records the 2k-5-ish fan-outs.
        """
        aln = self.alignment
        tree = _TreeNode(
            left=_TreeNode(taxon=0, branch=self.branch),
            right=_TreeNode(left=_TreeNode(taxon=1, branch=self.branch),
                            right=_TreeNode(taxon=2, branch=self.branch),
                            branch=self.branch))
        for taxon in range(3, aln.shape[0]):
            candidates = self._insert_candidates(tree, taxon)
            self.round_sizes.append(len(candidates))
            scores = [jc69_likelihood(c, aln) for c in candidates]
            self.trees_evaluated += len(candidates)
            tree = candidates[int(np.argmax(scores))]
        return tree, jc69_likelihood(tree, aln)


# ---------------------------------------------------------------------------
# cost model at the paper's scale
# ---------------------------------------------------------------------------

class FastDnamlWorkload:
    """Table III workload: rounds of PVM tasks for the 50-taxa dataset.

    Round *r* (adding the r-th taxon) evaluates ``2r-5`` candidate trees;
    tree-evaluation work grows linearly with the number of taxa placed so
    far.  Calibrated so the sequential sum is ≈22272 ref-seconds (node002's
    measured sequential runtime).
    """

    def __init__(self, calib, rng: np.random.Generator):
        self.calib = calib
        self.rng = rng

    def task_work(self, round_index: int) -> float:
        c = self.calib
        scale = round_index / c.fastdnaml_taxa
        noise = float(self.rng.lognormal(0.0, c.fastdnaml_work_sigma))
        return c.fastdnaml_tree_work * scale * noise

    def rounds(self) -> list[list[PvmTask]]:
        c = self.calib
        out = []
        for r in range(4, c.fastdnaml_taxa + 1):
            tasks = [PvmTask(work_ref=self.task_work(r),
                             send_size=c.pvm_task_size,
                             recv_size=c.pvm_result_size)
                     for _ in range(2 * r - 5)]
            out.append(tasks)
        return out

    def sequential_work(self) -> float:
        """Total ref-seconds (what a 1-node run must execute)."""
        return float(sum(t.work_ref for round_ in self.rounds()
                         for t in round_))
