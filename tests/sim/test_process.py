"""Generator-process semantics: timeouts, signals, interruption."""

import pytest

from repro.sim import AllOf, Process, Signal, Simulator, Timeout, WaitSignal


def test_timeout_sequencing():
    sim = Simulator()
    log = []

    def worker():
        log.append(("start", sim.now))
        yield Timeout(2.5)
        log.append(("mid", sim.now))
        yield Timeout(1.5)
        log.append(("end", sim.now))

    Process(sim, worker())
    sim.run()
    assert log == [("start", 0.0), ("mid", 2.5), ("end", 4.0)]


def test_done_signal_carries_return_value():
    sim = Simulator()

    def worker():
        yield Timeout(1.0)
        return 42

    proc = Process(sim, worker())
    sim.run()
    assert proc.done.fired
    assert proc.done.value == 42
    assert not proc.alive


def test_wait_signal_resumes_with_value():
    sim = Simulator()
    sig = Signal(sim, "s")
    got = []

    def waiter():
        value = yield WaitSignal(sig)
        got.append(value)

    Process(sim, waiter())
    sim.schedule(3.0, sig.fire, "payload")
    sim.run()
    assert got == ["payload"]


def test_wait_signal_timeout():
    sim = Simulator()
    sig = Signal(sim, "never")
    got = []

    def waiter():
        value = yield WaitSignal(sig, timeout=5.0)
        got.append((value is WaitSignal.TIMED_OUT, sim.now))

    Process(sim, waiter())
    sim.run()
    assert got == [(True, 5.0)]


def test_wait_signal_timeout_not_taken_when_fired_first():
    sim = Simulator()
    sig = Signal(sim, "s")
    got = []

    def waiter():
        value = yield WaitSignal(sig, timeout=5.0)
        got.append(value)

    Process(sim, waiter())
    sim.schedule(1.0, sig.fire, "早い")
    sim.run()
    assert got == ["早い"]
    assert sim.now < 5.0 or sim.pending() == 0


def test_latched_signal_resumes_late_waiter():
    sim = Simulator()
    sig = Signal(sim, "latch", latch=True)
    sig.fire("done")
    got = []

    def late():
        value = yield WaitSignal(sig)
        got.append(value)

    Process(sim, late())
    sim.run()
    assert got == ["done"]


def test_latched_signal_fires_once():
    sim = Simulator()
    sig = Signal(sim, "latch", latch=True)
    sig.fire(1)
    sig.fire(2)
    assert sig.value == 1


def test_allof_waits_for_every_signal():
    sim = Simulator()
    sigs = [Signal(sim, f"s{i}") for i in range(3)]
    got = []

    def waiter():
        values = yield AllOf(sigs)
        got.append((list(values), sim.now))

    Process(sim, waiter())
    for i, sig in enumerate(sigs):
        sim.schedule(float(i + 1), sig.fire, i * 10)
    sim.run()
    assert got == [([0, 10, 20], 3.0)]


def test_allof_empty_resumes_immediately():
    sim = Simulator()
    got = []

    def waiter():
        values = yield AllOf([])
        got.append(values)

    Process(sim, waiter())
    sim.run()
    assert got == [[]]


def test_interrupt_kills_process():
    sim = Simulator()
    log = []

    def worker():
        log.append("a")
        yield Timeout(10.0)
        log.append("b")  # pragma: no cover - must not run

    proc = Process(sim, worker())
    sim.schedule(1.0, proc.interrupt)
    sim.run()
    assert log == ["a"]
    assert not proc.alive
    assert proc.done.fired and proc.done.value is None


def test_yielding_bare_signal_works():
    sim = Simulator()
    sig = Signal(sim, "bare")
    got = []

    def waiter():
        value = yield sig
        got.append(value)

    Process(sim, waiter())
    sim.schedule(2.0, sig.fire, "ok")
    sim.run()
    assert got == ["ok"]


def test_unsupported_yield_raises():
    sim = Simulator()

    def bad():
        yield 12345

    with pytest.raises(TypeError):
        Process(sim, bad())


def test_signal_fire_resumes_multiple_waiters():
    sim = Simulator()
    sig = Signal(sim, "multi")
    got = []
    for i in range(3):
        def waiter(i=i):
            value = yield WaitSignal(sig)
            got.append((i, value))
        Process(sim, waiter())
    sim.schedule(1.0, sig.fire, "x")
    sim.run()
    assert sorted(got) == [(0, "x"), (1, "x"), (2, "x")]
