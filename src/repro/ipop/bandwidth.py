"""BandwidthBroker: maps overlay routes onto fluid-flow resources.

Bulk virtual-network traffic between two ring addresses traverses, for the
current overlay route:

* each traversed node's *user-level forwarding capacity* — the paper's
  dominant bottleneck on loaded PlanetLab routers ("the load of machines
  hosting the intermediate IPOP routers ... reduces the processing
  throughput of our user-level implementation", §V-B);
* one LAN resource per intra-site physical hop;
* one shared WAN resource per site pair crossed.

The broker caches one :class:`Resource` per node/site/pair so concurrent
transfers share capacity max-min fairly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.brunet.address import BrunetAddress
from repro.brunet.routing import trace_route
from repro.phys.flows import FlowManager, Resource
from repro.sim.units import MB

if TYPE_CHECKING:  # pragma: no cover
    from repro.brunet.node import BrunetNode
    from repro.sim.engine import Simulator

Resolver = Callable[[BrunetAddress], Optional["BrunetNode"]]

#: default user-level forwarding capacity of an unloaded compute host
DEFAULT_NODE_CAPACITY = MB(1.6)
#: default LAN capacity within one site
DEFAULT_LAN_CAPACITY = MB(4.0)
#: default WAN capacity between two sites
DEFAULT_WAN_CAPACITY = MB(2.0)


class BandwidthBroker:
    """Owns the flow manager and the resource caches for one deployment."""

    def __init__(self, sim: "Simulator", resolve: Resolver,
                 default_lan: float = DEFAULT_LAN_CAPACITY,
                 default_wan: float = DEFAULT_WAN_CAPACITY):
        self.sim = sim
        self.resolve = resolve
        self.flows = FlowManager(sim)
        self.default_lan = default_lan
        self.default_wan = default_wan
        self._node_res: dict[int, Resource] = {}  # id(node) -> Resource
        self._lan_res: dict[str, Resource] = {}
        self._wan_res: dict[frozenset, Resource] = {}
        self._lan_caps: dict[str, float] = {}
        self._wan_caps: dict[frozenset, float] = {}

    # -- configuration ------------------------------------------------------
    def set_lan_capacity(self, site: str, capacity: float) -> None:
        self._lan_caps[site] = capacity
        if site in self._lan_res:
            self._lan_res[site].set_capacity(capacity, self.flows)

    def set_wan_capacity(self, site_a: str, site_b: str,
                         capacity: float) -> None:
        key = frozenset((site_a, site_b))
        self._wan_caps[key] = capacity
        if key in self._wan_res:
            self._wan_res[key].set_capacity(capacity, self.flows)

    # -- resources ------------------------------------------------------------
    def node_resource(self, node: "BrunetNode") -> Resource:
        res = self._node_res.get(id(node))
        if res is None:
            cap = getattr(node.host, "ipop_forward_capacity",
                          DEFAULT_NODE_CAPACITY)
            res = Resource(f"ipop.{node.name}", cap)
            self._node_res[id(node)] = res
        return res

    def lan_resource(self, site: str) -> Resource:
        res = self._lan_res.get(site)
        if res is None:
            res = Resource(f"lan.{site}",
                           self._lan_caps.get(site, self.default_lan))
            self._lan_res[site] = res
        return res

    def wan_resource(self, site_a: str, site_b: str) -> Resource:
        key = frozenset((site_a, site_b))
        res = self._wan_res.get(key)
        if res is None:
            res = Resource(f"wan.{site_a}~{site_b}",
                           self._wan_caps.get(key, self.default_wan))
            self._wan_res[key] = res
        return res

    # -- path mapping ------------------------------------------------------------
    def route_resources(self, src_addr: BrunetAddress,
                        dst_addr: BrunetAddress
                        ) -> Optional[tuple[list[Resource], list]]:
        """Resources along the current overlay route, or None when broken.

        Returns ``(resources, node_path)`` so callers can detect route
        changes cheaply.
        """
        start = self.resolve(src_addr)
        if start is None or not start.active:
            return None
        path = trace_route(start, dst_addr, self.resolve)
        if path is None:
            return None
        resources: list[Resource] = []
        for node in path:
            resources.append(self.node_resource(node))
        for a, b in zip(path, path[1:]):
            if a.host.site is b.host.site:
                resources.append(self.lan_resource(a.host.site.name))
            else:
                resources.append(self.wan_resource(a.host.site.name,
                                                   b.host.site.name))
        # dedupe while preserving order (a pair crossed twice shares once)
        seen: set[int] = set()
        unique = []
        for r in resources:
            if id(r) not in seen:
                seen.add(id(r))
                unique.append(r)
        return unique, path
