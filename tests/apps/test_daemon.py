"""WowDaemon: control protocol, cached-peer bootstrap, graceful drain.

Everything runs in-process over real loopback UDP sockets and unix
control sockets — the same code paths ``python -m repro.apps.daemon``
exercises, minus the subprocess spawn (tests/apps/test_swarm.py covers
the process-level path).
"""

from __future__ import annotations

import asyncio
import json
import os

from repro.apps.daemon import WowDaemon
from repro.brunet.bootstrap import PeerCache
from repro.brunet.config import BrunetConfig
from repro.brunet.uri import Uri

FAST = BrunetConfig(link_resend_interval=0.1, link_max_retries=3,
                    overlord_interval=0.1, ping_interval=0.5,
                    liveness_timeout=3.0, wire_mode="codec")


async def _ctl(path: str, cmd: str, **params) -> dict:
    reader, writer = await asyncio.open_unix_connection(path)
    writer.write(json.dumps({"cmd": cmd, **params}).encode() + b"\n")
    await writer.drain()
    reply = json.loads(await reader.readline())
    writer.close()
    return reply


async def _wait_for(predicate, timeout: float = 20.0, step: float = 0.05):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(step)
    return False


def test_two_daemons_form_ring_and_answer_control(tmp_path):
    async def scenario():
        a = WowDaemon("10.128.0.2", config=FAST, name="a",
                      control_path=str(tmp_path / "a.sock"))
        await a.start()
        seed = Uri.udp(*a.transport.local_endpoint)
        b = WowDaemon("10.128.0.3", seed_uris=[seed], config=FAST, name="b",
                      control_path=str(tmp_path / "b.sock"))
        await b.start()
        assert await _wait_for(
            lambda: a.node.in_ring and b.node.in_ring), "ring never formed"

        status = await _ctl(str(tmp_path / "a.sock"), "status")
        assert status["ok"] and status["in_ring"]
        assert status["vip"] == "10.128.0.2"
        assert status["right"] == b.node.addr.hex()

        peers = await _ctl(str(tmp_path / "b.sock"), "peers")
        assert any(p["addr"] == a.node.addr.hex() for p in peers["peers"])

        links = await _ctl(str(tmp_path / "a.sock"), "links")
        assert "in_flight" in links  # linker snapshot is JSON-clean

        ping = await _ctl(str(tmp_path / "a.sock"), "ping",
                          vip="10.128.0.3", timeout=5.0)
        assert ping["replied"] and ping["rtt"] is not None

        bogus = await _ctl(str(tmp_path / "a.sock"), "no-such-cmd")
        assert not bogus["ok"] and "unknown command" in bogus["error"]

        await b.shutdown("test")
        await a.shutdown("test")

    asyncio.run(scenario())


def test_restart_rejoins_via_peer_cache_with_seeds_dead(tmp_path):
    """The tentpole drill, in-process: a node that cached its peers
    rejoins after restart even though its only configured seed is dead."""
    async def scenario():
        seed = WowDaemon("10.128.0.2", config=FAST, name="seed")
        await seed.start()
        seed_uri = Uri.udp(*seed.transport.local_endpoint)
        # a second stable node that will outlive the seed
        survivor = WowDaemon("10.128.0.3", seed_uris=[seed_uri],
                             config=FAST, name="survivor")
        await survivor.start()
        victim = WowDaemon("10.128.0.4", seed_uris=[seed_uri], config=FAST,
                           name="victim",
                           peer_cache_path=str(tmp_path / "v.json"))
        await victim.start()
        all_up = [seed, survivor, victim]
        assert await _wait_for(
            lambda: all(d.node.in_ring for d in all_up)), "no initial ring"

        await victim.shutdown("drill")  # persists its peer cache
        cached = PeerCache(str(tmp_path / "v.json")).load()
        assert cached, "graceful shutdown saved no peers"

        await seed.shutdown("killed")  # every configured seed is now gone
        await asyncio.sleep(0.2)       # let the port actually release

        reborn = WowDaemon("10.128.0.4", seed_uris=[seed_uri], config=FAST,
                           name="reborn",
                           peer_cache_path=str(tmp_path / "v.json"))
        await reborn.start()
        # the cached (still live) survivor is in the rotation, so the
        # dead configured seed is no longer a single point of failure
        survivor_uri = Uri.udp(*survivor.transport.local_endpoint)
        assert survivor_uri in reborn.node.bootstrap_uris
        assert await _wait_for(lambda: reborn.node.in_ring), (
            "restarted node never rejoined through its cached peers")

        await reborn.shutdown("test")
        await survivor.shutdown("test")

    asyncio.run(scenario())


def test_shutdown_notifies_peers_and_drops_state_fast(tmp_path):
    """Graceful drain sends close-notify: the surviving peer drops the
    connection immediately instead of waiting out liveness_timeout."""
    async def scenario():
        a = WowDaemon("10.128.0.2", config=FAST, name="a")
        await a.start()
        seed = Uri.udp(*a.transport.local_endpoint)
        b = WowDaemon("10.128.0.3", seed_uris=[seed], config=FAST, name="b")
        await b.start()
        assert await _wait_for(lambda: a.node.in_ring and b.node.in_ring)

        b_addr = b.node.addr
        await b.shutdown("drill")
        # far sooner than liveness_timeout (3s here, 90s in production)
        assert await _wait_for(
            lambda: b_addr not in a.node.table, timeout=1.0), (
            "close-notify did not drop peer state promptly")
        await a.shutdown("test")

    asyncio.run(scenario())


def test_cache_file_written_on_timer(tmp_path):
    async def scenario():
        a = WowDaemon("10.128.0.2", config=FAST, name="a")
        await a.start()
        seed = Uri.udp(*a.transport.local_endpoint)
        b = WowDaemon("10.128.0.3", seed_uris=[seed], config=FAST, name="b",
                      peer_cache_path=str(tmp_path / "b.json"),
                      cache_interval=0.2)
        await b.start()
        assert await _wait_for(lambda: b.node.in_ring)
        assert await _wait_for(
            lambda: os.path.exists(tmp_path / "b.json"), timeout=5.0), (
            "timer never persisted the peer cache")
        await b.shutdown("test")
        await a.shutdown("test")

    asyncio.run(scenario())
