"""Shared experiment scaffolding."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.brunet.config import BrunetConfig
from repro.core.config import CalibrationConfig
from repro.core.testbed import Testbed, build_paper_testbed
from repro.sim.engine import Simulator


@dataclass
class ExperimentSetup:
    """A warmed-up paper testbed ready for measurements."""

    sim: Simulator
    testbed: Testbed
    #: inline invariant auditor (``make_testbed(audit=True)``), else None
    auditor: Optional[object] = None

    @property
    def deployment(self):
        return self.testbed.deployment

    @property
    def calib(self) -> CalibrationConfig:
        return self.testbed.deployment.calib

    def finish_audit(self) -> list:
        """Final audit sweep; returns all violations (empty when clean
        or when auditing is off)."""
        return self.auditor.finish() if self.auditor is not None else []


def make_testbed(seed: int = 0, scale: float = 1.0,
                 shortcuts: bool = True,
                 trace: bool = False,
                 calib: Optional[CalibrationConfig] = None,
                 settle: float = 120.0,
                 audit: bool = False) -> ExperimentSetup:
    """Build and warm up a testbed.

    ``scale`` shrinks the PlanetLab overlay (compute nodes stay at 33 —
    the paper's cluster size matters for the application results; only the
    bootstrap overlay is safely shrinkable).

    ``audit`` attaches a read-only invariant auditor over the deployment's
    current node population (joiner VMs included as they register); it
    starts sweeping *after* warmup so bootstrap transients are not graded.
    """
    n_routers = max(12, int(round(118 * scale)))
    n_hosts = max(4, int(round(20 * scale)))
    sim = Simulator(seed=seed, trace=trace)
    brunet = BrunetConfig(shortcuts_enabled=shortcuts)
    testbed = build_paper_testbed(sim, calib=calib, brunet_config=brunet,
                                  n_planetlab_routers=n_routers,
                                  n_planetlab_hosts=n_hosts)
    testbed.run_warmup(settle=settle)
    auditor = None
    if audit:
        from repro.check import Auditor
        dep = testbed.deployment
        auditor = Auditor(sim, lambda: list(dep.nodes_by_addr.values()),
                          internet=dep.internet).start()
    return ExperimentSetup(sim, testbed, auditor=auditor)


def run_until_signal(sim: Simulator, signal, timeout: float) -> bool:
    """Run the simulation until ``signal`` fires (returns True) or
    ``timeout`` simulated seconds elapse (returns False).

    Stops the event loop the moment the signal fires — without this, a
    bounded ``run(until=...)`` would keep simulating keep-alive traffic for
    the whole horizon after the measurement finished.
    """
    if signal.fired:
        return True
    signal.wait_callback(lambda _v: sim.stop())
    sim.run(until=sim.now + timeout)
    return signal.fired


def fmt_row(cells: list, widths: list[int]) -> str:
    """One fixed-width table row."""
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def print_table(title: str, header: list, rows: list[list]) -> None:
    """Render a fixed-width table like the paper's."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(header)]
    print(f"\n=== {title} ===")
    print(fmt_row(header, widths))
    print(fmt_row(["-" * w for w in widths], widths))
    for row in rows:
        print(fmt_row(row, widths))
