"""Internet datagram routing across sites, NAT chains, firewalls."""

import pytest

from repro.phys import Endpoint, Internet, NatSpec, Site
from repro.phys.nat import FirewallPolicy, Nat
from repro.sim import Simulator


@pytest.fixture
def world():
    sim = Simulator(seed=3)
    net = Internet(sim)
    return sim, net


def recv_log(host, port):
    log = []
    host.bind_udp(port, lambda p, src, sz: log.append((p, src)))
    return log


def test_public_to_public_delivery(world):
    sim, net = world
    site = Site(net, "pub")
    a, b = site.add_host("a"), site.add_host("b")
    log = recv_log(b, 1000)
    a.bind_udp(1000, lambda *a_: None)
    a.sockets[1000].send(Endpoint(b.ip, 1000), "hi", 10)
    sim.run()
    assert log == [("hi", Endpoint(a.ip, 1000))]


def test_private_to_public_snat_and_reply(world):
    sim, net = world
    priv = Site(net, "campus", subnet="10.9.", nat_spec=NatSpec.cone())
    pub = Site(net, "pub")
    a, b = priv.add_host("a"), pub.add_host("b")
    blog = recv_log(b, 1000)
    alog = recv_log(a, 1000)
    a.sockets[1000].send(Endpoint(b.ip, 1000), "req", 10)
    sim.run()
    (_, observed), = blog
    assert observed.ip == priv.nat.public_ip  # source was translated
    b.sockets[1000].send(observed, "resp", 10)
    sim.run()
    assert [p for p, _ in alog] == ["resp"]


def test_intra_site_bypasses_nat(world):
    sim, net = world
    priv = Site(net, "campus", subnet="10.9.", nat_spec=NatSpec.cone())
    a, b = priv.add_host("a"), priv.add_host("b")
    blog = recv_log(b, 1000)
    a.bind_udp(1000, lambda *a_: None)
    a.sockets[1000].send(Endpoint(b.ip, 1000), "lan", 10)
    sim.run()
    (_, observed), = blog
    assert observed == Endpoint(a.ip, 1000)  # untranslated


def test_hairpin_dropped_without_support(world):
    sim, net = world
    priv = Site(net, "ufl", subnet="10.9.",
                nat_spec=NatSpec.cone(hairpin=False))
    pub = Site(net, "pub")
    a, b = priv.add_host("a"), priv.add_host("b")
    ext = pub.add_host("ext")
    # establish b's public mapping via an outbound packet
    elog = recv_log(ext, 500)
    b.bind_udp(600, lambda *a_: None)
    b.sockets[600].send(Endpoint(ext.ip, 500), "x", 10)
    sim.run()
    (_, b_pub), = elog
    # a sends to b's NAT-assigned public endpoint: hairpin → dropped
    a.bind_udp(700, lambda *a_: None)
    a.sockets[700].send(b_pub, "hair", 10)
    sim.run()
    assert net.drops[f"hairpin:{priv.nat.name}"] == 1


def test_hairpin_delivered_with_support(world):
    sim, net = world
    priv = Site(net, "nwu", subnet="10.9.",
                nat_spec=NatSpec.cone(hairpin=True))
    pub = Site(net, "pub")
    a, b = priv.add_host("a"), priv.add_host("b")
    ext = pub.add_host("ext")
    elog = recv_log(ext, 500)
    blog = recv_log(b, 600)
    b.sockets[600].send(Endpoint(ext.ip, 500), "x", 10)
    sim.run()
    (_, b_pub), = elog
    # hole-punch: b must have contacted a's public mapping for filtering
    a.bind_udp(700, lambda *a_: None)
    a.sockets[700].send(Endpoint(ext.ip, 500), "y", 10)
    sim.run()
    a_pub = elog[-1][1]
    b.sockets[600].send(a_pub, "punch", 10)  # opens b's filter toward a
    sim.run()
    a.sockets[700].send(b_pub, "hairpinned", 10)
    sim.run()
    assert ("hairpinned", a_pub) in blog


def test_unroutable_destination_counted(world):
    sim, net = world
    site = Site(net, "pub")
    a = site.add_host("a")
    a.bind_udp(1, lambda *a_: None)
    a.sockets[1].send(Endpoint("99.99.99.99", 5), "void", 10)
    sim.run()
    assert net.drops["unroutable"] == 1


def test_firewall_blocks_foreign_inbound(world):
    sim, net = world
    fw_site = Site(net, "ncgrid",
                   firewall=FirewallPolicy(open_udp_ports=frozenset({14001})))
    pub = Site(net, "pub")
    a = fw_site.add_host("a")
    b = pub.add_host("b")
    open_log = recv_log(a, 14001)
    closed_log = recv_log(a, 2000)
    b.bind_udp(1, lambda *a_: None)
    b.sockets[1].send(Endpoint(a.ip, 14001), "ok", 10)
    b.sockets[1].send(Endpoint(a.ip, 2000), "blocked", 10)
    sim.run()
    assert [p for p, _ in open_log] == ["ok"]
    assert closed_log == []
    # intra-site traffic is not firewalled
    c = fw_site.add_host("c")
    c.bind_udp(1, lambda *a_: None)
    c.sockets[1].send(Endpoint(a.ip, 2000), "lan", 10)
    sim.run()
    assert [p for p, _ in closed_log] == ["lan"]


def test_nat_chain_two_levels(world):
    """Guest behind VMware NAT behind a home-router NAT."""
    sim, net = world
    home = Site(net, "home", subnet="10.6.", nat_spec=NatSpec.cone())
    pub = Site(net, "pub")
    vmware = Nat("vmware", "10.6.0.1", "10.6.200.", NatSpec.cone(),
                 clock=lambda: sim.now)
    net.register_nat(vmware)
    guest = home.add_host("guest", ip="10.6.200.2", extra_nats=[vmware])
    ext = pub.add_host("ext")
    elog = recv_log(ext, 500)
    glog = recv_log(guest, 600)
    guest.sockets[600].send(Endpoint(ext.ip, 500), "out", 10)
    sim.run()
    (_, g_pub), = elog
    assert g_pub.ip == home.nat.public_ip  # outermost NAT's address
    ext.sockets[500].send(g_pub, "back", 10)
    sim.run()
    assert [p for p, _ in glog] == ["back"]


def test_host_down_drops(world):
    sim, net = world
    site = Site(net, "pub")
    a, b = site.add_host("a"), site.add_host("b")
    recv_log(b, 9)
    b.shutdown()
    a.bind_udp(9, lambda *a_: None)
    a.sockets[9].send(Endpoint(b.ip, 9), "gone", 10)
    sim.run()
    assert net.drops["unroutable"] + net.drops["host-down"] >= 1
