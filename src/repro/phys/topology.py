"""Sites: named network domains with a LAN, optional NAT and firewall.

A site groups hosts that share a campus/home network.  Private sites get a
NAT device translating a site subnet to a public IP; guests at a site may
additionally sit behind nested (e.g. VMware) NATs — those are created by the
VM layer and simply prepended to a host's ``nat_chain``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.phys.endpoints import IpAllocator
from repro.phys.nat import FirewallPolicy, Nat, NatSpec
from repro.sim.units import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.phys.host import Host
    from repro.phys.network import Internet


class Site:
    """One administrative domain (campus, PlanetLab slice, home network)."""

    def __init__(self, internet: "Internet", name: str,
                 subnet: Optional[str] = None,
                 public_prefix: Optional[str] = None,
                 nat_spec: Optional[NatSpec] = None,
                 firewall: Optional[FirewallPolicy] = None,
                 lan_latency: float = ms(0.3)):
        self.internet = internet
        self.name = name
        self.lan_latency = lan_latency
        self.firewall = firewall
        self.hosts: list["Host"] = []
        self.nat: Optional[Nat] = None
        self._private_alloc: Optional[IpAllocator] = None
        self._public_alloc: Optional[IpAllocator] = None

        if nat_spec is not None:
            if subnet is None:
                raise ValueError(f"site {name}: NATed site needs a subnet")
            public_ip = internet.allocate_public_ip()
            self.nat = Nat(f"nat.{name}", public_ip, subnet, nat_spec,
                           clock=lambda: internet.sim.now)
            internet.register_nat(self.nat)
            self._private_alloc = IpAllocator(subnet)
        else:
            # public site: hosts get globally routable addresses
            self._public_alloc = IpAllocator(
                public_prefix or internet.allocate_public_prefix())

    @property
    def is_private(self) -> bool:
        """True when the site sits behind a NAT."""
        return self.nat is not None

    def allocate_ip(self) -> str:
        """Next host address (private subnet or public prefix)."""
        if self._private_alloc is not None:
            return self._private_alloc.allocate()
        assert self._public_alloc is not None
        return self._public_alloc.allocate()

    def add_host(self, name: str, *, ip: Optional[str] = None,
                 cpu_speed: float = 1.0, proc_delay_mean: float = 0.0,
                 extra_loss: float = 0.0,
                 extra_nats: Optional[list[Nat]] = None) -> "Host":
        """Create a host at this site.

        ``extra_nats`` are inner NATs (innermost first) placed *before* the
        site NAT in the host's chain — the VM layer uses this for VMware
        NAT interfaces.
        """
        from repro.phys.host import Host  # local import to avoid cycle
        chain: list[Nat] = list(extra_nats or [])
        if self.nat is not None:
            chain.append(self.nat)
        host = Host(name, ip or self.allocate_ip(), self, self.internet,
                    nat_chain=chain, cpu_speed=cpu_speed,
                    proc_delay_mean=proc_delay_mean, extra_loss=extra_loss)
        self.hosts.append(host)
        return host

    def __repr__(self) -> str:  # pragma: no cover
        kind = "private" if self.is_private else "public"
        return f"<Site {self.name} {kind} hosts={len(self.hosts)}>"
