"""Codec round-trip property tests: seeded fuzz over every message type.

For every protocol message type the invariant is
``decode(encode(m)) == m``; truncated or corrupted buffers must raise the
typed :class:`~repro.wire.DecodeError` and nothing else.
"""

import random

import pytest

from repro.brunet.address import ADDRESS_SPACE, BrunetAddress
from repro.brunet.messages import (
    CloseMessage,
    CtmReply,
    CtmRequest,
    Forward,
    IpEncap,
    LinkError,
    LinkReply,
    LinkRequest,
    PingReply,
    PingRequest,
    RoutedPacket,
)
from repro.brunet.uri import Uri
from repro.ipop.ippacket import IcmpEcho, VirtualIpPacket
from repro.obs.spans import TraceRef
from repro.wire import DecodeError, WIRE_VERSION, decode, encode

# ---------------------------------------------------------------------------
# seeded generators, one per message type
# ---------------------------------------------------------------------------

def _addr(rng: random.Random) -> BrunetAddress:
    return BrunetAddress(rng.randrange(0, ADDRESS_SPACE))


def _uri(rng: random.Random) -> Uri:
    return Uri.udp(f"10.{rng.randrange(256)}.{rng.randrange(256)}."
                   f"{rng.randrange(1, 255)}", rng.randrange(1, 65536))


def _uris(rng: random.Random) -> list:
    return [_uri(rng) for _ in range(rng.randrange(0, 4))]


def _trace(rng: random.Random):
    if rng.random() < 0.5:
        return None
    return TraceRef(rng.randrange(1 << 63), rng.randrange(1 << 63))


def _conn_type(rng: random.Random) -> str:
    return rng.choice(["leaf", "structured.near", "structured.far",
                       "structured.shortcut"])


def _icmp(rng: random.Random) -> IcmpEcho:
    return IcmpEcho(rng.randrange(1 << 31), rng.random() < 0.5,
                    rng.random() * 1e4, rng.randrange(8, 1400))


def _vip(rng: random.Random) -> VirtualIpPacket:
    payload = rng.choice([
        None, "text-payload", b"\x00\x01raw", _icmp(rng),
        {"op": "rpc", "args": [1, 2.5, "x"]},  # falls back to OPAQUE
    ])
    return VirtualIpPacket(
        f"10.128.0.{rng.randrange(2, 255)}", f"10.128.1.{rng.randrange(2, 255)}",
        rng.choice(["icmp", "udp", "tcp"]), rng.randrange(0, 65536),
        payload, rng.randrange(0, 65536))


GENERATORS = {
    LinkRequest: lambda rng: LinkRequest(
        rng.randrange(1, 1 << 40), _addr(rng), _uris(rng), _conn_type(rng),
        _trace(rng)),
    LinkReply: lambda rng: LinkReply(
        rng.randrange(1, 1 << 40), _addr(rng), _uris(rng), _uri(rng),
        _conn_type(rng), _trace(rng)),
    LinkError: lambda rng: LinkError(
        rng.randrange(1, 1 << 40), _addr(rng), rng.choice(["busy", ""])),
    CloseMessage: lambda rng: CloseMessage(
        _addr(rng), rng.choice(["", "shutdown", "trimmed"])),
    PingRequest: lambda rng: PingRequest(rng.randrange(1, 1 << 40),
                                         _addr(rng)),
    PingReply: lambda rng: PingReply(
        rng.randrange(1, 1 << 40), _addr(rng), _uri(rng),
        rng.random() < 0.5),
    CtmRequest: lambda rng: CtmRequest(
        rng.randrange(1, 1 << 40), _addr(rng), _uris(rng), _conn_type(rng),
        reply_via=_addr(rng) if rng.random() < 0.5 else None,
        fanout=rng.randrange(0, 3)),
    CtmReply: lambda rng: CtmReply(
        rng.randrange(1, 1 << 40), _addr(rng), _uris(rng), _conn_type(rng)),
    IpEncap: lambda rng: IpEncap(_vip(rng), rng.randrange(0, 65536)),
    Forward: lambda rng: Forward(
        _addr(rng),
        CtmReply(rng.randrange(1, 1 << 40), _addr(rng), _uris(rng),
                 _conn_type(rng)),
        rng.randrange(0, 65536)),
    VirtualIpPacket: _vip,
    IcmpEcho: _icmp,
    RoutedPacket: lambda rng: RoutedPacket(
        src=_addr(rng), dest=_addr(rng),
        payload=rng.choice([
            CtmRequest(rng.randrange(1, 1 << 40), _addr(rng), _uris(rng),
                       _conn_type(rng)),
            IpEncap(_vip(rng), rng.randrange(0, 65536)),
            None,
        ]),
        size=rng.randrange(0, 65536), exact=rng.random() < 0.5,
        exclude_dest_link=rng.random() < 0.5,
        approach=rng.choice([None, "left", "right"]),
        ttl=rng.randrange(1, 64), hops=rng.randrange(0, 64),
        via=[_addr(rng) for _ in range(rng.randrange(0, 4))],
        trace=_trace(rng)),
}


def _sample_messages(seed: int = 0, per_type: int = 25) -> list:
    rng = random.Random(seed)
    return [gen(rng) for gen in GENERATORS.values() for _ in range(per_type)]


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("msg_type", list(GENERATORS), ids=lambda t: t.__name__)
def test_roundtrip_every_type(msg_type):
    rng = random.Random(hash(msg_type.__name__) & 0xFFFF)
    for _ in range(50):
        msg = GENERATORS[msg_type](rng)
        buf = encode(msg)
        assert buf[0] == WIRE_VERSION
        assert decode(buf) == msg


def test_roundtrip_is_deterministic():
    rng_a, rng_b = random.Random(9), random.Random(9)
    for gen in GENERATORS.values():
        assert encode(gen(rng_a)) == encode(gen(rng_b))


def test_opaque_fallback_roundtrips_arbitrary_payloads():
    msg = IpEncap({"dht": ("put", "key", [1, 2, 3])}, 128)
    assert decode(encode(msg)) == msg


def test_deeply_nested_forward():
    rng = random.Random(4)
    inner = Forward(_addr(rng), IpEncap(_vip(rng), 9), 77)
    pkt = RoutedPacket(src=_addr(rng), dest=_addr(rng), payload=inner,
                       size=100, exact=True)
    assert decode(encode(pkt)) == pkt


# ---------------------------------------------------------------------------
# malformed input → typed DecodeError
# ---------------------------------------------------------------------------

def test_decode_error_is_a_value_error():
    assert issubclass(DecodeError, ValueError)


def test_every_truncation_raises_decode_error():
    for msg in _sample_messages(seed=1, per_type=3):
        buf = encode(msg)
        for cut in range(len(buf)):
            with pytest.raises(DecodeError):
                decode(buf[:cut])


def test_bad_version_byte():
    buf = encode(PingRequest(1, BrunetAddress(42)))
    with pytest.raises(DecodeError, match="version"):
        decode(bytes([WIRE_VERSION + 1]) + buf[1:])


def test_unknown_type_tag():
    with pytest.raises(DecodeError, match="tag"):
        decode(bytes([WIRE_VERSION, 250]))


def test_trailing_garbage_rejected():
    buf = encode(PingRequest(1, BrunetAddress(42)))
    with pytest.raises(DecodeError, match="trailing"):
        decode(buf + b"\x00")


def test_corrupted_bytes_never_raise_anything_else():
    rng = random.Random(2)
    for msg in _sample_messages(seed=2, per_type=2):
        buf = bytearray(encode(msg))
        for _ in range(20):
            corrupt = bytearray(buf)
            for _ in range(rng.randrange(1, 4)):
                corrupt[rng.randrange(len(corrupt))] = rng.randrange(256)
            try:
                decode(bytes(corrupt))
            except DecodeError:
                pass  # the only acceptable exception

def test_non_buffer_input():
    with pytest.raises(DecodeError):
        decode(12345)


def test_malformed_utf8_string_field():
    msg = CloseMessage(BrunetAddress(7), "reason")
    buf = bytearray(encode(msg))
    buf[-1] = 0xFF  # last byte of the reason string: invalid UTF-8 start
    with pytest.raises(DecodeError):
        decode(bytes(buf))


def test_malformed_opaque_pickle():
    msg = IpEncap({"k": "v"}, 1)
    buf = bytearray(encode(msg))
    # clobber the middle of the pickle blob
    mid = len(buf) // 2
    buf[mid:mid + 3] = b"\xff\xff\xff"
    try:
        decode(bytes(buf))
    except DecodeError:
        pass  # typed failure is the requirement; a lucky decode is fine
