"""RealtimeKernel: the simulator surface, backed by asyncio + wall clock.

Protocol code (``BrunetNode``, the linker, the overlords, ``IpopRouter``)
consumes a narrow slice of :class:`~repro.sim.engine.Simulator`:

- ``now`` and ``schedule(delay, fn, *args)`` returning a cancellable handle
- ``rng`` — the named-stream :class:`~repro.sim.rng.RngRegistry`
- ``obs`` — metrics / spans / flight recorder
- ``tracer`` / ``trace()`` / ``trace_on``

This class implements exactly that slice over a running asyncio event
loop, so the identical node objects drive real UDP sockets.  Time is
relative to kernel creation (``loop.time() - t0``), which keeps timer
arithmetic in the same small-positive-float regime the simulator uses.

It is intentionally *not* a subclass of ``Simulator`` — the discrete
event queue, the timer wheel and ``run()`` make no sense under a wall
clock.  Anything outside the slice above raises ``AttributeError``
loudly rather than silently misbehaving.
"""

from __future__ import annotations

import asyncio
import json
from time import perf_counter
from typing import Any, Callable, Optional

from repro.obs.hub import Observability
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class _Handle:
    """Duck-type of :class:`repro.sim.engine.Event` over ``call_later``.

    Mirrors the sim handle's three states (pending / fired / cancelled):
    protocol code that inspects a handle to decide whether a resend or
    maintenance timer is still armed must read the same answer live as
    in sim.  The kernel marks ``fired`` when the callback runs.
    """

    __slots__ = ("_timer", "cancelled", "fired")

    def __init__(self):
        self._timer: Optional[asyncio.TimerHandle] = None
        self.cancelled = False
        self.fired = False

    @property
    def pending(self) -> bool:
        """True while the callback is still scheduled to run."""
        return not self.cancelled and not self.fired

    def cancel(self) -> None:
        """Idempotent; a no-op once the handle has fired (matching
        :meth:`repro.sim.engine.Event.cancel`)."""
        if not self.cancelled and not self.fired:
            self.cancelled = True
            self._timer.cancel()


class RealtimeKernel:
    """Wall-clock stand-in for ``Simulator`` (see module docstring)."""

    def __init__(self, seed: int = 0,
                 loop: Optional[asyncio.AbstractEventLoop] = None):
        self.loop = loop or asyncio.get_running_loop()
        self._t0 = self.loop.time()
        self.rng = RngRegistry(seed)
        self.tracer = Tracer(enabled=False)
        self.obs = Observability(self, metrics=True)
        self.events_processed = 0
        #: mirrors ``Simulator.executing``; subsystems use it to coalesce
        #: work until the end of the current callback
        self.executing = False
        #: optional :class:`~repro.obs.prof.KernelProfiler` (same hook
        #: contract as ``Simulator.profiler``: every fired callback is
        #: counted, every stride-th one wall-timed into it)
        self.profiler = None
        self._stats_transport: Optional[asyncio.DatagramTransport] = None

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Seconds since kernel creation (monotonic)."""
        return self.loop.time() - self._t0

    # -- scheduling ------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> _Handle:
        """Run ``fn(*args)`` after ``delay`` wall-clock seconds."""
        handle = _Handle()
        handle._timer = self.loop.call_later(
            max(0.0, delay), self._fire, handle, fn, args)
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    priority: int = 0) -> _Handle:
        """Run ``fn(*args)`` at absolute kernel time ``time``."""
        return self.schedule(time - self.now, fn, *args, priority=priority)

    def _fire(self, handle: _Handle, fn: Callable[..., Any],
              args: tuple) -> None:
        handle.fired = True
        self.events_processed += 1
        self.executing = True
        prof = self.profiler
        if prof is None:
            try:
                fn(*args)
            finally:
                self.executing = False
        else:
            tick = prof._stride_tick - 1
            if tick:
                prof._stride_tick = tick
                try:
                    fn(*args)
                finally:
                    self.executing = False
            else:
                prof._stride_tick = prof.stride
                t0 = perf_counter()
                try:
                    fn(*args)
                finally:
                    self.executing = False
                    prof.account(fn, perf_counter() - t0, self)

    # -- stats socket -----------------------------------------------------
    async def serve_stats(self, host: str = "127.0.0.1", port: int = 0,
                          public: bool = False,
                          max_bytes: int = 8192) -> tuple[str, int]:
        """Expose a UDP stats socket: a datagram is answered with one
        JSON snapshot (see :func:`repro.obs.top.build_stats`) — the
        attach point for ``python -m repro.obs.top --connect ip:port``
        against a long-running daemon.  Returns the bound ``(ip, port)``.

        By default only loopback sources are answered; pass
        ``public=True`` to answer anyone (the snapshot leaks topology
        detail, so this is opt-in).  Replies are capped at ``max_bytes``
        — an unconditional multi-kB answer to a one-byte datagram is a
        UDP amplification primitive.
        """
        transport, _ = await self.loop.create_datagram_endpoint(
            lambda: _StatsProtocol(self, public=public, max_bytes=max_bytes),
            local_addr=(host, port))
        self._stats_transport = transport
        sockname = transport.get_extra_info("sockname")
        return sockname[0], sockname[1]

    def close_stats(self) -> None:
        """Tear down the stats socket (idempotent)."""
        if self._stats_transport is not None:
            self._stats_transport.close()
            self._stats_transport = None

    # -- tracing ---------------------------------------------------------
    @property
    def trace_on(self) -> bool:
        """Always False: the structured tracer is a sim-analysis tool."""
        return self.tracer.enabled

    def trace(self, category: str, **data: Any) -> None:
        """No-op under the wall clock (tracer is constructed disabled)."""
        self.tracer.record(self.now, category, data)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RealtimeKernel t={self.now:.3f}>"


class _StatsProtocol(asyncio.DatagramProtocol):
    """Datagram responder behind :meth:`RealtimeKernel.serve_stats`.

    Hardened for the open internet even though it defaults to loopback:
    ``transport`` is initialized eagerly (a datagram racing
    ``connection_made`` is dropped, not an AttributeError), non-loopback
    sources are ignored unless ``public``, and the reply is capped at
    ``max_bytes`` by progressively shedding snapshot detail.
    """

    def __init__(self, kernel: "RealtimeKernel", public: bool = False,
                 max_bytes: int = 8192):
        self.kernel = kernel
        self.public = public
        self.max_bytes = max_bytes
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def connection_lost(self, exc) -> None:  # pragma: no cover - teardown
        self.transport = None

    @staticmethod
    def _is_loopback(ip: str) -> bool:
        return ip.startswith("127.") or ip in ("::1", "localhost")

    def _snapshot(self) -> bytes:
        from repro.obs.top import build_stats
        try:
            payload = json.dumps(build_stats(self.kernel),
                                 sort_keys=True).encode()
            if len(payload) <= self.max_bytes:
                return payload
            # shed detail until the reply fits: first the per-node /
            # sector / profiler tables, then everything but the header
            slim = build_stats(self.kernel, top_nodes=0)
            slim.pop("sectors", None)
            slim.pop("profile", None)
            payload = json.dumps(slim, sort_keys=True).encode()
            if len(payload) <= self.max_bytes:
                return payload
            minimal = {"t": self.kernel.now,
                       "events": self.kernel.events_processed,
                       "sums": {}, "nodes": [], "truncated": True}
            return json.dumps(minimal, sort_keys=True).encode()
        except Exception:  # pragma: no cover - stats must not kill
            return b"{}"

    def datagram_received(self, data: bytes, addr) -> None:
        if self.transport is None:
            return
        if not self.public and not self._is_loopback(addr[0]):
            return
        self.transport.sendto(self._snapshot()[:self.max_bytes], addr)
