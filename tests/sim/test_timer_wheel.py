"""Timer-wheel kernel: byte-identical semantics vs the plain heap.

The wheel is an optimisation only — every test here asserts the hybrid
queue produces exactly the event stream of the pure binary heap.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator


def _run_workload(timer_wheel: bool, spec) -> list:
    """spec: list of (delay, priority, cancel) — scheduled up front, some
    events also reschedule children (mixing wheel and heap residency)."""
    sim = Simulator(seed=0, trace=False, timer_wheel=timer_wheel)
    fired: list = []
    events = []

    def fire(tag):
        fired.append((sim.now, tag))
        # periodic-timer shape: far-future child that may be cancelled
        if tag % 3 == 0:
            child = sim.schedule(7.5, fire, tag + 1000)
            if tag % 6 == 0:
                child.cancel()

    for i, (delay, priority, cancel) in enumerate(spec):
        events.append((sim.schedule(delay, fire, i, priority=priority),
                       cancel))
    for ev, cancel in events:
        if cancel:
            ev.cancel()
    sim.run(until=100.0)
    sim.run()
    return fired


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.floats(0.0, 40.0, allow_nan=False),
                          st.integers(-2, 2), st.booleans()),
                min_size=1, max_size=50))
def test_wheel_and_heap_fire_identically(spec):
    assert _run_workload(True, spec) == _run_workload(False, spec)


def test_wheel_events_keep_global_fifo_order():
    """Events landing in the same wheel bucket fire in seq order even when
    interleaved with heap-resident events at the same times."""
    for wheel in (True, False):
        sim = Simulator(timer_wheel=wheel)
        order = []
        sim.schedule(5.0, order.append, "a")       # wheel bucket 5
        sim.schedule(5.0, order.append, "b")       # same bucket, later seq
        sim.schedule(5.0, order.append, "hi", priority=-1)
        sim.schedule(0.2, lambda: sim.schedule(4.8, order.append, "c"))
        sim.run()
        assert order == ["hi", "a", "b", "c"], f"timer_wheel={wheel}"


def test_pending_counter_matches_brute_force():
    sim = Simulator(trace=False)
    events = []
    for i in range(500):
        events.append(sim.schedule(float(i % 50) + (i % 7) * 10.0,
                                   lambda: None))
    for ev in events[::3]:
        ev.cancel()
    for ev in events[::3]:
        ev.cancel()  # idempotent: no double decrement
    assert sim.pending() == sum(1 for _ in sim.iter_pending())
    assert sim.pending() == len(events) - len(events[::3])
    sim.run(until=25.0)
    assert sim.pending() == sum(1 for _ in sim.iter_pending())
    sim.run()
    assert sim.pending() == 0


def test_lazy_compaction_keeps_heap_small():
    """Cancelling most of a large heap triggers a rebuild that sheds the
    tombstones without losing or reordering the survivors."""
    sim = Simulator(trace=False, timer_wheel=False)  # all events heap-resident
    keep, cancelled = [], []
    for i in range(2000):
        ev = sim.schedule(float(i) * 0.01, (keep if i % 10 == 0
                                            else cancelled).append, i)
        if i % 10 != 0:
            ev.cancel()
    assert len(sim._queue) < 2000  # compaction ran
    sim.run()
    assert cancelled == []
    assert keep == list(range(0, 2000, 10))


def test_cancel_inside_wheel_bucket_never_fires():
    sim = Simulator(trace=False)
    hits = []
    far = sim.schedule(50.0, hits.append, "far")
    sim.schedule(49.0, far.cancel)
    sim.schedule(51.0, hits.append, "after")
    sim.run()
    assert hits == ["after"]


def test_wheel_handles_fractional_granularity():
    sim = Simulator(trace=False, wheel_granularity=0.25)
    order = []
    for d in (0.9, 0.1, 2.6, 2.4, 10.0):
        sim.schedule(d, order.append, d)
    sim.run()
    assert order == sorted(order)


def test_default_timer_wheel_class_switch():
    try:
        Simulator.default_timer_wheel = False
        assert not Simulator(trace=False)._use_wheel
    finally:
        Simulator.default_timer_wheel = True
    assert Simulator(trace=False)._use_wheel
