"""Overlay invariant auditor.

Inline (:class:`Auditor` sampling a live simulation) and post-hoc
(:func:`audit_bundle` over an obs export directory) checks of the
ring/routing consistency properties the WOW overlay must self-restore:
ring consistency, connection symmetry, routing convergence, next-hop
cache coherence, and resource-leak freedom.  See
:mod:`repro.check.invariants` for the invariant catalog.
"""

from repro.check.auditor import ALL_CHECKS, AuditConfig, Auditor
from repro.check.invariants import Violation

__all__ = ["ALL_CHECKS", "AuditConfig", "Auditor", "Violation",
           "audit_bundle"]


def __getattr__(name):
    # lazy: keeps ``python -m repro.check.posthoc`` free of the runpy
    # already-in-sys.modules warning
    if name == "audit_bundle":
        from repro.check.posthoc import audit_bundle
        return audit_bundle
    raise AttributeError(name)
