"""CSV export through the experiment CLI."""

import csv
from pathlib import Path

from repro.experiments import run_all


def test_fig6_csv_export(tmp_path, capsys):
    out_dir = tmp_path / "csv"
    assert run_all.main(["fig6", "--scale", "0.15", "--seed", "4",
                         "--csv-dir", str(out_dir)]) == 0
    capsys.readouterr()
    csv_file = out_dir / "fig6_scp_size.csv"
    assert csv_file.exists()
    with open(csv_file) as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["series", "x", "y"]
    assert len(rows) > 10
    # monotone non-decreasing client file size
    ys = [float(r[2]) for r in rows[1:]]
    assert all(b >= a for a, b in zip(ys, ys[1:]))
    # the stall plateau exists: at least two consecutive equal samples
    assert any(abs(b - a) < 1.0 for a, b in zip(ys, ys[1:]) if a > 0)
