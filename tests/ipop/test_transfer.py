"""OverlayTransfer: path-aware flows, re-pathing, stall/resume."""

import pytest

from repro.ipop import OverlayTransfer
from repro.sim.units import KB, MB
from tests.conftest import make_mini_testbed


@pytest.fixture(scope="module")
def bed():
    return make_mini_testbed(seed=42)


def test_transfer_completes_and_reports_rate(bed):
    sim, tb = bed
    broker = tb.deployment.broker
    a, b = tb.vm(3), tb.vm(4)  # both UFL
    xfer = OverlayTransfer(broker, a.addr, b.addr, MB(2.0), name="t1")
    sim.run(until=sim.now + 600)
    assert xfer.completed
    assert xfer.mean_rate() > KB(50)


def test_transfer_uses_direct_path_when_shortcut_exists(bed):
    sim, tb = bed
    broker = tb.deployment.broker
    a, b = tb.vm(5), tb.vm(6)
    xfer = OverlayTransfer(broker, a.addr, b.addr, MB(8.0), name="t2")
    sim.run(until=sim.now + 600)
    assert xfer.completed
    # the flow itself triggers shortcut creation; by the end it must have
    # been re-pathed to a single hop
    assert xfer.hop_count == 1 or xfer.mean_rate() > KB(500)


def test_rate_cap_respected(bed):
    sim, tb = bed
    broker = tb.deployment.broker
    a, b = tb.vm(7), tb.vm(8)
    xfer = OverlayTransfer(broker, a.addr, b.addr, KB(400),
                           rate_cap=KB(10), name="t3")
    t0 = sim.now
    sim.run(until=sim.now + 200)
    assert xfer.completed
    assert xfer.flow.finish_time - t0 >= 39.0  # 400KB at <=10KB/s


def test_transfer_stalls_when_destination_stops(bed):
    sim, tb = bed
    broker = tb.deployment.broker
    a, b = tb.vm(9), tb.vm(10)
    xfer = OverlayTransfer(broker, a.addr, b.addr, MB(40.0), name="t4")
    sim.run(until=sim.now + 20)
    assert not xfer.completed
    b.stop()
    sim.run(until=sim.now + 30)
    assert xfer.flow.paused
    rate_while_down = xfer.flow.rate
    assert rate_while_down == 0.0
    b.restart_ipop()
    sim.run(until=sim.now + 120)
    assert not xfer.flow.paused
    xfer.cancel()


def test_cancel_stops_ticks(bed):
    sim, tb = bed
    broker = tb.deployment.broker
    a, b = tb.vm(11), tb.vm(12)
    xfer = OverlayTransfer(broker, a.addr, b.addr, MB(50.0), name="t5")
    sim.run(until=sim.now + 10)
    xfer.cancel()
    assert xfer.cancelled
    sim.run(until=sim.now + 30)
    assert not xfer.completed
