"""Kernel event-loop semantics."""

import pytest

from repro.sim import Simulator, SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_priority_orders_simultaneous_events():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "low", priority=5)
    sim.schedule(1.0, order.append, "high", priority=-5)
    sim.run()
    assert order == ["high", "low"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    hits = []
    ev = sim.schedule(1.0, hits.append, 1)
    ev.cancel()
    sim.run()
    assert hits == []
    assert sim.pending() == 0


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert sim.pending() == 1
    sim.run()
    assert sim.now == 10.0


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    hits = []

    def chain(n):
        hits.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert hits == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_stop_halts_run():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, hits.append, 3)
    sim.run()
    assert hits == [1]
    assert sim.now == 2.0
    sim.run()
    assert hits == [1, 3]


def test_max_events_bound():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    sim.run(max_events=4)
    assert sim.events_processed == 4


def test_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_events_processed_counts():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 7
