"""Hosts, the latency model, endpoints/allocators."""

import numpy as np
import pytest

from repro.phys import Internet, Site
from repro.phys.endpoints import Endpoint, IpAllocator, ip_in_subnet
from repro.phys.latency import LatencyModel
from repro.sim import Simulator
from repro.sim.units import ms


def test_endpoint_str():
    assert str(Endpoint("1.2.3.4", 80)) == "1.2.3.4:80"


def test_ip_in_subnet_requires_dot_boundary():
    assert ip_in_subnet("10.5.1.7", "10.5.1")
    assert not ip_in_subnet("10.51.1.7", "10.5.1")


def test_allocator_sequential_and_bounded():
    alloc = IpAllocator("10.1.0.")
    assert alloc.allocate() == "10.1.0.2"
    assert alloc.allocate() == "10.1.0.3"
    for _ in range(300):
        try:
            alloc.allocate()
        except ValueError:
            break
    else:
        pytest.fail("allocator never exhausted")


class TestHost:
    def setup_method(self):
        self.sim = Simulator(seed=1)
        self.net = Internet(self.sim)
        self.site = Site(self.net, "pub")
        self.host = self.site.add_host("h", cpu_speed=2.0)

    def test_compute_time_inverse_speed(self):
        assert self.host.compute_time(10.0) == pytest.approx(5.0)

    def test_load_scales_compute(self):
        self.host.load = 1.5
        assert self.host.compute_time(10.0) == pytest.approx(12.5)

    def test_double_bind_rejected(self):
        self.host.bind_udp(5, lambda *a: None)
        with pytest.raises(ValueError):
            self.host.bind_udp(5, lambda *a: None)

    def test_ephemeral_ports_unique(self):
        ports = {self.host.ephemeral_port() for _ in range(100)}
        assert len(ports) == 100

    def test_closed_socket_raises_on_send(self):
        sock = self.host.bind_udp(6, lambda *a: None)
        sock.close()
        with pytest.raises(RuntimeError):
            sock.send(Endpoint("1.1.1.1", 1), "x")
        assert 6 not in self.host.sockets

    def test_processing_delay_zero_when_unloaded_model(self):
        rng = self.sim.rng.stream("t")
        assert self.host.processing_delay(rng) == 0.0
        loaded = self.site.add_host("pl", proc_delay_mean=ms(8.0))
        delays = [loaded.processing_delay(rng) for _ in range(500)]
        assert np.mean(delays) == pytest.approx(ms(8.0), rel=0.25)


class TestLatencyModel:
    def test_pair_override_and_default(self):
        rng = np.random.default_rng(0)
        lm = LatencyModel(rng, default_wan_latency=ms(25.0))
        lm.set_pair("a", "b", ms(10.0))
        assert lm.base_latency("a", "b") == ms(10.0)
        assert lm.base_latency("b", "a") == ms(10.0)  # symmetric
        assert lm.base_latency("a", "c") == ms(25.0)

    def test_intra_site_base_rejected(self):
        rng = np.random.default_rng(0)
        lm = LatencyModel(rng)
        with pytest.raises(ValueError):
            lm.base_latency("a", "a")

    def test_sampled_delay_positive_and_near_base(self):
        sim = Simulator(seed=9)
        net = Internet(sim)
        a_site, b_site = Site(net, "a"), Site(net, "b")
        net.latency.set_pair("a", "b", ms(20.0))
        a, b = a_site.add_host("a0"), b_site.add_host("b0")
        samples = [net.latency.sample_delay(a, b) for _ in range(300)]
        assert all(s > 0 for s in samples)
        assert np.mean(samples) == pytest.approx(ms(20.0), rel=0.15)

    def test_loss_probability_per_pair(self):
        rng = np.random.default_rng(0)
        lm = LatencyModel(rng, default_loss=0.0)
        lm.set_pair("a", "b", ms(5.0), loss=1.0)
        assert lm.loss_probability("a", "b") == 1.0
        assert lm.loss_probability("a", "c") == 0.0
        assert lm.loss_probability("a", "a") == 0.0
