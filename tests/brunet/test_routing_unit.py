"""Unit tests for the greedy decision function and approach routing."""

import pytest

from repro.brunet.address import ADDRESS_SPACE, BrunetAddress
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.routing import _metric, next_hop
from repro.brunet.table import ConnectionTable
from repro.phys.endpoints import Endpoint

ME = BrunetAddress(10_000)


def table_with(*addrs, me=ME):
    t = ConnectionTable(me)
    for a in addrs:
        t.add(Connection(BrunetAddress(a), Endpoint("1.1.1.1", 1),
                         ConnectionType.STRUCTURED_FAR, 0.0))
    return t


def test_direct_connection_wins():
    t = table_with(500, 2000)
    hop = next_hop(t, ME, BrunetAddress(2000))
    assert hop.peer_addr == 2000


def test_exclude_dest_link_skips_direct():
    t = table_with(2000, 1500)
    hop = next_hop(t, ME, BrunetAddress(2000), exclude_dest_link=True)
    assert hop.peer_addr == 1500


def test_local_minimum_returns_none():
    t = table_with(ME + 10_000_000)
    # I'm closer to dest than my only neighbour
    assert next_hop(t, ME, BrunetAddress(int(ME) + 5)) is None


def test_strictly_closer_required():
    # neighbour equidistant on the other side: not strictly closer
    dest = BrunetAddress(int(ME) + 100)
    t = table_with(int(ME) + 200)
    hop = next_hop(t, ME, dest)
    assert hop is None  # 100 vs 100: tie is not progress


def test_leaf_connections_never_route():
    t = ConnectionTable(ME)
    t.add(Connection(BrunetAddress(5000), Endpoint("1.1.1.1", 1),
                     ConnectionType.LEAF, 0.0))
    assert next_hop(t, ME, BrunetAddress(5001)) is None


class TestApproachMetric:
    def test_right_metric_is_clockwise_from_dest(self):
        dest = 100
        assert _metric(BrunetAddress(150), dest, "right") == 50
        assert _metric(BrunetAddress(50), dest, "right") \
            == ADDRESS_SPACE - 50

    def test_left_metric_is_counterclockwise(self):
        dest = 100
        assert _metric(BrunetAddress(50), dest, "left") == 50
        assert _metric(BrunetAddress(150), dest, "left") \
            == ADDRESS_SPACE - 50

    def test_right_approach_converges_to_successor(self):
        dest = BrunetAddress(1000)
        # me far left of dest; neighbours on both sides of dest
        me = BrunetAddress(900)
        t = table_with(1200, 1050, 990, me=me)
        hop = next_hop(t, me, dest, exclude_dest_link=True,
                       approach="right")
        assert hop.peer_addr == 1050  # closest clockwise of dest

    def test_left_approach_converges_to_predecessor(self):
        dest = BrunetAddress(1000)
        me = BrunetAddress(1100)
        t = table_with(990, 950, 1050, me=me)
        hop = next_hop(t, me, dest, exclude_dest_link=True, approach="left")
        assert hop.peer_addr == 990

    def test_approach_skips_destination_itself(self):
        dest = BrunetAddress(1000)
        me = BrunetAddress(900)
        t = table_with(1000, 1050, me=me)
        hop = next_hop(t, me, dest, approach="right")
        assert hop.peer_addr == 1050
