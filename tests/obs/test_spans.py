"""SpanCollector: sampling, hop re-parenting, trees, caps."""

from repro.obs.spans import Span, SpanCollector, TraceRef, span_tree


def test_disabled_collector_is_inert():
    sc = SpanCollector(enabled=False)
    assert sc.maybe_trace("ip") is None
    ref = TraceRef(1, 0)
    assert sc.hop(ref, "route.hop", "n", 0.0) is None
    assert ref.parent == 0  # untouched
    assert sc.spans == []


def test_counter_based_sampling():
    sc = SpanCollector(enabled=True, sample={"ip": 3, "ctm": 1})
    ip = [sc.maybe_trace("ip") for _ in range(7)]
    # 1st, 4th and 7th candidates sampled; ids interleave with ctm's
    assert [t is not None for t in ip] == [True, False, False, True,
                                           False, False, True]
    assert sc.maybe_trace("ctm") is not None
    assert sc.maybe_trace("unknown-kind") is None
    ids = [t for t in ip if t is not None]
    assert ids == sorted(ids)  # monotonic allocation


def test_hop_chain_reparents_ref():
    sc = SpanCollector(enabled=True, sample={"ip": 1})
    tid = sc.maybe_trace("ip")
    root = sc.start("ip.packet", "n0", 0.0, tid, src="a", dst="b")
    ref = TraceRef(tid, root)
    h1 = sc.hop(ref, "route.hop", "n0", 0.0, hops=0)
    assert ref.parent == h1
    h2 = sc.hop(ref, "route.hop", "n1", 0.1, hops=1)
    assert ref.parent == h2
    sc.end_trace(tid, 0.2, hops=2)
    tree = sc.tree(tid)
    assert [(d, s.name) for d, s in tree] == [
        (0, "ip.packet"), (1, "route.hop"), (2, "route.hop")]
    root_span = tree[0][1]
    assert root_span.t1 == 0.2
    assert root_span.attrs["hops"] == 2
    assert root_span.duration == 0.2


def test_end_trace_extends_not_shrinks():
    sc = SpanCollector(enabled=True, sample={"ctm": 1})
    tid = sc.maybe_trace("ctm")
    sc.start("ctm.handshake", "n", 0.0, tid)
    sc.end_trace(tid, 5.0)
    sc.end_trace(tid, 3.0)  # an earlier finisher must not shrink the trace
    assert sc.by_trace(tid)[0].t1 == 5.0


def test_event_is_instant():
    sc = SpanCollector(enabled=True)
    sid = sc.event("phys.drop", "", 1.5, trace_id=9, reason="loss")
    span = sc.spans[-1]
    assert span.id == sid and span.t0 == span.t1 == 1.5
    assert span.attrs["reason"] == "loss"


def test_max_spans_cap_counts_dropped():
    sc = SpanCollector(enabled=True, max_spans=3)
    for i in range(5):
        sc.event(f"e{i}", "n", float(i), trace_id=1)
    assert len(sc.spans) == 3
    assert sc.dropped == 2
    # ending a dropped span is a silent no-op
    sc.end(99, 9.0)


def test_span_tree_orphans_surface_at_root():
    spans = [Span(10, 1, None, "root", "n", 0.0),
             Span(11, 1, 10, "child", "n", 0.1),
             Span(12, 1, 999, "orphan", "n", 0.2)]  # parent was sampled out
    tree = span_tree(spans)
    assert [(d, s.name) for d, s in tree] == [
        (0, "orphan"), (0, "root"), (1, "child")] or \
        [(d, s.name) for d, s in tree] == [
        (0, "root"), (1, "child"), (0, "orphan")]


def test_to_row_stringifies_exotic_attrs():
    span = Span(1, 2, None, "x", "n", 0.0, attrs={"obj": object(), "n": 3})
    row = span.to_row()
    assert isinstance(row["attrs"]["obj"], str)
    assert row["attrs"]["n"] == 3


def test_export_jsonl_roundtrip(tmp_path):
    sc = SpanCollector(enabled=True, sample={"ip": 1})
    tid = sc.maybe_trace("ip")
    root = sc.start("ip.packet", "n", 0.0, tid)
    sc.end(root, 1.0)
    path = sc.export_jsonl(str(tmp_path / "spans.jsonl"))
    lines = open(path).read().splitlines()
    assert len(lines) == 1
    assert '"name": "ip.packet"' in lines[0]
    assert open(path, "rb").read() == open(
        sc.export_jsonl(str(tmp_path / "again.jsonl")), "rb").read()
