"""Max-min fair fluid-flow model for bulk data transfers.

Simulating a 720 MB SCP transfer packet-by-packet would need ~10⁶ events;
instead, bulk transfers are *flows* that progress continuously at a rate
determined by progressive filling (max-min fairness) over the capacity
resources along their path.  Rates are recomputed whenever the flow set or
any path changes; between recomputations progress is linear, so the manager
integrates exactly.

Per-flow rate caps (e.g. a TCP window/RTT bound) are modelled as a private
:class:`Resource` appended to the path — this keeps the fairness computation
uniform and correct.

Rate recomputation is incremental: a mutation (flow add/remove/re-path,
pause/resume, capacity change) marks the touched resources dirty, and the
manager recomputes only the *connected component* of the resource/flow
sharing graph reachable from the dirty set — flows that share nothing with
the change keep their rates.  Mutations made inside an event are coalesced:
the first one schedules a single flush at the current timestamp with a
priority below every ordinary event, so a burst of changes (a transfer
re-pathing across several resources, a batch of job arrivals) pays for one
recomputation, and every event at a later timestamp still observes fresh
rates.  Mutations made outside event context recompute synchronously, so
direct driving of the manager (tests, setup code) keeps eager semantics.

The overlay layer maps an overlay route onto resources: each traversed
IPOP router contributes its user-level forwarding capacity and each WAN
site-pair contributes a path-capacity resource (see
:mod:`repro.ipop.router`).  Re-pathing a live flow (a shortcut forming, a
migration) is ``flow.set_path(...)`` — exactly what Figs. 6–8 exercise.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.sim.process import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event, Simulator

_EPS = 1e-9

#: flushes run before every ordinary event at the same timestamp, so any
#: event at time t observes rates that reflect all mutations made before t
_FLUSH_PRIORITY = -(1 << 30)


class Resource:
    """A capacity-limited stage (link, router CPU) shared by flows."""

    __slots__ = ("name", "capacity", "flows")

    def __init__(self, name: str, capacity: float):
        if capacity < 0:
            raise ValueError(f"negative capacity for {name}")
        self.name = name
        self.capacity = capacity
        self.flows: set["Flow"] = set()

    def set_capacity(self, capacity: float, manager: "FlowManager") -> None:
        """Change capacity and recompute rates of affected flows.

        A resource carrying no flows cannot affect any rate, so the change
        is recorded without triggering a recomputation (the next flow
        admitted over it recomputes anyway).
        """
        self.capacity = capacity
        if not self.flows:
            return
        manager.request_recompute((self,))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Resource {self.name} cap={self.capacity:.0f}B/s n={len(self.flows)}>"


class Flow:
    """One bulk transfer.

    ``done`` is a latched signal fired with the completion time.  ``paused``
    flows hold their progress at rate 0 (used across migration outages).
    """

    def __init__(self, manager: "FlowManager", name: str, size: float,
                 path: Iterable[Resource], rate_cap: Optional[float] = None,
                 on_complete: Optional[Callable[["Flow"], None]] = None):
        if size <= 0:
            raise ValueError("flow size must be positive")
        self.manager = manager
        self.name = name
        self.size = float(size)
        self.transferred = 0.0
        self.rate = 0.0
        self.paused = False
        self.completed = False
        self.start_time = manager.sim.now
        self.finish_time: Optional[float] = None
        self.on_complete = on_complete
        self.done = Signal(manager.sim, f"flow.{name}.done", latch=True)
        self.progress_log: list[tuple[float, float]] = [(self.start_time, 0.0)]
        self._cap_resource: Optional[Resource] = None
        self.path: list[Resource] = []
        self._set_path_internal(path, rate_cap)
        manager.add(self)

    # -- path management --------------------------------------------------
    def _set_path_internal(self, path: Iterable[Resource],
                           rate_cap: Optional[float]) -> None:
        for r in self.path:
            r.flows.discard(self)
        self.path = list(path)
        if rate_cap is not None:
            self._cap_resource = Resource(f"cap.{self.name}", rate_cap)
            self.path.append(self._cap_resource)
        elif self._cap_resource is not None:
            self.path.append(self._cap_resource)
        for r in self.path:
            r.flows.add(self)

    def set_path(self, path: Iterable[Resource],
                 rate_cap: Optional[float] = None) -> None:
        """Re-route the flow (keeps transferred bytes)."""
        if self.completed:
            return
        self.manager.advance()
        old_path = list(self.path)
        if rate_cap is not None and self._cap_resource is not None:
            self._cap_resource.capacity = rate_cap
            rate_cap = None  # reuse the existing cap resource
        self._set_path_internal(path, rate_cap)
        self.manager.request_recompute(old_path + self.path)

    def set_rate_cap(self, rate_cap: float) -> None:
        """Install/update a per-flow rate ceiling (e.g. window/RTT)."""
        if self._cap_resource is None:
            self.manager.advance()
            self._set_path_internal(self.path, rate_cap)
            self.manager.request_recompute(self.path)
        else:
            self._cap_resource.set_capacity(rate_cap, self.manager)

    # -- control ----------------------------------------------------------
    def _log_point(self) -> None:
        now = self.manager.sim.now
        if self.progress_log[-1] != (now, self.transferred):
            self.progress_log.append((now, self.transferred))

    def pause(self) -> None:
        """Freeze progress at rate 0 (e.g. across a migration outage)."""
        if not self.paused and not self.completed:
            self.manager.advance()
            self.paused = True
            self._log_point()
            self.manager.request_recompute(self.path)

    def resume(self) -> None:
        """Undo :meth:`pause`; rates are recomputed immediately."""
        if self.paused and not self.completed:
            self.manager.advance()
            self.paused = False
            self._log_point()
            self.manager.request_recompute(self.path)

    def cancel(self) -> None:
        """Abort the transfer; ``done`` never fires."""
        if not self.completed:
            self.manager.remove(self)

    @property
    def remaining(self) -> float:
        """Bytes still to transfer."""
        return max(0.0, self.size - self.transferred)

    def mean_rate(self, t0: Optional[float] = None,
                  t1: Optional[float] = None) -> float:
        """Average achieved rate over [t0, t1] from the progress log."""
        log = self.progress_log
        t0 = log[0][0] if t0 is None else t0
        t1 = log[-1][0] if t1 is None else t1
        if t1 <= t0:
            return 0.0

        def bytes_at(t: float) -> float:
            prev_t, prev_b = log[0]
            for lt, lb in log:
                if lt > t:
                    if lt == prev_t:
                        return prev_b
                    frac = (t - prev_t) / (lt - prev_t)
                    return prev_b + frac * (lb - prev_b)
                prev_t, prev_b = lt, lb
            return log[-1][1]

        return (bytes_at(t1) - bytes_at(t0)) / (t1 - t0)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Flow {self.name} {self.transferred:.0f}/{self.size:.0f}B "
                f"rate={self.rate:.0f}B/s>")


class FlowManager:
    """Owns all live flows; integrates progress and recomputes fair rates."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.flows: set[Flow] = set()
        self._last_advance = sim.now
        self._next_event: Optional["Event"] = None
        self.completed_count = 0
        self._dirty: set[Resource] = set()
        self._full = False
        self._flush_event: Optional["Event"] = None
        #: observability: how many recomputations ran, and how many of
        #: those were scoped to a component rather than the whole flow set
        self.full_recomputes = 0
        self.scoped_recomputes = 0

    # -- flow set ----------------------------------------------------------
    def add(self, flow: Flow) -> None:
        """Admit a flow and rebalance rates."""
        self.advance()
        self.flows.add(flow)
        self.request_recompute(flow.path)

    def remove(self, flow: Flow) -> None:
        """Withdraw a flow (without completing it) and rebalance."""
        self.advance()
        self.flows.discard(flow)
        flow.rate = 0.0
        released = list(flow.path)
        for r in released:
            r.flows.discard(flow)
        self.request_recompute(released)

    # -- integration --------------------------------------------------------
    def advance(self) -> None:
        """Accrue linear progress since the last rate computation."""
        now = self.sim.now
        dt = now - self._last_advance
        if dt <= 0:
            self._last_advance = now
            return
        finished: list[Flow] = []
        for f in self.flows:
            if f.rate > 0:
                f.transferred = min(f.size, f.transferred + f.rate * dt)
                f.progress_log.append((now, f.transferred))
                if f.remaining <= _EPS:
                    finished.append(f)
        self._last_advance = now
        for f in finished:
            self._complete(f)

    def _complete(self, flow: Flow) -> None:
        flow.completed = True
        flow.finish_time = self.sim.now
        flow.rate = 0.0
        self.flows.discard(flow)
        self._dirty.update(flow.path)  # released capacity rebalances peers
        for r in flow.path:
            r.flows.discard(flow)
        self.completed_count += 1
        self.sim.trace("flow.complete", name=flow.name,
                       duration=flow.finish_time - flow.start_time,
                       size=flow.size)
        if flow.on_complete is not None:
            flow.on_complete(flow)
        flow.done.fire(flow.finish_time)

    # -- rate computation --------------------------------------------------
    def request_recompute(self, resources: Optional[Iterable[Resource]] = None
                          ) -> None:
        """Ask for a fairness recomputation scoped to ``resources`` (or a
        full one when None).

        Inside an event the request is coalesced: the first request
        schedules one flush at the current timestamp (below every ordinary
        priority) and later requests merely widen its dirty set.  Outside
        event context the recomputation happens immediately, preserving
        the historical synchronous semantics for setup/test code.
        """
        if resources is None:
            self._full = True
        else:
            self._dirty.update(resources)
        if self.sim.executing:
            if self._flush_event is None:
                self._flush_event = self.sim.schedule(
                    0.0, self._on_flush_event, priority=_FLUSH_PRIORITY)
            return
        self._flush()

    def recompute(self) -> None:
        """Force an immediate full progressive-filling recomputation."""
        self._full = True
        self._flush()

    def _on_flush_event(self) -> None:
        self._flush_event = None
        self._flush()

    def _flush(self) -> None:
        """Drain the dirty set: integrate progress, then recompute the
        affected component(s) and reschedule the next completion event."""
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        self.advance()
        while self._full or self._dirty:
            if self._full:
                self._full = False
                self._dirty.clear()
                self.full_recomputes += 1
                self._recompute_rates(self.flows)
            else:
                dirty, self._dirty = self._dirty, set()
                self.scoped_recomputes += 1
                self._recompute_rates(self._component_flows(dirty))
        self._schedule_next()

    def _component_flows(self, dirty: set[Resource]) -> set[Flow]:
        """Flows in the connected component(s) of the resource-sharing
        graph reachable from the dirty resources."""
        flows: set[Flow] = set()
        seen = set(dirty)
        stack = list(dirty)
        while stack:
            r = stack.pop()
            for f in r.flows:
                if f not in flows:
                    flows.add(f)
                    for r2 in f.path:
                        if r2 not in seen:
                            seen.add(r2)
                            stack.append(r2)
        return flows

    def _recompute_rates(self, flows: Iterable[Flow]) -> None:
        """Progressive-filling max-min fair allocation over ``flows``.

        Correct for any resource-sharing-closed flow set: flows outside a
        closed set share no resource with it, so their (unchanged) rates
        consume none of the capacity allocated here.
        """
        active = {f for f in flows if not f.paused and f.path
                  and not f.completed}
        for f in flows:
            f.rate = 0.0

        # gather resources used by active flows
        res_flows: dict[Resource, set[Flow]] = {}
        for f in active:
            for r in f.path:
                res_flows.setdefault(r, set()).add(f)

        remaining_cap = {r: r.capacity for r in res_flows}
        unfrozen = set(active)
        while unfrozen:
            # bottleneck share
            best_share = math.inf
            for r, fs in res_flows.items():
                live = len(fs & unfrozen)
                if live:
                    share = remaining_cap[r] / live
                    if share < best_share:
                        best_share = share
            if not math.isfinite(best_share):
                break
            if best_share <= _EPS:
                # saturated resources: freeze their flows at zero
                frozen_now = set()
                for r, fs in res_flows.items():
                    live = fs & unfrozen
                    if live and remaining_cap[r] / len(live) <= _EPS:
                        frozen_now |= live
                for f in frozen_now:
                    f.rate = 0.0
                unfrozen -= frozen_now
                continue
            # freeze flows crossing the bottleneck resource(s)
            frozen_now = set()
            for r, fs in res_flows.items():
                live = fs & unfrozen
                if live and remaining_cap[r] / len(live) <= best_share + _EPS:
                    frozen_now |= live
            for f in frozen_now:
                f.rate = best_share
                for r in f.path:
                    if r in remaining_cap:
                        remaining_cap[r] = max(0.0,
                                               remaining_cap[r] - best_share)
            unfrozen -= frozen_now

    def _schedule_next(self) -> None:
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        next_dt = math.inf
        for f in self.flows:
            if f.rate > _EPS:
                next_dt = min(next_dt, f.remaining / f.rate)
        if math.isfinite(next_dt):
            # floor the step at 1 µs: a residual of a few bytes divided by a
            # MB/s rate is below float time resolution and would otherwise
            # re-fire this event forever without advancing the clock
            self._next_event = self.sim.schedule(max(1e-6, next_dt),
                                                 self._on_completion_event)

    def _on_completion_event(self) -> None:
        self._next_event = None
        # advance() inside the flush completes the due flow(s), marking
        # their resources dirty; the recomputation is then scoped to the
        # component that actually gained capacity
        self._flush()
