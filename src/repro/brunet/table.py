"""Connection table: a node's view of its overlay links.

Provides the queries routing and the overlords need: nearest structured
neighbour to an address, left/right ring neighbours, connections by type.

Hot queries run against an **array-backed ring view**: a sorted array of
peer addresses (plain ints) with a parallel array of connections, rebuilt
lazily after a mutation and answered with bisect instead of object scans.
At the paper's degrees (~2 near + k far + a few shortcuts) either wins;
at 10k-node rings the bisect forms keep `closest_to`/neighbour lookups
O(log k) and — more importantly — allocation-free.

The table carries a monotone ``version`` counter bumped on every mutation
that can change a routing decision (add/remove/label change).  Derived
read-mostly state — the structured-connection snapshot, the sorted ring
view, the per-type buckets and the memoized next-hop cache in
:mod:`repro.brunet.routing` — is invalidated wholesale on a bump, so
routing's hot path re-derives state only after the table actually changed.

Every decision here is **byte-identical** to the pre-array object scans
(PR-5 lowest-address tie-breaks included); the equivalence is pinned by
the brute-force oracle property tests in
``tests/brunet/test_ring_array_equivalence.py``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterable, Optional

from repro.brunet.address import (BrunetAddress, nearest_index,
                                  predecessor_index, successor_index)
from repro.brunet.connection import Connection, ConnectionType


class ConnectionTable:
    """All live connections of one node, keyed by peer address."""

    def __init__(self, my_addr: BrunetAddress):
        self.my_addr = my_addr
        self._conns: dict[BrunetAddress, Connection] = {}
        self.on_added: list[Callable[[Connection], None]] = []
        self.on_removed: list[Callable[[Connection], None]] = []
        #: bumped on any mutation that can change a routing decision
        self.version = 0
        self._structured_cache: Optional[tuple[Connection, ...]] = None
        #: sorted (addrs, conns) parallel arrays over structured peers
        self._ring_cache: Optional[
            tuple[list[int], list[Connection]]] = None
        self._type_cache: dict[ConnectionType, tuple[Connection, ...]] = {}
        #: (my_addr, dest, exclude_dest_link, approach) -> Connection|None,
        #: owned here, filled by repro.brunet.routing.next_hop
        self.next_hop_cache: dict[tuple, Optional[Connection]] = {}

    def bump_version(self) -> None:
        """Invalidate routing caches after a table mutation."""
        self.version += 1
        self._structured_cache = None
        self._ring_cache = None
        if self._type_cache:
            self._type_cache.clear()
        if self.next_hop_cache:
            self.next_hop_cache.clear()

    # -- mutation ---------------------------------------------------------
    def add(self, conn: Connection) -> Connection:
        """Insert the connection, or merge its labels into an existing link
        to the same peer (a node pair needs at most one physical link)."""
        old = self._conns.get(conn.peer_addr)
        if old is not None:
            old.heard_from(conn.established_at)
            grew = bool(conn.types - old.types)
            old.types |= conn.types
            old.remote_endpoint = conn.remote_endpoint
            if grew:
                self.bump_version()
                for cb in list(self.on_added):
                    cb(old)
            return old
        self._conns[conn.peer_addr] = conn
        conn._table = self
        self.bump_version()
        for cb in list(self.on_added):
            cb(conn)
        return conn

    def remove(self, peer_addr: BrunetAddress) -> Optional[Connection]:
        """Drop the connection to ``peer_addr`` (fires on_removed)."""
        conn = self._conns.pop(peer_addr, None)
        if conn is not None:
            conn.closed = True
            conn._table = None
            self.bump_version()
            for cb in list(self.on_removed):
                cb(conn)
        return conn

    def clear(self) -> None:
        """Drop every connection (node shutdown)."""
        for addr in list(self._conns):
            self.remove(addr)

    # -- queries ----------------------------------------------------------
    def get(self, peer_addr: BrunetAddress) -> Optional[Connection]:
        """The connection to ``peer_addr``, or None."""
        return self._conns.get(peer_addr)

    def __contains__(self, peer_addr: BrunetAddress) -> bool:
        return peer_addr in self._conns

    def __len__(self) -> int:
        return len(self._conns)

    def all(self) -> list[Connection]:
        """Snapshot list of every live connection."""
        return list(self._conns.values())

    def by_type(self, conn_type: ConnectionType) -> tuple[Connection, ...]:
        """Connections carrying the given type label (snapshot tuple in
        insertion order, rebuilt only after a table mutation)."""
        cached = self._type_cache.get(conn_type)
        if cached is None:
            cached = self._type_cache[conn_type] = tuple(
                c for c in self._conns.values() if conn_type in c.types)
        return cached

    def stale(self, now: float, timeout: float) -> list[Connection]:
        """Connections not heard from within ``timeout`` seconds — the
        liveness layer's dead-peer candidates."""
        return [c for c in self._conns.values()
                if now - c.last_heard > timeout]

    def structured(self) -> Iterable[Connection]:
        """Connections that participate in greedy routing (snapshot tuple
        in insertion order, rebuilt only after a table mutation)."""
        cached = self._structured_cache
        if cached is None:
            cached = self._structured_cache = tuple(
                c for c in self._conns.values() if c.structured)
        return cached

    def ring_view(self) -> tuple[list[int], list[Connection]]:
        """Sorted parallel arrays over structured peers: ``(addrs, conns)``
        with ``addrs`` ascending ints and ``conns[i].peer_addr == addrs[i]``.
        Rebuilt lazily after a mutation; the bisect queries below (and
        :func:`repro.brunet.routing._next_hop_scan`) run against it."""
        cached = self._ring_cache
        if cached is None:
            conns = sorted(self.structured(),
                           key=lambda c: int(c.peer_addr))
            cached = self._ring_cache = (
                [int(c.peer_addr) for c in conns], conns)
        return cached

    def closest_to(self, dest: BrunetAddress) -> Optional[Connection]:
        """Structured connection whose peer is nearest to ``dest`` on the
        ring; None when the table has no structured connections.

        Two peers can be exactly equidistant from ``dest`` (one on each
        side); the tie goes to the lower address so the answer never
        depends on table insertion order.
        """
        addrs, conns = self.ring_view()
        if not addrs:
            return None
        return conns[nearest_index(addrs, int(dest))]

    def right_neighbor(self) -> Optional[Connection]:
        """Nearest structured peer clockwise of me."""
        return self._directional_neighbor(clockwise=True)

    def left_neighbor(self) -> Optional[Connection]:
        """Nearest structured peer counter-clockwise of me."""
        return self._directional_neighbor(clockwise=False)

    def _directional_neighbor(self, clockwise: bool) -> Optional[Connection]:
        addrs, conns = self.ring_view()
        n = len(addrs)
        if n == 0:
            return None
        me = int(self.my_addr)
        if clockwise:
            i = successor_index(addrs, me)
            if addrs[i] == me:  # a link to my own address never counts
                i = (i + 1) % n
        else:
            i = predecessor_index(addrs, me)
            if addrs[i] == me:  # only in a one-element self-link table
                i = (i - 1) % n
        if addrs[i] == me:
            return None
        return conns[i]

    def neighbors_of(self, addr: BrunetAddress,
                     per_side: int = 1) -> list[Connection]:
        """Up to ``per_side`` nearest structured peers on each side of
        ``addr`` (used when answering a joining node's CTM-to-self).
        Clockwise picks first, then counter-clockwise, deduplicated —
        peers are unique by address, so the two walks are each simply a
        contiguous run of the sorted ring view."""
        addrs, conns = self.ring_view()
        n = len(addrs)
        if n == 0:
            return []
        target = int(addr)
        start = bisect_left(addrs, target)
        picked: dict[BrunetAddress, Connection] = {}
        i, taken, steps = start % n, 0, 0
        while taken < per_side and steps < n:
            if addrs[i] != target:
                picked[conns[i].peer_addr] = conns[i]
                taken += 1
            i = (i + 1) % n
            steps += 1
        i, taken, steps = (start - 1) % n, 0, 0
        while taken < per_side and steps < n:
            if addrs[i] != target:
                picked.setdefault(conns[i].peer_addr, conns[i])
                taken += 1
            i = (i - 1) % n
            steps += 1
        return list(picked.values())
