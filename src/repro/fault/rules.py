"""Path-level fault rules installed into :class:`~repro.phys.network.Internet`.

A rule sits in ``Internet.fault_rules`` and is consulted for every datagram
after NAT traversal, just before the loss model: ``drops(src_host,
dst_host)`` returning True vanishes the packet (counted under
``fault:<name>``).  Rules select traffic by *side*: each side is a
:class:`~repro.phys.host.Host` object, a site name (str), or None for
"any host".  ``symmetric`` rules match both directions.

Two concrete rules cover the §V-E failure taxonomy the experiments need:

* :class:`Blackout` — a hard partition of the matched path (link down,
  campus uplink failure);
* :class:`BurstLoss` — a correlated loss episode with probability ``prob``
  drawn from its own named RNG stream, so a faulty run is reproducible
  from the simulation seed alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.phys.host import Host

#: a rule side: a concrete host, every host of a named site, or any host
Side = Union["Host", str, None]


def _side_matches(side: Side, host: "Host") -> bool:
    if side is None:
        return True
    if isinstance(side, str):
        return host.site.name == side
    return host is side


class PathFault:
    """Base rule: matches (src, dst) pairs; subclasses decide the drop."""

    def __init__(self, a: Side = None, b: Side = None,
                 symmetric: bool = True, name: str = "fault"):
        self.a = a
        self.b = b
        self.symmetric = symmetric
        self.name = name
        self.dropped = 0

    def matches(self, src: "Host", dst: "Host") -> bool:
        """True when the rule covers traffic from ``src`` to ``dst``."""
        if _side_matches(self.a, src) and _side_matches(self.b, dst):
            return True
        return (self.symmetric
                and _side_matches(self.a, dst) and _side_matches(self.b, src))

    def drops(self, src: "Host", dst: "Host") -> bool:
        """Drop decision for one datagram (called by the Internet)."""
        if self.matches(src, dst) and self._drop_matched():
            self.dropped += 1
            return True
        return False

    def _drop_matched(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class Blackout(PathFault):
    """Total outage of the matched path while installed."""

    def __init__(self, a: Side = None, b: Side = None,
                 symmetric: bool = True, name: str = "blackout"):
        super().__init__(a, b, symmetric, name)

    def _drop_matched(self) -> bool:
        return True


class BurstLoss(PathFault):
    """Correlated loss: each matched datagram is dropped with ``prob``."""

    def __init__(self, prob: float, rng: "np.random.Generator",
                 a: Side = None, b: Side = None,
                 symmetric: bool = True, name: str = "burst-loss"):
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"loss probability out of range: {prob}")
        super().__init__(a, b, symmetric, name)
        self.prob = prob
        self.rng = rng

    def _drop_matched(self) -> bool:
        return bool(self.rng.random() < self.prob)
