"""Cluster middleware running *inside* the WOW (paper §V-D).

The paper's point is that unmodified middleware — PBS, NFS, SSH, PVM —
just works over the virtual network.  These are compact but behaviourally
faithful models: synchronous windowed NFS, a single-threaded PBS head
node whose RPC chatter amplifies virtual-network RTT, PVM master/worker
dispatch whose messages ride the same overlay paths as everything else.
"""

from repro.middleware.rpc import RpcClient, RpcServer, RpcFailure
from repro.middleware.nfs import NfsClient, NfsServer
from repro.middleware.ssh import ScpServer, ScpClient
from repro.middleware.ttcp import ttcp_measure
from repro.middleware.pbs import PbsServer, PbsMom, JobSpec, JobRecord
from repro.middleware.pvm import PvmMaster, PvmWorker, PvmTask
from repro.middleware.condor import (
    CondorCollector,
    CondorJob,
    CondorSchedD,
    CondorStartD,
)
from repro.middleware.discovery import (
    ResourceAd,
    ResourceDiscovery,
    ResourcePublisher,
)

__all__ = [
    "RpcClient", "RpcServer", "RpcFailure",
    "NfsClient", "NfsServer",
    "ScpServer", "ScpClient",
    "ttcp_measure",
    "PbsServer", "PbsMom", "JobSpec", "JobRecord",
    "PvmMaster", "PvmWorker", "PvmTask",
    "CondorCollector", "CondorJob", "CondorSchedD", "CondorStartD",
    "ResourceAd", "ResourceDiscovery", "ResourcePublisher",
]
