"""Property test: the URI advertisement order invariant.

The paper's Fig. 4 timing depends on the exact trial order: NAT-assigned
URIs first, locally-bound last.  Whatever sequence of learn events occurs,
that invariant must hold.
"""

from hypothesis import given, settings, strategies as st

from repro.brunet.uri import Uri, UriSet

local = Uri.udp("10.0.0.2", 14001)
learned_uris = st.builds(
    lambda h, p: Uri.udp(f"200.0.0.{h}", p),
    st.integers(1, 5), st.integers(20000, 20010))


@settings(max_examples=80, deadline=None)
@given(st.lists(learned_uris, max_size=20))
def test_local_always_last_and_unique(events):
    us = UriSet(local)
    for uri in events:
        us.learn(uri)
    adv = us.advertised()
    assert adv[-1] == local
    assert adv.count(local) == 1
    assert len(adv) == len(set(adv))  # no duplicates
    assert len(adv) <= 5  # bounded learned list + local


@settings(max_examples=80, deadline=None)
@given(st.lists(learned_uris, min_size=1, max_size=20))
def test_most_recent_learning_wins_front(events):
    us = UriSet(local)
    for uri in events:
        us.learn(uri)
    assert us.advertised()[0] == events[-1]


@settings(max_examples=50, deadline=None)
@given(st.lists(learned_uris, max_size=20))
def test_learn_is_idempotent_at_front(events):
    us = UriSet(local)
    for uri in events:
        us.learn(uri)
    before = us.advertised()
    if len(before) > 1:
        assert not us.learn(before[0])  # re-learning the front: no change
        assert us.advertised() == before
