"""SweepWheel: batched periodic timers with generation-tag cancellation."""

from __future__ import annotations

import pytest

from repro.brunet.config import BrunetConfig
from repro.check import invariants
from repro.phys.network import Internet
from repro.sim.engine import Simulator, SimulationError, SweepWheel, sweep_wheel
from tests.conftest import build_overlay


@pytest.fixture
def sim():
    return Simulator(seed=0)


def test_entries_fire_in_key_order_within_a_bucket(sim):
    wheel = SweepWheel(sim, granularity=1.0)
    fired = []
    # register out of key order; all land in the same bucket
    for key in (30, 10, 20):
        wheel.schedule((key,), 0.5, lambda k=key: fired.append(k))
    sim.run(until=2.0)
    assert fired == [10, 20, 30]
    assert wheel.sweeps == 1


def test_quantization_never_fires_early(sim):
    wheel = SweepWheel(sim, granularity=5.0)
    at = []
    wheel.schedule("a", 7.0, lambda: at.append(sim.now))
    sim.run(until=30.0)
    assert at == [10.0]  # ceil(7/5)*5, within [delay, delay+granularity)


def test_generation_cancel_is_tombstone_free(sim):
    wheel = SweepWheel(sim, granularity=1.0)
    fired = []
    wheel.schedule("a", 0.5, lambda: fired.append("a"))
    wheel.schedule("b", 0.5, lambda: fired.append("b"))
    wheel.cancel("a")
    assert len(wheel._buckets[1]) == 2  # entry not scanned out of the list
    sim.run(until=2.0)
    assert fired == ["b"]
    assert wheel.skipped == 1


def test_reschedule_supersedes_previous_registration(sim):
    wheel = SweepWheel(sim, granularity=1.0)
    fired = []
    wheel.schedule("a", 0.5, lambda: fired.append("first"))
    wheel.schedule("a", 2.5, lambda: fired.append("second"))
    sim.run(until=5.0)
    assert fired == ["second"]


def test_cancel_then_reschedule_does_not_resurrect_stale_entry(sim):
    wheel = SweepWheel(sim, granularity=1.0)
    fired = []
    wheel.schedule("a", 0.5, lambda: fired.append("stale"))
    wheel.cancel("a")
    wheel.schedule("a", 0.5, lambda: fired.append("live"))
    sim.run(until=2.0)
    assert fired == ["live"]


def test_periodic_reregistration(sim):
    wheel = SweepWheel(sim, granularity=1.0)
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 4:
            wheel.schedule("n", 2.0, tick)

    wheel.schedule("n", 2.0, tick)
    sim.run(until=20.0)
    assert ticks == [2.0, 4.0, 6.0, 8.0]


def test_rejects_negative_delay_and_bad_granularity(sim):
    with pytest.raises(SimulationError):
        SweepWheel(sim, granularity=0.0)
    wheel = SweepWheel(sim, granularity=1.0)
    with pytest.raises(SimulationError):
        wheel.schedule("a", -1.0, lambda: None)


def test_shared_wheel_is_per_simulator(sim):
    other = Simulator(seed=1)
    assert sweep_wheel(sim) is sweep_wheel(sim)
    assert sweep_wheel(sim) is not sweep_wheel(other)


def test_batched_overlay_forms_consistent_ring():
    """batch_timers routes keep-alive + overlord ticks through the shared
    wheel; the overlay must still form a consistent ring and audit clean
    (timing is quantized, decisions are not)."""
    sim = Simulator(seed=3)
    internet = Internet(sim)
    config = BrunetConfig(batch_timers=True)
    nodes, _ = build_overlay(sim, internet, 10, config=config)
    sim.run(until=sim.now + 120.0)
    wheel = sweep_wheel(sim)
    assert wheel.sweeps > 0
    live = [n for n in nodes if n.active]
    assert not invariants.check_ring(live, sim.now)
    assert not invariants.check_routing(live, sim.now)
    # a stopped node's wheel entries go stale instead of firing
    nodes[5].stop()
    before = wheel.skipped
    sim.run(until=sim.now + 60.0)
    assert wheel.skipped > before
