"""Machine-checkable overlay invariants.

The paper's "self-organizing" claim rests on properties it never states
formally; Brunet's authors later pinned them down for Symphony-style rings
("A Symphony Conducted by Brunet") and IPOP's IP→P2P mapping silently
depends on them.  This module states each invariant as a pure function
over live :class:`~repro.brunet.node.BrunetNode` objects returning
structured :class:`Violation` records:

* **ring consistency** (:func:`check_ring`) — every node holds a
  structured link to its true ring successor and predecessor, every
  STRUCTURED_NEAR label points at a genuine nearest neighbour, no
  structured link points at a dead node, and the structured-connection
  graph is not partitioned;
* **connection symmetry** (:func:`check_symmetry`) — A's table lists B
  with compatible type labels iff B's lists A, modulo a grace window for
  in-flight linking handshakes;
* **routing convergence** (:func:`check_routing`) — greedy ``next_hop``
  chains terminate at the address owner with a strictly decreasing ring
  metric;
* **cache coherence** (:func:`check_cache`) — every memoized
  ``next_hop_cache`` entry equals a fresh ``_next_hop_scan``;
* **resource leaks** (:func:`check_leaks`) — no stuck linking attempts,
  orphaned overlord ``_pending`` slots, desynchronized NAT mapping
  indices, or dangling trace spans.

Some invariants only hold at *quiescence*: mid-churn the ring is broken
by definition and repairs take tens of seconds.  Those findings are
marked ``gated=True`` — the :class:`~repro.check.auditor.Auditor` only
reports them when the same finding persists across a grace window, so a
healthy self-repairing overlay audits clean while a genuinely wedged one
does not.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable, Optional

from repro.brunet.address import ring_distance
from repro.brunet.connection import ConnectionType
from repro.brunet.routing import _next_hop_scan, next_hop

if TYPE_CHECKING:  # pragma: no cover
    from repro.brunet.node import BrunetNode
    from repro.obs.spans import SpanCollector
    from repro.phys.network import Internet


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant violation (or violation candidate, when gated)."""

    #: simulation time the finding was (first) observed
    t: float
    #: invariant class: ring | symmetry | routing | cache | leak | span
    check: str
    #: specific finding, e.g. ``ring.neighbor-missing``
    kind: str
    #: node the finding is anchored at ("" for overlay-global findings)
    node: str
    #: stable identity — the auditor's persistence gating and dedup key
    key: str
    #: human-readable specifics
    detail: str
    #: True when the finding is only a violation if it *persists*
    #: (convergence-dependent); False when it is wrong at any instant
    gated: bool = False

    def to_row(self) -> dict:
        return {"t": self.t, "check": self.check, "kind": self.kind,
                "node": self.node, "key": self.key, "detail": self.detail}


def _live(nodes: Iterable["BrunetNode"]) -> list["BrunetNode"]:
    return sorted((n for n in nodes if n.active), key=lambda n: int(n.addr))


def _stride_sample(live: list, budget: Optional[int]) -> list:
    """Deterministic bounded subsample: every ceil(n/budget)-th element
    of the address-sorted list (the whole list when ``budget`` is None or
    already covers it).  No RNG — the sampled set is identical across
    same-seed runs and across sweeps, so persistence gating still sees a
    stable key set."""
    if budget is None or budget <= 0 or len(live) <= budget:
        return live
    stride = -(-len(live) // budget)
    return live[::stride]


# ---------------------------------------------------------------------------
# 1. ring consistency
# ---------------------------------------------------------------------------

def _link_in_flight(a: "BrunetNode", b: "BrunetNode") -> bool:
    return (a.linker.by_addr.get(b.addr) is not None
            or b.linker.by_addr.get(a.addr) is not None)


def _ring_repairing(node: "BrunetNode", live: list["BrunetNode"],
                    i: int) -> bool:
    """True while ``node`` has a linking handshake in flight (either
    direction) with one of its true ring neighbours.

    While that repair runs, the node's ring state is in legal transition
    — its NEAR labels still describe the *pre-join* neighbourhood, and
    peers that rank it as their best-known neighbour keep linking to it.
    A dead first URI costs ~155 s of handshake by design (the paper's
    NAT-hairpin case), longer than the audit grace, so "repairing" must
    be distinguished from "wedged" by the in-flight attempt, not by time.
    """
    count = len(live)
    for k in (1, count - 1):
        nb = live[(i + k) % count]
        if nb is not node and _link_in_flight(node, nb):
            return True
    return False


def check_ring(nodes: Iterable["BrunetNode"], now: float,
               budget: Optional[int] = None) -> list[Violation]:
    """The structured-near connections must form the true sorted-address
    ring: successor/predecessor links present, NEAR labels only on genuine
    nearest neighbours, no links to dead nodes, no partitions.

    A missing-neighbour or stale-label finding is skipped while a linking
    handshake with the true neighbour is in flight on either side — the
    same exemption :func:`check_symmetry` applies — so slow NAT traversal
    reads as repair in progress, not as a violation.

    ``budget`` bounds the sweep for big rings: only a deterministic
    stride sample of ``budget`` nodes is examined per call (successor
    computation still uses the full live list, so sampled nodes are
    graded against their *true* neighbours), and the partition BFS
    abstains once it has traversed ``50 * budget`` edges.
    """
    live = _live(nodes)
    out: list[Violation] = []
    if len(live) < 2:
        return out
    count = len(live)
    addr_index = {n.addr: i for i, n in enumerate(live)}
    repairing = [_ring_repairing(n, live, i) for i, n in enumerate(live)]
    examine = _stride_sample(list(enumerate(live)), budget)
    for i, node in examine:
        for side, other in (("right", live[(i + 1) % count]),
                            ("left", live[(i - 1) % count])):
            if other is node:
                continue
            conn = node.table.get(other.addr)
            if conn is None or not conn.structured:
                if _link_in_flight(node, other):
                    continue  # handshake toward the true neighbour runs
                out.append(Violation(
                    now, "ring", "ring.neighbor-missing", node.name,
                    f"ring.neighbor-missing:{node.name}:{side}",
                    f"{node.name} has no structured link to its true "
                    f"{side} neighbour {other.name}", gated=True))
        # NEAR labels must point at genuine nearest live neighbours
        per_side = node.config.near_per_side
        allowed = set()
        for k in range(1, per_side + 1):
            allowed.add(live[(i + k) % count].addr)
            allowed.add(live[(i - k) % count].addr)
        for conn in node.table.by_type(ConnectionType.STRUCTURED_NEAR):
            if conn.peer_addr not in allowed:
                peer_i = addr_index.get(conn.peer_addr)
                if repairing[i] or (peer_i is not None
                                    and repairing[peer_i]):
                    # either end of the label is mid-repair: the stale
                    # NEAR is the legal pre-join neighbourhood
                    continue
                where = ("dead node" if peer_i is None
                         else f"non-neighbour {conn.peer_addr!r}")
                out.append(Violation(
                    now, "ring", "ring.mislabeled", node.name,
                    f"ring.mislabeled:{node.name}:{conn.peer_addr.hex()}",
                    f"{node.name} labels {where} STRUCTURED_NEAR",
                    gated=True))
        for conn in node.table.all():
            if conn.structured and conn.peer_addr not in addr_index:
                out.append(Violation(
                    now, "ring", "ring.stale-peer", node.name,
                    f"ring.stale-peer:{node.name}:{conn.peer_addr.hex()}",
                    f"{node.name} holds a structured link to dead peer "
                    f"{conn.peer_addr!r}", gated=True))
    max_edges = None if budget is None else 50 * budget
    out.extend(_check_partition(live, now, max_edges=max_edges))
    return out


def _check_partition(live: list["BrunetNode"], now: float,
                     max_edges: Optional[int] = None) -> list[Violation]:
    """BFS over structured links: the overlay must be one component.
    With ``max_edges`` set the sweep abstains (reports nothing) once the
    traversal exceeds the edge budget — bounded work beats a partial
    answer misread as a partition."""
    addr_index = {n.addr: n for n in live}
    seen: set = set()
    stack = [live[0]]
    seen.add(live[0].addr)
    edges = 0
    while stack:
        node = stack.pop()
        for conn in node.table.structured():
            edges += 1
            if max_edges is not None and edges > max_edges:
                return []
            peer = addr_index.get(conn.peer_addr)
            if peer is not None and peer.addr not in seen:
                seen.add(peer.addr)
                stack.append(peer)
    if len(seen) == len(live):
        return []
    return [Violation(
        now, "ring", "ring.partition", "",
        "ring.partition",
        f"overlay partitioned: component of {len(seen)} reachable from "
        f"{live[0].name}, {len(live) - len(seen)} nodes unreachable",
        gated=True)]


# ---------------------------------------------------------------------------
# 2. connection symmetry
# ---------------------------------------------------------------------------

def check_symmetry(nodes: Iterable["BrunetNode"], now: float,
                   handshake_grace: float = 30.0,
                   budget: Optional[int] = None) -> list[Violation]:
    """A's table lists B with compatible labels iff B's table lists A.

    Connections younger than ``handshake_grace`` and pairs with an
    in-flight linking attempt on either side are skipped — linking is a
    two-message handshake, so one-sided state is legal while it runs.
    ``budget`` bounds the sweep to a deterministic stride sample of
    nodes (reverse lookups still hit the full live map).
    """
    live = _live(nodes)
    by_addr = {n.addr: n for n in live}
    out: list[Violation] = []
    for node in _stride_sample(live, budget):
        for conn in node.table.all():
            if not conn.types:
                out.append(Violation(
                    now, "symmetry", "symmetry.empty-labels", node.name,
                    f"symmetry.empty-labels:{node.name}:"
                    f"{conn.peer_addr.hex()}",
                    f"{node.name} holds a connection to "
                    f"{conn.peer_addr!r} with an empty label set"))
                continue
            peer = by_addr.get(conn.peer_addr)
            if peer is None:
                continue  # dead peers are ring.stale-peer territory
            if now - conn.established_at < handshake_grace:
                continue
            back = peer.table.get(node.addr)
            if back is None:
                if (peer.linker.by_addr.get(node.addr) is not None
                        or node.linker.by_addr.get(peer.addr) is not None):
                    continue  # handshake in flight
                out.append(Violation(
                    now, "symmetry", "symmetry.one-way", node.name,
                    f"symmetry.one-way:{node.name}:{peer.name}",
                    f"{node.name} lists {peer.name} "
                    f"({'+'.join(sorted(t.value for t in conn.types))}) "
                    f"but {peer.name} does not list {node.name} back",
                    gated=True))
            elif back.types and not (conn.types & back.types):
                out.append(Violation(
                    now, "symmetry", "symmetry.label-mismatch", node.name,
                    f"symmetry.label-mismatch:{node.name}:{peer.name}",
                    f"{node.name}→{peer.name} labels "
                    f"{sorted(t.value for t in conn.types)} share nothing "
                    f"with {sorted(t.value for t in back.types)}",
                    gated=True))
    return out


# ---------------------------------------------------------------------------
# 3. routing convergence
# ---------------------------------------------------------------------------

def sample_pairs(live: list["BrunetNode"],
                 max_pairs: int) -> list[tuple["BrunetNode", "BrunetNode"]]:
    """Deterministic (src, dest) sample: ring-stride pattern, no RNG, so
    the audited pair set is identical across same-seed runs."""
    n = len(live)
    if n < 2:
        return []
    strides = sorted({1, max(1, n // 3), max(1, n // 2), n - 1})
    pairs: list[tuple["BrunetNode", "BrunetNode"]] = []
    for stride in strides:
        for i in range(n):
            pairs.append((live[i], live[(i + stride) % n]))
            if len(pairs) >= max_pairs:
                return pairs
    return pairs


def check_routing(nodes: Iterable["BrunetNode"], now: float,
                  max_pairs: int = 64,
                  budget: Optional[int] = None) -> list[Violation]:
    """Greedy ``next_hop`` chains for sampled (src, dest) pairs terminate
    at the address owner, strictly decreasing the ring metric each hop.

    The metric decrease is an *instant* invariant (``next_hop`` only
    returns strictly closer peers, so an increase means corrupted state);
    termination at the owner is gated — mid-repair a chain legitimately
    dead-ends at a local minimum until the ring heals.
    """
    live = _live(nodes)
    by_addr = {n.addr: n for n in live}
    index = {n.addr: i for i, n in enumerate(live)}
    out: list[Violation] = []
    if budget is not None:
        max_pairs = min(max_pairs, budget)
    for src, owner in sample_pairs(live, max_pairs):
        dest = owner.addr
        pair_key = f"{src.name}->{owner.name}"
        current = src
        d_here = ring_distance(current.addr, dest)
        for _hop in range(src.config.ttl + 1):
            if current.addr == dest:
                break
            conn = next_hop(current.table, current.addr, dest)
            if conn is None:
                if _ring_repairing(current, live, index[current.addr]):
                    break  # local minimum while the ring link re-forms
                out.append(Violation(
                    now, "routing", "routing.non-convergent", current.name,
                    f"routing.non-convergent:{pair_key}",
                    f"chain {pair_key} dead-ends at {current.name}, "
                    f"{d_here} short of the owner", gated=True))
                break
            d_next = ring_distance(conn.peer_addr, dest)
            if d_next >= d_here:
                out.append(Violation(
                    now, "routing", "routing.metric-increase", current.name,
                    f"routing.metric-increase:{pair_key}:{current.name}",
                    f"hop {current.name}→{conn.peer_addr!r} does not "
                    f"decrease the metric ({d_here} → {d_next})"))
                break
            nxt = by_addr.get(conn.peer_addr)
            if nxt is None:
                out.append(Violation(
                    now, "routing", "routing.dead-hop", current.name,
                    f"routing.dead-hop:{pair_key}:{current.name}",
                    f"chain {pair_key} forwards into dead peer "
                    f"{conn.peer_addr!r} at {current.name}", gated=True))
                break
            current, d_here = nxt, d_next
        else:  # pragma: no cover - unreachable with a decreasing metric
            out.append(Violation(
                now, "routing", "routing.ttl-exhausted", src.name,
                f"routing.ttl-exhausted:{pair_key}",
                f"chain {pair_key} exceeded ttl", gated=True))
    return out


# ---------------------------------------------------------------------------
# 3b. next-hop cache coherence
# ---------------------------------------------------------------------------

def check_cache(nodes: Iterable["BrunetNode"], now: float,
                max_entries: int = 256,
                budget: Optional[int] = None) -> list[Violation]:
    """Every memoized ``next_hop_cache`` entry must equal a fresh
    ``_next_hop_scan`` — the table clears the cache on every version bump,
    so a divergent entry means an invalidation path was missed.
    ``max_entries`` caps re-verified entries per node; ``budget`` caps
    them across the whole sweep."""
    out: list[Violation] = []
    total = 0
    for node in _live(nodes):
        if budget is not None and total >= budget:
            break
        table = node.table
        for i, (key, cached) in enumerate(table.next_hop_cache.items()):
            if i >= max_entries:
                break
            if budget is not None and total >= budget:
                break
            total += 1
            fresh = _next_hop_scan(table, key[0], key[1], key[2], key[3])
            if fresh is not cached:
                out.append(Violation(
                    now, "cache", "cache.incoherent", node.name,
                    f"cache.incoherent:{node.name}:{key[1].hex()}:"
                    f"{key[2]}:{key[3]}",
                    f"{node.name} cache says "
                    f"{(cached.peer_addr if cached else None)!r} for dest "
                    f"{key[1]!r} but a fresh scan says "
                    f"{(fresh.peer_addr if fresh else None)!r}"))
    return out


# ---------------------------------------------------------------------------
# 4. resource leaks
# ---------------------------------------------------------------------------

def check_leaks(nodes: Iterable["BrunetNode"], now: float,
                internet: Optional["Internet"] = None,
                spans: Optional["SpanCollector"] = None,
                span_grace: float = 900.0) -> list[Violation]:
    """After quiescence no subsystem may hold unreleasable state: stuck
    linking attempts, expired overlord ``_pending`` slots, shortcut slots
    for already-connected peers, desynchronized NAT mapping indices, or
    trace spans that can never close."""
    from repro.brunet.overlords import FarConnectionOverlord
    out: list[Violation] = []
    for node in nodes:
        linker = node.linker
        if not node.active:
            if linker.by_token or linker.by_addr:
                out.append(Violation(
                    now, "leak", "leak.linker-after-stop", node.name,
                    f"leak.linker-after-stop:{node.name}",
                    f"stopped node {node.name} still holds "
                    f"{len(linker.by_token)} linking attempts"))
            continue
        give_up = node.config.uri_give_up_time()
        for attempt in linker.by_token.values():
            budget = max(1, len(attempt.uris)) * give_up + 60.0
            if now - attempt.started_at > budget:
                out.append(Violation(
                    now, "leak", "leak.link-attempt", node.name,
                    f"leak.link-attempt:{node.name}:{attempt.token}",
                    f"{node.name} linking attempt {attempt.token} toward "
                    f"{attempt.target_addr!r} alive "
                    f"{now - attempt.started_at:.0f}s, budget "
                    f"{budget:.0f}s"))
        for overlord in node.overlords:
            if isinstance(overlord, FarConnectionOverlord):
                stale = [t for t in overlord._pending
                         if t <= now - 2 * node.config.overlord_interval]
                if stale:
                    out.append(Violation(
                        now, "leak", "leak.far-pending", node.name,
                        f"leak.far-pending:{node.name}",
                        f"{node.name} far overlord holds {len(stale)} "
                        f"expired _pending slots"))
        shortcut = getattr(node, "shortcut_overlord", None)
        if shortcut is not None:
            for dest, until in shortcut._pending.items():
                if node.table.get(dest) is not None:
                    out.append(Violation(
                        now, "leak", "leak.shortcut-pending", node.name,
                        f"leak.shortcut-pending:{node.name}:{dest.hex()}",
                        f"{node.name} holds a shortcut _pending slot for "
                        f"{dest!r} although the connection is up"))
                elif until <= now - 3.0 * node.config.shortcut_tick:
                    out.append(Violation(
                        now, "leak", "leak.shortcut-pending-expired",
                        node.name,
                        f"leak.shortcut-pending-expired:{node.name}:"
                        f"{dest.hex()}",
                        f"{node.name} shortcut _pending slot for {dest!r} "
                        f"expired {now - until:.0f}s ago and was never "
                        f"pruned"))
    if internet is not None:
        out.extend(_check_nat_indices(internet, now))
    if spans is not None and spans.enabled:
        out.extend(check_spans(spans, now, span_grace))
    return out


def _check_nat_indices(internet: "Internet", now: float) -> list[Violation]:
    """A NAT's ``_by_key`` and ``_by_port`` must mirror each other —
    a one-sided entry is an orphaned mapping that can shadow a public
    port forever."""
    out: list[Violation] = []
    for nat in internet.nats_by_ip.values():
        bad = 0
        for port, m in nat._by_port.items():
            if nat._by_key.get(m.key) is not m or m.public_port != port:
                bad += 1
        for key, m in nat._by_key.items():
            if nat._by_port.get(m.public_port) is not m or m.key != key:
                bad += 1
        if bad:
            out.append(Violation(
                now, "leak", "leak.nat-mapping", nat.name,
                f"leak.nat-mapping:{nat.name}",
                f"NAT {nat.name} has {bad} mapping index entries whose "
                f"_by_key/_by_port mirrors disagree"))
    return out


def check_spans(spans: "SpanCollector", now: float,
                span_grace: float = 900.0) -> list[Violation]:
    """No non-root span may stay open longer than ``span_grace``.

    Root spans are exempt: a lost packet legitimately leaves its root
    open (the inspector renders it as "lost").  A non-root span still
    open long after the slowest legal linking ladder (~3 dead URIs ×
    155 s) is a leak — e.g. an attempt deregistered without closing its
    span.
    """
    out: list[Violation] = []
    roots = set(spans.roots.values())
    for span in spans.spans:
        if span.t1 is None and span.id not in roots \
                and now - span.t0 > span_grace:
            out.append(Violation(
                now, "span", "span.dangling", span.node,
                f"span.dangling:{span.id}",
                f"span {span.id} ({span.name}, trace {span.trace_id}) on "
                f"{span.node} open since t={span.t0:g}s"))
    return out
