"""Virtual TCP: a reliable, connection-oriented byte stream over IPOP.

The paper's middleware (NFS, SSH, PBS) rides TCP over the virtual network;
the RPC substrate models that reliability directly, but some behaviours —
connection state surviving a migration, in-order delivery, FIN teardown —
deserve a real protocol.  This is a compact TCP: three-way handshake,
cumulative ACKs, a fixed window, retransmission timers with exponential
back-off, and graceful close.  Segments travel as individual virtual-IP
packets, so every NAT/overlay behaviour applies to them.

Bulk data still uses :class:`~repro.ipop.transfer.OverlayTransfer` (a fluid
flow); VTCP is for *control* streams, where per-segment semantics matter.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.ipop.ippacket import VirtualIpPacket
from repro.sim.process import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.ipop.router import IpopRouter

_isn_counter = itertools.count(1000)

MSS = 1400
DEFAULT_WINDOW = 8  # segments in flight
RTO_INITIAL = 1.0
RTO_MAX = 60.0
MAX_SYN_RETRIES = 30  # keep trying across migration outages


@dataclass
class Segment:
    """One VTCP segment (sequence numbers count segments, not bytes)."""

    seq: int
    ack: int
    flags: str  # "SYN", "SYN+ACK", "ACK", "DATA", "FIN"
    payload: Any = None
    size: int = 40


class VtcpSocket:
    """One endpoint of a virtual TCP connection."""

    def __init__(self, router: "IpopRouter", local_port: int,
                 on_message: Optional[Callable[[Any], None]] = None):
        self.router = router
        self.sim = router.node.sim
        self.local_port = local_port
        self.on_message = on_message
        self.state = "CLOSED"
        self.peer_ip: Optional[str] = None
        self.peer_port: Optional[int] = None
        # send side
        self.snd_next = 0
        self.snd_una = 0
        self._send_buffer: deque[tuple[Any, int]] = deque()
        self._in_flight: dict[int, Segment] = {}
        self._rto = RTO_INITIAL
        self._retx_timer = None
        self._syn_tries = 0
        self._close_requested = False
        # receive side
        self.rcv_next = 0
        self._reorder: dict[int, Segment] = {}
        # signals
        self.established = Signal(self.sim, "vtcp.established", latch=True)
        self.closed = Signal(self.sim, "vtcp.closed", latch=True)
        self.messages_delivered = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------
    # state machine entry points
    # ------------------------------------------------------------------
    def connect(self, peer_ip: str, peer_port: int) -> Signal:
        """Active open; returns the latched ``established`` signal."""
        if self.state != "CLOSED":
            raise RuntimeError(f"connect() in state {self.state}")
        self.peer_ip, self.peer_port = peer_ip, peer_port
        self.state = "SYN_SENT"
        self.snd_next = next(_isn_counter)
        self.snd_una = self.snd_next
        self._transmit(Segment(self.snd_next, 0, "SYN"))
        self._arm_retx()
        return self.established

    def listen(self) -> None:
        """Passive open: accept the first SYN that arrives."""
        if self.state != "CLOSED":
            raise RuntimeError(f"listen() in state {self.state}")
        self.state = "LISTEN"

    def send(self, message: Any, size: int = 200) -> None:
        """Queue one message; it is delivered exactly once, in order."""
        if self.state not in ("ESTABLISHED", "SYN_SENT", "LISTEN",
                              "SYN_RCVD") or self._close_requested:
            raise RuntimeError(f"send() in state {self.state}")
        self._send_buffer.append((message, size))
        self._pump()

    def close(self) -> Signal:
        """Flush pending data, then FIN."""
        self._close_requested = True
        if self.state == "CLOSED":
            self.closed.fire(self)
        elif self.state == "LISTEN":
            self._teardown()
        else:
            self._maybe_fin()
        return self.closed

    def _maybe_fin(self) -> None:
        if self._close_requested and self.state == "ESTABLISHED" \
                and not self._send_buffer and not self._in_flight:
            self._send_fin()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _transmit(self, seg: Segment) -> None:
        if self.peer_ip is None:
            return
        self.router.send_ip(self.peer_ip, "vtcp", self.peer_port,
                            (self.local_port, seg), seg.size)

    def _arm_retx(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
        self._retx_timer = self.sim.schedule(self._rto, self._on_retx)

    def _on_retx(self) -> None:
        self._retx_timer = None
        if self.state == "SYN_SENT":
            self._syn_tries += 1
            if self._syn_tries > MAX_SYN_RETRIES:
                self._teardown()
                return
            self.retransmissions += 1
            self._transmit(Segment(self.snd_una, 0, "SYN"))
        elif self._in_flight:
            # go-back: retransmit the oldest unacked segment
            oldest = min(self._in_flight)
            self.retransmissions += 1
            self._transmit(self._in_flight[oldest])
        elif self.state == "FIN_SENT":
            self.retransmissions += 1
            self._transmit(Segment(self.snd_next, self.rcv_next, "FIN"))
        else:
            return
        self._rto = min(self._rto * 2.0, RTO_MAX)
        self._arm_retx()

    def _pump(self) -> None:
        """Move queued messages into the window."""
        if self.state != "ESTABLISHED":
            return
        while self._send_buffer and len(self._in_flight) < DEFAULT_WINDOW:
            message, size = self._send_buffer.popleft()
            seg = Segment(self.snd_next, self.rcv_next, "DATA", message,
                          size + 40)
            self.snd_next += 1
            self._in_flight[seg.seq] = seg
            self._transmit(seg)
        if self._in_flight and self._retx_timer is None:
            self._arm_retx()

    def _send_fin(self) -> None:
        self.state = "FIN_SENT"
        self._transmit(Segment(self.snd_next, self.rcv_next, "FIN"))
        self._arm_retx()

    def _teardown(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None
        self.state = "CLOSED"
        self.closed.fire(self)

    # ------------------------------------------------------------------
    # segment arrival
    # ------------------------------------------------------------------
    def handle_segment(self, src_ip: str, src_port: int,
                       seg: Segment) -> None:
        """State-machine entry point for one arriving segment."""
        if self.state == "LISTEN" and seg.flags == "SYN":
            self.peer_ip, self.peer_port = src_ip, src_port
            self.rcv_next = seg.seq + 1
            self.snd_next = next(_isn_counter)
            self.snd_una = self.snd_next
            self.state = "SYN_RCVD"
            self._transmit(Segment(self.snd_next, self.rcv_next, "SYN+ACK"))
            self._arm_retx()
            return
        if (src_ip, src_port) != (self.peer_ip, self.peer_port):
            return  # stray
        if seg.flags == "SYN" and self.state in ("SYN_RCVD", "ESTABLISHED"):
            # duplicate SYN: re-ack
            self._transmit(Segment(self.snd_una, self.rcv_next, "SYN+ACK"))
            return
        if seg.flags == "SYN+ACK" and self.state == "SYN_SENT":
            self.rcv_next = seg.seq + 1
            self.snd_next += 1
            self.snd_una = self.snd_next
            self.state = "ESTABLISHED"
            self._rto = RTO_INITIAL
            if self._retx_timer is not None:
                self._retx_timer.cancel()
                self._retx_timer = None
            self._transmit(Segment(self.snd_next, self.rcv_next, "ACK"))
            self.established.fire(self)
            self._pump()
            return
        if seg.flags == "ACK" and self.state == "SYN_RCVD":
            self.state = "ESTABLISHED"
            self._rto = RTO_INITIAL
            if self._retx_timer is not None:
                self._retx_timer.cancel()
                self._retx_timer = None
            self.established.fire(self)
            self._pump()
            return
        if seg.flags == "DATA":
            self._on_data(seg)
            return
        if seg.flags == "ACK":
            if self.state == "FIN_SENT":
                self._teardown()
                return
            self._on_ack(seg.ack)
            return
        if seg.flags == "FIN":
            self.rcv_next = max(self.rcv_next, seg.seq)
            self._transmit(Segment(self.snd_next, self.rcv_next, "ACK"))
            self._teardown()
            return

    def _on_data(self, seg: Segment) -> None:
        if self.state not in ("ESTABLISHED", "SYN_RCVD", "FIN_SENT"):
            return
        if seg.seq < self.rcv_next:
            pass  # duplicate
        else:
            self._reorder[seg.seq] = seg
            while self.rcv_next in self._reorder:
                ready = self._reorder.pop(self.rcv_next)
                self.rcv_next += 1
                self.messages_delivered += 1
                if self.on_message is not None:
                    self.on_message(ready.payload)
        self._transmit(Segment(self.snd_next, self.rcv_next, "ACK"))

    def _on_ack(self, ack: int) -> None:
        progressed = ack > self.snd_una
        for seq in [s for s in self._in_flight if s < ack]:
            self._in_flight.pop(seq)
        self.snd_una = max(self.snd_una, ack)
        if progressed:
            # forward progress: reset the back-off and restart the timer
            self._rto = RTO_INITIAL
            if self._retx_timer is not None:
                self._retx_timer.cancel()
                self._retx_timer = None
            if self._in_flight:
                self._arm_retx()
        if not self._in_flight and self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None
        self._pump()
        self._maybe_fin()


class VtcpStack:
    """Creates VTCP sockets on one IPOP router.

    Each socket binds its local port on the router; segments carry the
    sender's source port in the payload so replies can be addressed."""

    def __init__(self, router: "IpopRouter"):
        self.router = router
        self._sockets: dict[int, VtcpSocket] = {}

    def socket(self, port: int,
               on_message: Optional[Callable[[Any], None]] = None
               ) -> VtcpSocket:
        if port in self._sockets:
            raise ValueError(f"vtcp port {port} in use")
        sock = VtcpSocket(self.router, port, on_message)
        self._sockets[port] = sock

        def dispatch(pkt: VirtualIpPacket, sock=sock) -> None:
            src_port, seg = pkt.payload
            sock.handle_segment(pkt.src_ip, src_port, seg)

        self.router.bind("vtcp", port, dispatch)
        return sock

    def release(self, port: int) -> None:
        if port in self._sockets:
            self._sockets.pop(port)
            self.router.unbind("vtcp", port)
