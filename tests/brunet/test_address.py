"""Ring address arithmetic — includes hypothesis property tests."""

import numpy as np
from hypothesis import given, strategies as st

from repro.brunet.address import (
    ADDRESS_SPACE,
    BrunetAddress,
    address_from_ip,
    directed_distance,
    is_between_cw,
    kleinberg_far_target,
    random_address,
    ring_distance,
)

addr_ints = st.integers(min_value=0, max_value=ADDRESS_SPACE - 1)


def test_address_wraps_modulo_space():
    assert BrunetAddress(ADDRESS_SPACE + 5) == 5
    assert BrunetAddress(-1) == ADDRESS_SPACE - 1


def test_offset():
    a = BrunetAddress(10)
    assert a.offset(-20) == ADDRESS_SPACE - 10


def test_directed_distance_basics():
    assert directed_distance(10, 20) == 10
    assert directed_distance(20, 10) == ADDRESS_SPACE - 10
    assert directed_distance(7, 7) == 0


@given(addr_ints, addr_ints)
def test_directed_distances_sum_to_space(a, b):
    if a == b:
        assert directed_distance(a, b) == 0
    else:
        assert directed_distance(a, b) + directed_distance(b, a) \
            == ADDRESS_SPACE


@given(addr_ints, addr_ints)
def test_ring_distance_symmetric_and_bounded(a, b):
    d = ring_distance(a, b)
    assert d == ring_distance(b, a)
    assert 0 <= d <= ADDRESS_SPACE // 2


@given(addr_ints, addr_ints, addr_ints)
def test_ring_distance_triangle_inequality(a, b, c):
    assert ring_distance(a, c) <= ring_distance(a, b) + ring_distance(b, c)


@given(addr_ints, addr_ints, st.integers(-(2 ** 80), 2 ** 80))
def test_ring_distance_translation_invariant(a, b, shift):
    assert ring_distance(a, b) == ring_distance(
        (a + shift) % ADDRESS_SPACE, (b + shift) % ADDRESS_SPACE)


def test_address_from_ip_deterministic_and_distinct():
    a1 = address_from_ip("172.16.1.2")
    a2 = address_from_ip("172.16.1.2")
    a3 = address_from_ip("172.16.1.3")
    assert a1 == a2
    assert a1 != a3
    assert 0 <= int(a1) < ADDRESS_SPACE


def test_random_address_uniformish():
    rng = np.random.default_rng(0)
    addrs = [int(random_address(rng)) for _ in range(200)]
    assert len(set(addrs)) == 200
    # crude uniformity: mean near the middle of the space
    mean = sum(addrs) / len(addrs)
    assert 0.35 * ADDRESS_SPACE < mean < 0.65 * ADDRESS_SPACE


def test_kleinberg_targets_span_scales():
    rng = np.random.default_rng(1)
    me = int(address_from_ip("x"))
    distances = [ring_distance(me, int(kleinberg_far_target(me, rng)))
                 for _ in range(400)]
    logs = np.log2(np.array([max(d, 1) for d in distances], dtype=float))
    # log-uniform-ish: wide spread across scales
    assert logs.std() > 20.0


def test_is_between_cw():
    assert is_between_cw(10, 20, 30)
    assert not is_between_cw(10, 40, 30)
    assert is_between_cw(ADDRESS_SPACE - 5, 3, 10)  # wraps zero
    assert not is_between_cw(10, 10, 30)  # exclusive


@given(addr_ints, addr_ints)
def test_is_between_excludes_endpoints(a, b):
    assert not is_between_cw(a, a, b)
    if a != b:
        assert not is_between_cw(a, b, b)
