"""``python -m repro.apps.swarm`` — launch a real multi-process WOW swarm.

The deployment rehearsal for the paper's testbed: spawn N (default 50)
:mod:`repro.apps.daemon` processes on localhost, each with its own real
UDP socket, control socket, and cached-peer store, then drive the same
drills the simulator chapters verify analytically:

1. **form** — all nodes join off a handful of seed nodes and the swarm-
   wide ring audit (every node's right neighbor == its live successor)
   comes back consistent;
2. **traffic** — virtual-IP ICMP pings tunnel between random node pairs;
3. **churn** — SIGKILL a fraction of the swarm (default 20%); survivors
   re-converge and pings still deliver;
4. **seed death** — gracefully stop one node (persisting its peer
   cache), SIGKILL *every* seed, restart the node with only dead seed
   URIs on its command line — it must rejoin through the cached peers
   (the decentralized-bootstrap tentpole);
5. **drain** — SIGTERM everything, require clean exits, and (with
   ``--bundle-dir``) audit every exported observability bundle with
   :mod:`repro.check.posthoc`.

Exit status 0 means every drill passed — CI runs this with
``--nodes 10`` as the swarm smoke job.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from typing import Optional

import repro
from repro.apps.wowctl import (ControlError, audit_ring, collect_census,
                               control_call, render_census)

#: localhost virtual subnet: node i owns 10.128.(2+i//250).(2+i%250)
def vip_for(index: int) -> str:
    return f"10.128.{2 + index // 250}.{2 + index % 250}"


class SwarmNode:
    """One spawned daemon process and the paths to talk to it."""

    def __init__(self, index: int, run_dir: str, base_port: int,
                 is_seed: bool):
        self.index = index
        self.name = f"n{index:03d}"
        self.vip = vip_for(index)
        self.port = base_port + index
        self.is_seed = is_seed
        self.sock = os.path.join(run_dir, f"{self.name}.sock")
        self.cache = os.path.join(run_dir, f"{self.name}.peers.json")
        self.log = os.path.join(run_dir, f"{self.name}.log")
        self.proc: Optional[subprocess.Popen] = None

    @property
    def uri(self) -> str:
        return f"brunet.udp:127.0.0.1:{self.port}"

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class Swarm:
    def __init__(self, nodes: int, base_port: int, run_dir: str,
                 seeds: int = 3, bundle_dir: Optional[str] = None,
                 rng_seed: int = 0):
        self.run_dir = run_dir
        self.bundle_dir = bundle_dir
        self.rng = random.Random(rng_seed)
        seeds = min(seeds, nodes)
        self.nodes = [SwarmNode(i, run_dir, base_port, is_seed=i < seeds)
                      for i in range(nodes)]
        self.seed_uris = [n.uri for n in self.nodes if n.is_seed]
        # the daemon subprocess must import repro from the same tree
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        self.env = dict(os.environ)
        self.env["PYTHONPATH"] = src_dir + os.pathsep + \
            self.env.get("PYTHONPATH", "")

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def spawn(self, node: SwarmNode) -> None:
        cmd = [sys.executable, "-m", "repro.apps.daemon",
               "--vip", node.vip,
               "--listen", f"127.0.0.1:{node.port}",
               "--control", node.sock,
               "--peer-cache", node.cache,
               "--cache-interval", "2.0",
               "--name", node.name]
        for uri in self.seed_uris:
            if uri != node.uri:  # a seed does not bootstrap off itself
                cmd += ["--seed-uri", uri]
        if self.bundle_dir:
            cmd += ["--bundle-out",
                    os.path.join(self.bundle_dir, node.name)]
        logfh = open(node.log, "ab")
        node.proc = subprocess.Popen(cmd, stdout=logfh, stderr=logfh,
                                     env=self.env)
        logfh.close()

    def spawn_all(self) -> None:
        # seeds first so the very first joiners have someone to talk to
        for node in sorted(self.nodes, key=lambda n: not n.is_seed):
            self.spawn(node)

    def kill(self, node: SwarmNode, graceful: bool = False,
             timeout: float = 15.0) -> int:
        """Stop one daemon; returns its exit code."""
        if node.proc is None:
            return 0
        if node.proc.poll() is None:
            node.proc.send_signal(
                signal.SIGTERM if graceful else signal.SIGKILL)
        try:
            return node.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            node.proc.kill()
            return node.proc.wait(timeout=5.0)

    def teardown(self, graceful: bool = True) -> list[str]:
        """Stop every live daemon; returns names that exited non-zero."""
        dirty = []
        live = [n for n in self.nodes if n.alive()]
        for node in live:
            if node.proc.poll() is None:
                node.proc.send_signal(
                    signal.SIGTERM if graceful else signal.SIGKILL)
        for node in live:
            try:
                code = node.proc.wait(timeout=20.0)
            except subprocess.TimeoutExpired:
                node.proc.kill()
                node.proc.wait(timeout=5.0)
                code = -9
            if graceful and code != 0:
                dirty.append(f"{node.name} exit={code}")
        return dirty

    # ------------------------------------------------------------------
    # swarm-wide checks
    # ------------------------------------------------------------------
    def live_sockets(self) -> list[str]:
        return [n.sock for n in self.nodes
                if n.alive() and os.path.exists(n.sock)]

    def wait_for_ring(self, expect: int, timeout: float,
                      label: str) -> list[dict]:
        """Poll the census until ``expect`` nodes are in a consistent
        ring; raises RuntimeError with the last census on timeout."""
        deadline = time.monotonic() + timeout
        statuses, errors, problems = [], ["not yet polled"], ["pending"]
        while time.monotonic() < deadline:
            statuses, errors = collect_census(self.live_sockets(),
                                              timeout=5.0)
            problems = audit_ring(statuses)
            if len(statuses) >= expect and not problems:
                return statuses
            time.sleep(1.0)
        raise RuntimeError(
            f"{label}: ring not consistent after {timeout:.0f}s\n"
            + render_census(statuses, errors, problems))

    def ping_pairs(self, count: int, timeout: float = 10.0) -> int:
        """Random-pair virtual-IP pings; returns the number that failed."""
        live = [n for n in self.nodes if n.alive()]
        failed = 0
        for _ in range(count):
            src, dst = self.rng.sample(live, 2)
            try:
                reply = control_call(src.sock, "ping", vip=dst.vip,
                                     timeout=timeout + 5.0)
            except ControlError:
                reply = {"replied": False}
            if not reply.get("replied"):
                failed += 1
                print(f"  PING FAIL {src.name}({src.vip}) -> "
                      f"{dst.name}({dst.vip})")
        return failed


# ---------------------------------------------------------------------------
# drills
# ---------------------------------------------------------------------------

def drill_churn(swarm: Swarm, frac: float, pings: int,
                settle: float) -> None:
    victims = [n for n in swarm.nodes if not n.is_seed and n.alive()]
    swarm.rng.shuffle(victims)
    victims = victims[:max(1, int(len(swarm.nodes) * frac))]
    print(f"churn: SIGKILL {len(victims)} nodes "
          f"({', '.join(v.name for v in victims)})")
    for v in victims:
        swarm.kill(v, graceful=False)
        if os.path.exists(v.sock):
            os.unlink(v.sock)
    survivors = sum(1 for n in swarm.nodes if n.alive())
    swarm.wait_for_ring(survivors, settle, "churn")
    failed = swarm.ping_pairs(pings)
    if failed:
        raise RuntimeError(f"churn: {failed}/{pings} pings lost after "
                           "re-convergence")
    print(f"churn: ring re-converged with {survivors} nodes, "
          f"{pings} pings delivered")


def drill_seed_death(swarm: Swarm, settle: float) -> None:
    victim = next(n for n in reversed(swarm.nodes)
                  if not n.is_seed and n.alive())
    print(f"seed-death: graceful stop of {victim.name} "
          f"(persists peer cache)")
    code = swarm.kill(victim, graceful=True)
    if code != 0:
        raise RuntimeError(f"seed-death: {victim.name} exited {code} "
                           "on SIGTERM")
    if not os.path.exists(victim.cache):
        raise RuntimeError(f"seed-death: {victim.name} saved no peer "
                           f"cache at {victim.cache}")
    cached = json.load(open(victim.cache))["peers"]
    seeds = [n for n in swarm.nodes if n.is_seed and n.alive()]
    print(f"seed-death: SIGKILL all {len(seeds)} seeds "
          f"({', '.join(s.name for s in seeds)}); victim cache holds "
          f"{len(cached)} peers")
    for s in seeds:
        swarm.kill(s, graceful=False)
        if os.path.exists(s.sock):
            os.unlink(s.sock)
    # restart the victim: its --seed-uri list now points only at corpses,
    # so rejoining is possible only through the cached peers
    swarm.spawn(victim)
    deadline = time.monotonic() + settle
    while time.monotonic() < deadline:
        try:
            st = control_call(victim.sock, "status", timeout=5.0)
            if st.get("in_ring"):
                print(f"seed-death: {victim.name} rejoined via cached "
                      f"peers ({st['connections']} connections)")
                return
        except (ControlError, ValueError):
            pass
        time.sleep(1.0)
    raise RuntimeError(
        f"seed-death: {victim.name} failed to rejoin within "
        f"{settle:.0f}s of restart with all seeds dead")


def audit_bundles(bundle_dir: str) -> int:
    """Posthoc-audit every exported bundle; returns failure count."""
    from repro.check.posthoc import audit_bundle
    failures = 0
    bundles = sorted(d for d in os.listdir(bundle_dir)
                     if os.path.isdir(os.path.join(bundle_dir, d)))
    for name in bundles:
        violations = audit_bundle(os.path.join(bundle_dir, name))
        print(f"bundle {name}: {'FAIL' if violations else 'ok'}")
        for v in violations:
            print(f"    {v.kind} {v.node}: {v.detail}")
        failures += len(violations)
    if not bundles:
        print(f"bundle audit: nothing exported under {bundle_dir}")
    return failures


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.swarm",
        description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", type=int, default=50)
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--base-port", type=int, default=15600)
    parser.add_argument("--run-dir", default=None,
                        help="sockets/caches/logs live here "
                             "(default: fresh temp dir)")
    parser.add_argument("--bundle-dir", default=None,
                        help="daemons export obs bundles here on drain; "
                             "audited with repro.check.posthoc")
    parser.add_argument("--settle", type=float, default=90.0,
                        help="seconds to wait for ring convergence")
    parser.add_argument("--pings", type=int, default=10,
                        help="random ping pairs per traffic check")
    parser.add_argument("--churn-frac", type=float, default=0.2)
    parser.add_argument("--skip-churn", action="store_true")
    parser.add_argument("--skip-seed-death", action="store_true")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for victim/pair selection")
    parser.add_argument("--hold", action="store_true",
                        help="after the drills, leave the swarm running "
                             "until Ctrl-C (attach wowctl / obs.top)")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    run_dir = args.run_dir or tempfile.mkdtemp(prefix="wow-swarm-")
    os.makedirs(run_dir, exist_ok=True)
    if args.bundle_dir:
        os.makedirs(args.bundle_dir, exist_ok=True)
    swarm = Swarm(args.nodes, args.base_port, run_dir, seeds=args.seeds,
                  bundle_dir=args.bundle_dir, rng_seed=args.seed)
    print(f"swarm: {args.nodes} daemons, {len(swarm.seed_uris)} seeds, "
          f"ports {args.base_port}..{args.base_port + args.nodes - 1}, "
          f"run dir {run_dir}")
    try:
        swarm.spawn_all()
        statuses = swarm.wait_for_ring(args.nodes, args.settle, "form")
        print(f"form: ring consistent with {len(statuses)} nodes")
        failed = swarm.ping_pairs(args.pings)
        if failed:
            raise RuntimeError(f"traffic: {failed}/{args.pings} pings "
                               "lost on the formed ring")
        print(f"traffic: {args.pings} pings delivered")
        if not args.skip_churn:
            drill_churn(swarm, args.churn_frac, args.pings, args.settle)
        if not args.skip_seed_death:
            drill_seed_death(swarm, args.settle)
        if args.hold:
            print(f"hold: swarm up — wowctl --dir {run_dir} census; "
                  "Ctrl-C to drain")
            try:
                while True:
                    time.sleep(60.0)
            except KeyboardInterrupt:
                pass
        dirty = swarm.teardown(graceful=True)
        if dirty:
            raise RuntimeError("drain: unclean exits: " + ", ".join(dirty))
        print("drain: all daemons exited cleanly")
        if args.bundle_dir:
            bad = audit_bundles(args.bundle_dir)
            if bad:
                raise RuntimeError(f"bundle audit: {bad} failed checks")
        print("swarm: ALL DRILLS PASSED")
        return 0
    except (RuntimeError, ControlError) as exc:
        print(f"swarm: FAILED — {exc}", file=sys.stderr)
        return 1
    finally:
        swarm.teardown(graceful=False)


if __name__ == "__main__":
    sys.exit(main())
