"""Benchmark: overlay scaling sweep (extension experiment).

Validates the §IV-A claim that greedy routing over k far links needs
O((1/k)·log²n) hops: hop count must grow far slower than n, and the
normalised hops/log²n ratio must stay roughly flat.
"""

from benchmarks.conftest import run_once
from repro.experiments import scaling


def test_scaling_sweep(benchmark):
    points = run_once(benchmark, scaling.run, sizes=(32, 64, 128), seed=2)
    scaling.report(points)
    by_n = {p.n_nodes: p for p in points}
    # every pair routable at every size
    assert all(p.unreachable == 0 for p in points)
    # hop growth is sub-linear: 4x the nodes, well under 2.5x the hops
    assert by_n[128].mean_hops / by_n[32].mean_hops < 2.5
    # the O(log²n) normalisation stays in a narrow band
    ratios = [p.hops_per_log2n_sq for p in points]
    assert max(ratios) / min(ratios) < 2.0
    # joins remain fast as the overlay grows (paper: seconds)
    assert all(p.mean_join_s < 10.0 for p in points)
