#!/usr/bin/env python
"""Decentralized NAT traversal, connection by connection (paper §IV).

Shows the raw protocol behaviour behind Fig. 4: the same shortcut request
takes milliseconds, seconds, or minutes depending only on the NAT semantics
between the two nodes — cone NATs hole-punch; a hairpin-incapable NAT burns
the full URI-retry ladder before the private-address fallback works.

Run:  python examples/nat_traversal.py
"""

from repro.brunet.connection import ConnectionType
from repro.core import Deployment
from repro.core.config import SiteSpec
from repro.sim import Simulator


def measure_shortcut(wow, sim, a, b) -> float:
    """Drive traffic a→b until a direct connection exists; return how long
    the self-configured link took."""
    t0 = sim.now
    formed = {}

    def watch(conn) -> None:
        if conn.peer_addr == b.addr:
            formed.setdefault("t", sim.now - t0)
    a.node.on_connection.append(watch)

    def drive() -> None:
        if "t" not in formed and sim.now - t0 < 600.0:
            a.router.send_ip(b.virtual_ip, "udp", 7, b"probe", 64)
            a.node.inspect_traffic(b.addr)  # …and score it
            sim.schedule(1.0, drive)
    drive()
    sim.run(until=sim.now + 650.0)
    return formed.get("t", float("inf"))


def main() -> None:
    sim = Simulator(seed=13)
    wow = Deployment(sim)
    wow.add_planetlab(n_hosts=4, n_routers=12)

    hairpinless = wow.add_site(SiteSpec("ufl-like", "10.70.",
                                        nat_hairpin=False))
    cone_a = wow.add_site(SiteSpec("campus-a", "10.80.", nat_hairpin=True))
    cone_b = wow.add_site(SiteSpec("campus-b", "10.90.", nat_hairpin=True))

    sim.run(until=30)

    cases = [
        ("cross-NAT hole punch (cone ↔ cone)", cone_a, cone_b),
        ("same cone NAT (hairpin works)", cone_b, cone_b),
        ("same NAT, hairpin unsupported → URI-ladder fallback",
         hairpinless, hairpinless),
    ]
    print("how long until a direct (single-hop) connection forms:\n")
    ip_counter = iter(range(2, 200))
    for index, (label, site_x, site_y) in enumerate(cases):
        # fresh VM pair per case so no prior connection state exists;
        # re-roll ring positions that happen to be adjacent (adjacent nodes
        # link as ring neighbours regardless of traffic)
        while True:
            x = wow.create_vm(f"x{index}.{next(ip_counter)}",
                              f"172.16.9.{next(ip_counter)}", site_x)
            y = wow.create_vm(f"y{index}.{next(ip_counter)}",
                              f"172.16.9.{next(ip_counter)}", site_y)
            x.start()
            y.start()
            sim.run(until=sim.now + 30)
            if x.node.table.get(y.addr) is None:
                break
            x.stop()
            y.stop()
            sim.run(until=sim.now + 60)
        took = measure_shortcut(wow, sim, x, y)
        conn = x.node.table.get(y.addr)
        via = conn.remote_endpoint if conn else "—"
        print(f"  {label}\n    {x.name}→{y.name}: {took:6.1f}s  "
              f"(linked via {via})\n")
    print("the ~155 s case is the paper's Fig. 4 UFL-UFL curve: the linking")
    print("protocol retries the NAT-assigned public URI with exponential")
    print("back-off before falling back to the private address (§V-B)")


if __name__ == "__main__":
    main()
