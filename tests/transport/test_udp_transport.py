"""Live-socket smoke: real asyncio UDP sockets on localhost.

The full two-node bootstrap + CTM + linking + tunnelled-ping scenario is
exercised via the demo's ``run`` coroutine (the same code CI runs as a
standalone process); plus focused unit checks on UdpTransport framing.
"""

import asyncio

from repro.brunet.messages import PingRequest
from repro.ipop.mapping import addr_for_ip
from repro.transport.runtime import RealtimeKernel
from repro.transport.udp import UdpTransport


def test_udp_transport_roundtrip_real_sockets():
    async def scenario():
        kernel = RealtimeKernel(seed=0)
        a = await UdpTransport.create(kernel, "127.0.0.1", 0, name="a")
        b = await UdpTransport.create(kernel, "127.0.0.1", 0, name="b")
        got = asyncio.get_running_loop().create_future()
        b.open(lambda msg, src, size: got.done() or got.set_result(
            (msg, src, size)))
        a.open(lambda *args: None)
        sent = PingRequest(7, addr_for_ip("10.128.0.2"))
        a.send(b.local_endpoint, sent, size_hint=96)
        msg, src, size = await asyncio.wait_for(got, timeout=5.0)
        a.close()
        b.close()
        return sent, msg, src, size

    sent, msg, src, size = asyncio.run(scenario())
    assert msg == sent and msg is not sent  # crossed the wire by value
    assert src.ip == "127.0.0.1"
    assert size > 28  # measured frame + UDP/IP headers, not a constant


def test_udp_transport_drops_garbage_with_counted_metric():
    async def scenario():
        kernel = RealtimeKernel(seed=0)
        b = await UdpTransport.create(kernel, "127.0.0.1", 0, name="b")
        delivered = []
        b.open(lambda msg, src, size: delivered.append(msg))
        loop = asyncio.get_running_loop()
        garbage_tx, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, local_addr=("127.0.0.1", 0))
        ep = b.local_endpoint
        garbage_tx.sendto(b"not a frame", (ep.ip, ep.port))
        await asyncio.sleep(0.2)
        errs = kernel.obs.metrics.counter("wire.decode_error",
                                          node="b").value
        garbage_tx.close()
        b.close()
        return delivered, errs

    delivered, errs = asyncio.run(scenario())
    assert delivered == []
    assert errs == 1


def test_socket_errors_do_not_pollute_codec_health():
    """Regression: an OS-level socket error (ICMP port-unreachable — a
    churning swarm generates these constantly) was counted into
    ``wire.decode_error``, corrupting the codec-health metric.  It must
    land in its own ``wire.socket_error`` counter."""
    from repro.transport.udp import _Protocol

    async def scenario():
        kernel = RealtimeKernel(seed=0)
        t = await UdpTransport.create(kernel, "127.0.0.1", 0, name="t")
        proto = _Protocol(t)
        proto.error_received(OSError(111, "Connection refused"))
        proto.error_received(OSError(111, "Connection refused"))
        metrics = kernel.obs.metrics
        decode = metrics.counter("wire.decode_error", node="t").value
        sock = metrics.counter("wire.socket_error", node="t").value
        t.close()
        return decode, sock

    decode, sock = asyncio.run(scenario())
    assert decode == 0
    assert sock == 2


def test_realtime_kernel_schedule_and_cancel():
    async def scenario():
        kernel = RealtimeKernel(seed=0)
        fired = []
        kernel.schedule(0.01, fired.append, "a")
        handle = kernel.schedule(0.01, fired.append, "b")
        handle.cancel()
        await asyncio.sleep(0.1)
        assert kernel.now > 0.0
        return fired, kernel.events_processed

    fired, processed = asyncio.run(scenario())
    assert fired == ["a"]
    assert processed == 1


def test_live_two_node_overlay_and_tunnelled_ping():
    """The CI smoke scenario: unmodified BrunetNode/IpopRouter over real
    UDP sockets — bootstrap, CTM handshake, linking, virtual-IP ping."""
    from repro.apps.udp_demo import run
    assert asyncio.run(run(timeout=60.0, verbose=False)) == 0
