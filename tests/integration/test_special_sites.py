"""Connectivity for the testbed's special nodes: ncgrid (single open UDP
port) and gru (home network behind a NAT chain)."""

import pytest

from repro.ipop import Pinger
from tests.conftest import make_mini_testbed


@pytest.fixture(scope="module")
def bed():
    return make_mini_testbed(seed=202)


def ping(sim, src_vm, dst_vm, count=8):
    pinger = Pinger(src_vm.router)
    done = pinger.run(dst_vm.virtual_ip, count=count, interval=0.5)
    sim.run(until=sim.now + count * 0.5 + 4)
    stats = done.value
    pinger.close()
    return stats


def test_ncgrid_node_joins_through_firewall(bed):
    sim, tb = bed
    node032 = tb.vm(32)
    assert node032.node.in_ring
    assert node032.host.site.firewall is not None


def test_ncgrid_reachable_both_directions(bed):
    sim, tb = bed
    node032 = tb.vm(32)
    out_stats = ping(sim, node032, tb.vm(3))
    in_stats = ping(sim, tb.vm(3), node032)
    assert out_stats.loss_fraction() < 0.8
    assert in_stats.loss_fraction() < 0.8


def test_gru_home_node_behind_nat_chain_works(bed):
    sim, tb = bed
    node034 = tb.vm(34)
    assert len(node034.host.nat_chain) == 2
    assert node034.node.in_ring
    stats = ping(sim, node034, tb.vm(17))
    assert stats.loss_fraction() < 0.8


def test_gru_learned_uri_is_outermost_nat(bed):
    sim, tb = bed
    node034 = tb.vm(34)
    advertised = node034.node.uris.advertised()
    outer_ip = tb.deployment.sites["gru"].nat.public_ip
    assert advertised[0].endpoint.ip == outer_ip
    assert advertised[-1].endpoint.ip == node034.host.ip


def test_gru_survives_isp_remapping(bed):
    """§V-E: the home node's NAT translations changed 'if and when they
    happen' and IPOP re-established links autonomously."""
    sim, tb = bed
    node034 = tb.vm(34)
    for nat in node034.host.nat_chain:
        nat.expire_all()
    sim.run(until=sim.now + 300)
    assert node034.node.in_ring
    stats = ping(sim, tb.vm(3), node034)
    assert stats.loss_fraction() < 0.8
