"""Deterministic, scriptable fault injection for the simulation.

A :class:`FaultSchedule` is a declarative list of failures armed against
one :class:`~repro.sim.engine.Simulator` (and optionally its
:class:`~repro.phys.network.Internet`).  Every method schedules its fault
at an *absolute* simulation time through the ordinary event queue, so a
schedule is exactly as reproducible as the simulation seed: same script +
same seed → identical fault timing, identical burst-loss coin flips
(each loss episode draws from its own named RNG stream), identical
recovery trace.

Supported faults (the §V-E / churn taxonomy):

* node crash / restart (``crash_node`` / ``restart_node``)
* bootstrap-seed death (``crash_bootstrap_seed``)
* host power-off / boot (``crash_host`` / ``boot_host``)
* link blackout windows between hosts or whole sites (``blackout``)
* correlated burst packet loss on a path (``burst_loss``)
* NAT reboot — every mapping dropped at once (``nat_reboot``)
* NAT mapping-timeout churn — shrink/grow the expiry window mid-run
  (``nat_mapping_timeout``)

Every fired fault is recorded in :attr:`fired` and emitted on the
simulation trace under ``fault.<kind>``, so experiments can line recovery
curves up against the injected events.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Optional

from repro.fault.rules import Blackout, BurstLoss, Side

if TYPE_CHECKING:  # pragma: no cover
    from repro.brunet.node import BrunetNode
    from repro.brunet.uri import Uri
    from repro.phys.host import Host
    from repro.phys.nat import Nat
    from repro.phys.network import Internet
    from repro.sim.engine import Simulator


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One armed (and later fired) fault, for logs and assertions."""

    time: float
    kind: str
    detail: str


class FaultSchedule:
    """Arms scripted faults on a simulator; records what fired when."""

    def __init__(self, sim: "Simulator", internet: Optional["Internet"] = None,
                 name: str = "faults"):
        self.sim = sim
        self.internet = internet
        self.name = name
        #: every fault armed, in arming order
        self.armed: list[FaultEvent] = []
        #: every fault that has actually fired, in firing order
        self.fired: list[FaultEvent] = []
        self._n_rules = 0

    # ------------------------------------------------------------------
    # machinery
    # ------------------------------------------------------------------
    def at(self, time: float, kind: str, detail: str,
           fn: Callable[..., None], *args) -> FaultEvent:
        """Arm an arbitrary fault callback at absolute ``time``."""
        event = FaultEvent(time, kind, detail)
        self.armed.append(event)
        self.sim.schedule_at(time, self._fire, event, fn, args)
        return event

    def _fire(self, event: FaultEvent, fn: Callable[..., None],
              args: tuple) -> None:
        sim = self.sim
        self.fired.append(dataclasses.replace(event, time=sim.now))
        sim.trace(f"fault.{event.kind}", detail=event.detail)
        sim.obs.metrics.counter("fault.injected", kind=event.kind).inc()
        sim.obs.event(sim.now, self.name, f"fault.{event.kind}",
                      {"detail": event.detail})
        fn(*args)

    def _need_internet(self) -> "Internet":
        if self.internet is None:
            raise ValueError(f"{self.name}: path faults need an Internet")
        return self.internet

    # ------------------------------------------------------------------
    # node / host churn
    # ------------------------------------------------------------------
    def crash_node(self, time: float, node: "BrunetNode") -> FaultEvent:
        """Kill a P2P node at ``time`` (no close-notify: a true crash)."""
        return self.at(time, "node.crash", node.name, node.stop)

    def restart_node(self, time: float, node: "BrunetNode",
                     bootstrap_uris: list["Uri"]) -> FaultEvent:
        """Restart a previously crashed node against ``bootstrap_uris``."""
        return self.at(time, "node.restart", node.name,
                       self._restart, node, bootstrap_uris)

    @staticmethod
    def _restart(node: "BrunetNode", bootstrap_uris: list["Uri"]) -> None:
        if not node.active:
            node.start(list(bootstrap_uris))

    def crash_bootstrap_seed(self, time: float, deployment,
                             index: int = 0) -> FaultEvent:
        """Kill the node serving bootstrap URI ``index`` of a deployment.

        The victim is resolved at fire time, so the schedule can be armed
        before the seed has even started."""
        return self.at(time, "seed.crash", f"seed[{index}]",
                       self._crash_seed, deployment, index)

    @staticmethod
    def _crash_seed(deployment, index: int) -> None:
        uri = deployment.bootstrap_uris[index]
        for node in deployment.router_nodes:
            if node.host.ip == uri.endpoint.ip \
                    and node.port == uri.endpoint.port:
                node.stop()
                return
        raise LookupError(f"no router node serves bootstrap URI {uri}")

    def crash_host(self, time: float, host: "Host") -> FaultEvent:
        """Power off a whole host (every socket goes dark)."""
        return self.at(time, "host.crash", host.name, host.shutdown)

    def boot_host(self, time: float, host: "Host") -> FaultEvent:
        """Bring a powered-off host back."""
        return self.at(time, "host.boot", host.name, host.boot)

    # ------------------------------------------------------------------
    # path faults
    # ------------------------------------------------------------------
    def blackout(self, start: float, duration: float,
                 a: Side = None, b: Side = None,
                 symmetric: bool = True) -> Blackout:
        """Hard-partition the matched path for ``[start, start+duration)``."""
        internet = self._need_internet()
        self._n_rules += 1
        rule = Blackout(a, b, symmetric,
                        name=f"{self.name}.blackout{self._n_rules}")
        self.at(start, "blackout.start", rule.name,
                internet.add_fault_rule, rule)
        self.at(start + duration, "blackout.end", rule.name,
                internet.remove_fault_rule, rule)
        return rule

    def burst_loss(self, start: float, duration: float, prob: float,
                   a: Side = None, b: Side = None,
                   symmetric: bool = True) -> BurstLoss:
        """Drop matched datagrams with ``prob`` during the window."""
        internet = self._need_internet()
        self._n_rules += 1
        name = f"{self.name}.burst{self._n_rules}"
        rule = BurstLoss(prob, self.sim.rng.stream(f"fault.{name}"),
                         a, b, symmetric, name=name)
        self.at(start, "burst.start", f"{name} p={prob}",
                internet.add_fault_rule, rule)
        self.at(start + duration, "burst.end", name,
                internet.remove_fault_rule, rule)
        return rule

    # ------------------------------------------------------------------
    # NAT faults
    # ------------------------------------------------------------------
    def nat_reboot(self, time: float, nat: "Nat") -> FaultEvent:
        """Reboot a NAT: every mapping dies at once (ISP re-translation,
        the §V-E home-network event)."""
        return self.at(time, "nat.reboot", nat.name, nat.expire_all)

    def nat_mapping_timeout(self, time: float, nat: "Nat",
                            timeout: float) -> FaultEvent:
        """Change a NAT's mapping-expiry window mid-run (mapping churn)."""
        return self.at(time, "nat.mapping_timeout",
                       f"{nat.name} -> {timeout:g}s",
                       self._set_mapping_timeout, nat, timeout)

    @staticmethod
    def _set_mapping_timeout(nat: "Nat", timeout: float) -> None:
        nat.spec = dataclasses.replace(nat.spec, mapping_timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FaultSchedule {self.name} armed={len(self.armed)} "
                f"fired={len(self.fired)}>")
