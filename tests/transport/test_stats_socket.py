"""Hardening tests for the RealtimeKernel UDP stats socket.

The stats socket answers an arbitrary inbound datagram with a JSON
snapshot, which makes it (a) a crash risk if a datagram races the
``connection_made`` callback, (b) an information leak if it answers
non-loopback sources by default, and (c) a UDP amplification primitive
if the reply is unbounded.  These tests pin all three guards.
"""

import asyncio
import json

from repro.transport.runtime import RealtimeKernel, _StatsProtocol


class _FakeTransport:
    """Captures sendto calls without a real socket."""

    def __init__(self):
        self.sent: list[tuple[bytes, tuple]] = []

    def sendto(self, data: bytes, addr) -> None:
        self.sent.append((data, addr))


def _protocol(kernel, **kwargs) -> _StatsProtocol:
    proto = _StatsProtocol(kernel, **kwargs)
    transport = _FakeTransport()
    proto.connection_made(transport)
    return proto


def test_datagram_before_connection_made_is_dropped():
    """A datagram arriving before ``connection_made`` must not raise
    AttributeError on the uninitialized transport attribute."""
    async def scenario():
        kernel = RealtimeKernel(seed=0)
        proto = _StatsProtocol(kernel)
        proto.datagram_received(b"stats", ("127.0.0.1", 5000))  # no crash

    asyncio.run(scenario())


def test_non_loopback_source_is_ignored_by_default():
    async def scenario():
        kernel = RealtimeKernel(seed=0)
        proto = _protocol(kernel)
        proto.datagram_received(b"stats", ("10.1.2.3", 5000))
        assert proto.transport.sent == []
        proto.datagram_received(b"stats", ("127.0.0.1", 5000))
        assert len(proto.transport.sent) == 1

    asyncio.run(scenario())


def test_public_flag_opens_the_socket_up():
    async def scenario():
        kernel = RealtimeKernel(seed=0)
        proto = _protocol(kernel, public=True)
        proto.datagram_received(b"stats", ("10.1.2.3", 5000))
        assert len(proto.transport.sent) == 1

    asyncio.run(scenario())


def test_reply_payload_is_capped():
    async def scenario():
        kernel = RealtimeKernel(seed=0)
        # inflate the snapshot with many per-node series
        for i in range(500):
            kernel.obs.metrics.counter("brunet.route.sent",
                                       node=f"padnode-{i:04d}").inc()
        cap = 512
        proto = _protocol(kernel, max_bytes=cap)
        proto.datagram_received(b"stats", ("127.0.0.1", 5000))
        (data, _addr), = proto.transport.sent
        assert len(data) <= cap
        json.loads(data.decode())  # still a valid snapshot

    asyncio.run(scenario())


def test_serve_stats_end_to_end_still_answers_loopback():
    from repro.obs.top import fetch_stats

    async def scenario():
        kernel = RealtimeKernel(seed=0)
        ip, port = await kernel.serve_stats()
        loop = asyncio.get_running_loop()
        snap = await loop.run_in_executor(
            None, lambda: fetch_stats((ip, port), timeout=5.0))
        kernel.close_stats()
        return snap

    snap = asyncio.run(scenario())
    assert "t" in snap and "events" in snap
