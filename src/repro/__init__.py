"""Reproduction of "WOW: Self-Organizing Wide Area Overlay Networks of
Virtual Workstations" (Ganguly, Agrawal, Boykin, Figueiredo — HPDC 2006).

Layer map (bottom-up):

* :mod:`repro.sim` — deterministic discrete-event kernel;
* :mod:`repro.phys` — hosts, sites, NAT/firewall middleboxes, WAN model,
  max-min fair bulk flows;
* :mod:`repro.brunet` — the structured P2P overlay: ring, greedy routing,
  CTM + linking (decentralized NAT hole punching), connection overlords,
  shortcut score queue, DHT;
* :mod:`repro.ipop` — IP-over-P2P virtual networking: tap, ICMP, virtual
  TCP, overlay-route-aware transfers;
* :mod:`repro.vm` — VM appliances, guest CPU, WAN live migration;
* :mod:`repro.middleware` — PBS, NFS, SSH/SCP, PVM, ttcp, Condor-style
  pool, decentralized discovery, RPC substrate;
* :mod:`repro.apps` — MEME and fastDNAml (real kernels + cost models);
* :mod:`repro.core` — deployment orchestration and the paper testbed;
* :mod:`repro.experiments` — one module per table/figure + run_all CLI.

Quick start::

    from repro.sim import Simulator
    from repro.core import build_paper_testbed

    sim = Simulator(seed=1)
    testbed = build_paper_testbed(sim)
    testbed.run_warmup()        # 118 PlanetLab routers + 33 VMs join
    assert testbed.deployment.ring_consistent()
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
