"""Flight recorder: bounded per-node ring of recent events.

Long churn experiments emit an unbounded stream of node events
(connection adds/drops, link failures, fault injections).  The recorder
keeps only the last ``capacity`` events per node in memory — the
"what was this node doing just before it broke" view — and can *spill*
every evicted event to a JSONL file so the complete history is still on
disk while memory stays O(nodes × capacity).

The spill itself is bounded too: with ``max_bytes`` set, the file
rotates once a segment would exceed the cap — the live file is renamed
to ``<spill_path>.1`` (``.2``, … — higher numbers are newer) and a fresh
segment is opened; ``compress_rotated=True`` gzips each rotated segment
(``<spill_path>.1.gz``).  A 10k-node churn run can then record forever
in O(max_bytes × segments-you-keep) disk.

Events carry simulation time only, so a spill file from a fixed-seed run
is byte-identical across runs (rotation points included: they depend
only on the byte stream).
"""

from __future__ import annotations

import gzip
import json
import os
from collections import deque
from typing import Any, Optional


class FlightRecorder:
    """Fixed-size ring of recent events per node, with optional spill."""

    def __init__(self, capacity: int = 256,
                 spill_path: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 compress_rotated: bool = False):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.capacity = capacity
        self.rings: dict[str, deque] = {}
        self.recorded = 0
        self.evicted = 0
        self.spill_path = spill_path
        self.max_bytes = max_bytes
        self.compress_rotated = compress_rotated
        self.rotations = 0
        #: rotated segment paths, oldest first
        self.rotated_paths: list[str] = []
        self._spill_bytes = 0
        self._spill = open(spill_path, "w") if spill_path else None

    def record(self, t: float, node: str, category: str,
               data: Optional[dict] = None) -> None:
        """Append one event to ``node``'s ring, spilling any evictee."""
        ring = self.rings.get(node)
        if ring is None:
            ring = self.rings[node] = deque()
        if len(ring) >= self.capacity:
            self.evicted += 1
            if self._spill is not None:
                self._write(ring.popleft())
            else:
                ring.popleft()
        ring.append((t, node, category, data))
        self.recorded += 1

    def recent(self, node: str) -> list[tuple[float, str, dict]]:
        """The node's retained events, oldest first, as
        ``(t, category, data)``."""
        return [(t, cat, data or {}) for t, _n, cat, data in
                self.rings.get(node, ())]

    def nodes(self) -> list[str]:
        """Every node that has recorded at least one event."""
        return sorted(self.rings)

    # -- spill ----------------------------------------------------------
    def _write(self, entry: tuple) -> None:
        t, node, category, data = entry
        row: dict[str, Any] = {"t": t, "node": node, "category": category}
        if data:
            row["data"] = {k: (v if isinstance(v, (int, float, str, bool,
                                                   type(None)))
                               else str(v)) for k, v in data.items()}
        assert self._spill is not None
        line = json.dumps(row, sort_keys=True) + "\n"
        if (self.max_bytes is not None and self._spill_bytes > 0
                and self._spill_bytes + len(line) > self.max_bytes):
            self._rotate()
        self._spill.write(line)
        self._spill_bytes += len(line)

    def _rotate(self) -> None:
        """Seal the current segment as ``<path>.<n>`` (gzipped when
        configured) and open a fresh one.  An oversize single line never
        rotates an empty segment — it lands alone in the current one."""
        assert self._spill is not None and self.spill_path is not None
        self._spill.close()
        self.rotations += 1
        target = f"{self.spill_path}.{self.rotations}"
        os.replace(self.spill_path, target)
        if self.compress_rotated:
            # mtime=0 and an empty embedded filename keep the compressed
            # segment byte-identical across same-seed runs
            with open(target, "rb") as raw, open(target + ".gz", "wb") as out:
                with gzip.GzipFile(filename="", mode="wb", fileobj=out,
                                   compresslevel=6, mtime=0) as gz:
                    gz.write(raw.read())
            os.remove(target)
            target += ".gz"
        self.rotated_paths.append(target)
        self._spill = open(self.spill_path, "w")
        self._spill_bytes = 0

    def flush(self) -> None:
        """Spill everything still held in the rings (kept in the rings
        too) and flush the file.  Call once, at end of run: the spill
        file then holds the complete event history in eviction order
        followed by the retained tails, node by node."""
        if self._spill is None:
            return
        for node in self.nodes():
            for entry in self.rings[node]:
                self._write(entry)
        self._spill.flush()

    def close(self) -> None:
        """Flush and close the spill file (idempotent)."""
        if self._spill is not None:
            self.flush()
            self._spill.close()
            self._spill = None
