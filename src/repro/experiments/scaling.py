"""Overlay scaling sweep (the paper's §I/§VI scalability claim).

"The overlay IP-over-P2P routing infrastructure of WOW is based on
algorithms that are designed to scale to very large systems": greedy
routing over k structured-far links gives O((1/k)·log²n) expected hops
(§IV-A).  This sweep grows the overlay and measures mean greedy hop count
and join latency, checking the predicted sub-logarithmic-squared growth —
an experiment the paper argues for but does not run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.routing import overlay_hop_count
from repro.brunet.uri import Uri
from repro.experiments.common import print_table
from repro.phys import Internet, Site
from repro.sim import Simulator


@dataclass
class ScalePoint:
    n_nodes: int
    mean_hops: float
    p95_hops: float
    mean_join_s: float
    unreachable: int

    @property
    def hops_per_log2n_sq(self) -> float:
        return self.mean_hops / (math.log2(self.n_nodes) ** 2)


def measure(n_nodes: int, seed: int = 0, far_count: int = 4,
            sample_pairs: int = 400) -> ScalePoint:
    """Build an ``n_nodes`` public overlay and survey it."""
    sim = Simulator(seed=seed, trace=False)
    net = Internet(sim)
    site = Site(net, "pub")
    config = BrunetConfig(far_count=far_count)
    rng = sim.rng.stream("scaling")
    nodes: list[BrunetNode] = []
    bootstrap: list[Uri] = []
    join_times: list[float] = []
    for i in range(n_nodes):
        host = site.add_host(f"n{i}")
        node = BrunetNode(sim, host, random_address(rng), config,
                          name=f"n{i}")
        t0 = sim.now
        node.start(list(bootstrap))
        if not bootstrap:
            bootstrap.append(Uri.udp(host.ip, node.port))
        nodes.append(node)
        sim.run(until=sim.now + 1.0)
        if node.joined_at is not None:
            join_times.append(node.joined_at - t0)
    sim.run(until=sim.now + 120.0)
    join_times.extend(n.joined_at - n.started_at for n in nodes
                      if n.joined_at is not None
                      and n.joined_at - n.started_at > 1.0)

    reg = {n.addr: n for n in nodes}
    pair_rng = sim.rng.stream("scaling.pairs")
    hops: list[int] = []
    unreachable = 0
    for _ in range(sample_pairs):
        a, b = pair_rng.choice(len(nodes), size=2, replace=False)
        h = overlay_hop_count(nodes[int(a)], nodes[int(b)].addr, reg.get)
        if h is None:
            unreachable += 1
        else:
            hops.append(h)
    return ScalePoint(
        n_nodes=n_nodes,
        mean_hops=float(np.mean(hops)) if hops else float("nan"),
        p95_hops=float(np.percentile(hops, 95)) if hops else float("nan"),
        mean_join_s=float(np.mean(join_times)) if join_times else 0.0,
        unreachable=unreachable)


def run(sizes=(32, 64, 128, 256), seed: int = 0,
        far_count: int = 4) -> list[ScalePoint]:
    return [measure(n, seed=seed, far_count=far_count) for n in sizes]


def report(points: list[ScalePoint]) -> None:
    print_table(
        "Overlay scaling sweep — greedy routing vs network size",
        ["nodes", "mean hops", "p95 hops", "hops / log²n",
         "mean join (s)", "unreachable pairs"],
        [[p.n_nodes, f"{p.mean_hops:.2f}", f"{p.p95_hops:.0f}",
          f"{p.hops_per_log2n_sq:.3f}", f"{p.mean_join_s:.1f}",
          p.unreachable] for p in points])


def main(sizes=(32, 64, 128), seed: int = 0) -> list[ScalePoint]:
    points = run(sizes=sizes, seed=seed)
    report(points)
    return points


if __name__ == "__main__":  # pragma: no cover
    main()
