"""Fluid-flow model: fairness, completion, pause/resume, re-pathing."""

import pytest

from repro.phys.flows import Flow, FlowManager, Resource
from repro.sim import Simulator


@pytest.fixture
def mgr():
    sim = Simulator(seed=2)
    return sim, FlowManager(sim)


def test_single_flow_completion_time(mgr):
    sim, fm = mgr
    r = Resource("link", 100.0)
    f = Flow(fm, "f", 1000.0, [r])
    sim.run()
    assert f.completed
    assert f.finish_time == pytest.approx(10.0)


def test_two_flows_share_fairly(mgr):
    sim, fm = mgr
    r = Resource("link", 100.0)
    f1 = Flow(fm, "f1", 500.0, [r])
    f2 = Flow(fm, "f2", 500.0, [r])
    assert f1.rate == pytest.approx(50.0)
    assert f2.rate == pytest.approx(50.0)
    sim.run()
    assert f1.finish_time == pytest.approx(10.0)
    assert f2.finish_time == pytest.approx(10.0)


def test_released_capacity_speeds_survivor(mgr):
    sim, fm = mgr
    r = Resource("link", 100.0)
    small = Flow(fm, "small", 100.0, [r])
    big = Flow(fm, "big", 1000.0, [r])
    sim.run()
    assert small.finish_time == pytest.approx(2.0)
    # big: 100 B in first 2 s at 50 B/s, then 900 B at 100 B/s
    assert big.finish_time == pytest.approx(2.0 + 9.0)


def test_bottleneck_is_min_resource(mgr):
    sim, fm = mgr
    fast = Resource("fast", 1000.0)
    slow = Resource("slow", 10.0)
    f = Flow(fm, "f", 100.0, [fast, slow])
    assert f.rate == pytest.approx(10.0)
    sim.run()
    assert f.finish_time == pytest.approx(10.0)


def test_max_min_fairness_two_bottlenecks(mgr):
    sim, fm = mgr
    r1 = Resource("r1", 100.0)
    r2 = Resource("r2", 30.0)
    a = Flow(fm, "a", 1e6, [r1])        # only r1
    b = Flow(fm, "b", 1e6, [r1, r2])    # r1 and r2
    # b is capped at 30 by r2; a gets the rest of r1
    assert b.rate == pytest.approx(30.0)
    assert a.rate == pytest.approx(70.0)
    a.cancel()
    b.cancel()


def test_rate_cap_as_private_resource(mgr):
    sim, fm = mgr
    r = Resource("link", 1000.0)
    f = Flow(fm, "f", 100.0, [r], rate_cap=25.0)
    assert f.rate == pytest.approx(25.0)
    sim.run()
    assert f.finish_time == pytest.approx(4.0)


def test_pause_resume_preserves_progress(mgr):
    sim, fm = mgr
    r = Resource("link", 100.0)
    f = Flow(fm, "f", 1000.0, [r])
    sim.schedule(5.0, f.pause)
    sim.schedule(25.0, f.resume)
    sim.run()
    assert f.finish_time == pytest.approx(30.0)  # 10 s of work + 20 s pause


def test_set_path_mid_transfer(mgr):
    sim, fm = mgr
    slow = Resource("slow", 10.0)
    fast = Resource("fast", 100.0)
    f = Flow(fm, "f", 200.0, [slow])
    sim.schedule(10.0, f.set_path, [fast])  # 100 B done at t=10
    sim.run()
    assert f.finish_time == pytest.approx(10.0 + 1.0)


def test_capacity_change_recomputes(mgr):
    sim, fm = mgr
    r = Resource("link", 10.0)
    f = Flow(fm, "f", 100.0, [r])
    sim.schedule(5.0, r.set_capacity, 50.0, fm)
    sim.run()
    assert f.finish_time == pytest.approx(5.0 + 1.0)


def test_zero_capacity_stalls_without_spinning(mgr):
    sim, fm = mgr
    r = Resource("dead", 0.0)
    f = Flow(fm, "f", 100.0, [r])
    sim.run(until=50.0, max_events=10_000)
    assert not f.completed
    assert f.rate == 0.0
    assert sim.events_processed < 100  # no event storm


def test_cancel_releases_resources(mgr):
    sim, fm = mgr
    r = Resource("link", 100.0)
    f1 = Flow(fm, "f1", 1e6, [r])
    f2 = Flow(fm, "f2", 100.0, [r])
    f1.cancel()
    assert f2.rate == pytest.approx(100.0)
    sim.run()
    assert not f1.completed and f2.completed


def test_done_signal_and_callback(mgr):
    sim, fm = mgr
    r = Resource("link", 100.0)
    hits = []
    f = Flow(fm, "f", 100.0, [r], on_complete=lambda fl: hits.append(fl))
    sim.run()
    assert hits == [f]
    assert f.done.fired


def test_mean_rate_over_window(mgr):
    sim, fm = mgr
    r = Resource("link", 100.0)
    f = Flow(fm, "f", 1000.0, [r])
    sim.schedule(5.0, f.pause)
    sim.schedule(10.0, f.resume)
    sim.run()
    assert f.mean_rate(0.0, 5.0) == pytest.approx(100.0, rel=0.01)
    assert f.mean_rate(5.0, 10.0) == pytest.approx(0.0, abs=1e-6)


def test_tiny_residual_completes_without_event_storm(mgr):
    """Regression: a residual of a few bytes below float time resolution
    must not re-fire the completion event forever."""
    sim, fm = mgr
    r = Resource("link", 1.6e6)
    f = Flow(fm, "f", 7.2e8, [r])
    sim.run(max_events=100_000)
    assert f.completed
    assert sim.events_processed < 1000
