"""Connection overlords (§IV).

"For each connection type, each P2P node has a connection overlord which
ensures the node has the right number of connections."  Four overlords:

* **Leaf** — bootstrap: keep one direct link to a configured seed node.
* **Near** — ring membership: announce (CTM-to-self via the leaf target) to
  find and hold both ring neighbours; re-announce on neighbour loss.
* **Far** — k Kleinberg-distributed long-range links for O(log²n/k) routing.
* **Shortcut** — the paper's §IV-E contribution: a per-destination score
  queue ``s(i+1) = max(s(i) + a(i) − c, 0)`` driven by traffic inspection;
  scores above a threshold trigger decentralized single-hop link creation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.brunet.address import (
    BrunetAddress,
    directed_distance,
    kleinberg_far_target,
)
from repro.brunet.connection import Connection, ConnectionType
from repro.sim.engine import sweep_wheel

if TYPE_CHECKING:  # pragma: no cover
    from repro.brunet.node import BrunetNode


class Overlord:
    """Base: periodic ``tick`` while the node is active."""

    interval_attr = "overlord_interval"

    def __init__(self, node: "BrunetNode"):
        self.node = node
        self._timer = None
        self._stopped = False

    def start(self) -> None:
        """Begin periodic maintenance (first tick runs immediately)."""
        self.tick_safe()

    @property
    def _sweep_key(self) -> tuple:
        """Shared-wheel key: address first, so batched overlord ticks
        walk the ring in address order."""
        return (int(self.node.addr), self.node.name,
                f"overlord.{type(self).__name__}")

    def stop(self) -> None:
        """Cancel future ticks (node shutdown)."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        node = self.node
        if node.config.batch_timers:
            sweep_wheel(node.sim, node.config.sweep_granularity).cancel(
                self._sweep_key)

    def tick_safe(self) -> None:
        """Run one tick if the node is alive, then reschedule."""
        if self._stopped or not self.node.active:
            return
        self.tick()
        node = self.node
        interval = getattr(node.config, self.interval_attr)
        if node.config.batch_timers:
            sweep_wheel(node.sim, node.config.sweep_granularity).schedule(
                self._sweep_key, interval, self.tick_safe)
        else:
            self._timer = node.sim.schedule(interval, self.tick_safe)

    def tick(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class LeafConnectionOverlord(Overlord):
    """Keeps ≥1 leaf connection to a bootstrap node (§IV-C)."""

    def __init__(self, node: "BrunetNode"):
        super().__init__(node)
        self._seed_index = 0
        self._attempting = False
        self._m_attempts = node.sim.obs.metrics.counter(
            "overlord.leaf_attempts", node=node.name)

    def tick(self) -> None:
        """Ensure a live leaf connection to some bootstrap seed."""
        node = self.node
        if self._stopped or not node.active:
            # rebootstrap() schedules a one-shot kick straight at tick();
            # the kick may land after shutdown
            return
        if node.leaf_connection() is not None or self._attempting:
            return
        seeds = node.bootstrap_uris
        if not seeds:
            return
        uri = seeds[self._seed_index % len(seeds)]
        self._seed_index += 1
        self._attempting = True

        def on_done(*_args) -> None:
            self._attempting = False

        self._m_attempts.inc()
        node.linker.start(None, [uri], ConnectionType.LEAF,
                          on_success=on_done, on_fail=on_done)


class NearConnectionOverlord(Overlord):
    """Finds the node's ring position and repairs it after failures.

    Besides the join-time announce, the overlord re-announces periodically:
    greedy routing only stays correct if every node is linked to its true
    ring neighbours, and a node that joined *between* two linked nodes can
    leave one side unaware (its announce fanned out to a stale neighbour).
    The periodic CTM-to-self converges the ring under churn.
    """

    ANNOUNCE_RETRY = 10.0
    REANNOUNCE_INTERVAL = 30.0

    def __init__(self, node: "BrunetNode"):
        super().__init__(node)
        self._last_announce = -1e18
        self._m_announces = node.sim.obs.metrics.counter(
            "overlord.announces", node=node.name)
        node.on_disconnection.append(self._on_disconnection)
        node.on_connection.append(self._on_connection)

    def _on_connection(self, conn: Connection) -> None:
        # announce the moment the bootstrap leaf link lands, rather than
        # waiting for the next maintenance tick — join latency matters
        # (abstract: "90% of the nodes self-configured P2P routes within
        # 10 seconds")
        if ConnectionType.LEAF in conn.types and not self.node.in_ring \
                and not self._stopped and self.node.active:
            self.node.sim.schedule(0.0, self._maybe_announce)

    def _on_disconnection(self, conn: Connection) -> None:
        if ConnectionType.STRUCTURED_NEAR in conn.types \
                and not self._stopped and self.node.active:
            # neighbour died: rediscover current nearest on both sides
            self.node.sim.schedule(0.0, self._maybe_announce)

    def _maybe_announce(self) -> None:
        node = self.node
        if self._stopped or not node.active:
            return
        if node.leaf_connection() is None and not node.in_ring:
            return  # joining needs a leaf; in-ring repair does not
        if node.sim.now - self._last_announce < 1.0:
            return
        self._last_announce = node.sim.now
        self._m_announces.inc()
        node.announce()

    def tick(self) -> None:
        """Announce when not in the ring; relabel/re-announce when in."""
        node = self.node
        if node.in_ring:
            self._relabel_neighbors()
            if node.sim.now - self._last_announce >= self.REANNOUNCE_INTERVAL:
                self._maybe_announce()
            return
        if node.sim.now - self._last_announce >= self.ANNOUNCE_RETRY:
            self._maybe_announce()

    def _relabel_neighbors(self) -> None:
        """Keep the near label on exactly the current ring neighbours.

        Stale near labels (from join-time fanout or departed in-between
        nodes) are trimmed; a connection left with no labels is closed
        gracefully so both sides release state promptly.
        """
        node = self.node
        keep = set()
        per_side = node.config.near_per_side
        for conn in node.table.neighbors_of(node.addr, per_side=per_side):
            keep.add(conn.peer_addr)
            if ConnectionType.STRUCTURED_NEAR not in conn.types:
                conn.add_type(ConnectionType.STRUCTURED_NEAR)
        for conn in node.table.by_type(ConnectionType.STRUCTURED_NEAR):
            if conn.peer_addr in keep:
                continue
            if conn.types == {ConnectionType.STRUCTURED_NEAR}:
                node.drop_connection(conn, reason="near-trimmed",
                                     notify=True)
            else:
                conn.discard_type(ConnectionType.STRUCTURED_NEAR)


class FarConnectionOverlord(Overlord):
    """Maintains k structured-far connections at Kleinberg distances."""

    PENDING_TTL = 30.0

    def __init__(self, node: "BrunetNode"):
        super().__init__(node)
        self._rng = node.sim.rng.stream(f"brunet.far.{node.name}")
        self._pending: list[float] = []  # expiry times of CTMs in flight
        self._m_ctms = node.sim.obs.metrics.counter(
            "overlord.far_ctms", node=node.name)
        node.on_connection.append(self._on_connection)

    def _on_connection(self, conn: Connection) -> None:
        # a far connection landed: release one in-flight slot so the next
        # tick sees the true deficit (a success used to count against
        # ``need`` until its 30 s TTL, leaving the node below far_count
        # after churn).  CTM targets are Kleinberg samples, not the peer
        # that answers, so slots cannot be matched by address — release
        # the oldest.
        if ConnectionType.STRUCTURED_FAR in conn.types and self._pending:
            self._pending.pop(0)

    def tick(self) -> None:
        """Top up structured-far links toward the configured k."""
        node = self.node
        if not node.in_ring:
            return
        now = node.sim.now
        self._pending = [t for t in self._pending if t > now]
        have = len(node.table.by_type(ConnectionType.STRUCTURED_FAR))
        need = node.config.far_count - have - len(self._pending)
        if need <= 0:
            return
        # local network-size estimate from ring-neighbour spacing
        # (Symphony-style): don't sample inside my own arc
        spacing = 2
        right = node.table.right_neighbor()
        if right is not None:
            spacing = max(spacing,
                          directed_distance(int(node.addr),
                                            int(right.peer_addr)))
        for _ in range(need):
            target = kleinberg_far_target(int(node.addr), self._rng,
                                          min_distance=spacing)
            self._m_ctms.inc()
            node.connect_to(target, ConnectionType.STRUCTURED_FAR)
            self._pending.append(now + self.PENDING_TTL)


class ShortcutConnectionOverlord(Overlord):
    """Traffic-driven single-hop link creation (§IV-E).

    ``observe`` is called by the IPOP layer for every outbound tunnelled
    packet; each tick applies the queueing recurrence and connects to
    destinations whose backlog exceeds the threshold.
    """

    interval_attr = "shortcut_tick"

    def __init__(self, node: "BrunetNode"):
        super().__init__(node)
        self.scores: dict[BrunetAddress, float] = {}
        self.arrivals: dict[BrunetAddress, int] = {}
        self._pending: dict[BrunetAddress, float] = {}
        self._last_nonzero: dict[BrunetAddress, float] = {}
        cfg = node.config
        self._pending_ttl = 2.0 * cfg.uri_give_up_time() + 30.0
        metrics = node.sim.obs.metrics
        self._m_ctms = metrics.counter("overlord.shortcut_ctms",
                                       node=node.name)
        self._m_evictions = metrics.counter("overlord.shortcut_evictions",
                                            node=node.name)
        node.on_connection.append(
            lambda conn: self._pending.pop(conn.peer_addr, None))

    @property
    def enabled(self) -> bool:
        """Mirrors ``BrunetConfig.shortcuts_enabled``."""
        return self.node.config.shortcuts_enabled

    def observe(self, dest: BrunetAddress, packets: int = 1) -> None:
        """Record outbound IP traffic toward ``dest`` (a(i) arrivals)."""
        if not self.enabled or dest == self.node.addr:
            return
        self.arrivals[dest] = self.arrivals.get(dest, 0) + packets

    def score_of(self, dest: BrunetAddress) -> float:
        """Current backlog score s(i) for ``dest``."""
        return self.scores.get(dest, 0.0)

    def tick(self) -> None:
        """Apply s ← max(s + a − c, 0) and connect above the threshold."""
        if not self.enabled:
            return
        node = self.node
        cfg = node.config
        now = node.sim.now
        # expired pending slots must be pruned here: they are only popped
        # on connection success, so a failed attempt toward a dest that
        # went cold would otherwise pin its slot forever
        if self._pending:
            self._pending = {d: t for d, t in self._pending.items()
                             if t > now}
        c = cfg.shortcut_service_rate * cfg.shortcut_tick
        for dest in set(self.scores) | set(self.arrivals):
            a = self.arrivals.pop(dest, 0)
            s = max(self.scores.get(dest, 0.0) + a - c, 0.0)
            if s <= 0.0:
                # garbage-collect long-idle entries
                if now - self._last_nonzero.get(dest, now) > 60.0:
                    self.scores.pop(dest, None)
                    self._last_nonzero.pop(dest, None)
                else:
                    self.scores[dest] = 0.0
                    self._last_nonzero.setdefault(dest, now)
                continue
            self.scores[dest] = s
            self._last_nonzero[dest] = now
            if s >= cfg.shortcut_threshold:
                self._maybe_connect(dest, s)
        self._drop_idle()

    def _maybe_connect(self, dest: BrunetAddress, score: float) -> None:
        node = self.node
        now = node.sim.now
        if node.table.get(dest) is not None:
            return  # already single-hop
        pending_until = self._pending.get(dest, 0.0)
        if pending_until > now:
            return
        shortcuts = node.table.by_type(ConnectionType.SHORTCUT)
        if len(shortcuts) >= node.config.shortcut_max:
            victim = min(shortcuts, key=lambda c: (self.score_of(c.peer_addr),
                                                   int(c.peer_addr)))
            if self.score_of(victim.peer_addr) >= score:
                return
            self._m_evictions.inc()
            self._release_shortcut(victim, reason="shortcut-evicted")
        self._pending[dest] = now + self._pending_ttl
        node.trace("shortcut.initiate", dest=dest, score=score)
        self._m_ctms.inc()
        node.connect_to(dest, ConnectionType.SHORTCUT)

    def _drop_idle(self) -> None:
        idle_limit = self.node.config.shortcut_idle_drop
        if idle_limit <= 0:
            return
        now = self.node.sim.now
        for conn in self.node.table.by_type(ConnectionType.SHORTCUT):
            last = self._last_nonzero.get(conn.peer_addr, conn.established_at)
            if now - last > idle_limit:
                self._release_shortcut(conn, reason="shortcut-idle")

    def _release_shortcut(self, conn: Connection, reason: str) -> None:
        """Give up the SHORTCUT role on ``conn``.

        Connections carry a *set* of type labels (``connection.py``): the
        shortcut target may simultaneously be a ring neighbour or a far
        link.  Closing the physical link in that case would sever a
        NEAR/FAR connection the other overlords still depend on — only a
        link whose sole remaining role is SHORTCUT may be closed.
        """
        if conn.types == {ConnectionType.SHORTCUT}:
            self.node.drop_connection(conn, reason=reason, notify=True)
        else:
            conn.discard_type(ConnectionType.SHORTCUT)
