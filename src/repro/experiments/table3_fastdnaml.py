"""Table III: fastDNAml-PVM execution times and parallel speedups.

Five configurations (paper §V-D2, 50-taxa dataset):
  * sequential on node002 (the most common hardware) — 22272 s
  * sequential on node034 (slow home machine)       — 45191 s
  * 15 workers, shortcuts enabled                    —  2439 s ( 9.1×)
  * 30 workers, shortcuts disabled                   —  2033 s (11.0×)
  * 30 workers, shortcuts enabled                    —  1642 s (13.6×)

Speedups are relative to node002's sequential time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.fastdnaml import FastDnamlWorkload
from repro.experiments.common import (
    ExperimentSetup,
    make_testbed,
    print_table,
    run_until_signal,
)
from repro.middleware.pvm import PvmMaster
from repro.sim.process import Process


@dataclass
class FastDnamlRow:
    config: str
    execution_time: float
    speedup: float | None


def sequential_time(cpu_speed: float, seed: int,
                    taxa: int | None) -> float:
    """Run the whole task stream on one solo VM.

    Sequential fastDNAml never touches the network, so this uses a
    dedicated minimal world (one site, one VM, no overlay) — simulating
    ~22000 s of keep-alive traffic on the full testbed would add minutes
    of wall time for no fidelity.
    """
    from repro.core.config import CalibrationConfig
    from repro.core.wow import Deployment
    from repro.sim.engine import Simulator

    sim = Simulator(seed=seed, trace=False)
    dep = Deployment(sim, calib=CalibrationConfig())
    if taxa is not None:
        dep.calib.fastdnaml_taxa = taxa
    site = dep.add_public_site("solo")
    vm = dep.create_vm("solo", "172.16.200.2", site, cpu_speed=cpu_speed)
    workload = FastDnamlWorkload(dep.calib, sim.rng.stream("t3"))
    t0 = sim.now
    state = {}

    def seq():
        for round_tasks in workload.rounds():
            for task in round_tasks:
                yield from vm.compute(task.work_ref)
        state["elapsed"] = sim.now - t0

    proc = Process(sim, seq(), name=f"seq.{vm.name}")
    if not run_until_signal(sim, proc.done, 4.0e5):  # pragma: no cover
        raise RuntimeError("sequential run did not finish")
    return state["elapsed"]


def parallel_time(setup: ExperimentSetup, n_workers: int,
                  workload: FastDnamlWorkload) -> float:
    """Master on the head node, workers on the first n compute VMs."""
    sim, tb = setup.sim, setup.testbed
    master = PvmMaster(tb.head)
    for vm in tb.workers()[:n_workers]:
        master.add_worker(vm)
    done = master.run_rounds(workload.rounds())
    if not run_until_signal(sim, done, 4.0e5):  # pragma: no cover
        raise RuntimeError("parallel run did not finish")
    return float(done.value)


def run(seed: int = 0, scale: float = 1.0,
        taxa: int | None = None) -> list[FastDnamlRow]:
    rows: list[FastDnamlRow] = []

    def make(shortcuts: bool) -> ExperimentSetup:
        setup = make_testbed(seed=seed, scale=scale, shortcuts=shortcuts)
        if taxa is not None:
            setup.calib.fastdnaml_taxa = taxa
        return setup

    # sequential runs (network-independent; solo worlds)
    t_node2 = sequential_time(1.0, seed, taxa)
    rows.append(FastDnamlRow("sequential node002", t_node2, None))
    t_node34 = sequential_time(0.493, seed, taxa)
    rows.append(FastDnamlRow("sequential node034", t_node34, None))

    for config, n_workers, shortcuts in (
            ("15 nodes, shortcuts", 15, True),
            ("30 nodes, no shortcuts", 30, False),
            ("30 nodes, shortcuts", 30, True)):
        s = make(shortcuts)
        wl = FastDnamlWorkload(s.calib, s.sim.rng.stream("t3"))
        elapsed = parallel_time(s, n_workers, wl)
        rows.append(FastDnamlRow(config, elapsed, t_node2 / elapsed))
    return rows


def report(rows: list[FastDnamlRow]) -> None:
    print_table(
        "Table III — fastDNAml-PVM execution times and speedups",
        ["configuration", "execution time (s)", "speedup vs node002"],
        [[r.config, f"{r.execution_time:.0f}",
          f"{r.speedup:.1f}x" if r.speedup else "n/a"] for r in rows])


def main(seed: int = 0, scale: float = 0.5, taxa: int = 24
         ) -> list[FastDnamlRow]:
    rows = run(seed=seed, scale=scale, taxa=taxa)
    report(rows)
    return rows


if __name__ == "__main__":  # pragma: no cover
    main()
