"""Timer-handle semantics must match across kernels.

Protocol code holds the handle returned by ``schedule`` and inspects it
to decide whether a resend/maintenance timer is still pending.  The sim
and the realtime kernel must agree on what a handle looks like in each
of its three states (pending / fired / cancelled), and cancelling a
handle that already fired must be a harmless no-op — under the sim
kernel it used to corrupt the live-event count ``Simulator.pending()``.
"""

import asyncio

import pytest

from repro.sim.engine import Simulator
from repro.transport.runtime import RealtimeKernel


def _exercise(kernel, advance):
    """Run the shared state-machine scenario on either kernel.

    ``advance()`` lets scheduled work run (sim: run(); realtime: sleep).
    """
    fired = []
    h_fire = kernel.schedule(0.001, fired.append, "fire")
    h_cancel = kernel.schedule(0.001, fired.append, "cancelled")

    # pending state: neither fired nor cancelled
    assert h_fire.fired is False and h_fire.cancelled is False
    assert h_fire.pending is True

    h_cancel.cancel()
    assert h_cancel.cancelled is True and h_cancel.fired is False
    assert h_cancel.pending is False
    h_cancel.cancel()  # idempotent

    advance()
    assert fired == ["fire"]

    # fired state: distinguished from both pending and cancelled
    assert h_fire.fired is True and h_fire.cancelled is False
    assert h_fire.pending is False

    # cancel-after-fire is a no-op, not a state change
    h_fire.cancel()
    assert h_fire.cancelled is False and h_fire.fired is True


def test_sim_handle_states():
    sim = Simulator(seed=0, trace=False)
    _exercise(sim, lambda: sim.run(until=1.0))


def test_realtime_handle_states():
    async def scenario():
        kernel = RealtimeKernel(seed=0)
        _exercise(kernel, lambda: None)  # advance handled below

    # the realtime kernel needs a live loop and real sleeps, so inline
    # the same scenario with awaits at the advance point
    async def scenario():  # noqa: F811
        kernel = RealtimeKernel(seed=0)
        fired = []
        h_fire = kernel.schedule(0.01, fired.append, "fire")
        h_cancel = kernel.schedule(0.01, fired.append, "cancelled")
        assert h_fire.fired is False and h_fire.cancelled is False
        assert h_fire.pending is True
        h_cancel.cancel()
        assert h_cancel.cancelled is True and h_cancel.fired is False
        assert h_cancel.pending is False
        h_cancel.cancel()
        await asyncio.sleep(0.1)
        assert fired == ["fire"]
        assert h_fire.fired is True and h_fire.cancelled is False
        assert h_fire.pending is False
        h_fire.cancel()
        assert h_fire.cancelled is False and h_fire.fired is True

    asyncio.run(scenario())


def test_sim_cancel_after_fire_does_not_corrupt_live_count():
    """Regression: Event.cancel() on an already-fired event decremented
    the live counter again, driving ``Simulator.pending()`` negative —
    exactly what ``Pinger.close``-style cleanup (cancel a timer that may
    already have fired) does after every completed run."""
    sim = Simulator(seed=0, trace=False)
    handle = sim.schedule(0.5, lambda: None)
    sim.run(until=1.0)
    assert sim.pending() == 0
    handle.cancel()  # late cleanup of a fired timer
    assert sim.pending() == 0


@pytest.mark.parametrize("kernel_kind", ["sim", "realtime"])
def test_pending_property_tracks_resend_timer(kernel_kind):
    """The concrete protocol use: after a timer fires, ``handle.pending``
    must read False so a resend decision is not skipped."""
    if kernel_kind == "sim":
        sim = Simulator(seed=0, trace=False)
        h = sim.schedule(0.01, lambda: None)
        assert h.pending
        sim.run(until=0.1)
        assert not h.pending
    else:
        async def scenario():
            kernel = RealtimeKernel(seed=0)
            h = kernel.schedule(0.01, lambda: None)
            assert h.pending
            await asyncio.sleep(0.05)
            assert not h.pending

        asyncio.run(scenario())
