"""Kernel self-profiler: attribution, sketch, health, read-onlyness."""

import json
import os

import pytest

from repro.obs.prof import (
    CATEGORY_PREFIXES,
    KernelProfiler,
    SpaceSavingSketch,
    categorize,
)
from repro.sim.engine import Simulator


# ---------------------------------------------------------------------------
# categorization
# ---------------------------------------------------------------------------

def test_categorize_longest_prefix_wins():
    assert categorize("repro.brunet.linking") == "linking"
    assert categorize("repro.brunet.linking.sub") == "linking"
    assert categorize("repro.brunet.node") == "routing"
    assert categorize("repro.phys.nat") == "nat"
    assert categorize("repro.phys.network") == "phys"
    assert categorize("repro.wire.codec") == "codec"
    assert categorize("repro.sim.engine") == "kernel"
    assert categorize("some.other.module") == "other"
    assert categorize("") == "other"


def test_category_prefixes_cover_every_top_level_repro_package():
    # every prefix maps to a short lowercase tag
    assert all(cat.islower() for cat in CATEGORY_PREFIXES.values())


# ---------------------------------------------------------------------------
# Space-Saving sketch
# ---------------------------------------------------------------------------

def test_sketch_exact_below_capacity():
    sk = SpaceSavingSketch(k=4)
    for key, w in [("a", 5.0), ("b", 3.0), ("a", 1.0), ("c", 2.0)]:
        sk.add(key, w)
    assert sk.top() == [("a", 6.0), ("b", 3.0), ("c", 2.0)]
    assert sk.errors == {"a": 0.0, "b": 0.0, "c": 0.0}


def test_sketch_eviction_inherits_weight_as_error():
    sk = SpaceSavingSketch(k=2)
    sk.add("a", 10.0)
    sk.add("b", 1.0)
    sk.add("c", 1.0)  # evicts b (min weight 1.0)
    assert set(sk.weights) == {"a", "c"}
    assert sk.weights["c"] == 2.0  # inherited floor + own weight
    assert sk.errors["c"] == 1.0
    # heavy hitter guarantee: "a" (true weight > total/k) is present
    assert sk.top(1)[0][0] == "a"


def test_sketch_validation():
    with pytest.raises(ValueError):
        SpaceSavingSketch(k=0)


# ---------------------------------------------------------------------------
# profiler accounting on a live kernel
# ---------------------------------------------------------------------------

class _Ticker:
    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.fired = 0

    def tick(self):
        self.fired += 1


def test_account_attributes_handlers_and_nodes():
    sim = Simulator(seed=0)
    # stride=1: wall-time every event, so attribution is exact
    prof = sim.obs.enable_profiler(sample_every=4, stride=1)
    assert sim.profiler is prof
    a, b = _Ticker(sim, "nodeA"), _Ticker(sim, "nodeB")
    for i in range(6):
        sim.schedule(float(i), a.tick)
    sim.schedule(0.5, b.tick)
    sim.run()
    assert prof.events == 7
    assert a.fired == 6 and b.fired == 1
    # bound methods of the same class collapse onto one handler row
    # (cells are [calls, total_s, max_s, max_at, name, category])
    stats = [c for c in prof.handlers.values() if "tick" in c[4]]
    assert len(stats) == 1 and stats[0][0] == 7
    # node attribution saw both owners
    assert set(prof.nodes.weights) == {"nodeA", "nodeB"}
    assert prof.nodes.counts["nodeA"] == 6
    # health was sampled (7 events, sample_every=4 → one sample)
    assert prof.health_samples == 1
    summary = prof.summary()
    assert summary["events"] == 7
    assert summary["health"]["max_handler"].endswith("_Ticker.tick")
    assert summary["hot_nodes"][0]["node"] in ("nodeA", "nodeB")


def test_profiler_off_by_default():
    sim = Simulator(seed=0)
    assert sim.profiler is None
    sim.schedule(1.0, lambda: None)
    sim.run()  # no profiler → plain path


def test_export_folded_format(tmp_path):
    sim = Simulator(seed=0)
    prof = sim.obs.enable_profiler(stride=1)
    t = _Ticker(sim, "n0")
    sim.schedule(1.0, t.tick)
    sim.run()
    path = prof.export_folded(str(tmp_path / "profile.folded"))
    lines = open(path).read().splitlines()
    assert lines
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        parts = stack.split(";")
        assert parts[0] == "wow" and len(parts) == 3
        assert int(weight) >= 1  # zero-weight frames are clamped to 1µs
    path = prof.export_json(str(tmp_path / "profile.json"))
    data = json.load(open(path))
    assert data["events"] == 1 and "health" in data


def test_format_summary_renders():
    sim = Simulator(seed=0)
    prof = sim.obs.enable_profiler()
    t = _Ticker(sim, "n0")
    sim.schedule(1.0, t.tick)
    sim.run()
    text = prof.format_summary()
    assert "kernel profile" in text and "health:" in text


def test_sample_every_validation():
    with pytest.raises(ValueError):
        KernelProfiler(sample_every=0)
    with pytest.raises(ValueError):
        KernelProfiler(stride=0)


def test_timing_stride_samples_and_scales():
    sim = Simulator(seed=0)
    prof = sim.obs.enable_profiler(stride=4)
    t = _Ticker(sim, "n0")
    for i in range(8):
        sim.schedule(float(i), t.tick)
    sim.run()
    # the 1st and 5th events were sampled; calls/time are scaled by the
    # stride into total estimates
    cell = next(iter(prof.handlers.values()))
    assert cell[0] == 2  # raw samples
    assert cell[1] > 0.0
    assert prof.events == 8
    s = prof.summary()
    assert s["events"] == 8
    assert s["handlers"][0]["calls"] == 8


# ---------------------------------------------------------------------------
# read-onlyness: profiling on/off → byte-identical deterministic bundle
# ---------------------------------------------------------------------------

DETERMINISTIC_FILES = ("metrics.jsonl", "metrics.csv", "metrics.prom",
                       "spans.jsonl", "events.jsonl", "manifest.json")


def test_profiling_is_read_only_byte_identical_bundle(tmp_path):
    from repro.experiments import churn_recovery

    kw = dict(seed=3, n_nodes=8, kill_fraction=0.25,
              settle=150.0, horizon=200.0)
    off = str(tmp_path / "off")
    on = str(tmp_path / "on")
    r_off = churn_recovery.run(obs_dir=off, profile_kernel=False, **kw)
    r_on = churn_recovery.run(obs_dir=on, profile_kernel=True, **kw)
    assert r_off.profile is None
    assert r_on.profile is not None and r_on.profile["events"] > 0
    # same trajectory...
    assert r_off.series == r_on.series
    # ...and the deterministic half of the bundle is byte-identical
    for name in DETERMINISTIC_FILES:
        with open(os.path.join(off, name), "rb") as f_off, \
                open(os.path.join(on, name), "rb") as f_on:
            assert f_off.read() == f_on.read(), name
    # the wall-clock profile exists only in the profiled run and stays
    # out of the manifest
    assert os.path.exists(os.path.join(on, "profile.json"))
    assert os.path.exists(os.path.join(on, "profile.folded"))
    assert not os.path.exists(os.path.join(off, "profile.json"))
    manifest = json.load(open(os.path.join(on, "manifest.json")))
    assert "profile" not in json.dumps(manifest["files"])


def test_compaction_counter_increments():
    # timer_wheel off keeps every event heap-resident, so cancellations
    # build tombstones until the lazy sweep fires
    sim = Simulator(seed=0, timer_wheel=False)
    handles = [sim.schedule(1.0 + i, lambda: None) for i in range(256)]
    for h in handles:
        h.cancel()
    assert sim.compactions >= 1
    assert sim.pending() == 0
