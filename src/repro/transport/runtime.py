"""RealtimeKernel: the simulator surface, backed by asyncio + wall clock.

Protocol code (``BrunetNode``, the linker, the overlords, ``IpopRouter``)
consumes a narrow slice of :class:`~repro.sim.engine.Simulator`:

- ``now`` and ``schedule(delay, fn, *args)`` returning a cancellable handle
- ``rng`` — the named-stream :class:`~repro.sim.rng.RngRegistry`
- ``obs`` — metrics / spans / flight recorder
- ``tracer`` / ``trace()`` / ``trace_on``

This class implements exactly that slice over a running asyncio event
loop, so the identical node objects drive real UDP sockets.  Time is
relative to kernel creation (``loop.time() - t0``), which keeps timer
arithmetic in the same small-positive-float regime the simulator uses.

It is intentionally *not* a subclass of ``Simulator`` — the discrete
event queue, the timer wheel and ``run()`` make no sense under a wall
clock.  Anything outside the slice above raises ``AttributeError``
loudly rather than silently misbehaving.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.obs.hub import Observability
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class _Handle:
    """Duck-type of :class:`repro.sim.engine.Event` over ``call_later``."""

    __slots__ = ("_timer", "cancelled")

    def __init__(self, timer: asyncio.TimerHandle):
        self._timer = timer
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._timer.cancel()


class RealtimeKernel:
    """Wall-clock stand-in for ``Simulator`` (see module docstring)."""

    def __init__(self, seed: int = 0,
                 loop: Optional[asyncio.AbstractEventLoop] = None):
        self.loop = loop or asyncio.get_running_loop()
        self._t0 = self.loop.time()
        self.rng = RngRegistry(seed)
        self.tracer = Tracer(enabled=False)
        self.obs = Observability(self, metrics=True)
        self.events_processed = 0
        #: mirrors ``Simulator.executing``; subsystems use it to coalesce
        #: work until the end of the current callback
        self.executing = False

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Seconds since kernel creation (monotonic)."""
        return self.loop.time() - self._t0

    # -- scheduling ------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> _Handle:
        """Run ``fn(*args)`` after ``delay`` wall-clock seconds."""
        handle = _Handle(self.loop.call_later(
            max(0.0, delay), self._fire, fn, args))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    priority: int = 0) -> _Handle:
        """Run ``fn(*args)`` at absolute kernel time ``time``."""
        return self.schedule(time - self.now, fn, *args, priority=priority)

    def _fire(self, fn: Callable[..., Any], args: tuple) -> None:
        self.events_processed += 1
        self.executing = True
        try:
            fn(*args)
        finally:
            self.executing = False

    # -- tracing ---------------------------------------------------------
    @property
    def trace_on(self) -> bool:
        """Always False: the structured tracer is a sim-analysis tool."""
        return self.tracer.enabled

    def trace(self, category: str, **data: Any) -> None:
        """No-op under the wall clock (tracer is constructed disabled)."""
        self.tracer.record(self.now, category, data)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RealtimeKernel t={self.now:.3f}>"
