"""Post-hoc invariant audit over an obs-layer export bundle.

Inline sweeps see live object state; this module checks what survives
into a ``sim.obs.export()`` directory, so a bundle produced anywhere
(CI artifact, a collaborator's run) can be audited without re-running
the simulation:

* **manifest integrity** — every file the manifest references exists
  and parses;
* **span-tree closure** — every span's parent id resolves inside its
  own trace, and no *non-root* span is left open at export time beyond
  the grace window (root spans of lost packets legitimately stay open);
* **conn event balance** — per node, ``conn.drop`` events never
  outnumber ``conn.add`` events (a negative balance means a connection
  was torn down twice or added bypassing the table);
* **recorded violations** — an inline auditor's ``violations.jsonl``
  is surfaced verbatim, so a bundle that shipped with violations fails
  the post-hoc audit too.

Skipped checks degrade gracefully: when the bundle has no spans or no
events file the corresponding checks are skipped, not failed — except
when the manifest *claims* the file exists.

CLI::

    python -m repro.check.posthoc runs/churn-obs   # exit 1 on violations
"""

from __future__ import annotations

import json
import os
import sys
from typing import Optional

from repro.check.invariants import Violation


def _load_jsonl(path: str) -> list[dict]:
    rows = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def audit_bundle(run_dir: str,
                 span_grace: float = 900.0) -> list[Violation]:
    """Audit one export bundle; returns violations (empty = clean)."""
    out: list[Violation] = []
    manifest_path = os.path.join(run_dir, "manifest.json")
    if not os.path.exists(manifest_path):
        return [Violation(0.0, "bundle", "bundle.no-manifest", "",
                          "bundle.no-manifest",
                          f"{run_dir} has no manifest.json")]
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    now = float(manifest.get("sim_time", 0.0))

    files = manifest.get("files", {})
    loaded: dict[str, list[dict]] = {}
    for kind, fname in sorted(files.items()):
        path = os.path.join(run_dir, fname)
        if not os.path.exists(path):
            out.append(Violation(
                now, "bundle", "bundle.missing-file", "",
                f"bundle.missing-file:{kind}",
                f"manifest lists {fname} ({kind}) but it is absent"))
            continue
        if fname.endswith(".jsonl"):
            try:
                loaded[kind] = _load_jsonl(path)
            except (ValueError, UnicodeDecodeError) as exc:
                out.append(Violation(
                    now, "bundle", "bundle.corrupt-file", "",
                    f"bundle.corrupt-file:{kind}",
                    f"{fname} does not parse as jsonl: {exc}"))

    if "spans" in loaded:
        out.extend(_audit_spans(loaded["spans"], now, span_grace,
                                dropped=manifest.get("spans_dropped", 0)))
    if "events" in loaded:
        out.extend(_audit_conn_balance(loaded["events"], now))
    for row in loaded.get("violations", []):
        out.append(Violation(
            float(row.get("t", now)), row.get("check", "?"),
            row.get("kind", "?"), row.get("node", ""),
            row.get("key", "?"), row.get("detail", "")))
    return out


def _audit_spans(rows: list[dict], now: float, span_grace: float,
                 dropped: int = 0) -> list[Violation]:
    """Structural audit of the exported span forest.

    When the collector dropped spans at its cap, parents may legitimately
    be missing — dangling-parent findings are suppressed then (closure
    can't be judged on a truncated forest), but open-span findings still
    stand: an exported span that never closed is dangling regardless.
    """
    out: list[Violation] = []
    by_trace_ids: dict[int, set] = {}
    roots: set = set()
    for row in rows:
        by_trace_ids.setdefault(row["trace"], set()).add(row["id"])
        if row.get("parent") is None:
            roots.add(row["id"])
    for row in rows:
        parent = row.get("parent")
        if parent is not None and dropped == 0 \
                and parent not in by_trace_ids.get(row["trace"], ()):
            out.append(Violation(
                now, "span", "span.dangling-parent", row.get("node", ""),
                f"span.dangling-parent:{row['id']}",
                f"span {row['id']} ({row.get('name')}) references parent "
                f"{parent} absent from trace {row['trace']}"))
        if row.get("t1") is None and row["id"] not in roots \
                and now - float(row["t0"]) > span_grace:
            out.append(Violation(
                now, "span", "span.dangling", row.get("node", ""),
                f"span.dangling:{row['id']}",
                f"span {row['id']} ({row.get('name')}) on "
                f"{row.get('node', '?')} still open at export, "
                f"started t={row['t0']:g}s"))
    return out


def _audit_conn_balance(rows: list[dict], now: float) -> list[Violation]:
    """conn.drop must never outrun conn.add for any node.

    The spill only retains each node's tail, so adds may be rotated out
    while drops survive — a *positive* balance is therefore meaningless
    here, but a drop for a peer with no prior add in the same retained
    window still bounds double-teardowns.
    """
    out: list[Violation] = []
    balance: dict[str, int] = {}
    flagged: set = set()
    for row in rows:
        cat = row.get("category")
        if cat not in ("conn.add", "conn.drop"):
            continue
        node = row.get("node", "?")
        balance[node] = balance.get(node, 0) + (1 if cat == "conn.add"
                                                else -1)
        if balance[node] < 0 and node not in flagged:
            flagged.add(node)
            out.append(Violation(
                float(row.get("t", now)), "bundle", "bundle.conn-balance",
                node, f"bundle.conn-balance:{node}",
                f"{node} records more conn.drop than conn.add events "
                f"in its retained window"))
    return out


def main(argv: Optional[list[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.posthoc",
        description="Audit an obs export bundle for invariant violations")
    parser.add_argument("run_dir", help="directory holding manifest.json")
    parser.add_argument("--span-grace", type=float, default=900.0,
                        help="open non-root spans older than this are "
                             "leaks (sim seconds, default 900)")
    args = parser.parse_args(argv)
    violations = audit_bundle(args.run_dir, span_grace=args.span_grace)
    if not violations:
        print(f"{args.run_dir}: clean")
        return 0
    print(f"{args.run_dir}: {len(violations)} violation(s)")
    for v in violations:
        print(f"  t={v.t:10.3f}  {v.kind:28s} {v.node:20s} {v.detail}")
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
