"""Kernel self-profiler: where does simulation wall-time actually go?

A :class:`KernelProfiler` hooks into :meth:`repro.sim.engine.Simulator.
step` (and :meth:`repro.transport.runtime.RealtimeKernel._fire`): every
``stride``-th event is wall-timed with ``perf_counter``, its time and
call scaled by the stride — unbiased estimates of per-handler totals,
like any sampling profiler; between samples the kernel pays one counter
decrement.  Each sample is attributed to

* a **subsystem category** (``routing``, ``linking``, ``codec``,
  ``flows``, ``nat``, ``phys``, ``fault``, ``obs``, …) derived from the
  handler function's module, and
* the **handler** itself (``module.qualname``), with call count, total
  and max latency.

Alongside the attribution it tracks **kernel health** — event backlog,
heap tombstone ratio, compaction sweeps, max handler latency — sampled
every :attr:`KernelProfiler.sample_every` events, and keeps a bounded
**top-K heavy-node sketch** (Space-Saving / Misra-Gries) so "which nodes
burn the time" stays O(K) memory even on a 100k-node overlay.

The profiler is **provably read-only**: it never touches the RNG
registry, never schedules or cancels events, and only *reads* kernel
counters.  Same-seed runs with profiling on and off therefore produce
byte-identical export bundles — pinned by
``tests/obs/test_prof.py``.  The profile outputs themselves
(``profile.json`` / ``profile.folded``) carry wall-clock timings and are
deliberately *not* listed in the deterministic export manifest.

``profile.folded`` is flamegraph-compatible collapsed-stack output
(``wow;<category>;<handler> <microseconds>`` per line) — feed it
straight to ``flamegraph.pl`` or speedscope.
"""

from __future__ import annotations

import json
from types import MethodType
from typing import Any, Optional

_METHOD = MethodType

#: handler-module prefix → subsystem category (longest prefix wins)
CATEGORY_PREFIXES: dict[str, str] = {
    "repro.brunet.linking": "linking",
    "repro.brunet.overlords": "linking",
    "repro.brunet": "routing",
    "repro.ipop.transfer": "flows",
    "repro.ipop.vtcp": "flows",
    "repro.ipop.bandwidth": "flows",
    "repro.ipop": "routing",
    "repro.wire": "codec",
    "repro.transport": "codec",
    "repro.phys.flows": "flows",
    "repro.phys.nat": "nat",
    "repro.phys": "phys",
    "repro.fault": "fault",
    "repro.obs": "obs",
    "repro.check": "obs",
    "repro.sim": "kernel",
    "repro.middleware": "middleware",
    "repro.apps": "middleware",
    "repro.core": "driver",
    "repro.experiments": "driver",
}

OTHER = "other"


def categorize(module: str) -> str:
    """Subsystem category for a handler defined in ``module``."""
    probe = module or ""
    while probe:
        cat = CATEGORY_PREFIXES.get(probe)
        if cat is not None:
            return cat
        probe = probe.rpartition(".")[0]
    return OTHER


#: per-handler accumulator cell indices (a plain list, not an object:
#: the hot path does three in-place updates per event and list cells
#: keep that to indexed stores with no attribute machinery)
_CALLS, _TOTAL, _MAX, _MAX_AT, _NAME, _CAT = range(6)


class SpaceSavingSketch:
    """Misra-Gries / Space-Saving heavy-hitter sketch.

    Tracks the (approximately) top-``k`` keys by accumulated weight in
    O(k) memory.  When a new key arrives with the table full, the
    minimum-weight entry is evicted and the newcomer inherits its weight
    as an error bound — classic Space-Saving semantics: any key whose
    true weight exceeds ``total/k`` is guaranteed to be present.

    Entries live in one dict of ``[weight, count, error]`` cells so the
    already-tracked fast path (the overwhelmingly common case on the
    kernel hot path) is a single probe plus two in-place adds.
    """

    __slots__ = ("k", "table", "evictions")

    def __init__(self, k: int = 32):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        #: key → [weight, count, error]
        self.table: dict[str, list] = {}
        #: eviction epoch: bumped whenever any entry is displaced, so
        #: callers holding a direct cell reference can cheaply detect
        #: that their cell may have left the table
        self.evictions = 0

    def add(self, key: str, weight: float = 1.0) -> None:
        table = self.table
        cell = table.get(key)
        if cell is not None:
            cell[0] += weight
            cell[1] += 1
            return
        if len(table) < self.k:
            table[key] = [weight, 1, 0.0]
            return
        victim = min(table, key=lambda k2: table[k2][0])
        floor = table.pop(victim)[0]
        table[key] = [floor + weight, 1, floor]
        self.evictions += 1

    def top(self, n: Optional[int] = None) -> list[tuple[str, float]]:
        """Keys by descending weight (name ties broken alphabetically)."""
        items = sorted(((k, cell[0]) for k, cell in self.table.items()),
                       key=lambda kv: (-kv[1], kv[0]))
        return items if n is None else items[:n]

    # materialized views (reporting/tests; not on the hot path)
    @property
    def weights(self) -> dict[str, float]:
        return {k: cell[0] for k, cell in self.table.items()}

    @property
    def counts(self) -> dict[str, int]:
        return {k: cell[1] for k, cell in self.table.items()}

    @property
    def errors(self) -> dict[str, float]:
        return {k: cell[2] for k, cell in self.table.items()}


class KernelProfiler:
    """Wall-time + event-count attribution for one kernel.

    Attach via :meth:`repro.obs.hub.Observability.enable_profiler` (which
    sets ``sim.profiler``); :meth:`account` is then called by the kernel
    once per fired event.  Everything here is bounded: per-handler stats
    are O(distinct handlers), the node sketch is O(top_k), and health is
    a handful of scalars.
    """

    __slots__ = ("top_k", "sample_every", "stride", "handlers", "nodes",
                 "backlog_last", "backlog_max", "tombstone_ratio_last",
                 "tombstone_ratio_max", "compactions", "health_samples",
                 "_owners", "_tick", "_stride_tick", "_scale")

    def __init__(self, top_k: int = 32, sample_every: int = 1024,
                 stride: int = 4):
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.top_k = top_k
        self.sample_every = sample_every
        #: timing stride: every ``stride``-th event is *sampled* —
        #: wall-timed and attributed, with both its ``dt`` and its call
        #: scaled by ``stride`` into unbiased estimates of each
        #: handler's totals.  Between samples the kernel pays one
        #: counter decrement and nothing else, which is what keeps
        #: profiling cheap enough to leave on (the sampled path costs
        #: ~1µs: two clock reads + attribution).  ``stride=1`` times
        #: every event, making all attribution exact.
        self.stride = stride
        self._stride_tick = 1  # countdown; kernels decrement it in-line
        self._scale = float(stride)
        #: handler key → ``[calls, total_s, max_s, max_at, name,
        #: category]`` cell (see the ``_CALLS`` … index constants)
        self.handlers: dict[Any, list] = {}
        self.nodes = SpaceSavingSketch(k=top_k)
        #: memoized ``id(owner)`` → ``[owner, node-name, sketch-cell,
        #: eviction-epoch]`` ('' / None = unowned).  Keyed by id so
        #: arbitrary receivers (including unhashable ones) cost one
        #: int-dict probe per event; the owner ref in the value pins the
        #: object so its id cannot be reused.  The sketch cell rides in
        #: the memo so the common case is two in-place adds with no
        #: string hashing; the epoch detects displacement by eviction.
        #: Bounded by distinct per-node subsystem objects per run.
        self._owners: dict[int, list] = {}
        self._tick = sample_every  # countdown to the next health sample
        # kernel health
        self.backlog_last = 0
        self.backlog_max = 0
        self.tombstone_ratio_last = 0.0
        self.tombstone_ratio_max = 0.0
        self.compactions = 0
        self.health_samples = 0

    # ------------------------------------------------------------------
    # hot path (kernels call account() once per *sampled* event)
    # ------------------------------------------------------------------
    def account(self, fn: Any, dt: float, kernel: Any) -> None:
        """Attribute one *sampled* handler invocation of ``dt``
        wall-seconds (both the time and the call are scaled by the
        stride into unbiased estimates of the handler's totals).

        This runs once per sampled event, so it is written for
        straight-line speed: bound-method unwrap via ``__func__`` (the
        underlying function is the stable identity — bound methods are
        fresh objects per schedule), one dict probe per side table,
        in-place list-cell updates, and no derived aggregates
        (``events`` / ``total_s`` / the global max are computed from the
        cells at reporting time).
        """
        est = dt * self._scale
        if fn.__class__ is _METHOD:
            key = fn.__func__
            owner = fn.__self__
        else:  # plain function handler
            key = fn
            owner = None
        # subscripts, not .get(): hits are the overwhelming norm and a
        # no-raise try block is free on 3.11+
        try:
            cell = self.handlers[key]
        except KeyError:
            cell = self._new_handler(fn, key)
        cell[0] += 1
        cell[1] += est
        if dt > cell[2]:
            cell[2] = dt
            cell[3] = kernel.now
        # heavy-node attribution: bound methods of node-owned objects
        if owner is not None:
            try:
                entry = self._owners[id(owner)]
            except KeyError:
                self._node_slow(owner, est)
            else:
                ncell = entry[2]
                if ncell is not None:
                    if entry[3] == self.nodes.evictions:
                        ncell[0] += est
                        ncell[1] += 1
                    else:  # cell may have been displaced: re-bind
                        self._node_slow(owner, est)
        tick = self._tick - 1
        if tick:
            self._tick = tick
        else:
            self._tick = self.sample_every
            self._sample_health(kernel)

    def _new_handler(self, fn: Any, key: Any) -> list:
        """Slow path: first sighting of a handler function."""
        module = getattr(fn, "__module__", "") or ""
        qualname = getattr(fn, "__qualname__", repr(fn))
        cell = [0, 0.0, 0.0, 0.0,
                f"{module}.{qualname}", categorize(module)]
        self.handlers[key] = cell
        return cell

    def _node_slow(self, owner: Any, dt: float) -> None:
        """Slow path: first sighting of a bound-method receiver, or its
        memoized sketch cell was invalidated by an eviction.  A node name
        is found directly (``owner.name``) or one hop away
        (``owner.node.name``); anything else memoizes as unowned."""
        oid = id(owner)
        entry = self._owners.get(oid)
        if entry is None:
            name = getattr(owner, "name", None)
            if name is None:
                node = getattr(owner, "node", None)
                name = getattr(node, "name", None)
            if name.__class__ is not str:
                self._owners[oid] = [owner, "", None, -1]
                return
            entry = [owner, name, None, -1]
            self._owners[oid] = entry
        name = entry[1]
        if not name:
            return
        nodes = self.nodes
        table = nodes.table
        cell = table.get(name)
        if cell is not None:
            cell[0] += dt
            cell[1] += 1
        else:
            nodes.add(name, dt)
            cell = table[name]
        entry[2] = cell
        entry[3] = nodes.evictions

    def _sample_health(self, kernel: Any) -> None:
        """Periodic read-only peek at kernel queue health."""
        self.health_samples += 1
        pending = getattr(kernel, "pending", None)
        if pending is not None:
            backlog = pending()
            self.backlog_last = backlog
            if backlog > self.backlog_max:
                self.backlog_max = backlog
        queue = getattr(kernel, "_queue", None)
        if queue:
            ratio = getattr(kernel, "_heap_dead", 0) / len(queue)
            self.tombstone_ratio_last = ratio
            if ratio > self.tombstone_ratio_max:
                self.tombstone_ratio_max = ratio
        self.compactions = getattr(kernel, "compactions", 0)

    # ------------------------------------------------------------------
    # reporting (aggregates are derived from the cells here, off the
    # hot path)
    # ------------------------------------------------------------------
    @property
    def events(self) -> int:
        """Estimated total events accounted (exact when ``stride=1``)."""
        return self.stride * sum(cell[_CALLS]
                                 for cell in self.handlers.values())

    @property
    def total_s(self) -> float:
        """Estimated total handler wall-seconds (exact when
        ``stride=1``)."""
        return sum(cell[_TOTAL] for cell in self.handlers.values())

    def max_handler(self) -> tuple[float, str]:
        """(seconds, name) of the slowest single *timed* invocation."""
        max_s, max_name = 0.0, ""
        for cell in self.handlers.values():
            if cell[_MAX] > max_s:
                max_s, max_name = cell[_MAX], cell[_NAME]
        return max_s, max_name

    def category_totals(self) -> dict[str, dict[str, float]]:
        """Aggregated ``{category: {calls, time_s}}`` across handlers
        (stride-scaled estimates, exact when ``stride=1``)."""
        stride = self.stride
        out: dict[str, dict[str, float]] = {}
        for cell in self.handlers.values():
            agg = out.setdefault(cell[_CAT],
                                 {"calls": 0, "time_s": 0.0})
            agg["calls"] += cell[_CALLS] * stride
            agg["time_s"] += cell[_TOTAL]
        return out

    def summary(self, top_handlers: int = 40) -> dict:
        """JSON-ready profile: categories, handlers, health, hot nodes."""
        total_s = self.total_s
        total = total_s or 1e-12
        categories = {
            cat: {"calls": agg["calls"],
                  "time_s": round(agg["time_s"], 6),
                  "share": round(agg["time_s"] / total, 4)}
            for cat, agg in sorted(self.category_totals().items())
        }
        handlers = sorted(self.handlers.values(),
                          key=lambda c: (-c[_TOTAL], c[_NAME]))
        stride = self.stride
        handler_rows = [
            {"handler": c[_NAME], "category": c[_CAT],
             "calls": c[_CALLS] * stride,
             "time_s": round(c[_TOTAL], 6),
             "max_ms": round(c[_MAX] * 1e3, 3),
             "max_at": round(c[_MAX_AT], 3)}
            for c in handlers[:top_handlers]
        ]
        hot = [{"node": node, "time_s": round(w, 6),
                "calls": self.nodes.counts.get(node, 0) * stride,
                "error_s": round(self.nodes.errors.get(node, 0.0), 6)}
               for node, w in self.nodes.top(self.top_k)]
        max_s, max_name = self.max_handler()
        return {
            "events": self.events,
            "wall_s": round(total_s, 6),
            "categories": categories,
            "handlers": handler_rows,
            "hot_nodes": hot,
            "health": {
                "backlog_last": self.backlog_last,
                "backlog_max": self.backlog_max,
                "tombstone_ratio_last": round(self.tombstone_ratio_last, 4),
                "tombstone_ratio_max": round(self.tombstone_ratio_max, 4),
                "compactions": self.compactions,
                "samples": self.health_samples,
                "max_handler_ms": round(max_s * 1e3, 3),
                "max_handler": max_name,
            },
        }

    def export_json(self, path: str) -> str:
        """Write :meth:`summary` as indented JSON; returns ``path``."""
        with open(path, "w") as fh:
            json.dump(self.summary(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        return path

    def export_folded(self, path: str) -> str:
        """Write flamegraph collapsed stacks (µs weights); returns
        ``path``.  One line per handler: ``wow;<category>;<handler> <µs>``,
        sorted by stack name so the file layout is stable."""
        lines = []
        for cell in self.handlers.values():
            usec = int(round(cell[_TOTAL] * 1e6))
            if usec <= 0:
                usec = 1  # flamegraph drops zero-weight frames
            lines.append(f"wow;{cell[_CAT]};{cell[_NAME]} {usec}")
        lines.sort()
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        return path

    def format_summary(self, top: int = 8) -> str:
        """Console one-pager: category shares + hottest handlers/nodes."""
        s = self.summary(top_handlers=top)
        out = [f"kernel profile: {s['events']} events, "
               f"{s['wall_s'] * 1e3:.1f}ms handler wall time"]
        for cat, agg in sorted(s["categories"].items(),
                               key=lambda kv: -kv[1]["time_s"]):
            bar = "#" * max(1, int(round(agg["share"] * 40)))
            out.append(f"  {cat:10s} {agg['share'] * 100:5.1f}% "
                       f"{agg['time_s'] * 1e3:9.1f}ms "
                       f"{agg['calls']:>9d} ev  {bar}")
        h = s["health"]
        out.append(f"  health: backlog {h['backlog_last']} "
                   f"(max {h['backlog_max']}), tombstones "
                   f"{h['tombstone_ratio_last'] * 100:.0f}% "
                   f"(max {h['tombstone_ratio_max'] * 100:.0f}%), "
                   f"{h['compactions']} compactions, slowest handler "
                   f"{h['max_handler_ms']:.2f}ms {h['max_handler']}")
        if s["hot_nodes"]:
            hot = ", ".join(f"{n['node']}({n['time_s'] * 1e3:.1f}ms)"
                            for n in s["hot_nodes"][:top])
            out.append(f"  hot nodes: {hot}")
        return "\n".join(out)
