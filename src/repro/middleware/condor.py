"""A Condor-style opportunistic pool on a WOW (paper §I/§III motivation).

"A base WOW VM image can be installed with Condor binaries and be quickly
replicated across multiple sites to host a homogeneously configured
distributed Condor pool."  This is a compact model of that middleware
stack running unmodified over the virtual network:

* **StartD** — per-worker daemon advertising a machine ClassAd (CPU speed,
  site, state) to the collector and running matched jobs;
* **Collector/Negotiator** — receives ads (soft state), matches queued
  jobs against machine ads by a requirements predicate, and hands claims
  to the submitter;
* **SchedD** — the submit-side queue.

ClassAds are plain dicts; requirements are predicates over them, which
captures the matchmaking semantics without a parser.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.middleware.rpc import RpcClient, RpcFailure, RpcServer
from repro.sim.process import Process, Signal, Timeout, WaitSignal

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import WowVm

COLLECTOR_PORT = 9618
STARTD_PORT = 9619

_job_ids = itertools.count(1)

Requirements = Callable[[dict], bool]


@dataclass
class CondorJob:
    """One queued job: compute cost + a requirements predicate."""

    work_ref: float
    requirements: Optional[Requirements] = None
    job_id: int = field(default_factory=lambda: next(_job_ids))
    submitted_at: float = 0.0
    matched_machine: str = ""
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def matches(self, machine_ad: dict) -> bool:
        """Evaluate the job's requirements against a machine ClassAd."""
        if self.requirements is None:
            return True
        return bool(self.requirements(machine_ad))


class CondorStartD:
    """Worker daemon: advertises the machine, executes claimed jobs."""

    AD_INTERVAL = 30.0

    def __init__(self, vm: "WowVm", collector_ip: str):
        self.vm = vm
        self.sim = vm.sim
        self.collector_ip = collector_ip
        self.state = "Unclaimed"
        self.rpc_server = RpcServer(vm, STARTD_PORT, self._handle,
                                    cpu_per_request=0.004)
        self.rpc = RpcClient(vm)
        self.jobs_run = 0
        self._stopped = False
        self._advertise()

    def machine_ad(self) -> dict:
        """This machine's ClassAd as currently advertised."""
        return {
            "Name": self.vm.name,
            "Ip": self.vm.virtual_ip,
            "CpuSpeed": self.vm.cpu_speed,
            "Site": self.vm.host.site.name,
            "State": self.state,
        }

    def _advertise(self) -> None:
        if self._stopped:
            return
        self.rpc.call(self.collector_ip, COLLECTOR_PORT, "advertise",
                      self.machine_ad())
        self.sim.schedule(self.AD_INTERVAL, self._advertise)

    def _handle(self, method: str, body, src_ip: str):
        if method == "claim":
            if self.state != "Unclaimed":
                return {"claimed": False}
            self.state = "Claimed"
            job = body["job"]
            Process(self.sim, self._execute(job, body["schedd_ip"]),
                    name=f"startd.{self.vm.name}.j{job.job_id}")
            return {"claimed": True}
        return {"error": "bad method"}

    def _execute(self, job: CondorJob, schedd_ip: str):
        self.state = "Busy"
        yield from self.vm.compute(job.work_ref)
        self.jobs_run += 1
        self.state = "Unclaimed"
        done = self.rpc.call(schedd_ip, COLLECTOR_PORT + 2, "job_done",
                             {"job_id": job.job_id,
                              "machine": self.vm.name}, retries=20)
        yield WaitSignal(done)

    def stop(self) -> None:
        """Kill the daemon: stop advertising and serving claims."""
        self._stopped = True
        self.rpc_server.close()
        self.rpc.close()


class CondorCollector:
    """Collector + negotiator on one VM (typically the head node)."""

    AD_TTL = 90.0
    NEGOTIATE_INTERVAL = 5.0

    def __init__(self, vm: "WowVm"):
        self.vm = vm
        self.sim = vm.sim
        self.machines: dict[str, tuple[dict, float]] = {}  # name → (ad, t)
        self.schedds: list["CondorSchedD"] = []
        self.rpc_server = RpcServer(vm, COLLECTOR_PORT, self._handle,
                                    cpu_per_request=0.004)
        self.rpc = RpcClient(vm)
        self.matches_made = 0
        Process(self.sim, self._negotiator(), name="condor.negotiator")

    def _handle(self, method: str, body, src_ip: str):
        if method == "advertise":
            self.machines[body["Name"]] = (body, self.sim.now)
            return {"ok": True}
        return {"error": "bad method"}

    def live_ads(self) -> list[dict]:
        """Machine ads younger than the soft-state TTL."""
        now = self.sim.now
        return [ad for ad, t in self.machines.values()
                if now - t <= self.AD_TTL]

    def register_schedd(self, schedd: "CondorSchedD") -> None:
        """Let the negotiator serve this submitter's queue."""
        self.schedds.append(schedd)

    def _negotiator(self):
        while True:
            yield Timeout(self.NEGOTIATE_INTERVAL)
            for schedd in self.schedds:
                job = schedd.peek()
                if job is None:
                    continue
                candidates = [ad for ad in self.live_ads()
                              if ad["State"] == "Unclaimed"
                              and job.matches(ad)]
                if not candidates:
                    continue
                # rank: fastest machine first (Condor's RANK default here)
                best = max(candidates, key=lambda ad: ad["CpuSpeed"])
                resp = yield WaitSignal(self.rpc.call(
                    best["Ip"], STARTD_PORT, "claim",
                    {"job": job, "schedd_ip": schedd.vm.virtual_ip}))
                if isinstance(resp, RpcFailure) or not resp.get("claimed"):
                    # stale ad; drop it and retry next cycle
                    self.machines.pop(best["Name"], None)
                    continue
                self.machines[best["Name"]] = (
                    dict(best, State="Claimed"), self.sim.now)
                schedd.mark_matched(job, best["Name"])
                self.matches_made += 1


class CondorSchedD:
    """Submit-side queue on one VM."""

    def __init__(self, vm: "WowVm", collector: CondorCollector):
        self.vm = vm
        self.sim = vm.sim
        self.queue: deque[CondorJob] = deque()
        self.running: dict[int, CondorJob] = {}
        self.completed: list[CondorJob] = []
        self.all_done = Signal(self.sim, "condor.all_done")
        self._expected: Optional[int] = None
        self.rpc_server = RpcServer(vm, COLLECTOR_PORT + 2, self._handle,
                                    cpu_per_request=0.004)
        collector.register_schedd(self)

    def submit(self, job: CondorJob) -> CondorJob:
        """Queue a job for matchmaking."""
        job.submitted_at = self.sim.now
        self.queue.append(job)
        return job

    def expect(self, n: int) -> Signal:
        """``all_done`` fires once ``n`` jobs have completed."""
        self._expected = n
        return self.all_done

    def peek(self) -> Optional[CondorJob]:
        """Head of the queue (what the negotiator matches next)."""
        return self.queue[0] if self.queue else None

    def mark_matched(self, job: CondorJob, machine: str) -> None:
        """Negotiator callback: the job was claimed by ``machine``."""
        if self.queue and self.queue[0] is job:
            self.queue.popleft()
        job.matched_machine = machine
        job.started_at = self.sim.now
        self.running[job.job_id] = job

    def _handle(self, method: str, body, src_ip: str):
        if method == "job_done":
            job = self.running.pop(body["job_id"], None)
            if job is not None:
                job.finished_at = self.sim.now
                self.completed.append(job)
                if self._expected is not None and \
                        len(self.completed) >= self._expected:
                    self.all_done.fire(len(self.completed))
            return {"ok": True}
        return {"error": "bad method"}
