"""Inspector CLI for run exports (``python -m repro.obs.inspect``).

Loads the export bundle written by :meth:`repro.obs.hub.Observability.export`
and renders:

* ``--nodes``   — per-node health: connections, routed/delivered traffic,
  linking outcomes, IPOP encap/decap totals;
* ``--census``  — connection census over time, rebuilt from the flight
  recorder's ``conn.add``/``conn.drop`` events;
* ``--routes``  — the slowest traced virtual-IP routes;
* ``--traces``  — the trace index (one line per recorded trace);
* ``--trace ID`` — the full span tree of one trace: a traced packet shows
  its hop-by-hop timeline, a traced CTM its handshake with back-off;
* ``--violations`` — invariant-audit findings recorded by
  ``repro.check`` when the run was executed with auditing on.

With no selector everything above is printed in order.  All output derives
from the export files alone, so inspection is reproducible offline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict
from typing import Optional

from repro.obs.spans import Span, span_tree


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------

def _load_jsonl(path: str) -> list[dict]:
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def load_manifest(run_dir: str) -> dict:
    """The run's ``manifest.json`` (empty dict when absent)."""
    path = os.path.join(run_dir, "manifest.json")
    if not os.path.exists(path):
        return {}
    with open(path) as fh:
        return json.load(fh)


def load_metrics(run_dir: str) -> list[dict]:
    """Metric series rows from ``metrics.jsonl``."""
    return _load_jsonl(os.path.join(run_dir, "metrics.jsonl"))


def load_spans(run_dir: str) -> list[Span]:
    """Spans from ``spans.jsonl``, rebuilt as :class:`Span` objects."""
    spans = []
    for row in _load_jsonl(os.path.join(run_dir, "spans.jsonl")):
        span = Span(row["id"], row["trace"], row["parent"], row["name"],
                    row["node"], row["t0"], row.get("attrs") or None)
        span.t1 = row.get("t1")
        spans.append(span)
    return spans


def load_events(run_dir: str) -> list[dict]:
    """Flight-recorder events from ``events.jsonl`` (may be empty)."""
    return _load_jsonl(os.path.join(run_dir, "events.jsonl"))


def load_violations(run_dir: str) -> list[dict]:
    """Invariant-audit findings from ``violations.jsonl`` (may be empty)."""
    return _load_jsonl(os.path.join(run_dir, "violations.jsonl"))


# ---------------------------------------------------------------------------
# rendering helpers
# ---------------------------------------------------------------------------

def _table(headers: list[str], rows: list[list], out) -> None:
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(fmt.format(*headers), file=out)
    print(fmt.format(*("-" * w for w in widths)), file=out)
    for row in str_rows:
        print(fmt.format(*row), file=out)


def _metric_by_node(metrics: list[dict], name: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for row in metrics:
        node = row.get("labels", {}).get("node")
        if node is not None and row["name"] == name:
            out[node] = row.get("value", row.get("count", 0))
    return out


# ---------------------------------------------------------------------------
# views
# ---------------------------------------------------------------------------

def render_nodes(metrics: list[dict], out=None) -> None:
    """Per-node health table from the metrics export."""
    conns = _metric_by_node(metrics, "brunet.connections")
    sent = _metric_by_node(metrics, "brunet.route.sent")
    fwd = _metric_by_node(metrics, "brunet.route.forwarded")
    dlv = _metric_by_node(metrics, "brunet.route.delivered")
    l_ok = _metric_by_node(metrics, "linking.successes")
    l_fail = _metric_by_node(metrics, "linking.failures")
    encap = _metric_by_node(metrics, "ipop.encap_packets")
    decap = _metric_by_node(metrics, "ipop.decap_packets")
    opaque = _metric_by_node(metrics, "wire.opaque_frames")
    dec_err = _metric_by_node(metrics, "wire.decode_error")
    body_drop = _metric_by_node(metrics, "wire.body_decode_drop")
    nodes = sorted(set(conns) | set(sent) | set(dlv) | set(l_ok))
    if not nodes:
        print("no per-node metrics in this export", file=out)
        return
    print(f"node health ({len(nodes)} nodes)", file=out)
    rows = []
    for n in nodes:
        rows.append([n, f"{conns.get(n, 0):g}", f"{sent.get(n, 0):g}",
                     f"{fwd.get(n, 0):g}", f"{dlv.get(n, 0):g}",
                     f"{l_ok.get(n, 0):g}/{l_fail.get(n, 0):g}",
                     f"{encap.get(n, 0):g}/{decap.get(n, 0):g}",
                     f"{opaque.get(n, 0):g}",
                     f"{dec_err.get(n, 0):g}/{body_drop.get(n, 0):g}"])
    _table(["node", "conns", "sent", "fwd", "dlvd", "link ok/fail",
            "ip out/in", "opaque", "decode err/drop"], rows, out)


def render_census(events: list[dict], buckets: int = 12,
                  out=None) -> None:
    """Connection census over time from conn.add/conn.drop events."""
    adds = [e["t"] for e in events if e["category"] == "conn.add"]
    drops = [e["t"] for e in events if e["category"] == "conn.drop"]
    if not adds and not drops:
        print("no conn.add/conn.drop events in this export "
              "(flight recorder off?)", file=out)
        return
    t_lo = min(adds + drops)
    t_hi = max(adds + drops)
    width = max((t_hi - t_lo) / buckets, 1e-9)
    add_n = [0] * buckets
    drop_n = [0] * buckets
    for t in adds:
        add_n[min(int((t - t_lo) / width), buckets - 1)] += 1
    for t in drops:
        drop_n[min(int((t - t_lo) / width), buckets - 1)] += 1
    print(f"connection census: {len(adds)} adds, {len(drops)} drops "
          f"over t=[{t_lo:g}, {t_hi:g}]s", file=out)
    live = 0
    rows = []
    for i in range(buckets):
        live += add_n[i] - drop_n[i]
        bar = "#" * min(live, 60)
        rows.append([f"{t_lo + (i + 1) * width:8.1f}", f"+{add_n[i]}",
                     f"-{drop_n[i]}", str(live), bar])
    _table(["t<=", "adds", "drops", "live", ""], rows, out)


def render_routes(spans: list[Span], top: int = 10,
                  out=None) -> None:
    """The slowest traced virtual-IP packets (ip.packet root spans)."""
    roots = [s for s in spans if s.name == "ip.packet" and s.parent is None]
    if not roots:
        print("no traced virtual-IP packets in this export", file=out)
        return
    per_trace: dict[int, int] = defaultdict(int)
    for s in spans:
        per_trace[s.trace_id] += 1
    # undelivered packets (t1 never set) sort last but still show
    roots.sort(key=lambda s: (s.t1 is not None, -s.duration, s.trace_id))
    print(f"slowest routes ({min(top, len(roots))} of {len(roots)} "
          f"traced packets)", file=out)
    rows = []
    for s in roots[:top]:
        attrs = s.attrs or {}
        rows.append([s.trace_id, attrs.get("src", "?"),
                     attrs.get("dst", "?"),
                     attrs.get("hops", "?"),
                     f"{s.duration * 1e3:.2f}" if s.t1 is not None
                     else "lost",
                     per_trace[s.trace_id], s.node])
    _table(["trace", "src", "dst", "hops", "ms", "spans", "origin"],
           rows, out)


def render_traces(manifest: dict, out=None) -> None:
    """The manifest's trace index, one line per trace."""
    traces = manifest.get("traces", [])
    if not traces:
        print("no traces in this export", file=out)
        return
    print(f"{len(traces)} traces", file=out)
    rows = [[t["trace"], t["kind"], t["root"] or "?", t["node"] or "?",
             f"{t['t0']:.3f}" if t["t0"] is not None else "?",
             f"{(t['duration'] or 0) * 1e3:.2f}", t["spans"]]
            for t in traces]
    _table(["trace", "kind", "root", "origin", "t0", "ms", "spans"],
           rows, out)


def render_violations(violations: list[dict], manifest: dict,
                      out=None) -> None:
    """Invariant-audit findings, one row per violation."""
    audit = manifest.get("audit")
    if not violations:
        if audit is not None:
            print(f"invariant audit: clean "
                  f"({audit.get('sweeps', '?')} sweeps)", file=out)
        else:
            print("no invariant audit in this export "
                  "(run with auditing on)", file=out)
        return
    print(f"invariant audit: {len(violations)} violation(s)"
          + (f" over {audit.get('sweeps', '?')} sweeps"
             if audit is not None else ""), file=out)
    rows = [[f"{v.get('t', 0):.3f}", v.get("check", "?"),
             v.get("kind", "?"), v.get("node") or "-",
             v.get("detail", "")] for v in violations]
    _table(["t", "check", "kind", "node", "detail"], rows, out)


def render_trace(spans: list[Span], trace_id: int,
                 out=None) -> bool:
    """One trace as an indented span tree; False when it's unknown."""
    mine = [s for s in spans if s.trace_id == trace_id]
    if not mine:
        print(f"trace {trace_id}: not found in this export", file=out)
        return False
    t_base = min(s.t0 for s in mine)
    print(f"trace {trace_id}: {len(mine)} spans, "
          f"t0={t_base:g}s", file=out)
    for depth, s in span_tree(mine):
        dur = (f" +{(s.t1 - s.t0) * 1e3:.2f}ms"
               if s.t1 is not None and s.t1 != s.t0 else "")
        attrs = s.attrs or {}
        detail = " ".join(f"{k}={v}" for k, v in attrs.items())
        indent = "  " * depth + ("└ " if depth else "")
        print(f"  {(s.t0 - t_base) * 1e3:9.2f}ms  {indent}{s.name}"
              f"{dur}  [{s.node or '-'}]  {detail}".rstrip(), file=out)
    return True


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.inspect",
        description="Inspect a simulation run export "
                    "(metrics/spans/events bundle).")
    parser.add_argument("run_dir", help="directory written by "
                                        "Observability.export")
    parser.add_argument("--nodes", action="store_true",
                        help="per-node health table")
    parser.add_argument("--census", action="store_true",
                        help="connection census over time")
    parser.add_argument("--routes", action="store_true",
                        help="slowest traced virtual-IP routes")
    parser.add_argument("--traces", action="store_true",
                        help="list every recorded trace")
    parser.add_argument("--trace", type=int, metavar="ID",
                        help="render the span tree of one trace")
    parser.add_argument("--violations", action="store_true",
                        help="invariant-audit findings")
    parser.add_argument("--top", type=int, default=10,
                        help="rows for --routes (default 10)")
    parser.add_argument("--buckets", type=int, default=12,
                        help="time buckets for --census (default 12)")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.run_dir):
        print(f"error: {args.run_dir} is not a directory", file=sys.stderr)
        return 2
    manifest = load_manifest(args.run_dir)
    metrics = load_metrics(args.run_dir)
    spans = load_spans(args.run_dir)
    events = load_events(args.run_dir)
    violations = load_violations(args.run_dir)

    selected = any((args.nodes, args.census, args.routes, args.traces,
                    args.violations, args.trace is not None))
    ok = True
    if manifest and (not selected or args.trace is None):
        print(f"run export: seed={manifest.get('seed')} "
              f"sim_time={manifest.get('sim_time'):g}s "
              f"events={manifest.get('events_processed')}")
        print()
    if args.nodes or not selected:
        render_nodes(metrics)
        print()
    if args.census or not selected:
        render_census(events, buckets=args.buckets)
        print()
    if args.routes or not selected:
        render_routes(spans, top=args.top)
        print()
    if args.traces or not selected:
        render_traces(manifest)
        print()
    if args.violations or (not selected and "audit" in manifest):
        render_violations(violations, manifest)
        print()
    if args.trace is not None:
        ok = render_trace(spans, args.trace)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
