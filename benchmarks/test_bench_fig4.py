"""Benchmark + regeneration of Figure 4/5 (join profiles, reduced trials)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig4_join_profile, fig5_regimes
from repro.experiments.common import make_testbed


def test_fig4_join_profiles(benchmark):
    def experiment():
        setup = make_testbed(seed=2, scale=0.3)
        return fig4_join_profile.run(setup=setup, trials_per_case=2,
                                     count=260)

    profiles = run_once(benchmark, experiment)
    fig4_join_profile.report(profiles)
    fig5_regimes.report(fig5_regimes.summarize(profiles))

    # the paper's series: three regimes, UFL-UFL shortcut delayed ~10x
    sc = {case: prof.summary()["median_shortcut_seq"]
          for case, prof in profiles.items()}
    assert sc["UFL-NWU"] < 70 and sc["NWU-NWU"] < 70
    assert sc["UFL-UFL"] > 2 * max(sc["UFL-NWU"], sc["NWU-NWU"])
    wan_final = profiles["UFL-NWU"].summary()["rtt_final_ms"]
    assert 28.0 <= wan_final <= 52.0  # paper: 38 ms
