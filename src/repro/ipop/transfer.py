"""OverlayTransfer: one bulk data stream over the virtual network.

Wraps a :class:`~repro.phys.flows.Flow` whose resource path tracks the live
overlay route between two ring addresses.  A periodic re-path tick (plus a
hook on the source node's connection events) moves the flow onto a shortcut
the moment one forms — the mechanism behind Table II's bandwidth jump and
Fig. 6's post-migration rate change — and pauses it while the route is
broken (migration outage), resuming automatically on rejoin.

The transfer also feeds the shortcut overlord's score queue in proportion
to its achieved rate, so bulk traffic triggers shortcut creation just as
ICMP streams do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.brunet.address import BrunetAddress
from repro.phys.flows import Flow
from repro.sim.process import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.ipop.bandwidth import BandwidthBroker

#: effective MTU used to convert flow bytes into "packets" for scoring
MTU = 1400.0

REPATH_INTERVAL = 2.0


class OverlayTransfer:
    """A bulk transfer between two virtual IPs (by ring address)."""

    def __init__(self, broker: "BandwidthBroker", src_addr: BrunetAddress,
                 dst_addr: BrunetAddress, size: float, name: str = "xfer",
                 rate_cap: Optional[float] = None,
                 on_complete: Optional[Callable[["OverlayTransfer"], None]] = None):
        self.broker = broker
        self.sim = broker.sim
        self.src_addr = src_addr
        self.dst_addr = dst_addr
        self.name = name
        self.on_complete = on_complete
        self.done = Signal(self.sim, f"{name}.done", latch=True)
        self.cancelled = False
        self._last_path_ids: Optional[tuple] = None
        self._hop_count: Optional[int] = None
        node = broker.resolve(src_addr)
        # historically the flow moved exactly ``size`` payload bytes with
        # no encapsulation framing at all; measured wire modes charge the
        # per-MTU-packet overlay+UDP/IP overhead so bulk rates reflect
        # what actually crosses the wire
        self.wire_size = float(size)
        if node is not None and node.config.wire_mode != "reference":
            from repro.wire import encap_overhead
            self.wire_size = size * (1.0 + encap_overhead() / MTU)
        self.flow = Flow(broker.flows, name, self.wire_size, [],
                         rate_cap=rate_cap, on_complete=self._flow_done)
        self.flow.pause()
        self._repath()
        # traffic inspection sees every tunnelled packet of this transfer;
        # feed the whole burst up front so short messages (PVM tasks, RPC
        # payloads) count toward shortcut scores just like long streams
        if node is not None and node.active:
            node.inspect_traffic(dst_addr, max(1, int(size / MTU)))
        self._tick_timer = self.sim.schedule(REPATH_INTERVAL, self._tick)

    # -- observability ------------------------------------------------------
    @property
    def transferred(self) -> float:
        return self.flow.transferred

    def current_transferred(self) -> float:
        """Bytes moved as of *now* (forces progress integration)."""
        self.broker.flows.advance()
        return self.flow.transferred

    @property
    def completed(self) -> bool:
        return self.flow.completed

    @property
    def hop_count(self) -> Optional[int]:
        """Overlay hops of the current route (None while broken)."""
        return self._hop_count

    def progress_log(self) -> list[tuple[float, float]]:
        return list(self.flow.progress_log)

    def mean_rate(self, t0: Optional[float] = None,
                  t1: Optional[float] = None) -> float:
        return self.flow.mean_rate(t0, t1)

    def cancel(self) -> None:
        self.cancelled = True
        self._tick_timer.cancel()
        self.flow.cancel()

    # -- internals -----------------------------------------------------------
    def _flow_done(self, flow: Flow) -> None:
        self._tick_timer.cancel()
        if self.on_complete is not None:
            self.on_complete(self)
        self.done.fire(self)

    def _tick(self) -> None:
        if self.flow.completed or self.cancelled:
            return
        # integrate progress so the log has regular samples (Fig. 6 plots)
        self.broker.flows.advance()
        self.flow._log_point()
        # keep feeding the score queue while the stream lives: after a
        # migration the (new) source node must re-earn its shortcut
        node = self.broker.resolve(self.src_addr)
        if node is not None and node.active and self.flow.rate > 0:
            packets = max(1, int(self.flow.rate * REPATH_INTERVAL / MTU))
            node.inspect_traffic(self.dst_addr, packets)
        self._repath()
        self._tick_timer = self.sim.schedule(REPATH_INTERVAL, self._tick)

    def _repath(self) -> None:
        result = self.broker.route_resources(self.src_addr, self.dst_addr)
        if result is None:
            if not self.flow.paused:
                self.sim.trace("transfer.stall", name=self.name)
                self.flow.pause()
            self._last_path_ids = None
            self._hop_count = None
            return
        resources, path = result
        path_ids = tuple(id(r) for r in resources)
        if path_ids != self._last_path_ids:
            self._last_path_ids = path_ids
            self._hop_count = len(path) - 1
            self.flow.set_path(resources)
            self.sim.trace("transfer.repath", name=self.name,
                           hops=self._hop_count)
        if self.flow.paused:
            self.sim.trace("transfer.resume", name=self.name)
            self.flow.resume()
