"""The real MEME EM implementation + property tests on its invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.meme import MemeMotifFinder
from repro.apps.sequences import implant_motif, random_dna, to_string


def test_recovers_implanted_motif():
    rng = np.random.default_rng(3)
    seqs = random_dna(rng, 30, 120)
    pos = implant_motif(rng, seqs, "TTGACAGCTA", mutation_rate=0.05)
    finder = MemeMotifFinder(width=10, max_iter=60, seed=1)
    res = finder.fit(seqs)
    hits = np.abs(res.positions - pos) <= 1
    assert hits.mean() >= 0.8


def test_consensus_matches_motif_core():
    rng = np.random.default_rng(5)
    motif = "GGGCGCCAAA"
    seqs = random_dna(rng, 40, 100)
    implant_motif(rng, seqs, motif, mutation_rate=0.02)
    finder = MemeMotifFinder(width=10, max_iter=80, seed=2)
    res = finder.fit(seqs)
    consensus = finder.consensus(res.pwm)
    # EM can lock onto a phase-shifted window; accept any shift with a
    # long exact overlap with the planted motif
    def best_overlap(a: str, b: str) -> int:
        best = 0
        for shift in range(-4, 5):
            pairs = [(a[i], b[i + shift]) for i in range(len(a))
                     if 0 <= i + shift < len(b)]
            best = max(best, sum(x == y for x, y in pairs))
        return best

    assert best_overlap(consensus, motif) >= 7


def test_pwm_rows_are_distributions():
    rng = np.random.default_rng(7)
    seqs = random_dna(rng, 10, 60)
    res = MemeMotifFinder(width=6, max_iter=10, seed=0).fit(seqs)
    assert res.pwm.shape == (6, 4)
    assert np.allclose(res.pwm.sum(axis=1), 1.0)
    assert (res.pwm > 0).all()


def test_log_likelihood_is_finite_and_improves():
    rng = np.random.default_rng(11)
    seqs = random_dna(rng, 20, 80)
    implant_motif(rng, seqs, "ACGTACGT")
    short = MemeMotifFinder(width=8, max_iter=1, seed=3).fit(seqs)
    long = MemeMotifFinder(width=8, max_iter=40, seed=3).fit(seqs)
    assert np.isfinite(short.log_likelihood)
    assert long.log_likelihood >= short.log_likelihood - 1e-6


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        MemeMotifFinder(width=1)


def test_sequences_shorter_than_motif_rejected():
    rng = np.random.default_rng(0)
    seqs = random_dna(rng, 5, 4)
    with pytest.raises(ValueError):
        MemeMotifFinder(width=8).fit(seqs)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(5, 20), length=st.integers(20, 60),
       width=st.integers(3, 8), seed=st.integers(0, 1000))
def test_em_always_converges_to_valid_state(n, length, width, seed):
    rng = np.random.default_rng(seed)
    seqs = random_dna(rng, n, length)
    res = MemeMotifFinder(width=width, max_iter=25, seed=seed).fit(seqs)
    assert np.allclose(res.pwm.sum(axis=1), 1.0)
    assert ((0 <= res.positions) & (res.positions <= length - width)).all()
    assert np.isfinite(res.log_likelihood)
    assert 1 <= res.iterations <= 25


def test_sequence_helpers():
    rng = np.random.default_rng(1)
    seqs = random_dna(rng, 3, 10)
    assert seqs.shape == (3, 10)
    assert seqs.dtype == np.int8
    assert set(np.unique(seqs)) <= {0, 1, 2, 3}
    s = to_string(seqs[0])
    assert len(s) == 10 and set(s) <= set("ACGT")


def test_implant_rejects_short_sequences():
    rng = np.random.default_rng(1)
    seqs = random_dna(rng, 3, 5)
    with pytest.raises(ValueError):
        implant_motif(rng, seqs, "ACGTACGTAC")
