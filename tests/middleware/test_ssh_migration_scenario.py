"""The exact §V-C1 storyline as an integration test: a long SCP download
whose *server* migrates mid-transfer, including the client-side file-size
profile shape of Fig. 6."""

import pytest

from repro.middleware.ssh import ScpClient, ScpServer
from repro.sim.process import Process
from repro.sim.units import MB
from tests.conftest import make_mini_testbed


def test_scp_server_migration_profile():
    sim, tb = make_mini_testbed(seed=404)
    dep = tb.deployment
    server_vm, client_vm = tb.vm(3), tb.vm(17)
    server = ScpServer(server_vm)
    server.put_file("big.dat", MB(60.0))
    client = ScpClient(client_vm, server_vm.virtual_ip)
    t0 = sim.now
    dl = Process(sim, client.download("big.dat"))
    sim.run(until=sim.now + 15)
    assert not dl.done.fired

    done = server_vm.migrate(dep.sites["nwu"], transfer_size=MB(40.0))
    sim.run(until=sim.now + 1500)
    assert done.fired and dl.done.fired
    xfer = dl.done.value
    assert xfer is not None and xfer.completed

    log = client.local_size_log()
    sizes = [b for _, b in log]
    times = [t for t, _ in log]
    # final size equals the file
    assert sizes[-1] == pytest.approx(MB(60.0), rel=0.01)
    # a stall plateau exists during the outage
    rec = done.value
    in_outage = [b for t, b in log
                 if rec.started_at <= t <= rec.resumed_at]
    if len(in_outage) >= 2:
        assert max(in_outage) - min(in_outage) < MB(0.5)
    # transfer resumed after the outage (size strictly grows afterwards)
    after = [b for t, b in log if t > rec.resumed_at + 5]
    assert after and after[-1] > (in_outage[-1] if in_outage else 0)


def test_scp_client_migration_also_survives():
    """Symmetric case: the *client* VM migrates; the download still
    completes (connection state follows the virtual IP)."""
    sim, tb = make_mini_testbed(seed=405)
    dep = tb.deployment
    server_vm, client_vm = tb.vm(4), tb.vm(18)
    server = ScpServer(server_vm)
    server.put_file("data.dat", MB(40.0))
    client = ScpClient(client_vm, server_vm.virtual_ip)
    dl = Process(sim, client.download("data.dat"))
    sim.run(until=sim.now + 10)
    done = client_vm.migrate(dep.sites["lsu"], transfer_size=MB(30.0))
    sim.run(until=sim.now + 1500)
    assert done.fired and dl.done.fired
    assert dl.done.value is not None and dl.done.value.completed
