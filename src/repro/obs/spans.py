"""Causal packet tracing: trace ids, spans, and span trees.

A *trace* follows one logical operation — a virtual-IP packet through the
overlay, or a CTM handshake with its linking back-off — across every node
it touches.  The mechanism is deliberately tiny:

* the origin asks :meth:`SpanCollector.maybe_trace` for a trace id
  (deterministic counter, per-kind sampling);
* a mutable :class:`TraceRef` ``(trace_id, parent)`` rides on the message
  objects (``RoutedPacket.trace``, ``LinkRequest.trace``, …).  Each
  instrumented step records a span parented at ``ref.parent`` and then
  advances ``ref.parent`` to its own span id, so the causal chain—
  route hop → physical transit → next route hop — falls out of message
  propagation with no global context table;
* :meth:`SpanCollector.tree` (and the inspector CLI) rebuilds the nested
  timeline from the flat span list.

Untraced packets carry ``trace=None`` and cost one ``is None`` check per
choke point.  Span/trace ids are monotonic per collector, and span times
are simulation times, so a fixed-seed run exports byte-identical JSONL.
"""

from __future__ import annotations

import json
from typing import Any, Optional


class TraceRef:
    """Causal context carried on in-flight messages (mutable on purpose:
    each hop re-parents the ref at its own span)."""

    __slots__ = ("trace_id", "parent")

    def __init__(self, trace_id: int, parent: int):
        self.trace_id = trace_id
        self.parent = parent

    def __eq__(self, other: object) -> bool:
        # value equality by id pair: a ref decoded from the wire compares
        # equal to the ref it was encoded from (repro.wire round-trips)
        return (isinstance(other, TraceRef)
                and self.trace_id == other.trace_id
                and self.parent == other.parent)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.parent))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRef t{self.trace_id} p{self.parent}>"


class Span:
    """One recorded operation: ``t1 is None`` while open; instant events
    have ``t1 == t0``."""

    __slots__ = ("id", "trace_id", "parent", "name", "node", "t0", "t1",
                 "attrs")

    def __init__(self, sid: int, trace_id: int, parent: Optional[int],
                 name: str, node: str, t0: float,
                 attrs: Optional[dict] = None):
        self.id = sid
        self.trace_id = trace_id
        self.parent = parent
        self.name = name
        self.node = node
        self.t0 = t0
        self.t1: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Span length in seconds (0 for still-open spans)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def to_row(self) -> dict:
        attrs = {k: (v if isinstance(v, (int, float, str, bool, type(None)))
                     else str(v))
                 for k, v in (self.attrs or {}).items()}
        return {"id": self.id, "trace": self.trace_id,
                "parent": self.parent, "name": self.name, "node": self.node,
                "t0": self.t0, "t1": self.t1, "attrs": attrs}


class SpanCollector:
    """Allocates trace ids, records spans, exports and rebuilds trees.

    Parameters
    ----------
    enabled:
        Master switch.  Disabled, every method is a cheap no-op and
        ``maybe_trace`` always returns None.
    sample:
        Per-kind sampling period: ``{"ip": 50}`` traces every 50th
        virtual-IP packet; 1 traces all; 0/absent traces none.  Sampling
        is counter-based (never RNG) to keep runs deterministic.
    max_spans:
        Hard memory bound; spans beyond it are counted in
        :attr:`dropped`, not stored.
    """

    def __init__(self, enabled: bool = False,
                 sample: Optional[dict[str, int]] = None,
                 max_spans: int = 200_000):
        self.enabled = enabled
        self.sample: dict[str, int] = dict(sample or {})
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self.seen: dict[str, int] = {}     # per-kind candidate count
        self.roots: dict[int, int] = {}    # trace id -> root span id
        self.trace_kind: dict[int, str] = {}
        self._next_trace = 1
        self._next_span = 1

    # -- trace allocation ----------------------------------------------
    def maybe_trace(self, kind: str) -> Optional[int]:
        """A fresh trace id when this ``kind`` event is sampled, else
        None.  Counter-based: the Nth candidate of a kind is traced iff
        ``(N - 1) % sample[kind] == 0``."""
        if not self.enabled:
            return None
        period = self.sample.get(kind, 0)
        if period <= 0:
            return None
        seen = self.seen.get(kind, 0)
        self.seen[kind] = seen + 1
        if seen % period:
            return None
        tid = self._next_trace
        self._next_trace += 1
        self.trace_kind[tid] = kind
        return tid

    # -- span recording ------------------------------------------------
    def _record(self, span: Span) -> Span:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
        else:
            self.spans.append(span)
        return span

    def start(self, name: str, node: str, t: float, trace_id: int,
              parent: Optional[int] = None, **attrs: Any) -> int:
        """Open a span; returns its id (valid even when over the cap)."""
        sid = self._next_span
        self._next_span += 1
        span = self._record(Span(sid, trace_id, parent, name, node, t,
                                 attrs or None))
        if parent is None and trace_id not in self.roots:
            self.roots[trace_id] = sid
        return sid

    def end(self, span_id: int, t: float, **attrs: Any) -> None:
        """Close a span (linear scan from the tail: spans close young)."""
        for span in reversed(self.spans):
            if span.id == span_id:
                span.t1 = t
                if attrs:
                    span.attrs = {**(span.attrs or {}), **attrs}
                return

    def event(self, name: str, node: str, t: float, trace_id: int,
              parent: Optional[int] = None, **attrs: Any) -> int:
        """Record an instant span (t1 == t0); returns its id."""
        sid = self.start(name, node, t, trace_id, parent, **attrs)
        if self.spans and self.spans[-1].id == sid:
            self.spans[-1].t1 = t
        return sid

    def end_trace(self, trace_id: int, t: float, **attrs: Any) -> None:
        """Close (or extend) the trace's root span at ``t``."""
        root = self.roots.get(trace_id)
        if root is None:
            return
        for span in self.spans:
            if span.id == root:
                span.t1 = t if span.t1 is None else max(span.t1, t)
                if attrs:
                    span.attrs = {**(span.attrs or {}), **attrs}
                return

    # -- hop helper (the per-choke-point idiom) ------------------------
    def hop(self, ref: Optional[TraceRef], name: str, node: str, t: float,
            **attrs: Any) -> Optional[int]:
        """Record an instant span under ``ref`` and re-parent the ref at
        it.  No-op (returns None) when ``ref`` is None."""
        if ref is None or not self.enabled:
            return None
        sid = self.event(name, node, t, ref.trace_id, ref.parent, **attrs)
        ref.parent = sid
        return sid

    # -- queries / export ----------------------------------------------
    def by_trace(self, trace_id: int) -> list[Span]:
        """All spans of one trace, in recording (= causal) order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def tree(self, trace_id: int) -> list[tuple[int, Span]]:
        """The trace as a depth-first (depth, span) list."""
        return span_tree(self.by_trace(trace_id))

    def trace_ids(self) -> list[int]:
        """Every trace id with at least one recorded span."""
        return sorted({s.trace_id for s in self.spans})

    def export_jsonl(self, path: str) -> str:
        """One JSON object per span, in recording order."""
        with open(path, "w") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_row(), sort_keys=True) + "\n")
        return path


def span_tree(spans: list[Span]) -> list[tuple[int, Span]]:
    """Arrange spans of one trace depth-first as (depth, span) pairs.

    Orphans (parent span sampled out or over the cap) surface at depth 0
    so a truncated trace still renders.
    """
    ids = {s.id for s in spans}
    children: dict[Optional[int], list[Span]] = {}
    for s in spans:
        parent = s.parent if s.parent in ids else None
        children.setdefault(parent, []).append(s)
    out: list[tuple[int, Span]] = []

    def walk(parent: Optional[int], depth: int) -> None:
        for s in sorted(children.get(parent, []), key=lambda s: s.id):
            out.append((depth, s))
            walk(s.id, depth + 1)

    walk(None, 0)
    return out
