"""SimTransport: the simulator-backed transport.

Wraps ``Host.bind_udp`` / ``Internet.send`` delivery.  Three wire modes
(selected by ``BrunetConfig.wire_mode``):

``"reference"``
    Today's behaviour, bit-for-bit: the message object travels by
    reference and is charged the caller's paper-constant ``size_hint``
    plus :data:`~repro.phys.packet.HEADER_BYTES`.  Same-seed runs stay
    byte-identical to the pre-codec simulator.

``"measured"``
    The object still travels by reference (fast), but the byte charge is
    the *measured* encoded length ``len(wire.encode(msg))`` plus real
    UDP/IP headers — honest accounting without paying encode+decode on
    the receive side.

``"codec"``
    Full serialization: the datagram carries encoded bytes; the receive
    path decodes (or counts ``wire.decode_error`` and drops).  This is
    the strongest sim-vs-live equivalence mode — the simulator exercises
    the exact byte path the UDP transport uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.phys.endpoints import Endpoint
from repro.transport.base import ReceiveHandler, Transport
from repro.wire import codec

if TYPE_CHECKING:  # pragma: no cover
    from repro.phys.host import Host, UdpSocket
    from repro.phys.packet import Datagram
    from repro.sim.engine import Simulator

WIRE_MODES = ("reference", "measured", "codec")


class SimTransport(Transport):
    """Datagram endpoint on a simulated host."""

    def __init__(self, sim: "Simulator", host: "Host", port: int,
                 wire_mode: str = "reference", name: str = ""):
        if wire_mode not in WIRE_MODES:
            raise ValueError(f"unknown wire_mode {wire_mode!r} "
                             f"(expected one of {WIRE_MODES})")
        self.sim = sim
        self.host = host
        self.port = port
        self.wire_mode = wire_mode
        self.name = name or host.name
        self.sock: Optional["UdpSocket"] = None
        self._handler: Optional[ReceiveHandler] = None
        metrics = sim.obs.metrics
        self._m_decode_err = metrics.counter("wire.decode_error",
                                             node=self.name)
        if wire_mode != "reference":
            self._m_tx_bytes = metrics.counter("wire.tx_bytes",
                                               node=self.name)
            self._m_rx_bytes = metrics.counter("wire.rx_bytes",
                                               node=self.name)
        if wire_mode == "codec":
            self._m_opaque = metrics.counter("wire.opaque_frames",
                                             node=self.name)

    # ------------------------------------------------------------------
    @property
    def local_endpoint(self) -> Endpoint:
        return Endpoint(self.host.ip, self.port)

    def open(self, handler: ReceiveHandler) -> Endpoint:
        if self.sock is not None:
            raise RuntimeError(f"{self.name}: transport already open")
        if self.port in self.host.sockets:
            self.port = self.host.ephemeral_port()
        self._handler = handler
        self.sock = self.host.bind_udp(self.port, handler)
        if self.wire_mode == "codec":
            self.sock.dgram_handler = self._on_codec_dgram
        return self.local_endpoint

    def close(self) -> None:
        if self.sock is not None:
            self.sock.close()
            self.sock = None

    # ------------------------------------------------------------------
    def send(self, dst: Endpoint, msg: Any, size_hint: int = 0) -> None:
        sock = self.sock
        if sock is None or sock.closed:
            return
        mode = self.wire_mode
        if mode == "reference":
            sock.send(dst, msg, size=size_hint)
            return
        if mode == "measured":
            nbytes = codec.encoded_size(msg)
            self._m_tx_bytes.inc(nbytes)
            sock.send(dst, msg, size=nbytes, header=codec.UDP_IP_OVERHEAD)
            return
        # codec: the datagram carries real bytes; causal context must ride
        # the datagram explicitly since the payload is now opaque
        before = codec.opaque_frames
        buf = codec.encode(msg)
        if codec.opaque_frames != before:
            self._m_opaque.inc(codec.opaque_frames - before)
        self._m_tx_bytes.inc(len(buf))
        sock.send(dst, buf, size=len(buf), header=codec.UDP_IP_OVERHEAD,
                  trace=getattr(msg, "trace", None))

    # ------------------------------------------------------------------
    def _on_codec_dgram(self, dgram: "Datagram") -> None:
        """Codec-mode delivery: decode the routing envelope (payloads of
        routed frames stay as zero-copy :class:`~repro.wire.RawBody`
        slices until local delivery), restore post-transit trace context,
        dispatch.  Malformed frames are counted and dropped — never
        raised into the simulation event loop."""
        try:
            msg = codec.decode_lazy(dgram.payload)
        except codec.DecodeError:
            self._m_decode_err.inc()
            if dgram.trace is not None:
                # terminate the causal chain here: without this the traced
                # packet's last span stays the physical transit and the
                # post-hoc span tree ends in a dangling branch with no
                # explanation of where the packet went
                spans = self.sim.obs.spans
                spans.hop(dgram.trace, "wire.decode_drop", self.name,
                          self.sim.now, bytes=len(dgram.payload))
                spans.end_trace(dgram.trace.trace_id, self.sim.now,
                                decode_error=True)
            return
        self._m_rx_bytes.inc(len(dgram.payload))
        if dgram.trace is not None and getattr(msg, "trace", None) is not None:
            # the transit span re-parented the sender's ref at delivery;
            # adopt its ids so the receiver's hop chain nests under the
            # physical transit exactly as in reference mode
            msg.trace.trace_id = dgram.trace.trace_id
            msg.trace.parent = dgram.trace.parent
        self._handler(msg, dgram.src, dgram.size)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<SimTransport {self.name} {self.local_endpoint} "
                f"mode={self.wire_mode}>")
