"""Event loop for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)`` so simultaneous events
fire in a deterministic order (FIFO within a priority class).  Everything in
the repo shares one :class:`Simulator` per experiment, which also owns the
RNG registry and the tracer so that a single seed makes a whole experiment
reproducible.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Iterator, Optional

from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and may be
    cancelled; cancellation is O(1) (the heap entry is tombstoned).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all RNG streams (see :class:`RngRegistry`).
    trace:
        When true, a :class:`Tracer` records events emitted via
        :meth:`Simulator.trace`.
    """

    def __init__(self, seed: int = 0, trace: bool = True):
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self.rng = RngRegistry(seed)
        self.tracer = Tracer(enabled=trace)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"negative/NaN delay: {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self.now}")
        ev = Event(time, priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if ev.time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event queue corrupted: time went backwards")
            self.now = ev.time
            self.events_processed += 1
            ev.fn(*ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` fired.  Returns the final simulation time."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._queue and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self.now = until
                    break
                if not self.step():  # pragma: no cover - guarded by loop cond
                    break
                fired += 1
            else:
                if until is not None and not self._stopped:
                    self.now = max(self.now, until)
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def trace(self, category: str, **data: Any) -> None:
        """Record a trace entry stamped with the current time."""
        self.tracer.record(self.now, category, data)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    def iter_pending(self) -> Iterator[Event]:
        """Iterate live queued events in heap (not chronological) order."""
        return (ev for ev in self._queue if not ev.cancelled)
