"""scaling_10k experiment: warm-start formation + measurement smoke."""

from __future__ import annotations

import math

from repro.experiments import scaling_10k


def test_measure_point_small_ring_is_clean():
    p = scaling_10k.measure_point(n=80, seed=3, shards=2,
                                  settle=20.0, sample_pairs=60,
                                  audit_budget=50)
    assert p.n_nodes == 80 and p.shards == 2
    assert math.isfinite(p.mean_hops) and p.mean_hops >= 1.0
    assert p.unreachable == 0
    assert p.cross_shard > 0
    assert not p.violations
    assert p.churn is None


def test_churn_slice_recovers():
    p = scaling_10k.measure_point(n=80, seed=3, shards=2,
                                  settle=20.0, sample_pairs=60,
                                  churn_fraction=0.05,
                                  churn_horizon=150.0,
                                  audit_budget=50)
    assert p.churn is not None
    assert p.churn.n_killed == 4
    assert p.churn.recovery_ring is not None
    assert p.churn.routable_end == 1.0


def test_fit_recovers_exact_log2_coefficient():
    pts = [scaling_10k.Scale10kPoint(
        n_nodes=n, shards=1, mean_hops=0.25 * math.log2(n) ** 2,
        p95_hops=0.0, unreachable=0, sample_pairs=0, events=0,
        cross_shard=0, rounds=0, wall_s=0.0) for n in (100, 1000, 10000)]
    assert abs(scaling_10k.fit_k(pts) - 0.25) < 1e-12


def test_main_cli_smoke(capsys):
    rc = scaling_10k.main(["--sizes", "60", "--shards", "2",
                           "--settle", "15", "--sample-pairs", "40",
                           "--churn-fraction", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "least-squares fit" in out
    assert "[audit] clean" in out
