"""Benchmark configuration.

Each table/figure benchmark runs its (scaled-down) experiment exactly once
under pytest-benchmark timing and asserts the paper's qualitative shape on
the result, so ``pytest benchmarks/ --benchmark-only`` both times the
harness and regenerates every result.  Microbenchmarks
(``test_bench_micro.py``) time the hot substrate operations with normal
multi-round statistics.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single round (experiments are seconds-long)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
