"""Routing/table decisions must not depend on table insertion order.

Two peers can sit exactly equidistant from a destination (one on each
side of the ring); before the address tie-break, ``closest_to`` and
``next_hop`` returned whichever happened to be inserted first — making
same-topology overlays route differently depending on join history.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brunet.address import ADDRESS_SPACE, BrunetAddress
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.routing import _next_hop_scan
from repro.brunet.table import ConnectionTable
from repro.phys.endpoints import Endpoint

ME = BrunetAddress(0)


def _table(addrs, order):
    table = ConnectionTable(ME)
    for i in order:
        table.add(Connection(BrunetAddress(addrs[i]),
                             Endpoint("1.1.1.1", i + 1),
                             ConnectionType.STRUCTURED_NEAR, 0.0))
    return table


addr_sets = st.lists(
    st.integers(min_value=1, max_value=ADDRESS_SPACE - 1),
    min_size=1, max_size=8, unique=True)


@given(addrs=addr_sets, dest=st.integers(0, ADDRESS_SPACE - 1),
       data=st.data())
@settings(max_examples=150, deadline=None)
def test_decisions_are_insertion_order_invariant(addrs, dest, data):
    order = data.draw(st.permutations(range(len(addrs))))
    fwd = _table(addrs, range(len(addrs)))
    shuffled = _table(addrs, order)
    dest = BrunetAddress(dest)

    a, b = fwd.closest_to(dest), shuffled.closest_to(dest)
    assert (a is None) == (b is None)
    if a is not None:
        assert a.peer_addr == b.peer_addr

    for approach in (None, "left", "right"):
        a = _next_hop_scan(fwd, ME, dest, approach=approach)
        b = _next_hop_scan(shuffled, ME, dest, approach=approach)
        assert (a is None) == (b is None), approach
        if a is not None:
            assert a.peer_addr == b.peer_addr, approach

    for side in ("right_neighbor", "left_neighbor"):
        a, b = getattr(fwd, side)(), getattr(shuffled, side)()
        assert a.peer_addr == b.peer_addr, side


def test_equidistant_peers_tie_break_to_lower_address():
    dest = BrunetAddress(100)
    for order in ((90, 110), (110, 90)):
        table = _table(order, range(2))
        assert table.closest_to(dest).peer_addr == BrunetAddress(90)
        hop = _next_hop_scan(table, ME, dest)
        assert hop is not None and hop.peer_addr == BrunetAddress(90)


def test_equidistant_wrap_around_tie():
    """The tie pair straddling 0: dest 0, peers at ±40."""
    dest = BrunetAddress(0)
    lo, hi = 40, ADDRESS_SPACE - 40
    me = BrunetAddress(1000)
    for order in ((lo, hi), (hi, lo)):
        table = ConnectionTable(me)
        for i, a in enumerate(order):
            table.add(Connection(BrunetAddress(a), Endpoint("1.1.1.1", i + 1),
                                 ConnectionType.STRUCTURED_NEAR, 0.0))
        assert table.closest_to(dest).peer_addr == BrunetAddress(lo)
