"""Header-only peek and zero-copy lazy decode.

``peek_header`` is the transit-forwarding fast path: a router reads
src/dest/ttl without touching the via list or payload.  ``decode_lazy``
parses only the routing envelope of a RoutedPacket and leaves the body as
a :class:`~repro.wire.RawBody` slice that re-encodes by splicing and
materializes (or fails with the typed error) only at local delivery.

The fuzz requirement mirrors the full-decode one: truncation or
corruption at *every* byte offset must either parse or raise
:class:`~repro.wire.DecodeError` — never crash, never mis-parse the
header of a well-formed frame.
"""

import random

import pytest

from repro.brunet.messages import RoutedPacket
from repro.wire import (
    DecodeError,
    FrameHeader,
    RawBody,
    WIRE_VERSION,
    decode,
    decode_lazy,
    encode,
    materialize,
    peek_header,
)
from tests.wire.test_codec_roundtrip import GENERATORS, _sample_messages


# ---------------------------------------------------------------------------
# agreement with full decode
# ---------------------------------------------------------------------------

def test_peek_matches_full_decode_on_routed_frames():
    rng = random.Random(31)
    gen = GENERATORS[RoutedPacket]
    for _ in range(200):
        pkt = gen(rng)
        hdr = peek_header(encode(pkt))
        assert hdr.version == WIRE_VERSION
        assert hdr.src == pkt.src
        assert hdr.dest == pkt.dest
        assert hdr.size == pkt.size
        assert hdr.exact == pkt.exact
        assert hdr.exclude_dest_link == pkt.exclude_dest_link
        assert hdr.approach == pkt.approach
        assert hdr.ttl == pkt.ttl
        assert hdr.hops == pkt.hops
        if pkt.trace is None:
            assert hdr.trace_id is None and hdr.trace_parent is None
        else:
            assert hdr.trace_id == pkt.trace.trace_id
            assert hdr.trace_parent == pkt.trace.parent


def test_peek_on_non_routed_frames_fills_only_version_and_tag():
    rng = random.Random(32)
    for msg_type, gen in GENERATORS.items():
        if msg_type is RoutedPacket:
            continue
        hdr = peek_header(encode(gen(rng)))
        assert isinstance(hdr, FrameHeader)
        assert hdr.version == WIRE_VERSION
        assert hdr.src is None and hdr.dest is None and hdr.ttl is None


def test_peek_cost_is_independent_of_payload():
    """The header parse must not walk the via list or payload: a frame
    with a huge body peeks identically to its header-only twin."""
    rng = random.Random(33)
    small = GENERATORS[RoutedPacket](rng)
    big = RoutedPacket(src=small.src, dest=small.dest,
                       payload=b"\x5a" * 200_000, size=small.size,
                       exact=small.exact,
                       exclude_dest_link=small.exclude_dest_link,
                       approach=small.approach, ttl=small.ttl,
                       hops=small.hops, via=list(small.via),
                       trace=small.trace)
    hs, hb = peek_header(encode(small)), peek_header(encode(big))
    assert hs.src == hb.src and hs.dest == hb.dest and hs.ttl == hb.ttl


# ---------------------------------------------------------------------------
# fuzz: truncation and corruption at every byte offset
# ---------------------------------------------------------------------------

def test_peek_every_truncation_raises_decode_error():
    for msg in _sample_messages(seed=5, per_type=3):
        buf = encode(msg)
        full = peek_header(buf)
        for cut in range(len(buf)):
            try:
                hdr = peek_header(buf[:cut])
            except DecodeError:
                continue
            # a successful peek of a truncated frame is only acceptable
            # when the cut lies beyond the peeked region — the header it
            # returns must then be the true header, never a mis-parse
            assert hdr == full, f"mis-parse at cut={cut}"


def test_peek_every_single_byte_corruption_is_contained():
    rng = random.Random(6)
    for msg in _sample_messages(seed=6, per_type=2):
        buf = bytearray(encode(msg))
        for off in range(len(buf)):
            corrupt = bytearray(buf)
            corrupt[off] = (corrupt[off] + 1 + rng.randrange(255)) % 256
            try:
                hdr = peek_header(bytes(corrupt))
            except DecodeError:
                continue  # the only acceptable exception
            assert isinstance(hdr, FrameHeader)


def test_peek_rejects_bad_version_unknown_tag_and_non_buffers():
    buf = encode(_sample_messages(seed=7, per_type=1)[0])
    with pytest.raises(DecodeError, match="version"):
        peek_header(bytes([WIRE_VERSION + 1]) + buf[1:])
    with pytest.raises(DecodeError, match="tag"):
        peek_header(bytes([WIRE_VERSION, 255]))
    with pytest.raises(DecodeError):
        peek_header(object())
    with pytest.raises(DecodeError):
        peek_header(b"")


# ---------------------------------------------------------------------------
# lazy decode: RawBody splice and deferred materialization
# ---------------------------------------------------------------------------

def test_lazy_decode_envelope_matches_and_body_materializes():
    rng = random.Random(34)
    gen = GENERATORS[RoutedPacket]
    for _ in range(100):
        pkt = gen(rng)
        buf = encode(pkt)
        lazy = decode_lazy(buf)
        assert lazy.src == pkt.src and lazy.dest == pkt.dest
        assert lazy.via == pkt.via and lazy.hops == pkt.hops
        assert isinstance(lazy.payload, RawBody)
        assert materialize(lazy.payload) == pkt.payload
        # full agreement after materialization
        lazy.payload = materialize(lazy.payload)
        assert lazy == decode(buf)


def test_lazy_reencode_splices_raw_body_byte_identically():
    rng = random.Random(35)
    gen = GENERATORS[RoutedPacket]
    for _ in range(50):
        pkt = gen(rng)
        buf = encode(pkt)
        assert encode(decode_lazy(buf)) == buf


def test_lazy_reencode_after_hop_mutation_only_changes_the_header():
    """The transit pattern: bump hops/via, re-encode without ever decoding
    the body.  The re-encoded frame must equal a reference re-encode of
    the fully-decoded, identically-mutated packet."""
    rng = random.Random(36)
    for _ in range(50):
        pkt = GENERATORS[RoutedPacket](rng)
        buf = encode(pkt)
        lazy = decode_lazy(buf)
        ref = decode(buf)
        for p in (lazy, ref):
            p.hops += 1
            p.via.append(pkt.src)
        assert encode(lazy) == encode(ref)


def test_lazy_decode_delegates_non_routed_frames():
    rng = random.Random(37)
    for msg_type, gen in GENERATORS.items():
        if msg_type is RoutedPacket:
            continue
        msg = gen(rng)
        assert decode_lazy(encode(msg)) == msg


def test_corrupt_body_defers_failure_to_materialize():
    """Transit hops must be able to forward a frame whose payload is
    garbage; the typed error surfaces only at delivery."""
    rng = random.Random(38)
    deferred = 0
    for _ in range(200):
        pkt = GENERATORS[RoutedPacket](rng)
        if pkt.payload is None:
            continue
        buf = bytearray(encode(pkt))
        # find where the body starts: everything after the envelope
        body_off = len(buf) - len(encode(pkt.payload)[1:])
        off = rng.randrange(body_off, len(buf))
        buf[off] = (buf[off] + 1 + rng.randrange(255)) % 256
        try:
            lazy = decode_lazy(bytes(buf))
        except DecodeError:
            continue  # corruption reached a length field the splice reads
        assert isinstance(lazy.payload, RawBody)
        try:
            materialize(lazy.payload)
        except DecodeError:
            deferred += 1
    # most corruptions must have survived transit and failed at delivery
    assert deferred > 50


def test_raw_body_equality_and_len():
    pkt = GENERATORS[RoutedPacket](random.Random(39))
    if pkt.payload is None:
        pkt.payload = pkt.src
    buf = encode(pkt)
    a, b = decode_lazy(buf).payload, decode_lazy(bytes(buf)).payload
    assert a == b
    assert len(a) == len(b) > 0
    assert bytes(a.raw) == bytes(b.raw)


def test_materialize_is_identity_on_decoded_objects():
    msg = _sample_messages(seed=8, per_type=1)[0]
    assert materialize(msg) is msg
    assert materialize(None) is None
