"""IPOP layer: mapping, tap dispatch, ICMP echo over the overlay."""

import numpy as np
import pytest

from repro.brunet import BrunetConfig, BrunetNode
from repro.ipop import IpopRouter, Pinger, addr_for_ip
from repro.ipop.ippacket import IcmpEcho
from repro.phys import Internet, Site
from repro.sim import Simulator
from repro.brunet.uri import Uri


def make_pair(sim, net, n_extra=4):
    """Two IPOP endpoints joined through a small public overlay."""
    site = Site(net, "pub")
    cfg = BrunetConfig()
    bootstrap = []
    routers = []
    for i in range(n_extra):
        host = site.add_host(f"r{i}")
        from repro.brunet.address import random_address
        node = BrunetNode(sim, host, random_address(sim.rng.stream("r")),
                          cfg, name=f"r{i}")
        node.start(list(bootstrap))
        if not bootstrap:
            bootstrap.append(Uri.udp(host.ip, node.port))
        routers.append(node)
        sim.run(until=sim.now + 3)

    endpoints = []
    for idx, ip in enumerate(("172.16.5.2", "172.16.5.3")):
        host = site.add_host(f"e{idx}")
        node = BrunetNode(sim, host, addr_for_ip(ip), cfg, name=f"e{idx}")
        router = IpopRouter(node, ip)
        node.start(list(bootstrap))
        endpoints.append(router)
        sim.run(until=sim.now + 3)
    sim.run(until=sim.now + 40)
    return endpoints


def test_addr_mapping_matches_node_requirement():
    ip = "172.16.1.9"
    assert addr_for_ip(ip) == addr_for_ip(ip)
    sim = Simulator(seed=1)
    net = Internet(sim)
    site = Site(net, "p")
    host = site.add_host("h")
    node = BrunetNode(sim, host, addr_for_ip(ip), BrunetConfig())
    router = IpopRouter(node, ip)
    assert router.addr == node.addr
    with pytest.raises(ValueError):
        IpopRouter(node, "172.16.1.10")


def test_udp_packet_delivery(sim, internet):
    a, b = make_pair(sim, internet)
    got = []
    b.bind("udp", 9000, lambda pkt: got.append(pkt.payload))
    a.send_ip(b.virtual_ip, "udp", 9000, {"msg": 1}, 100)
    sim.run(until=sim.now + 5)
    assert got == [{"msg": 1}]


def test_unbound_port_counted(sim, internet):
    a, b = make_pair(sim, internet)
    a.send_ip(b.virtual_ip, "udp", 12345, "x", 10)
    sim.run(until=sim.now + 5)
    assert b.node.stats["ip_port_unreachable"] == 1


def test_icmp_echo_round_trip(sim, internet):
    a, b = make_pair(sim, internet)
    pinger = Pinger(a)
    done = pinger.run(b.virtual_ip, count=10, interval=0.5)
    sim.run(until=sim.now + 10)
    stats = done.value
    assert stats.loss_fraction() < 0.3
    assert 0 < stats.mean_rtt() < 0.5


def test_ping_to_absent_ip_all_lost(sim, internet):
    a, b = make_pair(sim, internet)
    pinger = Pinger(a)
    done = pinger.run("172.16.99.99", count=5, interval=0.5)
    sim.run(until=sim.now + 10)
    stats = done.value
    assert stats.loss_fraction() == 1.0
    assert stats.first_reply_seq() is None


def test_pingstats_accounting():
    from repro.ipop.icmp import PingStats
    st = PingStats(5)
    st.record(0, 0.040)
    st.record(2, 0.050)
    assert st.first_reply_seq() == 0
    assert st.loss_fraction() == pytest.approx(3 / 5)
    assert st.mean_rtt() == pytest.approx(0.045)
    assert st.loss_fraction(0, 1) == 0.0
    st.record(99, 1.0)  # out of range: ignored
    assert np.isnan(st.rtt[4])


def test_router_reattach_keeps_bindings(sim, internet):
    a, b = make_pair(sim, internet)
    got = []
    b.bind("udp", 700, lambda pkt: got.append(pkt.payload))
    # simulate IPOP restart on b
    old_node = b.node
    old_node.stop()
    new_node = BrunetNode(sim, old_node.host, b.addr, old_node.config,
                          name="e1-re")
    b.detach()
    b.attach(new_node)
    new_node.start(a.node.bootstrap_uris or
                   [Uri.udp(a.node.host.ip, a.node.port)])
    sim.run(until=sim.now + 40)
    a.send_ip(b.virtual_ip, "udp", 700, "after-restart", 20)
    sim.run(until=sim.now + 5)
    assert got == ["after-restart"]
