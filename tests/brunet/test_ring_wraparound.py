"""Ring arithmetic at the 0 / 2^160 seam: ``neighbors_of`` and the
routing ``_metric`` must treat the address space as circular."""

from __future__ import annotations

import pytest

from repro.brunet.address import ADDRESS_SPACE, BrunetAddress
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.routing import _metric, _next_hop_scan
from repro.brunet.table import ConnectionTable
from repro.phys.endpoints import Endpoint

TOP = ADDRESS_SPACE


def _table(me, peers):
    table = ConnectionTable(BrunetAddress(me))
    for i, p in enumerate(peers):
        table.add(Connection(BrunetAddress(p), Endpoint("1.1.1.1", i + 1),
                             ConnectionType.STRUCTURED_NEAR, 0.0))
    return table


# ---------------------------------------------------------------------------
# neighbors_of
# ---------------------------------------------------------------------------

def test_neighbors_of_straddling_zero():
    table = _table(TOP - 5, [TOP - 100, TOP - 2, 3, 50])
    got = {int(c.peer_addr) for c in table.neighbors_of(BrunetAddress(1))}
    # clockwise of 1 the nearest is 3; counter-clockwise it is 2^160-2
    assert got == {3, TOP - 2}


def test_neighbors_of_two_per_side_straddling_zero():
    table = _table(TOP - 5, [TOP - 100, TOP - 2, 3, 50])
    got = {int(c.peer_addr)
           for c in table.neighbors_of(BrunetAddress(1), per_side=2)}
    assert got == {3, 50, TOP - 2, TOP - 100}


def test_neighbors_of_excludes_the_address_itself():
    table = _table(TOP - 5, [TOP - 2, 3])
    got = {int(c.peer_addr)
           for c in table.neighbors_of(BrunetAddress(TOP - 2))}
    assert TOP - 2 not in got


def test_directional_neighbors_straddle_zero():
    table = _table(TOP - 5, [TOP - 100, 3])
    # clockwise from 2^160-5 the first peer is 3 (through zero)
    assert int(table.right_neighbor().peer_addr) == 3
    assert int(table.left_neighbor().peer_addr) == TOP - 100


# ---------------------------------------------------------------------------
# _metric with approach sides
# ---------------------------------------------------------------------------

def test_metric_ring_distance_across_seam():
    assert _metric(BrunetAddress(TOP - 10), BrunetAddress(5), None) == 15
    assert _metric(BrunetAddress(20), BrunetAddress(TOP - 10), None) == 30


def test_metric_approach_sides_across_seam():
    addr, dest = BrunetAddress(TOP - 10), BrunetAddress(5)
    # "left" converges clockwise toward dest: distance addr→dest = 15
    assert _metric(addr, dest, "left") == 15
    # "right" stays clockwise *of* dest: distance dest→addr wraps long way
    assert _metric(addr, dest, "right") == TOP - 15

    addr2 = BrunetAddress(20)
    assert _metric(addr2, dest, "right") == 15
    assert _metric(addr2, dest, "left") == TOP - 15


@pytest.mark.parametrize("approach,expected", [
    ("left", TOP - 20),   # approach from the counter-clockwise side
    ("right", 40),        # approach from the clockwise side
])
def test_next_hop_approach_picks_correct_side_at_seam(approach, expected):
    me = TOP - 50
    table = _table(me, [TOP - 20, 40])
    hop = _next_hop_scan(table, BrunetAddress(me), BrunetAddress(10),
                         approach=approach)
    assert hop is not None
    assert int(hop.peer_addr) == expected


def test_next_hop_direct_link_across_seam():
    table = _table(TOP - 3, [2])
    hop = _next_hop_scan(table, BrunetAddress(TOP - 3), BrunetAddress(2))
    assert hop is not None and int(hop.peer_addr) == 2
