"""Overlay integration: join, ring consistency, greedy routing, repair."""

import numpy as np
import pytest

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.connection import ConnectionType
from repro.brunet.messages import IpEncap
from repro.brunet.routing import next_hop, overlay_hop_count, trace_route
from repro.brunet.uri import Uri
from repro.phys import Internet, Site
from repro.sim import Simulator
from tests.conftest import build_overlay


def registry(nodes):
    reg = {n.addr: n for n in nodes}
    return reg.get


def sorted_ring(nodes):
    return sorted(nodes, key=lambda n: int(n.addr))


class TestJoin:
    def test_all_nodes_join_ring(self, sim, internet, small_overlay):
        assert all(n.in_ring for n in small_overlay)

    def test_ring_successor_links_complete(self, sim, internet,
                                           small_overlay):
        ring = sorted_ring(small_overlay)
        for i, node in enumerate(ring):
            succ = ring[(i + 1) % len(ring)]
            assert node.table.get(succ.addr) is not None, \
                f"{node.name} missing successor {succ.name}"

    def test_join_latency_seconds(self, sim, internet):
        nodes, bootstrap = build_overlay(sim, internet, 8)
        site = Site(internet, "late")
        host = site.add_host("late0")
        rng = sim.rng.stream("t")
        node = BrunetNode(sim, host, random_address(rng), BrunetConfig(),
                          name="late")
        t0 = sim.now
        node.start(bootstrap)
        sim.run(until=sim.now + 30)
        assert node.joined_at is not None
        assert node.joined_at - t0 < 10.0  # paper: 90% within 10 s

    def test_far_connections_form(self, sim, internet, small_overlay):
        far_counts = [len(n.table.by_type(ConnectionType.STRUCTURED_FAR))
                      for n in small_overlay]
        assert np.mean(far_counts) >= 1.0


class TestRouting:
    def test_all_pairs_routable(self, sim, internet, small_overlay):
        reg = registry(small_overlay)
        for a in small_overlay:
            for b in small_overlay:
                if a is b:
                    continue
                assert overlay_hop_count(a, b.addr, reg) is not None

    def test_greedy_hops_scale(self, sim, internet, small_overlay):
        reg = registry(small_overlay)
        hops = [overlay_hop_count(a, b.addr, reg)
                for a in small_overlay for b in small_overlay if a is not b]
        assert np.mean(hops) < 4.0

    def test_greedy_strictly_decreases_distance(self, sim, internet,
                                                small_overlay):
        from repro.brunet.address import ring_distance
        reg = registry(small_overlay)
        a, b = small_overlay[0], small_overlay[-1]
        path = trace_route(a, b.addr, reg)
        dists = [ring_distance(n.addr, b.addr) for n in path]
        assert all(d2 < d1 for d1, d2 in zip(dists, dists[1:]))

    def test_exact_packet_to_absent_address_dropped(self, sim, internet,
                                                    small_overlay):
        src = small_overlay[0]
        ghost = random_address(sim.rng.stream("ghost"))
        before = sum(n.stats["undeliverable"] for n in small_overlay)
        src.send_routed(ghost, IpEncap("x", 10), size=10, exact=True)
        sim.run(until=sim.now + 5)
        after = sum(n.stats["undeliverable"] for n in small_overlay)
        assert after == before + 1

    def test_inexact_packet_delivered_at_nearest(self, sim, internet,
                                                 small_overlay):
        from repro.brunet.address import ring_distance
        src = small_overlay[0]
        ghost = random_address(sim.rng.stream("ghost2"))
        nearest = min(small_overlay,
                      key=lambda n: ring_distance(n.addr, ghost))
        got = []
        nearest.handlers = {}  # not used; deliver path traces unhandled
        before = nearest.stats["delivered"]
        src.send_routed(ghost, IpEncap("x", 10), size=10, exact=False)
        sim.run(until=sim.now + 5)
        assert nearest.stats["delivered"] >= before  # reached the minimum

    def test_ttl_prevents_loops(self, sim, internet, small_overlay):
        src = small_overlay[0]
        dst = small_overlay[-1]
        from repro.brunet.messages import RoutedPacket
        pkt = RoutedPacket(src=src.addr, dest=dst.addr, payload=IpEncap("x", 1),
                           size=1, exact=True, ttl=1)
        src.route(pkt)
        sim.run(until=sim.now + 5)
        # either delivered in 1 hop or ttl-dropped; never infinite
        assert sim.pending() < 1000


class TestRepair:
    def test_ring_heals_after_node_death(self, sim, internet):
        nodes, bootstrap = build_overlay(sim, internet, 10)
        ring = sorted_ring(nodes)
        victim = ring[4]
        left, right = ring[3], ring[5]
        victim.stop()
        live = [n for n in nodes if n is not victim]
        # keep-alive detects death, near overlord re-announces
        sim.run(until=sim.now + 180)
        assert left.table.get(right.addr) is not None
        reg = registry(live)
        assert overlay_hop_count(left, right.addr, reg) is not None

    def test_rejoin_after_restart_same_address(self, sim, internet):
        nodes, bootstrap = build_overlay(sim, internet, 8)
        node = nodes[3]
        addr, host = node.addr, node.host
        node.stop()
        sim.run(until=sim.now + 90)
        node2 = BrunetNode(sim, host, addr, BrunetConfig(), name="reborn")
        node2.start(bootstrap)
        sim.run(until=sim.now + 60)
        assert node2.in_ring

    def test_node_stop_releases_socket(self, sim, internet, small_overlay):
        node = small_overlay[2]
        port = node.port
        node.stop()
        assert port not in node.host.sockets
