"""Trajectory fingerprints for the pre/post-refactor golden tests.

A fingerprint is a sha256 over the *complete* tracer record stream of a
run (every category, every record, exact float reprs), so any change in
event order, timing, RNG draw sequence, or payload shows up.  The runs
used here are small (seconds each) but exercise joins, CTM handshakes,
linking, greedy routing, shortcut formation, crash-detection and repair —
the full overlay stack.

``capture_churn``/``capture_fig4`` are also import-run as a script by the
maintenance workflow to (re)print the expected digests::

    PYTHONPATH=src python -m tests.experiments._golden_fp
"""

from __future__ import annotations

import hashlib


def _digest_records(tracer) -> str:
    h = hashlib.sha256()
    for cat in sorted(tracer.records):
        h.update(cat.encode())
        for t, data in tracer.records[cat]:
            h.update(repr((t, sorted(data.items()))).encode())
    return h.hexdigest()


def capture_churn(seed: int = 0) -> str:
    """Small churn_recovery run with tracing forced on (read-only)."""
    import repro.experiments.churn_recovery as churn
    from repro.sim.engine import Simulator

    created: list[Simulator] = []

    class _TracingSim(Simulator):
        def __init__(self, *args, **kwargs):
            kwargs["trace"] = True
            super().__init__(*args, **kwargs)
            created.append(self)

    orig = churn.Simulator
    churn.Simulator = _TracingSim
    try:
        res = churn.run(seed=seed, n_nodes=10, kill_fraction=0.3,
                        settle=200.0, horizon=260.0, sample_every=20.0)
    finally:
        churn.Simulator = orig
    sim = created[0]
    h = hashlib.sha256()
    h.update(_digest_records(sim.tracer).encode())
    h.update(repr((res.recovery_ring, res.recovery_routes,
                   res.n_killed, res.series)).encode())
    return h.hexdigest()


def capture_fig4(seed: int = 0) -> str:
    """One-trial fig4 join profile over a traced testbed."""
    from repro.experiments import fig4_join_profile
    from repro.experiments.common import make_testbed

    setup = make_testbed(seed=seed, scale=0.5, trace=True, settle=90.0)
    profiles = fig4_join_profile.run(seed=seed, trials_per_case=1,
                                     count=40, setup=setup)
    h = hashlib.sha256()
    h.update(_digest_records(setup.sim.tracer).encode())
    for case in sorted(profiles):
        p = profiles[case]
        h.update(repr((case, p.rtt_sum.tobytes(), p.rtt_n.tobytes(),
                       p.lost.tobytes(), p.shortcut_seqs)).encode())
    return h.hexdigest()


if __name__ == "__main__":  # pragma: no cover - maintenance helper
    import time
    t0 = time.time()
    c = capture_churn()
    t1 = time.time()
    f = capture_fig4()
    t2 = time.time()
    print(f"CHURN_FP = \"{c}\"  # {t1 - t0:.1f}s")
    print(f"FIG4_FP = \"{f}\"  # {t2 - t1:.1f}s")
