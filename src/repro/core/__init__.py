"""WOW core: deployment orchestration and the paper's testbed.

:class:`~repro.core.wow.Deployment` wires the substrates together (physical
internet, Brunet overlay, IPOP, VMs);
:func:`~repro.core.testbed.build_paper_testbed` reconstructs the Figure 1 /
Table I environment: 118 PlanetLab router nodes plus 33 VMware-hosted
compute VMs across six firewalled domains.
"""

from repro.core.config import CalibrationConfig, HostSpec, SiteSpec
from repro.core.wow import Deployment
from repro.core.testbed import build_paper_testbed, Testbed

__all__ = [
    "CalibrationConfig",
    "HostSpec",
    "SiteSpec",
    "Deployment",
    "build_paper_testbed",
    "Testbed",
]
