"""Shared fixtures.

Heavier fixtures (small overlays, mini testbeds) are module-scoped where
tests only read from them; tests that mutate topology build their own.
"""

from __future__ import annotations

import os

import pytest

from repro.brunet import BrunetConfig, BrunetNode, random_address
from repro.brunet.uri import Uri
from repro.phys import Internet, Site
from repro.sim import Simulator


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="run tests marked slow (skipped by default to keep tier-1 fast)")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow") or os.environ.get("RUNSLOW"):
        return
    skip = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def internet(sim) -> Internet:
    return Internet(sim)


def build_overlay(sim, internet, n_nodes: int, config=None,
                  site=None, stagger: float = 5.0):
    """A public-site overlay of ``n_nodes``; returns (nodes, bootstrap)."""
    site = site or Site(internet, "pub")
    config = config or BrunetConfig()
    rng = sim.rng.stream("tests.overlay")
    nodes = []
    bootstrap = []
    for i in range(n_nodes):
        host = site.add_host(f"ov{i}-{len(internet.hosts_by_ip)}")
        node = BrunetNode(sim, host, random_address(rng), config,
                          name=f"ov{i}")
        node.start(list(bootstrap))
        if not bootstrap:
            bootstrap.append(Uri.udp(host.ip, node.port))
        nodes.append(node)
        sim.run(until=sim.now + stagger)
    sim.run(until=sim.now + 60.0)
    return nodes, bootstrap


@pytest.fixture
def small_overlay(sim, internet):
    """12 public nodes in a settled ring."""
    nodes, bootstrap = build_overlay(sim, internet, 12)
    return nodes


def make_mini_testbed(seed: int = 0, shortcuts: bool = True,
                      settle: float = 120.0):
    """A scaled-down paper testbed (12 PL routers, all 33 VMs)."""
    from repro.core import build_paper_testbed
    from repro.brunet.config import BrunetConfig as BC
    s = Simulator(seed=seed, trace=False)
    tb = build_paper_testbed(
        s, brunet_config=BC(shortcuts_enabled=shortcuts),
        n_planetlab_routers=12, n_planetlab_hosts=4, vm_stagger=2.0)
    tb.run_warmup(settle=settle)
    return s, tb


@pytest.fixture(scope="module")
def mini_testbed():
    """Module-scoped warmed-up mini testbed — read-mostly tests only."""
    return make_mini_testbed()
