"""MEME: motif discovery by expectation maximization (paper ref [11]).

:class:`MemeMotifFinder` is a real, compact implementation of the OOPS
("one occurrence per sequence") EM model from Bailey & Elkan 1994: the
E-step computes a posterior over motif start positions in each sequence
under the current position weight matrix (PWM); the M-step re-estimates
the PWM from the posterior-weighted site counts.  It is vectorized with
numpy and genuinely recovers implanted motifs (see tests/apps and
examples/batch_cluster.py).

:class:`MemeWorkload` is the cost model used at Fig. 8 scale: 4000 queued
jobs with ~24 s mean sequential runtime on the reference CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.middleware.pbs.job import JobSpec

_PSEUDO = 0.25  # Dirichlet pseudocount for PWM estimation


@dataclass
class MemeResult:
    pwm: np.ndarray  # (w, 4) position weight matrix
    positions: np.ndarray  # MAP site start per sequence
    log_likelihood: float
    iterations: int


class MemeMotifFinder:
    """OOPS-model EM motif discovery over index-encoded DNA."""

    def __init__(self, width: int, max_iter: int = 50, tol: float = 1e-4,
                 seed: int = 0):
        if width < 2:
            raise ValueError("motif width must be >= 2")
        self.width = width
        self.max_iter = max_iter
        self.tol = tol
        self.rng = np.random.default_rng(seed)

    # -- model pieces ---------------------------------------------------
    def _init_pwm(self) -> np.ndarray:
        pwm = self.rng.dirichlet(np.full(4, 2.0), size=self.width)
        return pwm

    @staticmethod
    def _window_log_scores(seqs: np.ndarray, log_pwm: np.ndarray,
                           log_bg: np.ndarray) -> np.ndarray:
        """(n, L-w+1) log-odds of the motif starting at each position."""
        n, length = seqs.shape
        w = log_pwm.shape[0]
        n_pos = length - w + 1
        scores = np.zeros((n, n_pos))
        for offset in range(w):
            cols = seqs[:, offset:offset + n_pos]
            scores += log_pwm[offset, cols] - log_bg[cols]
        return scores

    # -- EM ----------------------------------------------------------------
    def fit(self, seqs: np.ndarray) -> MemeResult:
        """Run EM to convergence; ``seqs`` is (n, L) int8 in 0..3."""
        seqs = np.asarray(seqs, dtype=np.int8)
        n, length = seqs.shape
        w = self.width
        if length < w:
            raise ValueError("sequences shorter than motif width")
        counts = np.bincount(seqs.ravel(), minlength=4).astype(float)
        bg = (counts + _PSEUDO) / (counts.sum() + 4 * _PSEUDO)
        log_bg = np.log(bg)
        pwm = self._init_pwm()

        prev_ll = -np.inf
        posterior = None
        for iteration in range(1, self.max_iter + 1):
            log_pwm = np.log(pwm)
            scores = self._window_log_scores(seqs, log_pwm, log_bg)
            # E-step: posterior over start positions (uniform prior)
            shift = scores.max(axis=1, keepdims=True)
            weights = np.exp(scores - shift)
            norm = weights.sum(axis=1, keepdims=True)
            posterior = weights / norm
            ll = float((shift.squeeze(1) + np.log(norm.squeeze(1))
                        - np.log(scores.shape[1])).sum())
            # M-step: posterior-weighted base counts per motif column
            new_pwm = np.full((w, 4), _PSEUDO)
            n_pos = scores.shape[1]
            for offset in range(w):
                cols = seqs[:, offset:offset + n_pos]
                for base in range(4):
                    new_pwm[offset, base] += float(
                        posterior[cols == base].sum())
            new_pwm /= new_pwm.sum(axis=1, keepdims=True)
            pwm = new_pwm
            if abs(ll - prev_ll) < self.tol * max(1.0, abs(prev_ll)):
                prev_ll = ll
                break
            prev_ll = ll

        positions = posterior.argmax(axis=1)
        return MemeResult(pwm, positions, prev_ll, iteration)

    def consensus(self, pwm: np.ndarray) -> str:
        """Most likely base at each motif column."""
        from repro.apps.sequences import ALPHABET
        return "".join(ALPHABET[int(b)] for b in pwm.argmax(axis=1))


class MemeWorkload:
    """Generator of Fig.-8-scale MEME job specs.

    Every job uses "the same set of input files and arguments" (§V-D1);
    run-to-run compute variation comes from EM convergence randomness,
    modelled as lognormal noise around the calibrated base work.
    """

    def __init__(self, calib, rng: np.random.Generator):
        self.calib = calib
        self.rng = rng

    def job(self, index: int) -> JobSpec:
        work = float(self.calib.meme_base_work
                     * self.rng.lognormal(0.0, self.calib.meme_work_sigma))
        return JobSpec(name="meme", work_ref=work,
                       input_size=self.calib.meme_input_size,
                       output_size=self.calib.meme_output_size)

    def jobs(self, count: int) -> list[JobSpec]:
        return [self.job(i) for i in range(count)]
