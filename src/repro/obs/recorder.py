"""Flight recorder: bounded per-node ring of recent events.

Long churn experiments emit an unbounded stream of node events
(connection adds/drops, link failures, fault injections).  The recorder
keeps only the last ``capacity`` events per node in memory — the
"what was this node doing just before it broke" view — and can *spill*
every evicted event to a JSONL file so the complete history is still on
disk while memory stays O(nodes × capacity).

Events carry simulation time only, so a spill file from a fixed-seed run
is byte-identical across runs.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Optional


class FlightRecorder:
    """Fixed-size ring of recent events per node, with optional spill."""

    def __init__(self, capacity: int = 256,
                 spill_path: Optional[str] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.rings: dict[str, deque] = {}
        self.recorded = 0
        self.evicted = 0
        self.spill_path = spill_path
        self._spill = open(spill_path, "w") if spill_path else None

    def record(self, t: float, node: str, category: str,
               data: Optional[dict] = None) -> None:
        """Append one event to ``node``'s ring, spilling any evictee."""
        ring = self.rings.get(node)
        if ring is None:
            ring = self.rings[node] = deque()
        if len(ring) >= self.capacity:
            self.evicted += 1
            if self._spill is not None:
                self._write(ring.popleft())
            else:
                ring.popleft()
        ring.append((t, node, category, data))
        self.recorded += 1

    def recent(self, node: str) -> list[tuple[float, str, dict]]:
        """The node's retained events, oldest first, as
        ``(t, category, data)``."""
        return [(t, cat, data or {}) for t, _n, cat, data in
                self.rings.get(node, ())]

    def nodes(self) -> list[str]:
        """Every node that has recorded at least one event."""
        return sorted(self.rings)

    # -- spill ----------------------------------------------------------
    def _write(self, entry: tuple) -> None:
        t, node, category, data = entry
        row: dict[str, Any] = {"t": t, "node": node, "category": category}
        if data:
            row["data"] = {k: (v if isinstance(v, (int, float, str, bool,
                                                   type(None)))
                               else str(v)) for k, v in data.items()}
        assert self._spill is not None
        self._spill.write(json.dumps(row, sort_keys=True) + "\n")

    def flush(self) -> None:
        """Spill everything still held in the rings (kept in the rings
        too) and flush the file.  Call once, at end of run: the spill
        file then holds the complete event history in eviction order
        followed by the retained tails, node by node."""
        if self._spill is None:
            return
        for node in self.nodes():
            for entry in self.rings[node]:
                self._write(entry)
        self._spill.flush()

    def close(self) -> None:
        """Flush and close the spill file (idempotent)."""
        if self._spill is not None:
            self.flush()
            self._spill.close()
            self._spill = None
