#!/usr/bin/env python
"""High-throughput batch computing on a WOW (the paper's §V-D1 use case).

Builds the Figure 1 testbed (scaled-down PlanetLab bootstrap, all 33
compute VMs), starts an unmodified PBS/NFS stack on it, and runs a stream
of MEME motif-discovery jobs.  Also runs the *real* MEME EM algorithm once
locally, so you can see what each simulated job stands for.

Run:  python examples/batch_cluster.py [n_jobs]
"""

import sys

import numpy as np

from repro.apps.meme import MemeMotifFinder, MemeWorkload
from repro.apps.sequences import implant_motif, random_dna
from repro.core import build_paper_testbed
from repro.middleware import NfsServer, PbsMom, PbsServer
from repro.sim import Simulator


def run_real_meme_once() -> None:
    print("— the application: MEME motif discovery (Bailey & Elkan EM) —")
    rng = np.random.default_rng(0)
    seqs = random_dna(rng, 25, 150)
    implant_motif(rng, seqs, "TATAATGGCA", mutation_rate=0.08)
    finder = MemeMotifFinder(width=10, max_iter=60, seed=1)
    result = finder.fit(seqs)
    print(f"  planted motif TATAATGGCA; EM recovered "
          f"{finder.consensus(result.pwm)} in {result.iterations} iterations "
          f"(logL {result.log_likelihood:.0f})\n")


def main(n_jobs: int = 200) -> None:
    run_real_meme_once()

    print(f"— the cluster: 33 WOW VMs across 6 firewalled domains —")
    sim = Simulator(seed=11, trace=False)
    testbed = build_paper_testbed(sim, n_planetlab_routers=24,
                                  n_planetlab_hosts=6)
    testbed.run_warmup()
    print(f"  overlay converged at t={sim.now:.0f}s; "
          f"ring consistent: {testbed.deployment.ring_consistent()}")

    head = testbed.head
    nfs = NfsServer(head)
    nfs.export("meme.in", testbed.deployment.calib.meme_input_size)
    pbs = PbsServer(head)
    for worker in testbed.workers():
        PbsMom(worker, head.virtual_ip)
        pbs.register_worker(worker.virtual_ip)

    workload = MemeWorkload(testbed.deployment.calib,
                            sim.rng.stream("example.meme"))
    done = pbs.expect(n_jobs)
    for i, spec in enumerate(workload.jobs(n_jobs)):
        sim.schedule(i * 1.0, pbs.qsub, spec)  # 1 job/second, like §V-D1
    sim.run(until=sim.now + n_jobs * 5.0 + 2000.0)

    walls = np.array([r.wall_time for r in pbs.records
                      if r.wall_time is not None])
    print(f"  {pbs.completed}/{n_jobs} jobs completed")
    print(f"  job wall-clock: {walls.mean():.1f}s ± {walls.std():.1f}s "
          f"(paper: 24.1s ± 6.5s with shortcuts)")
    print(f"  throughput: {pbs.throughput_jobs_per_minute():.0f} jobs/min "
          f"(paper: 53 jobs/min)")
    per_node: dict[str, int] = {}
    for r in pbs.records:
        if r.status == "done":
            per_node[r.node_name] = per_node.get(r.node_name, 0) + 1
    slowest = min(per_node, key=per_node.get)
    fastest = max(per_node, key=per_node.get)
    print(f"  heterogeneity: busiest worker {fastest} ran "
          f"{per_node[fastest]} jobs; slowest {slowest} ran "
          f"{per_node[slowest]} (paper §V-D1 observes the same skew)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
