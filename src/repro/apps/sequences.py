"""Synthetic DNA sequence generation for the application benchmarks."""

from __future__ import annotations

import numpy as np

#: nucleotide alphabet used throughout (indices 0..3)
ALPHABET = "ACGT"


def random_dna(rng: np.random.Generator, n_sequences: int,
               length: int) -> np.ndarray:
    """Uniform random DNA as an (n, length) int8 array of indices 0..3."""
    return rng.integers(0, 4, size=(n_sequences, length), dtype=np.int8)


def implant_motif(rng: np.random.Generator, sequences: np.ndarray,
                  motif: str, mutation_rate: float = 0.1) -> np.ndarray:
    """Implant one (possibly mutated) occurrence of ``motif`` at a random
    position in every sequence.  Returns the implant positions."""
    motif_idx = np.array([ALPHABET.index(c) for c in motif], dtype=np.int8)
    w = len(motif_idx)
    n, length = sequences.shape
    if length < w:
        raise ValueError("sequences shorter than the motif")
    positions = rng.integers(0, length - w + 1, size=n)
    for i, pos in enumerate(positions):
        site = motif_idx.copy()
        mutate = rng.random(w) < mutation_rate
        site[mutate] = rng.integers(0, 4, size=int(mutate.sum()),
                                    dtype=np.int8)
        sequences[i, pos:pos + w] = site
    return positions


def to_string(seq: np.ndarray) -> str:
    """Index array → ACGT string (for display in examples)."""
    return "".join(ALPHABET[int(b)] for b in seq)
