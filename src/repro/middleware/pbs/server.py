"""PBS head node (pbs_server + scheduler).

The scheduler is single-threaded: it dispatches one job at a time, and each
dispatch spends ``pbs_dispatch_rpc_rounds`` *sequential* RPC round trips to
the target MOM (authentication, stage-in negotiation, start handshake,
status polls) plus head CPU.  Over 146 ms no-shortcut paths this chain is
what throttles Fig. 8's throughput to ~22 jobs/min; over single-hop
shortcut paths the same chain costs ~1 s and throughput triples.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.middleware.pbs.job import JobRecord, JobSpec
from repro.middleware.rpc import RpcClient, RpcFailure, RpcServer
from repro.sim.process import Process, Signal, Timeout, WaitSignal

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import WowVm

PBS_SERVER_PORT = 15001
PBS_MOM_PORT = 15002


class PbsServer:
    """Head-node queue + scheduler + completion tracking."""

    def __init__(self, vm: "WowVm"):
        self.vm = vm
        self.sim = vm.sim
        self.calib = vm.deployment.calib
        self.queue: deque[JobRecord] = deque()
        self.records: list[JobRecord] = []
        self.free_workers: deque[str] = deque()  # worker virtual IPs
        self.busy: dict[str, JobRecord] = {}
        self.rpc_server = RpcServer(vm, PBS_SERVER_PORT, self._handle,
                                    cpu_per_request=0.25 / 10,
                                    serialize=True)
        self.rpc = RpcClient(vm)
        self._wake = Signal(self.sim, "pbs.wake")
        self.completed = 0
        self.failed = 0
        self.all_done = Signal(self.sim, "pbs.all_done", latch=False)
        self._expected: Optional[int] = None
        Process(self.sim, self._scheduler(), name="pbs.scheduler")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def register_worker(self, worker_ip: str) -> None:
        """Add a MOM to the free pool (local configuration path)."""
        self.free_workers.append(worker_ip)
        self._wake.fire()

    def qsub(self, spec: JobSpec) -> JobRecord:
        """Submit one job; returns its accounting record."""
        record = JobRecord(spec, self.sim.now)
        self.queue.append(record)
        self.records.append(record)
        self._wake.fire()
        return record

    def expect(self, total: int) -> Signal:
        """``all_done`` fires when ``total`` jobs have finished."""
        self._expected = total
        return self.all_done

    def throughput_jobs_per_minute(self) -> float:
        """Completed jobs per minute, first submit to last completion."""
        done = [r for r in self.records if r.end_time is not None]
        if len(done) < 2:
            return 0.0
        t0 = min(r.submit_time for r in done)
        t1 = max(r.end_time for r in done)
        return 60.0 * len(done) / (t1 - t0) if t1 > t0 else 0.0

    # ------------------------------------------------------------------
    # scheduler (single thread)
    # ------------------------------------------------------------------
    def _scheduler(self):
        calib = self.calib
        dispatch_cpu = calib.pbs_head_cpu_per_job * 0.65
        while True:
            if not self.queue or not self.free_workers:
                yield WaitSignal(self._wake)
                continue
            record = self.queue.popleft()
            worker_ip = self.free_workers.popleft()
            record.dispatch_time = self.sim.now
            record.node_name = worker_ip
            # head CPU: queue run, accounting, stage-in setup
            yield Timeout(self.vm.host.compute_time(dispatch_cpu))
            # sequential RPC chatter with the MOM
            ok = True
            for round_no in range(calib.pbs_dispatch_rpc_rounds):
                resp = yield WaitSignal(self.rpc.call(
                    worker_ip, PBS_MOM_PORT, "handshake", round_no))
                if isinstance(resp, RpcFailure):
                    ok = False
                    break
            if ok:
                resp = yield WaitSignal(self.rpc.call(
                    worker_ip, PBS_MOM_PORT, "run",
                    {"job_id": record.job_id, "spec": record.spec,
                     "server_ip": self.vm.virtual_ip}))
                ok = not isinstance(resp, RpcFailure)
            if not ok:
                record.status = "failed"
                self.failed += 1
                self._free_worker(worker_ip)
                self._check_done()
                continue
            record.status = "running"
            self.busy[worker_ip] = record

    # ------------------------------------------------------------------
    # MOM-facing RPC handlers
    # ------------------------------------------------------------------
    def _free_worker(self, worker_ip: str) -> None:
        """Return a worker to the free list exactly once (a lost 'run' ack
        can otherwise surface the same worker twice)."""
        if worker_ip not in self.free_workers:
            self.free_workers.append(worker_ip)

    def _handle(self, method: str, body, src_ip: str):
        if method == "job_done":
            record = self.busy.pop(src_ip, None)
            if record is not None and record.status == "running":
                record.status = "done"
                record.start_time = body["start_time"]
                record.end_time = self.sim.now
                self.completed += 1
            self._free_worker(src_ip)
            self._wake.fire()
            self._check_done()
            return {"ok": True}
        if method == "register":
            if src_ip not in self.busy:
                self._free_worker(src_ip)
                self._wake.fire()
            return {"ok": True}
        return {"error": "bad method"}

    def _check_done(self) -> None:
        if self._expected is not None and \
                self.completed + self.failed >= self._expected:
            self.all_done.fire(self.completed)
