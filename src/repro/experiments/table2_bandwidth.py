"""Table II: ttcp bandwidth between WOW nodes, shortcuts on vs off.

12 transfers (three file sizes × four repetitions) for UFL-UFL and UFL-NWU
pairs.  With shortcuts the nodes talk over one overlay hop; without, the
3-hop route through loaded PlanetLab routers collapses bandwidth ~15-19×.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    ExperimentSetup,
    make_testbed,
    print_table,
    run_until_signal,
)
from repro.middleware.ttcp import ttcp_measure
from repro.sim.process import Process
from repro.sim.units import MB

#: the paper's three file sizes
FILE_SIZES = (MB(695.0), MB(50.0), MB(8.0))


@dataclass
class BandwidthRow:
    pair: str
    shortcuts: bool
    mean_KBps: float
    std_KBps: float
    samples: list[float]


def _measure_pair(setup: ExperimentSetup, src_vm, dst_vm,
                  repetitions: int, sizes) -> list[float]:
    sim = setup.sim
    results: list[float] = []

    def runner():
        # warm-up (discarded): the paper measures steady state — between
        # nodes that already communicate, any shortcut has long since
        # formed.  Drive traffic until the direct link exists (or a full
        # URI-ladder timescale has passed, for the no-shortcut runs).
        deadline = sim.now + 500.0
        while sim.now < deadline:
            yield from ttcp_measure(src_vm, dst_vm, MB(4.0), name="warmup")
            if not src_vm.node.config.shortcuts_enabled:
                break
            if src_vm.node.table.get(dst_vm.addr) is not None:
                break
        for _rep in range(repetitions):
            for size in sizes:
                rate = yield from ttcp_measure(src_vm, dst_vm, size)
                results.append(rate)
        return results

    proc = Process(sim, runner(), name="ttcp.seq")
    if not run_until_signal(sim, proc.done, 3e5):  # pragma: no cover
        raise RuntimeError("ttcp measurements did not finish")
    return results


def _pick_pair(setup: ExperimentSetup, src_candidates, dst_candidates):
    """Choose a measurement pair whose current multi-hop route crosses the
    PlanetLab bootstrap overlay, as the paper's did ("nodes communicated
    over a 3-hop communication path traversing the heavily loaded PlanetLab
    nodes", §V-B).  Routes between ring-adjacent VMs would otherwise skip
    the loaded routers entirely."""
    from repro.brunet.routing import trace_route
    dep = setup.deployment
    fallback = None
    for src in src_candidates:
        for dst in dst_candidates:
            if src is dst or src.node.table.get(dst.addr) is not None:
                continue
            path = trace_route(src.node, dst.addr, dep.resolve)
            if path is None:
                continue
            if fallback is None:
                fallback = (src, dst)
            if any(n.host.site.name == "planetlab" for n in path[1:-1]):
                return src, dst
    return fallback if fallback is not None         else (src_candidates[0], dst_candidates[-1])


def run(seed: int = 0, scale: float = 1.0, repetitions: int = 4,
        sizes=FILE_SIZES) -> list[BandwidthRow]:
    rows: list[BandwidthRow] = []
    for shortcuts in (True, False):
        setup = make_testbed(seed=seed, scale=scale, shortcuts=shortcuts)
        tb = setup.testbed
        ufl = [tb.vm(i) for i in range(3, 17)]
        nwu = [tb.vm(i) for i in range(17, 30)]
        pairs = {
            "UFL-UFL": _pick_pair(setup, ufl[:7], ufl[7:]),
            "UFL-NWU": _pick_pair(setup, ufl[:7], nwu),
        }
        for pair_name, (src, dst) in pairs.items():
            samples = _measure_pair(setup, src, dst, repetitions, sizes)
            rows.append(BandwidthRow(pair_name, shortcuts,
                                     float(np.mean(samples)),
                                     float(np.std(samples)), samples))
    return rows


def report(rows: list[BandwidthRow]) -> None:
    by_pair: dict[str, dict[bool, BandwidthRow]] = {}
    for row in rows:
        by_pair.setdefault(row.pair, {})[row.shortcuts] = row
    print_table(
        "Table II — ttcp bandwidth (KB/s), shortcuts enabled vs disabled",
        ["pair", "enabled mean", "enabled std", "disabled mean",
         "disabled std", "speedup"],
        [[pair,
          f"{d[True].mean_KBps:.0f}", f"{d[True].std_KBps:.0f}",
          f"{d[False].mean_KBps:.0f}", f"{d[False].std_KBps:.1f}",
          f"{d[True].mean_KBps / max(d[False].mean_KBps, 1e-9):.1f}x"]
         for pair, d in by_pair.items()])


def main(seed: int = 0, scale: float = 0.5, repetitions: int = 2,
         sizes=(MB(50.0), MB(8.0))) -> list[BandwidthRow]:
    rows = run(seed=seed, scale=scale, repetitions=repetitions, sizes=sizes)
    report(rows)
    return rows


if __name__ == "__main__":  # pragma: no cover
    main()
