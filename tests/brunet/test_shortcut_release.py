"""Shortcut teardown must strip the SHORTCUT label only — never close a
connection that still carries ring (NEAR/FAR) roles.

Regression: the eviction path in ``_maybe_connect`` used to call
``drop_connection`` on the victim unconditionally, so evicting a shortcut
whose peer was *also* the ring neighbor silently cut the ring.
"""

from __future__ import annotations

import pytest

from repro.brunet.address import BrunetAddress
from repro.brunet.config import BrunetConfig
from repro.brunet.connection import ConnectionType
from tests.conftest import build_overlay


def _absent_addr(node, salt: int = 1) -> BrunetAddress:
    """A destination address the node holds no connection to."""
    addr = BrunetAddress((int(node.addr) + salt * 7_777_777) % (1 << 160))
    while node.table.get(addr) is not None or addr == node.addr:
        addr = BrunetAddress((int(addr) + 7_777_777) % (1 << 160))
    return addr


@pytest.fixture
def tight_overlay(sim, internet):
    """8 nodes with room for exactly one shortcut per node."""
    nodes, _ = build_overlay(sim, internet, 8,
                             config=BrunetConfig(shortcut_max=1))
    return sorted(nodes, key=lambda n: int(n.addr))


def test_eviction_keeps_ring_labels(sim, tight_overlay):
    node, neighbor = tight_overlay[0], tight_overlay[1]
    conn = node.table.get(neighbor.addr)
    assert conn is not None
    assert ConnectionType.STRUCTURED_NEAR in conn.types
    # traffic made the ring neighbor a shortcut too: one physical link,
    # two roles
    conn.add_type(ConnectionType.SHORTCUT)

    overlord = node.shortcut_overlord
    hot = _absent_addr(node)
    overlord.scores[hot] = 100.0
    overlord._maybe_connect(hot, 100.0)

    survivor = node.table.get(neighbor.addr)
    assert survivor is not None, \
        "evicting the shortcut must not close the ring link"
    assert ConnectionType.STRUCTURED_NEAR in survivor.types
    assert ConnectionType.SHORTCUT not in survivor.types


def test_eviction_closes_pure_shortcut(sim, tight_overlay):
    node = tight_overlay[0]
    victim = next((n for n in tight_overlay[2:]
                   if node.table.get(n.addr) is None), None)
    if victim is None:  # small ring: borrow a peer and strip its roles
        victim = tight_overlay[4]
        node.drop_connection(node.table.get(victim.addr),
                             reason="test-setup", notify=True)
        sim.run(until=sim.now + 1.0)
    node.connect_to(victim.addr, ConnectionType.SHORTCUT)
    sim.run(until=sim.now + 30.0)
    conn = node.table.get(victim.addr)
    assert conn is not None and ConnectionType.SHORTCUT in conn.types
    conn.types.intersection_update({ConnectionType.SHORTCUT})

    overlord = node.shortcut_overlord
    hot = _absent_addr(node)
    overlord.scores[hot] = 100.0
    overlord._maybe_connect(hot, 100.0)
    assert node.table.get(victim.addr) is None


def test_drop_idle_strips_only_shortcut_label(sim, tight_overlay):
    node, neighbor = tight_overlay[0], tight_overlay[1]
    node.config.shortcut_idle_drop = 60.0
    conn = node.table.get(neighbor.addr)
    conn.add_type(ConnectionType.SHORTCUT)
    overlord = node.shortcut_overlord
    overlord._last_nonzero[neighbor.addr] = sim.now - 1000.0
    overlord._drop_idle()
    survivor = node.table.get(neighbor.addr)
    assert survivor is not None
    assert ConnectionType.SHORTCUT not in survivor.types
    assert ConnectionType.STRUCTURED_NEAR in survivor.types


def test_expired_pending_slot_is_pruned_by_tick(sim, tight_overlay):
    node = tight_overlay[0]
    overlord = node.shortcut_overlord
    ghost = BrunetAddress((int(node.addr) + 999_999) % (1 << 160))
    overlord._pending[ghost] = sim.now - 1.0  # failed attempt, peer cold
    overlord.tick()
    assert ghost not in overlord._pending


def test_eviction_victim_tie_breaks_by_address(sim, tight_overlay):
    """Equal-score victims: the lower address goes, independent of the
    order the shortcuts were added."""
    node = tight_overlay[0]
    node.config.shortcut_max = 2
    # turn two non-neighbor links into pure shortcuts (no sim steps run
    # between here and the eviction, so no overlord re-labels them)
    pair = [c for c in node.table.all()
            if c.peer_addr not in (tight_overlay[1].addr,
                                   tight_overlay[-1].addr)][:2]
    assert len(pair) == 2
    for conn in pair:
        conn.types.clear()
        conn.types.add(ConnectionType.SHORTCUT)
    node.table.bump_version()
    lo, hi = sorted((c.peer_addr for c in pair), key=int)

    overlord = node.shortcut_overlord
    hot = _absent_addr(node)
    overlord.scores[hot] = 100.0  # both victims score 0.0: a tie
    overlord._maybe_connect(hot, 100.0)
    assert node.table.get(lo) is None, "tie must evict the lower address"
    assert node.table.get(hi) is not None
