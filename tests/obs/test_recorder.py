"""FlightRecorder: ring eviction, spill file, counters."""

import json

import pytest

from repro.obs.recorder import FlightRecorder


def test_capacity_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_ring_keeps_newest_per_node():
    rec = FlightRecorder(capacity=3)
    for i in range(5):
        rec.record(float(i), "a", "evt", {"i": i})
    rec.record(0.0, "b", "evt", {"i": 99})
    assert [d["i"] for _t, _c, d in rec.recent("a")] == [2, 3, 4]
    assert [d["i"] for _t, _c, d in rec.recent("b")] == [99]
    assert rec.recent("missing") == []
    assert rec.nodes() == ["a", "b"]
    assert rec.recorded == 6
    assert rec.evicted == 2


def test_recent_shape():
    rec = FlightRecorder(capacity=4)
    rec.record(1.5, "n", "conn.add", {"peer": "x"})
    rec.record(2.0, "n", "conn.drop", None)
    assert rec.recent("n") == [(1.5, "conn.add", {"peer": "x"}),
                               (2.0, "conn.drop", {})]


def test_spill_holds_complete_history(tmp_path):
    path = str(tmp_path / "events.jsonl")
    rec = FlightRecorder(capacity=2, spill_path=path)
    for i in range(5):
        rec.record(float(i), "a", "evt", {"i": i})
    rec.close()
    rows = [json.loads(line) for line in open(path)]
    # 3 evictions in order, then the retained tail
    assert [r["data"]["i"] for r in rows] == [0, 1, 2, 3, 4]
    assert all(r["node"] == "a" and r["category"] == "evt" for r in rows)
    # close() is idempotent
    rec.close()


def test_spill_stringifies_exotic_values(tmp_path):
    path = str(tmp_path / "events.jsonl")
    rec = FlightRecorder(capacity=1, spill_path=path)
    rec.record(0.0, "n", "evt", {"obj": object()})
    rec.record(1.0, "n", "evt", {"i": 1})  # evicts the first
    rec.close()
    rows = [json.loads(line) for line in open(path)]
    assert isinstance(rows[0]["data"]["obj"], str)


def test_no_spill_just_drops(tmp_path):
    rec = FlightRecorder(capacity=1)
    rec.record(0.0, "n", "evt", {"i": 0})
    rec.record(1.0, "n", "evt", {"i": 1})
    assert rec.evicted == 1
    rec.flush()  # no-op without a spill file
    rec.close()
