"""Property-based tests on the event kernel."""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1,
                max_size=60))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.floats(0.0, 1000.0), st.booleans()),
                min_size=1, max_size=40))
def test_cancelled_events_never_fire(items):
    sim = Simulator()
    fired = []
    events = []
    for i, (delay, cancel) in enumerate(items):
        events.append((sim.schedule(delay, fired.append, i), cancel))
    for ev, cancel in events:
        if cancel:
            ev.cancel()
    sim.run()
    expected = {i for i, (_, cancel) in enumerate(items) if not cancel}
    assert set(fired) == expected


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30),
       st.floats(0.0, 100.0))
def test_run_until_is_a_clean_partition(delays, cut):
    """Events strictly before the cut fire; the rest fire on the next run."""
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run(until=cut)
    assert all(d <= cut for d in fired)
    before = len(fired)
    sim.run()
    assert len(fired) == len(delays)
    assert fired[before:] == sorted(fired[before:])


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2 ** 31 - 1), st.integers(1, 30))
def test_same_seed_same_event_stream(seed, n):
    def run():
        sim = Simulator(seed=seed)
        rng = sim.rng.stream("p")
        log = []
        for _ in range(n):
            sim.schedule(float(rng.random() * 10), lambda: log.append(sim.now))
        sim.run()
        return log

    assert run() == run()
