"""Stateful property test: ConnectionTable under random operation streams."""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.brunet.address import ADDRESS_SPACE, BrunetAddress, ring_distance
from repro.brunet.connection import Connection, ConnectionType
from repro.brunet.table import ConnectionTable
from repro.phys.endpoints import Endpoint

ME = BrunetAddress(123456789)


class TableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = ConnectionTable(ME)
        self.model: dict[int, set] = {}  # addr → label set
        self.added_events = 0
        self.removed_events = 0
        self.table.on_added.append(lambda c: self._count_add())
        self.table.on_removed.append(lambda c: self._count_rm())

    def _count_add(self):
        self.added_events += 1

    def _count_rm(self):
        self.removed_events += 1

    peers = Bundle("peers")

    @rule(target=peers,
          addr=st.integers(0, ADDRESS_SPACE - 1),
          ctype=st.sampled_from(list(ConnectionType)))
    def add_connection(self, addr, ctype):
        if addr == int(ME):
            addr += 1
        conn = Connection(BrunetAddress(addr), Endpoint("1.1.1.1", 1),
                          ctype, 0.0)
        self.table.add(conn)
        self.model.setdefault(addr % ADDRESS_SPACE, set()).add(ctype)
        return addr % ADDRESS_SPACE

    @rule(addr=peers)
    def remove_connection(self, addr):
        self.table.remove(BrunetAddress(addr))
        self.model.pop(addr, None)

    @rule(addr=peers, ctype=st.sampled_from(list(ConnectionType)))
    def add_label(self, addr, ctype):
        conn = self.table.get(BrunetAddress(addr))
        if conn is not None:
            conn.add_type(ctype)
            self.model[addr].add(ctype)

    @invariant()
    def model_agrees(self):
        assert len(self.table) == len(self.model)
        for addr, labels in self.model.items():
            conn = self.table.get(BrunetAddress(addr))
            assert conn is not None
            assert conn.types == labels

    @invariant()
    def by_type_consistent(self):
        for ctype in ConnectionType:
            expected = {a for a, labels in self.model.items()
                        if ctype in labels}
            actual = {int(c.peer_addr) for c in self.table.by_type(ctype)}
            assert actual == expected

    @invariant()
    def neighbors_are_nearest_structured(self):
        structured = [a for a, labels in self.model.items()
                      if any(t.structured for t in labels)]
        right = self.table.right_neighbor()
        if not structured:
            assert right is None
        else:
            expected = min(structured,
                           key=lambda a: (a - int(ME)) % ADDRESS_SPACE)
            assert int(right.peer_addr) == expected

    @invariant()
    def closest_to_me_is_globally_nearest(self):
        structured = [a for a, labels in self.model.items()
                      if any(t.structured for t in labels)]
        best = self.table.closest_to(ME)
        if not structured:
            assert best is None
        else:
            expected = min(ring_distance(a, ME) for a in structured)
            assert ring_distance(best.peer_addr, ME) == expected


TestTableStateful = TableMachine.TestCase
TestTableStateful.settings = settings(max_examples=40,
                                      stateful_step_count=30,
                                      deadline=None)
